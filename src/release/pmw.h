// Private multiplicative weights over the join domain — Algorithm 2 / PMW
// of Hardt–Ligett–McSherry, reproved as Theorem A.1 in the paper.
//
// PMW_{ε,δ,Δ̃}(I):
//   1. n̂ = count(I) + TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}
//   2. F_0 = n̂ · uniform over D = ×_i D_i
//   3. ε′ = ε / (16·sqrt(k·log(1/δ)))
//   4. for i = 1..k:
//        sample q_i via the ε′-DP EM, score s_i(I,q) = |q(F_{i−1}) − q(I)|/Δ̃
//        m_i = q_i(I) + Lap(Δ̃/ε′)
//        F_i(x) ∝ F_{i−1}(x)·exp(q_i(x)·(m_i − q_i(F_{i−1}))/(2n̂))
//   5. return avg_{i≤k} F_i
//
// Guarantee (Theorem A.1): (ε, δ)-DP for instances whose count has
// sensitivity ≤ Δ̃ between neighbors, and with probability 1 − 1/poly(|Q|)
// every query in Q is answered within
// O((sqrt(count·Δ̃) + Δ̃·sqrt(λ))·f_upper).

#ifndef DPJOIN_RELEASE_PMW_H_
#define DPJOIN_RELEASE_PMW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/composition.h"
#include "dp/privacy_params.h"
#include "query/dense_tensor.h"
#include "query/evaluation.h"
#include "query/factored_tensor.h"
#include "query/query_family.h"
#include "query/workload_evaluator.h"
#include "relational/instance.h"

namespace dpjoin {

/// Tuning knobs for PMW. Defaults follow the paper's analysis.
struct PmwOptions {
  /// Total (ε, δ) this PMW invocation may spend.
  PrivacyParams params;

  /// Δ̃: the (already privatized) upper bound on count's neighbor deviation.
  double delta_tilde = 1.0;

  /// Number of multiplicative-weights rounds; 0 derives the theory value
  /// k = n̂·ε·sqrt(log|D|) / (Δ̃·log|Q|·sqrt(log(1/δ))), clamped to
  /// [1, max_rounds].
  int64_t num_rounds = 0;
  int64_t max_rounds = 64;

  /// When true (flawed baseline only — §3.1 "natural but flawed idea"), skip
  /// the noisy-total step and seed F_0 with the exact count(I). This is NOT
  /// differentially private across instances with different join sizes; it
  /// exists to reproduce the Figure 1 leakage experiment.
  bool leak_exact_total = false;

  /// EXPERIMENTAL: when > 0, use this ε′ for the per-round EM + Laplace
  /// steps instead of Algorithm 2's ε/(16·sqrt(k·log(1/δ))). The paper's
  /// formula carries large constants that swamp any laptop-scale domain
  /// (noise ≈ 160·Δ̃ per measurement); experiments that study the SHAPE of
  /// the error (not the constants) override it and say so. The reported
  /// accounting is then no longer a proof of (ε, δ)-DP.
  double per_round_epsilon_override = 0.0;

  /// Record per-round diagnostics into PmwResult::trace.
  bool record_trace = false;

  /// Use the factored round loop: a cached WorkloadEvaluator answers the
  /// family via precomputed per-mode matrices, the multiplicative update
  /// touches only the chosen query's sub-box when the query is a 0/1
  /// product indicator (falling back to one fused full-tensor pass
  /// otherwise), normalization is an O(1) deferred rescale, and the
  /// average accumulates in the same traversal. Released answers agree
  /// with the straightforward loop up to floating-point associativity
  /// (~1e-9 relative over default round counts; see pmw_factored_test),
  /// and remain bit-identical across thread counts. Set false to run the
  /// retained straightforward loop (the test/bench oracle).
  bool use_factored_loop = true;

  /// Factored loop: recompute the full answer vector from the tensor every
  /// N rounds (incremental answers accumulate fp drift otherwise);
  /// 0 disables periodic refresh.
  int64_t factored_refresh_rounds = 64;

  /// Factored loop: fold the deferred scale back into storage once the
  /// accumulated |η| exceeds this limit (box cells grow by e^η per hit and
  /// would eventually overflow without rebasing). The default keeps raw
  /// cells far below the double range; tests shrink it to force rebases.
  double factored_rebase_log_limit = 300.0;

  /// Worker threads for the per-cell update and contraction loops; 0 uses
  /// the ExecutionContext default (DPJOIN_THREADS / hardware concurrency).
  /// The released output is identical for every setting: noise draws stay
  /// on the caller's single Rng and all parallel reductions use a fixed,
  /// thread-count-independent block decomposition.
  ///
  /// A non-zero value is applied as a THREAD-LOCAL ScopedThreads override
  /// for the duration of the call, so concurrent PMW invocations from
  /// different user threads can each carry their own count without racing
  /// on the process-wide setting.
  int num_threads = 0;

  /// Reuse a WorkloadEvaluator built for the same (family, shape) — e.g.
  /// the one a previous release's ServingHandle holds — instead of
  /// constructing a fresh one (CHECKed for backing/shape compatibility).
  /// The evaluator actually used is returned in PmwResult::evaluator either
  /// way, so the ServingHandle built from this release can share it.
  std::shared_ptr<const WorkloadEvaluator> shared_evaluator;
};

/// Output of a PMW run.
struct PmwResult {
  /// F = avg_{i≤k} F_i, total mass n̂ — dense runs only (empty for
  /// factored runs, which fill factored_synthetic instead).
  DenseTensor synthetic;
  /// The factored release (PrivateMultiplicativeWeightsFactored only).
  std::shared_ptr<const FactoredTensor> factored_synthetic;
  /// The workload evaluator the round loop used (null for the oracle
  /// loop); ServingHandle reuses it instead of rebuilding per release.
  std::shared_ptr<const WorkloadEvaluator> evaluator;
  double noisy_total = 0.0;    ///< n̂.
  double exact_count = 0.0;    ///< count(I) (diagnostic; never released).
  int64_t rounds = 0;          ///< k.
  double per_round_epsilon = 0.0;  ///< ε′.
  PrivacyAccountant accountant;    ///< budget ledger for this invocation.

  struct Round {
    int64_t query_flat = 0;    ///< EM-selected query index.
    double score = 0.0;        ///< |q(F_{i−1}) − q(I)| at selection time.
    double measurement = 0.0;  ///< m_i.
  };
  std::vector<Round> trace;

  /// Per-round wall-clock breakdown of the hot loop (always recorded; the
  /// vectors have one entry per executed round).
  struct Perf {
    std::vector<double> eval_us;       ///< workload evaluation / scoring
    std::vector<double> update_us;     ///< multiplicative-update traversal
    std::vector<double> normalize_us;  ///< renormalize + average accumulation
    int64_t sparse_rounds = 0;      ///< factored: sub-box update fired
    int64_t dense_rounds = 0;       ///< factored: fused full-tensor fallback
    int64_t scale_only_rounds = 0;  ///< factored: all-ones/empty query, O(1)
  };
  Perf perf;
};

/// Runs Algorithm 2. Fails with InvalidArgument when Δ̃ ≤ 0 or the release
/// domain exceeds the dense-materialization envelope.
Result<PmwResult> PrivateMultiplicativeWeights(const Instance& instance,
                                               const QueryFamily& family,
                                               const PmwOptions& options,
                                               Rng& rng);

/// Algorithm 2 on the PRODUCT-FORM backing: the synthetic dataset is a
/// FactoredTensor over `factor_groups` (disjoint ascending attribute-digit
/// subsets of the single relation's tuple space — normally the connected
/// components from ComputeWorkloadFactorization). Requires every query of
/// the family to be product-form with support inside one group; the round
/// loop then touches only the chosen query's factor, memory stays
/// O(Σ group cells), and the release is EXACT PMW (the same trajectory the
/// dense loop would follow, up to floating point) on domains far beyond the
/// dense envelope. Ignores use_factored_loop (there is no oracle loop at
/// this scale); honors every other option, including the per-factor analogs
/// of the deferred-scale, rebase, and refresh machinery.
Result<PmwResult> PrivateMultiplicativeWeightsFactored(
    const Instance& instance, const QueryFamily& family,
    const std::vector<std::vector<size_t>>& factor_groups,
    const PmwOptions& options, Rng& rng);

/// The theory-driven round count (Appendix A):
/// k = n̂·ε·sqrt(log|D|) / (Δ̃·log|Q|·sqrt(log(1/δ))).
int64_t PmwTheoryRounds(double noisy_total, double epsilon, double delta,
                        double delta_tilde, double domain_size,
                        double query_count, int64_t max_rounds);

}  // namespace dpjoin

#endif  // DPJOIN_RELEASE_PMW_H_
