#include "release/pmw.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "dp/exponential_mechanism.h"
#include "dp/laplace.h"
#include "dp/truncated_laplace.h"
#include "query/workload_evaluator.h"
#include "relational/join.h"

namespace dpjoin {

int64_t PmwTheoryRounds(double noisy_total, double epsilon, double delta,
                        double delta_tilde, double domain_size,
                        double query_count, int64_t max_rounds) {
  DPJOIN_CHECK_GT(delta_tilde, 0.0);
  const double log_q = std::log(std::max(query_count, 2.0));
  const double k = noisy_total * epsilon * std::sqrt(std::log(domain_size)) /
                   (delta_tilde * log_q * std::sqrt(std::log(1.0 / delta)));
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(k)), 1,
                             max_rounds);
}

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// F_i(x) ∝ F_{i−1}(x)·exp(q(x)·eta), NOT yet renormalized.
// q(x) = Π_t q_t(x_t) with per-mode value vectors `qvals`.
void ExpUpdate(DenseTensor* tensor, const std::vector<const double*>& qvals,
               double eta) {
  const MixedRadix& shape = tensor->shape();
  std::vector<double>& values = *tensor->mutable_values();
  // Per-cell updates are independent; each block seeds its own odometer at
  // `lo` and writes only its [lo, hi) slice, so the result is bit-identical
  // for any thread count.
  ParallelFor(0, shape.size(), ExecutionContext::TensorGrain(),
              [&](int64_t lo, int64_t hi) {
                internal::ForEachProductCell(
                    shape, qvals, lo, hi, [&](int64_t flat, double q) {
                      values[static_cast<size_t>(flat)] *= std::exp(q * eta);
                    });
              });
}

// The retained straightforward round loop — Algorithm 2 line by line, four
// full-tensor passes per round (all-query evaluation, exp update,
// NormalizeTo, average accumulation). Kept as the oracle the factored loop
// is pinned against (pmw_factored_test, bench speedup baselines).
void RunOracleRounds(const QueryFamily& family, const PmwOptions& options,
                     const std::vector<double>& answers_instance,
                     const MixedRadix& shape, Rng& rng, PmwResult* result) {
  DenseTensor current(shape);
  DenseTensor average(shape);
  current.Fill(result->noisy_total / static_cast<double>(shape.size()));

  std::vector<const double*> qvals(
      static_cast<size_t>(family.num_relations()));
  for (int64_t round = 0; round < result->rounds; ++round) {
    // Lines 4–5: EM selection with score |q(F_{i−1}) − q(I)| / Δ̃.
    const Clock::time_point eval_start = Clock::now();
    const std::vector<double> answers_synthetic =
        EvaluateAllOnTensor(family, current);
    std::vector<double> scores(answers_instance.size());
    for (size_t qi = 0; qi < scores.size(); ++qi) {
      scores[qi] = std::abs(answers_synthetic[qi] - answers_instance[qi]) /
                   options.delta_tilde;
    }
    result->perf.eval_us.push_back(MicrosSince(eval_start));
    const size_t chosen =
        ExponentialMechanism(scores, result->per_round_epsilon, rng);

    // Line 6: noisy measurement.
    const double measurement =
        AddLaplaceNoise(answers_instance[chosen], options.delta_tilde,
                        result->per_round_epsilon, rng);

    // Line 7: multiplicative update; the proof needs |q(x)·η| ≤ 1, so η is
    // clamped to [-1, 1].
    const std::vector<int64_t> parts =
        family.Decompose(static_cast<int64_t>(chosen));
    for (size_t i = 0; i < qvals.size(); ++i) {
      qvals[i] = family.table_queries(static_cast<int>(i))
                     [static_cast<size_t>(parts[i])]
                         .values.data();
    }
    const double eta =
        Clamp((measurement - answers_synthetic[chosen]) /
                  (2.0 * result->noisy_total),
              -1.0, 1.0);
    const Clock::time_point update_start = Clock::now();
    ExpUpdate(&current, qvals, eta);
    result->perf.update_us.push_back(MicrosSince(update_start));
    const Clock::time_point normalize_start = Clock::now();
    current.NormalizeTo(result->noisy_total);
    average.AddTensor(current);
    result->perf.normalize_us.push_back(MicrosSince(normalize_start));

    if (options.record_trace) {
      result->trace.push_back({static_cast<int64_t>(chosen),
                              scores[chosen] * options.delta_tilde,
                              measurement});
    }
  }

  average.Scale(1.0 / static_cast<double>(result->rounds));  // Line 8.
  result->synthetic = std::move(average);
}

// ---------------------------------------------------------------------------
// The factored round loop, generic over the synthetic-data backing.
//
// RunRounds owns Algorithm 2's skeleton — scoring, EM selection, the noisy
// measurement, η, trace — which is identical for every backing (and whose
// noise draws therefore stay in the same order). Each backing policy owns
// the representation-specific state and the three representation-specific
// steps: answering (BeginRound/Answer), the fused multiplicative-update /
// average-accumulation / renormalize pass (ApplyRound), and the drift
// control (Upkeep).
// ---------------------------------------------------------------------------

// Dense backing — one double per cell of ×_i D_i. Representation
// invariants, with G the RAW cell array, s the tensor's deferred scale, and
// n̂ the noisy total:
//   F_i           = s·G                (the current synthetic dataset)
//   s·T           = n̂                 (T = Σ_x G[x], tracked analytically)
//   Σ_{j≤i} F_j   = a·G + R           (a = Σ_j s_j; R a residual array)
//   answers       = s·rawans          (rawans = all-query answers on G)
//
// When the EM-chosen query is a 0/1 product indicator with support box B,
// exp(q(x)·η) is e^η on B and 1 elsewhere, so the round updates ONLY B:
// one fused pass extracts the old box values (for the incremental answer
// delta), multiplies G by e^η inside B, and folds the average-accumulation
// residual R += a·(1−e^η)·G_old in the same traversal. The new total is
// analytic (T += (e^η−1)·box_mass), so NormalizeTo is the O(1) deferred
// rescale s = n̂/T. Non-indicator queries fall back to ONE fused full-tensor
// pass (exp + residual + total) plus a full answer recomputation — still
// two fewer passes than the oracle. All reductions use fixed-grain blocked
// merges, so results stay bit-identical for any thread count.
class DenseBacking {
 public:
  DenseBacking(const QueryFamily& family, const PmwOptions& options,
               const MixedRadix& shape, double n_hat)
      : family_(family),
        options_(options),
        n_hat_(n_hat),
        m_(static_cast<size_t>(family.num_relations())),
        current_(shape),
        residual_(static_cast<size_t>(shape.size()), 0.0),
        qvals_(m_) {
    if (options.shared_evaluator) {
      DPJOIN_CHECK(!options.shared_evaluator->factored(),
                   "shared evaluator is factored but the backing is dense");
      DPJOIN_CHECK(options.shared_evaluator->shape().radices() ==
                       shape.radices(),
                   "shared evaluator shape mismatch");
      DPJOIN_CHECK_EQ(options.shared_evaluator->TotalQueries(),
                      family.TotalCount());
      evaluator_ = options.shared_evaluator;
    } else {
      evaluator_ = std::make_shared<const WorkloadEvaluator>(family, shape);
    }
    current_.Fill(n_hat_ / static_cast<double>(shape.size()));
    raw_total_ = n_hat_;
    rawans_ = evaluator_->EvaluateAllRaw(*current_.raw_values());
  }

  double n_hat() const { return n_hat_; }

  void BeginRound() { s_ = current_.deferred_scale(); }
  double Answer(size_t qi) const { return s_ * rawans_[qi]; }

  void ApplyRound(size_t chosen, double eta, PmwResult::Perf* perf,
                  double* eval_us, double* update_us, double* normalize_us);
  void Upkeep(int64_t round, int64_t total_rounds, double* eval_us,
              double* normalize_us);
  void Finish(PmwResult* result);

 private:
  const QueryFamily& family_;
  const PmwOptions& options_;
  const double n_hat_;
  const size_t m_;
  std::shared_ptr<const WorkloadEvaluator> evaluator_;
  DenseTensor current_;
  std::vector<double> residual_;
  std::vector<const double*> qvals_;
  std::vector<double> rawans_;
  double avg_coeff_ = 0.0;   // a
  double raw_total_ = 0.0;   // T (the ctor sets it to n̂)
  double log_drift_ = 0.0;   // Σ|η| since the last rebase
  double s_ = 1.0;           // this round's cached deferred scale
};

void DenseBacking::ApplyRound(size_t chosen, double eta,
                              PmwResult::Perf* perf, double* eval_us,
                              double* update_us, double* normalize_us) {
  const WorkloadEvaluator& evaluator = *evaluator_;
  const MixedRadix& shape = current_.shape();
  const int64_t cells = shape.size();
  const size_t m = m_;
  std::vector<double>& graw = *current_.raw_values();
  std::vector<double>& residual = residual_;
  std::vector<double>& rawans = rawans_;
  const double n_hat = n_hat_;

  // Line 7 (+ the average accumulation of line 8, folded into the same
  // traversal via R).
  const std::vector<int64_t> parts =
      family_.Decompose(static_cast<int64_t>(chosen));
  const double exp_eta = std::exp(eta);

  const bool indicator = evaluator.IsProductIndicator(parts);
  const int64_t box_cells = indicator ? evaluator.BoxCells(parts) : 0;
  if (indicator && (evaluator.IsAllOnes(parts) || box_cells == 0)) {
    // q ≡ 1: the exp update is a uniform e^η rescale that NormalizeTo
    // undoes exactly — F_i = F_{i−1}. q ≡ 0 (empty support): the update
    // itself is the identity. Either way only the average advances.
    const Clock::time_point normalize_start = Clock::now();
    avg_coeff_ += s_;
    ++perf->scale_only_rounds;
    *normalize_us = MicrosSince(normalize_start);
  } else if (indicator && box_cells * 2 <= cells) {
    // Sparse path: one fused pass over the sub-box B = ×_i support_i.
    const Clock::time_point update_start = Clock::now();
    std::vector<std::vector<int64_t>> offsets(m);
    for (size_t i = 0; i < m; ++i) {
      const auto& support =
          evaluator.info(static_cast<int>(i), parts[i]).support;
      offsets[i].resize(support.size());
      for (size_t t = 0; t < support.size(); ++t) {
        offsets[i][t] = support[t] * shape.stride(i);
      }
    }
    const std::vector<int64_t>& inner = offsets[m - 1];
    const int64_t inner_size = static_cast<int64_t>(inner.size());
    const int64_t rows = box_cells / inner_size;
    // Whole box rows per block; grain fixed by the tensor grain alone, so
    // the decomposition (and the box-mass merge order) never depends on
    // the thread count.
    const int64_t row_grain = std::max<int64_t>(
        1, ExecutionContext::TensorGrain() / inner_size);
    std::vector<double> box_values(static_cast<size_t>(box_cells));
    std::vector<double> block_mass(
        static_cast<size_t>(NumBlocks(0, rows, row_grain)), 0.0);
    const double a = avg_coeff_;
    ParallelForBlocks(
        0, rows, row_grain, [&](int64_t block, int64_t lo, int64_t hi) {
          double mass = 0.0;
          for (int64_t r = lo; r < hi; ++r) {
            // Decode the row index into support positions of the outer
            // modes (last outer mode fastest — row-major box order).
            int64_t rem = r;
            int64_t base = 0;
            for (size_t i = m - 1; i-- > 0;) {
              const int64_t b = static_cast<int64_t>(offsets[i].size());
              base += offsets[i][static_cast<size_t>(rem % b)];
              rem /= b;
            }
            double* brow =
                box_values.data() + r * inner_size;
            for (int64_t t = 0; t < inner_size; ++t) {
              const int64_t flat = base + inner[static_cast<size_t>(t)];
              const double g = graw[static_cast<size_t>(flat)];
              brow[t] = g;
              mass += g;
              graw[static_cast<size_t>(flat)] = g * exp_eta;
              residual[static_cast<size_t>(flat)] +=
                  a * (1.0 - exp_eta) * g;
            }
          }
          block_mass[static_cast<size_t>(block)] = mass;
        });
    double box_mass = 0.0;  // merged in block order: thread-count-free
    for (const double bm : block_mass) box_mass += bm;
    *update_us = MicrosSince(update_start);

    const Clock::time_point delta_start = Clock::now();
    const std::vector<double> delta =
        evaluator.EvaluateAllOnBox(parts, box_values);
    for (size_t qi = 0; qi < rawans.size(); ++qi) {
      rawans[qi] += (exp_eta - 1.0) * delta[qi];
    }
    *eval_us += MicrosSince(delta_start);

    const Clock::time_point normalize_start = Clock::now();
    raw_total_ += (exp_eta - 1.0) * box_mass;
    current_.NormalizeDeferred(n_hat, raw_total_);
    avg_coeff_ += current_.deferred_scale();
    log_drift_ += std::abs(eta);
    *normalize_us = MicrosSince(normalize_start);
    ++perf->sparse_rounds;
  } else {
    // Dense fallback (non-indicator query, or a box covering most of the
    // tensor): ONE fused full pass (exp + residual + total)…
    const Clock::time_point update_start = Clock::now();
    for (size_t i = 0; i < m; ++i) {
      qvals_[i] = family_.table_queries(static_cast<int>(i))
                      [static_cast<size_t>(parts[i])]
                          .values.data();
    }
    const int64_t grain = ExecutionContext::TensorGrain();
    std::vector<double> block_total(
        static_cast<size_t>(NumBlocks(0, cells, grain)), 0.0);
    const double a = avg_coeff_;
    ParallelForBlocks(
        0, cells, grain, [&](int64_t block, int64_t lo, int64_t hi) {
          double total = 0.0;
          internal::ForEachProductCell(
              shape, qvals_, lo, hi, [&](int64_t flat, double q) {
                const double g = graw[static_cast<size_t>(flat)];
                const double e = std::exp(q * eta);
                const double gn = g * e;
                graw[static_cast<size_t>(flat)] = gn;
                residual[static_cast<size_t>(flat)] += a * (1.0 - e) * g;
                total += gn;
              });
          block_total[static_cast<size_t>(block)] = total;
        });
    double new_total = 0.0;
    for (const double bt : block_total) new_total += bt;
    *update_us = MicrosSince(update_start);

    // …plus a full answer refresh (an arbitrary per-cell factor admits no
    // box-local delta).
    const Clock::time_point refresh_start = Clock::now();
    rawans = evaluator.EvaluateAllRaw(graw);
    *eval_us += MicrosSince(refresh_start);

    const Clock::time_point normalize_start = Clock::now();
    raw_total_ = new_total;
    current_.NormalizeDeferred(n_hat, raw_total_);
    avg_coeff_ += current_.deferred_scale();
    log_drift_ += std::abs(eta);
    *normalize_us = MicrosSince(normalize_start);
    ++perf->dense_rounds;
  }
}

void DenseBacking::Upkeep(int64_t round, int64_t total_rounds,
                          double* eval_us, double* normalize_us) {
  // Drift control. Rebase: fold the deferred scale into storage before
  // box cells (which grow by e^η per hit, never renormalized in raw form)
  // can overflow. Refresh: periodically recompute the incremental answer
  // vector exactly. Both schedules depend only on round index and η —
  // never the thread count.
  const Clock::time_point upkeep_start = Clock::now();
  if (log_drift_ > options_.factored_rebase_log_limit) {
    const double s_fold = current_.deferred_scale();
    current_.Materialize();
    raw_total_ = n_hat_;  // s_fold·T by the invariant
    for (double& ra : rawans_) ra *= s_fold;
    avg_coeff_ /= s_fold;
    log_drift_ = 0.0;
  }
  *normalize_us += MicrosSince(upkeep_start);
  if (options_.factored_refresh_rounds > 0 &&
      (round + 1) % options_.factored_refresh_rounds == 0 &&
      round + 1 < total_rounds) {
    const Clock::time_point refresh_start = Clock::now();
    rawans_ = evaluator_->EvaluateAllRaw(*current_.raw_values());
    *eval_us += MicrosSince(refresh_start);
  }
}

void DenseBacking::Finish(PmwResult* result) {
  // Line 8: avg F_i = (a·G + R)/k, one fused pass. The exact value is an
  // average of positive tensors; clamp the tiny negative residue fp
  // cancellation can leave near zero.
  const MixedRadix& shape = current_.shape();
  const std::vector<double>& graw = *current_.raw_values();
  DenseTensor synthetic(shape);
  std::vector<double>& out = *synthetic.raw_values();
  const double a = avg_coeff_;
  const double inv_k = 1.0 / static_cast<double>(result->rounds);
  ParallelFor(0, shape.size(), ExecutionContext::TensorGrain(),
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  out[static_cast<size_t>(i)] = std::max(
                      0.0, (a * graw[static_cast<size_t>(i)] +
                            residual_[static_cast<size_t>(i)]) *
                               inv_k);
                }
              });
  result->synthetic = std::move(synthetic);
  result->evaluator = evaluator_;
}

// Product-form backing — the synthetic dataset is a FactoredTensor over
// disjoint attribute groups, and every query's support lies inside ONE
// group (CHECKed at construction), so the multiplicative update touches a
// single factor and the product form is preserved EXACTLY. Invariants, per
// factor k with raw table p_k, per-factor scale s_k, and n̂ the (fixed)
// global scale:
//   F_i              = n̂ · Π_k s_k·p_k    (each factor a mass-1 distribution)
//   s_k·T_k          = 1                  (T_k = Σ_x p_k[x], analytic)
//   Σ_{j≤i} s_k^(j)·p_k^(j) = a_k·p_k + R_k   (per-factor running average)
//   answers          = n̂ · Π_k s_k·draws_k[j] (draws_k[j] = ⟨R_k-row j, p_k⟩)
//
// The released tensor is the PRODUCT OF PER-FACTOR AVERAGES. That is not
// the (non-product-form) average of products cell-for-cell, but it answers
// every within-factor query IDENTICALLY: for q supported in factor g,
// q(avg_j F_j) = n̂·avg_j ⟨q, s_g^(j) p_g^(j)⟩·Π_{k≠g} 1 = n̂·⟨q, A_g⟩,
// because every untouched factor of every F_j has mass exactly 1. So on
// the release's own query family (and any query within one group) the
// factored release equals the dense release up to floating point.
//
// Per-factor draws are recomputed EXACTLY on every factor update (the
// factor is small — that is the point), so unlike the dense backing there
// is no incremental-answer drift and no periodic refresh. The per-factor
// deferred scale and rebase machinery mirror the dense loop's.
class ProductBacking {
 public:
  ProductBacking(const QueryFamily& family, const PmwOptions& options,
                 const MixedRadix& shape,
                 const std::vector<std::vector<size_t>>& groups, double n_hat)
      : family_(family),
        options_(options),
        n_hat_(n_hat),
        current_(shape, groups, n_hat) {
    DPJOIN_CHECK_EQ(family.num_relations(), 1);
    if (options.shared_evaluator) {
      const WorkloadEvaluator& ev = *options.shared_evaluator;
      DPJOIN_CHECK(ev.factored(),
                   "shared evaluator is dense but the backing is factored");
      DPJOIN_CHECK(ev.shape().radices() == shape.radices(),
                   "shared evaluator shape mismatch");
      DPJOIN_CHECK_EQ(ev.TotalQueries(), family.TotalCount());
      DPJOIN_CHECK_EQ(ev.num_factors(), current_.num_factors());
      for (size_t k = 0; k < current_.num_factors(); ++k) {
        DPJOIN_CHECK(ev.factor_modes(k) == current_.factor(k).modes,
                     "shared evaluator factor-structure mismatch");
      }
      evaluator_ = options.shared_evaluator;
    } else {
      evaluator_ = std::make_shared<const WorkloadEvaluator>(
          WorkloadEvaluator::ForFactored(family, current_));
    }

    const size_t num_factors = current_.num_factors();
    totals_.assign(num_factors, 1.0);
    avg_coeff_.assign(num_factors, 0.0);
    log_drift_.assign(num_factors, 0.0);
    residual_.resize(num_factors);
    draws_.resize(num_factors);
    for (size_t k = 0; k < num_factors; ++k) {
      residual_[k].assign(current_.factor(k).values.size(), 0.0);
      evaluator_->FactorDotsRaw(k, current_.factor(k).values, &draws_[k]);
    }

    // Per-query structure: the single factor the query's support touches
    // (−1 for the all-ones counting query), plus whether it is a 0/1
    // indicator (perf accounting only — the update is one small-factor
    // pass either way).
    const auto& queries = family.table_queries(0);
    touched_.resize(queries.size());
    indicator_.resize(queries.size());
    for (size_t j = 0; j < queries.size(); ++j) {
      const TableQuery& tq = queries[j];
      DPJOIN_CHECK(tq.HasFactors(),
                   "factored PMW needs product-form queries: " + tq.label);
      int touched = -1;
      bool is_indicator = true;
      for (size_t d = 0; d < tq.factors.size(); ++d) {
        bool all_ones = true;
        for (const double v : tq.factors[d]) {
          if (v != 1.0) all_ones = false;
          if (v != 0.0 && v != 1.0) is_indicator = false;
        }
        if (all_ones) continue;
        const int f = static_cast<int>(current_.factor_of_mode(d));
        DPJOIN_CHECK(touched < 0 || touched == f,
                     "query support crosses factor groups: " + tq.label);
        touched = f;
      }
      touched_[j] = touched;
      indicator_[j] = is_indicator ? 1 : 0;
    }
    ans_.resize(queries.size());
  }

  double n_hat() const { return n_hat_; }

  void BeginRound() {
    // ans_j = n̂ · Π_k s_k·draws_k[j]; O(|Q|·K), no domain-sized work.
    const size_t num_factors = current_.num_factors();
    for (size_t j = 0; j < ans_.size(); ++j) {
      double a = current_.scale();
      for (size_t k = 0; k < num_factors; ++k) {
        a *= current_.factor_scale(k) * draws_[k][j];
      }
      ans_[j] = a;
    }
  }
  double Answer(size_t qi) const { return ans_[qi]; }

  void ApplyRound(size_t chosen, double eta, PmwResult::Perf* perf,
                  double* eval_us, double* update_us, double* normalize_us);
  void Upkeep(int64_t round, int64_t total_rounds, double* eval_us,
              double* normalize_us);
  void Finish(PmwResult* result);

 private:
  const QueryFamily& family_;
  const PmwOptions& options_;
  const double n_hat_;
  FactoredTensor current_;
  std::shared_ptr<const WorkloadEvaluator> evaluator_;
  std::vector<double> totals_;     // T_k (analytic raw factor masses)
  std::vector<double> avg_coeff_;  // a_k
  std::vector<double> log_drift_;  // Σ|η| per factor since its last rebase
  std::vector<std::vector<double>> residual_;  // R_k
  std::vector<std::vector<double>> draws_;     // ⟨R_k-row j, p_k⟩
  std::vector<int> touched_;    // query -> factor index, −1 = all-ones
  std::vector<char> indicator_;
  std::vector<double> ans_;     // this round's cached answers
};

void ProductBacking::ApplyRound(size_t chosen, double eta,
                                PmwResult::Perf* perf, double* eval_us,
                                double* update_us, double* normalize_us) {
  const int g = touched_[chosen];
  const size_t num_factors = current_.num_factors();
  if (g < 0) {
    // All-ones counting query: F_i = F_{i−1} (the uniform e^η rescale is
    // undone by normalization); only the per-factor averages advance.
    const Clock::time_point normalize_start = Clock::now();
    for (size_t k = 0; k < num_factors; ++k) {
      avg_coeff_[k] += current_.factor_scale(k);
    }
    ++perf->scale_only_rounds;
    *normalize_us = MicrosSince(normalize_start);
    return;
  }

  // One fused pass over the single touched factor: exp update + residual
  // fold + new raw total, blocked and merged in block order.
  const Clock::time_point update_start = Clock::now();
  const size_t gk = static_cast<size_t>(g);
  std::vector<double>& raw = *current_.mutable_factor_values(gk);
  std::vector<double>& res = residual_[gk];
  const double* qrow = evaluator_->FactorRow(gk, static_cast<int64_t>(chosen));
  const double a_g = avg_coeff_[gk];
  const int64_t cells = static_cast<int64_t>(raw.size());
  const int64_t grain = ExecutionContext::TensorGrain();
  std::vector<double> block_total(
      static_cast<size_t>(NumBlocks(0, cells, grain)), 0.0);
  ParallelForBlocks(
      0, cells, grain, [&](int64_t block, int64_t lo, int64_t hi) {
        double total = 0.0;
        for (int64_t x = lo; x < hi; ++x) {
          const double old = raw[static_cast<size_t>(x)];
          const double e = std::exp(qrow[x] * eta);
          const double gn = old * e;
          raw[static_cast<size_t>(x)] = gn;
          res[static_cast<size_t>(x)] += a_g * (1.0 - e) * old;
          total += gn;
        }
        block_total[static_cast<size_t>(block)] = total;
      });
  double new_total = 0.0;
  for (const double bt : block_total) new_total += bt;
  *update_us = MicrosSince(update_start);

  // Exact per-factor answer refresh — O(|Q|·factor cells), no drift.
  const Clock::time_point refresh_start = Clock::now();
  evaluator_->FactorDotsRaw(gk, raw, &draws_[gk]);
  *eval_us += MicrosSince(refresh_start);

  // Renormalize: only factor g's mass changed, so s_g = 1/T_g restores a
  // mass-1 factor (the other factors already have s_k·T_k = 1, keeping the
  // global mass at n̂). Then every factor's average advances.
  const Clock::time_point normalize_start = Clock::now();
  DPJOIN_CHECK_GT(new_total, 0.0);
  totals_[gk] = new_total;
  current_.set_factor_scale(gk, 1.0 / new_total);
  for (size_t k = 0; k < num_factors; ++k) {
    avg_coeff_[k] += current_.factor_scale(k);
  }
  log_drift_[gk] += std::abs(eta);
  *normalize_us = MicrosSince(normalize_start);
  if (indicator_[chosen] != 0) {
    ++perf->sparse_rounds;
  } else {
    ++perf->dense_rounds;
  }
}

void ProductBacking::Upkeep(int64_t round, int64_t total_rounds,
                            double* eval_us, double* normalize_us) {
  // Per-factor rebase, same trigger as the dense loop. No periodic answer
  // refresh: draws are recomputed exactly on every factor update.
  (void)round;
  (void)total_rounds;
  (void)eval_us;
  const Clock::time_point upkeep_start = Clock::now();
  for (size_t k = 0; k < current_.num_factors(); ++k) {
    if (log_drift_[k] <= options_.factored_rebase_log_limit) continue;
    const double s_fold = current_.factor_scale(k);
    std::vector<double>& raw = *current_.mutable_factor_values(k);
    ParallelFor(0, static_cast<int64_t>(raw.size()),
                ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                  for (int64_t x = lo; x < hi; ++x) {
                    raw[static_cast<size_t>(x)] *= s_fold;
                  }
                });
    for (double& d : draws_[k]) d *= s_fold;
    totals_[k] = 1.0;  // s_fold·T_k by the invariant
    avg_coeff_[k] /= s_fold;
    current_.set_factor_scale(k, 1.0);
    log_drift_[k] = 0.0;
  }
  *normalize_us += MicrosSince(upkeep_start);
}

void ProductBacking::Finish(PmwResult* result) {
  // Line 8, per factor: A_k = (a_k·p_k + R_k)/k is the factor's running
  // average (mass 1 — each of the k summands has mass exactly 1); the
  // release is n̂·Π_k A_k. Clamp the tiny negative fp residue near zero.
  const double inv_k = 1.0 / static_cast<double>(result->rounds);
  for (size_t k = 0; k < current_.num_factors(); ++k) {
    std::vector<double>& raw = *current_.mutable_factor_values(k);
    const std::vector<double>& res = residual_[k];
    const double a = avg_coeff_[k];
    ParallelFor(0, static_cast<int64_t>(raw.size()),
                ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                  for (int64_t x = lo; x < hi; ++x) {
                    raw[static_cast<size_t>(x)] = std::max(
                        0.0, (a * raw[static_cast<size_t>(x)] +
                              res[static_cast<size_t>(x)]) *
                                 inv_k);
                  }
                });
    current_.set_factor_scale(k, 1.0);
  }
  current_.set_scale(n_hat_);
  result->factored_synthetic =
      std::make_shared<const FactoredTensor>(std::move(current_));
  result->evaluator = evaluator_;
}

// Algorithm 2's round skeleton, shared by both backings. Noise draws (EM
// selection + Laplace measurement) happen here in a fixed order, so the
// trajectory depends only on the backing's answers — which the product
// backing reproduces exactly for within-factor workloads.
template <typename Backing>
void RunRounds(const PmwOptions& options,
               const std::vector<double>& answers_instance, Rng& rng,
               PmwResult* result, Backing* backing) {
  std::vector<double> scores(answers_instance.size());
  for (int64_t round = 0; round < result->rounds; ++round) {
    // Lines 4–5: EM selection; answers come from the backing's cache.
    const Clock::time_point eval_start = Clock::now();
    backing->BeginRound();
    for (size_t qi = 0; qi < scores.size(); ++qi) {
      scores[qi] = std::abs(backing->Answer(qi) - answers_instance[qi]) /
                   options.delta_tilde;
    }
    double eval_us = MicrosSince(eval_start);
    const size_t chosen =
        ExponentialMechanism(scores, result->per_round_epsilon, rng);

    // Line 6: noisy measurement.
    const double measurement =
        AddLaplaceNoise(answers_instance[chosen], options.delta_tilde,
                        result->per_round_epsilon, rng);

    // Line 7: the proof needs |q(x)·η| ≤ 1, so η is clamped to [-1, 1].
    const double eta = Clamp(
        (measurement - backing->Answer(chosen)) / (2.0 * backing->n_hat()),
        -1.0, 1.0);

    double update_us = 0.0;
    double normalize_us = 0.0;
    backing->ApplyRound(chosen, eta, &result->perf, &eval_us, &update_us,
                        &normalize_us);

    if (options.record_trace) {
      result->trace.push_back({static_cast<int64_t>(chosen),
                              scores[chosen] * options.delta_tilde,
                              measurement});
    }

    backing->Upkeep(round, result->rounds, &eval_us, &normalize_us);

    result->perf.eval_us.push_back(eval_us);
    result->perf.update_us.push_back(update_us);
    result->perf.normalize_us.push_back(normalize_us);
  }

  backing->Finish(result);  // Line 8.
}

// Lines 1 and 3, shared by both entry points: the noisy total (and its
// ledger share), then the round schedule. Returns true on the degenerate
// n̂ ≤ 0 release — rounds = 0, the full budget recorded as spent, and the
// caller emits an empty release of its backing.
bool PmwPreamble(const Instance& instance, const QueryFamily& family,
                 const PmwOptions& options, double domain_size, Rng& rng,
                 PmwResult* result) {
  const double epsilon = options.params.epsilon;
  const double delta = options.params.delta;
  result->exact_count = JoinCount(instance);

  // Line 1: n̂ = count(I) + TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}.
  if (options.leak_exact_total) {
    result->noisy_total = result->exact_count;
    result->accountant.SpendSequential("pmw/noisy-total(LEAKED)",
                                       PrivacyParams(epsilon / 2, delta / 2));
  } else {
    const TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(
        epsilon / 2, delta / 2, options.delta_tilde);
    result->noisy_total = result->exact_count + tlap.Sample(rng);
    result->accountant.SpendSequential("pmw/noisy-total",
                                       PrivacyParams(epsilon / 2, delta / 2));
  }

  if (result->noisy_total <= 0.0) {
    // count = 0 and the (measure-zero) zero noise draw: nothing to release.
    // The mechanism was still charged the full (ε, δ) — record the unused
    // rounds share so callers summing the ledger see what was spent, and
    // leave rounds/ε′ at their explicit "no rounds ran" values.
    result->rounds = 0;
    result->per_round_epsilon = 0.0;
    result->accountant.SpendSequential("pmw/rounds(degenerate)",
                                       PrivacyParams(epsilon / 2, delta / 2));
    return true;
  }

  // Line 3: round count and per-round ε′.
  result->rounds =
      options.num_rounds > 0
          ? std::min(options.num_rounds, options.max_rounds)
          : PmwTheoryRounds(result->noisy_total, epsilon, delta,
                            options.delta_tilde, domain_size,
                            static_cast<double>(family.TotalCount()),
                            options.max_rounds);
  result->per_round_epsilon =
      options.per_round_epsilon_override > 0.0
          ? options.per_round_epsilon_override
          : PmwPerRoundEpsilon(epsilon, delta, result->rounds);
  return false;
}

}  // namespace

Result<PmwResult> PrivateMultiplicativeWeights(const Instance& instance,
                                               const QueryFamily& family,
                                               const PmwOptions& options,
                                               Rng& rng) {
  if (options.delta_tilde <= 0.0) {
    return Status::InvalidArgument("PMW needs a positive sensitivity bound");
  }
  if (options.params.delta <= 0.0) {
    return Status::InvalidArgument("PMW needs delta > 0");
  }

  // Parallelism only touches data-independent loops (cell updates, tensor
  // contractions); every DP noise draw stays on the caller's single `rng`,
  // so the output is identical for any thread count.
  const ScopedThreads scoped_threads(options.num_threads);

  PmwResult result;
  const MixedRadix shape = ReleaseShape(instance.query());
  if (PmwPreamble(instance, family, options,
                  static_cast<double>(shape.size()), rng, &result)) {
    result.synthetic = DenseTensor(shape);
    return result;
  }

  // q(I) for every query, once (exact values; only noisy views are released).
  const std::vector<double> answers_instance =
      EvaluateAllOnInstance(family, instance);

  if (options.use_factored_loop) {
    DenseBacking backing(family, options, shape, result.noisy_total);
    RunRounds(options, answers_instance, rng, &result, &backing);
  } else {
    RunOracleRounds(family, options, answers_instance, shape, rng, &result);
  }

  // The k rounds of (EM + Laplace) at ε′ each compose (advanced composition,
  // Theorem A.1) into the second (ε/2, δ/2) share.
  result.accountant.SpendSequential(
      "pmw/rounds",
      PrivacyParams(options.params.epsilon / 2, options.params.delta / 2));
  return result;
}

Result<PmwResult> PrivateMultiplicativeWeightsFactored(
    const Instance& instance, const QueryFamily& family,
    const std::vector<std::vector<size_t>>& factor_groups,
    const PmwOptions& options, Rng& rng) {
  if (options.delta_tilde <= 0.0) {
    return Status::InvalidArgument("PMW needs a positive sensitivity bound");
  }
  if (options.params.delta <= 0.0) {
    return Status::InvalidArgument("PMW needs delta > 0");
  }
  if (instance.query().num_relations() != 1) {
    return Status::InvalidArgument(
        "factored PMW supports single-relation releases only");
  }

  const ScopedThreads scoped_threads(options.num_threads);

  PmwResult result;
  // Deliberately NOT ReleaseShape(): the tuple space may be far beyond the
  // dense envelope — that is the whole point of the product backing. Only
  // log|D| enters the round schedule.
  const MixedRadix& shape = instance.query().tuple_space(0);
  if (PmwPreamble(instance, family, options,
                  instance.query().ReleaseDomainSize(), rng, &result)) {
    result.factored_synthetic = std::make_shared<const FactoredTensor>(
        shape, factor_groups, 0.0);
    return result;
  }

  const std::vector<double> answers_instance =
      EvaluateAllOnInstance(family, instance);

  ProductBacking backing(family, options, shape, factor_groups,
                         result.noisy_total);
  RunRounds(options, answers_instance, rng, &result, &backing);

  result.accountant.SpendSequential(
      "pmw/rounds",
      PrivacyParams(options.params.epsilon / 2, options.params.delta / 2));
  return result;
}

}  // namespace dpjoin
