#include "release/pmw.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "dp/exponential_mechanism.h"
#include "dp/laplace.h"
#include "dp/truncated_laplace.h"
#include "relational/join.h"

namespace dpjoin {

int64_t PmwTheoryRounds(double noisy_total, double epsilon, double delta,
                        double delta_tilde, double domain_size,
                        double query_count, int64_t max_rounds) {
  DPJOIN_CHECK_GT(delta_tilde, 0.0);
  const double log_q = std::log(std::max(query_count, 2.0));
  const double k = noisy_total * epsilon * std::sqrt(std::log(domain_size)) /
                   (delta_tilde * log_q * std::sqrt(std::log(1.0 / delta)));
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(k)), 1,
                             max_rounds);
}

namespace {

// F_i(x) ∝ F_{i−1}(x)·exp(q(x)·eta), renormalized to total mass `mass`.
// q(x) = Π_t q_t(x_t) with per-mode value vectors `qvals`.
void MultiplicativeUpdate(DenseTensor* tensor,
                          const std::vector<const double*>& qvals, double eta,
                          double mass) {
  const MixedRadix& shape = tensor->shape();
  std::vector<double>& values = *tensor->mutable_values();
  // Per-cell updates are independent; each block seeds its own odometer at
  // `lo` and writes only its [lo, hi) slice, so the result is bit-identical
  // for any thread count.
  ParallelFor(0, shape.size(), kTensorBlockGrain, [&](int64_t lo, int64_t hi) {
    internal::ForEachProductCell(shape, qvals, lo, hi,
                                 [&](int64_t flat, double q) {
                                   values[static_cast<size_t>(flat)] *=
                                       std::exp(q * eta);
                                 });
  });
  tensor->NormalizeTo(mass);
}

}  // namespace

Result<PmwResult> PrivateMultiplicativeWeights(const Instance& instance,
                                               const QueryFamily& family,
                                               const PmwOptions& options,
                                               Rng& rng) {
  if (options.delta_tilde <= 0.0) {
    return Status::InvalidArgument("PMW needs a positive sensitivity bound");
  }
  const double epsilon = options.params.epsilon;
  const double delta = options.params.delta;
  if (delta <= 0.0) {
    return Status::InvalidArgument("PMW needs delta > 0");
  }

  // Parallelism only touches data-independent loops (cell updates, tensor
  // contractions); every DP noise draw stays on the caller's single `rng`,
  // so the output is identical for any thread count.
  const ScopedThreads scoped_threads(options.num_threads);

  PmwResult result;
  result.exact_count = JoinCount(instance);

  // Line 1: n̂ = count(I) + TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}.
  if (options.leak_exact_total) {
    result.noisy_total = result.exact_count;
    result.accountant.SpendSequential("pmw/noisy-total(LEAKED)",
                                      PrivacyParams(epsilon / 2, delta / 2));
  } else {
    const TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(
        epsilon / 2, delta / 2, options.delta_tilde);
    result.noisy_total = result.exact_count + tlap.Sample(rng);
    result.accountant.SpendSequential("pmw/noisy-total",
                                      PrivacyParams(epsilon / 2, delta / 2));
  }

  const MixedRadix shape = ReleaseShape(instance.query());
  const double domain_size = static_cast<double>(shape.size());
  DenseTensor current(shape);
  DenseTensor average(shape);
  if (result.noisy_total <= 0.0) {
    // count = 0 and the (measure-zero) zero noise draw: nothing to release.
    // The mechanism was still charged the full (ε, δ) — record the unused
    // rounds share so callers summing the ledger see what was spent, and
    // leave rounds/ε′ at their explicit "no rounds ran" values.
    result.rounds = 0;
    result.per_round_epsilon = 0.0;
    result.accountant.SpendSequential("pmw/rounds(degenerate)",
                                      PrivacyParams(epsilon / 2, delta / 2));
    result.synthetic = std::move(current);
    return result;
  }
  current.Fill(result.noisy_total / domain_size);  // Line 2: F_0.

  // Line 3: round count and per-round ε′.
  result.rounds =
      options.num_rounds > 0
          ? std::min(options.num_rounds, options.max_rounds)
          : PmwTheoryRounds(result.noisy_total, epsilon, delta,
                            options.delta_tilde, domain_size,
                            static_cast<double>(family.TotalCount()),
                            options.max_rounds);
  result.per_round_epsilon =
      options.per_round_epsilon_override > 0.0
          ? options.per_round_epsilon_override
          : PmwPerRoundEpsilon(epsilon, delta, result.rounds);

  // q(I) for every query, once (exact values; only noisy views are released).
  const std::vector<double> answers_instance =
      EvaluateAllOnInstance(family, instance);

  std::vector<const double*> qvals(
      static_cast<size_t>(family.num_relations()));
  for (int64_t round = 0; round < result.rounds; ++round) {
    // Lines 4–5: EM selection with score |q(F_{i−1}) − q(I)| / Δ̃.
    const std::vector<double> answers_synthetic =
        EvaluateAllOnTensor(family, current);
    std::vector<double> scores(answers_instance.size());
    for (size_t qi = 0; qi < scores.size(); ++qi) {
      scores[qi] = std::abs(answers_synthetic[qi] - answers_instance[qi]) /
                   options.delta_tilde;
    }
    const size_t chosen =
        ExponentialMechanism(scores, result.per_round_epsilon, rng);

    // Line 6: noisy measurement.
    const double measurement =
        AddLaplaceNoise(answers_instance[chosen], options.delta_tilde,
                        result.per_round_epsilon, rng);

    // Line 7: multiplicative update; the proof needs |q(x)·η| ≤ 1, so η is
    // clamped to [-1, 1].
    const std::vector<int64_t> parts =
        family.Decompose(static_cast<int64_t>(chosen));
    for (size_t i = 0; i < qvals.size(); ++i) {
      qvals[i] = family.table_queries(static_cast<int>(i))
                     [static_cast<size_t>(parts[i])]
                         .values.data();
    }
    const double eta =
        Clamp((measurement - answers_synthetic[chosen]) /
                  (2.0 * result.noisy_total),
              -1.0, 1.0);
    MultiplicativeUpdate(&current, qvals, eta, result.noisy_total);
    average.AddTensor(current);

    if (options.record_trace) {
      result.trace.push_back({static_cast<int64_t>(chosen),
                              scores[chosen] * options.delta_tilde,
                              measurement});
    }
  }

  // The k rounds of (EM + Laplace) at ε′ each compose (advanced composition,
  // Theorem A.1) into the second (ε/2, δ/2) share.
  result.accountant.SpendSequential("pmw/rounds",
                                    PrivacyParams(epsilon / 2, delta / 2));

  average.Scale(1.0 / static_cast<double>(result.rounds));  // Line 8.
  result.synthetic = std::move(average);
  return result;
}

}  // namespace dpjoin
