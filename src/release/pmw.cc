#include "release/pmw.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "dp/exponential_mechanism.h"
#include "dp/laplace.h"
#include "dp/truncated_laplace.h"
#include "query/workload_evaluator.h"
#include "relational/join.h"

namespace dpjoin {

int64_t PmwTheoryRounds(double noisy_total, double epsilon, double delta,
                        double delta_tilde, double domain_size,
                        double query_count, int64_t max_rounds) {
  DPJOIN_CHECK_GT(delta_tilde, 0.0);
  const double log_q = std::log(std::max(query_count, 2.0));
  const double k = noisy_total * epsilon * std::sqrt(std::log(domain_size)) /
                   (delta_tilde * log_q * std::sqrt(std::log(1.0 / delta)));
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(k)), 1,
                             max_rounds);
}

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// F_i(x) ∝ F_{i−1}(x)·exp(q(x)·eta), NOT yet renormalized.
// q(x) = Π_t q_t(x_t) with per-mode value vectors `qvals`.
void ExpUpdate(DenseTensor* tensor, const std::vector<const double*>& qvals,
               double eta) {
  const MixedRadix& shape = tensor->shape();
  std::vector<double>& values = *tensor->mutable_values();
  // Per-cell updates are independent; each block seeds its own odometer at
  // `lo` and writes only its [lo, hi) slice, so the result is bit-identical
  // for any thread count.
  ParallelFor(0, shape.size(), ExecutionContext::TensorGrain(),
              [&](int64_t lo, int64_t hi) {
                internal::ForEachProductCell(
                    shape, qvals, lo, hi, [&](int64_t flat, double q) {
                      values[static_cast<size_t>(flat)] *= std::exp(q * eta);
                    });
              });
}

// The retained straightforward round loop — Algorithm 2 line by line, four
// full-tensor passes per round (all-query evaluation, exp update,
// NormalizeTo, average accumulation). Kept as the oracle the factored loop
// is pinned against (pmw_factored_test, bench speedup baselines).
void RunOracleRounds(const QueryFamily& family, const PmwOptions& options,
                     const std::vector<double>& answers_instance,
                     const MixedRadix& shape, Rng& rng, PmwResult* result) {
  DenseTensor current(shape);
  DenseTensor average(shape);
  current.Fill(result->noisy_total / static_cast<double>(shape.size()));

  std::vector<const double*> qvals(
      static_cast<size_t>(family.num_relations()));
  for (int64_t round = 0; round < result->rounds; ++round) {
    // Lines 4–5: EM selection with score |q(F_{i−1}) − q(I)| / Δ̃.
    const Clock::time_point eval_start = Clock::now();
    const std::vector<double> answers_synthetic =
        EvaluateAllOnTensor(family, current);
    std::vector<double> scores(answers_instance.size());
    for (size_t qi = 0; qi < scores.size(); ++qi) {
      scores[qi] = std::abs(answers_synthetic[qi] - answers_instance[qi]) /
                   options.delta_tilde;
    }
    result->perf.eval_us.push_back(MicrosSince(eval_start));
    const size_t chosen =
        ExponentialMechanism(scores, result->per_round_epsilon, rng);

    // Line 6: noisy measurement.
    const double measurement =
        AddLaplaceNoise(answers_instance[chosen], options.delta_tilde,
                        result->per_round_epsilon, rng);

    // Line 7: multiplicative update; the proof needs |q(x)·η| ≤ 1, so η is
    // clamped to [-1, 1].
    const std::vector<int64_t> parts =
        family.Decompose(static_cast<int64_t>(chosen));
    for (size_t i = 0; i < qvals.size(); ++i) {
      qvals[i] = family.table_queries(static_cast<int>(i))
                     [static_cast<size_t>(parts[i])]
                         .values.data();
    }
    const double eta =
        Clamp((measurement - answers_synthetic[chosen]) /
                  (2.0 * result->noisy_total),
              -1.0, 1.0);
    const Clock::time_point update_start = Clock::now();
    ExpUpdate(&current, qvals, eta);
    result->perf.update_us.push_back(MicrosSince(update_start));
    const Clock::time_point normalize_start = Clock::now();
    current.NormalizeTo(result->noisy_total);
    average.AddTensor(current);
    result->perf.normalize_us.push_back(MicrosSince(normalize_start));

    if (options.record_trace) {
      result->trace.push_back({static_cast<int64_t>(chosen),
                              scores[chosen] * options.delta_tilde,
                              measurement});
    }
  }

  average.Scale(1.0 / static_cast<double>(result->rounds));  // Line 8.
  result->synthetic = std::move(average);
}

// The factored round loop. Representation invariants, with G the RAW cell
// array, s the tensor's deferred scale, and n̂ the noisy total:
//   F_i           = s·G                (the current synthetic dataset)
//   s·T           = n̂                 (T = Σ_x G[x], tracked analytically)
//   Σ_{j≤i} F_j   = a·G + R           (a = Σ_j s_j; R a residual array)
//   answers       = s·rawans          (rawans = all-query answers on G)
//
// When the EM-chosen query is a 0/1 product indicator with support box B,
// exp(q(x)·η) is e^η on B and 1 elsewhere, so the round updates ONLY B:
// one fused pass extracts the old box values (for the incremental answer
// delta), multiplies G by e^η inside B, and folds the average-accumulation
// residual R += a·(1−e^η)·G_old in the same traversal. The new total is
// analytic (T += (e^η−1)·box_mass), so NormalizeTo is the O(1) deferred
// rescale s = n̂/T. Non-indicator queries fall back to ONE fused full-tensor
// pass (exp + residual + total) plus a full answer recomputation — still
// two fewer passes than the oracle. All reductions use fixed-grain blocked
// merges, so results stay bit-identical for any thread count.
void RunFactoredRounds(const QueryFamily& family, const PmwOptions& options,
                       const std::vector<double>& answers_instance,
                       const MixedRadix& shape, Rng& rng, PmwResult* result) {
  const WorkloadEvaluator evaluator(family, shape);
  const double n_hat = result->noisy_total;
  const int64_t cells = shape.size();
  const size_t m = static_cast<size_t>(family.num_relations());

  DenseTensor current(shape);
  current.Fill(n_hat / static_cast<double>(cells));
  std::vector<double>& graw = *current.raw_values();
  std::vector<double> residual(static_cast<size_t>(cells), 0.0);
  double avg_coeff = 0.0;  // a
  double raw_total = n_hat;  // T
  double log_drift = 0.0;  // Σ|η| since the last rebase

  std::vector<double> rawans = evaluator.EvaluateAllRaw(graw);
  std::vector<double> scores(rawans.size());
  std::vector<const double*> qvals(m);

  for (int64_t round = 0; round < result->rounds; ++round) {
    // Lines 4–5: EM selection; answers are s·rawans.
    const Clock::time_point eval_start = Clock::now();
    const double s = current.deferred_scale();
    for (size_t qi = 0; qi < scores.size(); ++qi) {
      scores[qi] =
          std::abs(s * rawans[qi] - answers_instance[qi]) / options.delta_tilde;
    }
    double eval_us = MicrosSince(eval_start);
    const size_t chosen =
        ExponentialMechanism(scores, result->per_round_epsilon, rng);

    // Line 6: noisy measurement.
    const double measurement =
        AddLaplaceNoise(answers_instance[chosen], options.delta_tilde,
                        result->per_round_epsilon, rng);

    // Line 7 (+ the average accumulation of line 8, folded into the same
    // traversal via R).
    const std::vector<int64_t> parts =
        family.Decompose(static_cast<int64_t>(chosen));
    const double eta = Clamp((measurement - s * rawans[chosen]) /
                                 (2.0 * n_hat),
                             -1.0, 1.0);
    const double exp_eta = std::exp(eta);

    double update_us = 0.0;
    double normalize_us = 0.0;
    const bool indicator = evaluator.IsProductIndicator(parts);
    const int64_t box_cells = indicator ? evaluator.BoxCells(parts) : 0;
    if (indicator && (evaluator.IsAllOnes(parts) || box_cells == 0)) {
      // q ≡ 1: the exp update is a uniform e^η rescale that NormalizeTo
      // undoes exactly — F_i = F_{i−1}. q ≡ 0 (empty support): the update
      // itself is the identity. Either way only the average advances.
      const Clock::time_point normalize_start = Clock::now();
      avg_coeff += s;
      ++result->perf.scale_only_rounds;
      normalize_us = MicrosSince(normalize_start);
    } else if (indicator && box_cells * 2 <= cells) {
      // Sparse path: one fused pass over the sub-box B = ×_i support_i.
      const Clock::time_point update_start = Clock::now();
      std::vector<std::vector<int64_t>> offsets(m);
      for (size_t i = 0; i < m; ++i) {
        const auto& support =
            evaluator.info(static_cast<int>(i), parts[i]).support;
        offsets[i].resize(support.size());
        for (size_t t = 0; t < support.size(); ++t) {
          offsets[i][t] = support[t] * shape.stride(i);
        }
      }
      const std::vector<int64_t>& inner = offsets[m - 1];
      const int64_t inner_size = static_cast<int64_t>(inner.size());
      const int64_t rows = box_cells / inner_size;
      // Whole box rows per block; grain fixed by the tensor grain alone, so
      // the decomposition (and the box-mass merge order) never depends on
      // the thread count.
      const int64_t row_grain = std::max<int64_t>(
          1, ExecutionContext::TensorGrain() / inner_size);
      std::vector<double> box_values(static_cast<size_t>(box_cells));
      std::vector<double> block_mass(
          static_cast<size_t>(NumBlocks(0, rows, row_grain)), 0.0);
      const double a = avg_coeff;
      ParallelForBlocks(
          0, rows, row_grain, [&](int64_t block, int64_t lo, int64_t hi) {
            double mass = 0.0;
            for (int64_t r = lo; r < hi; ++r) {
              // Decode the row index into support positions of the outer
              // modes (last outer mode fastest — row-major box order).
              int64_t rem = r;
              int64_t base = 0;
              for (size_t i = m - 1; i-- > 0;) {
                const int64_t b = static_cast<int64_t>(offsets[i].size());
                base += offsets[i][static_cast<size_t>(rem % b)];
                rem /= b;
              }
              double* brow =
                  box_values.data() + r * inner_size;
              for (int64_t t = 0; t < inner_size; ++t) {
                const int64_t flat = base + inner[static_cast<size_t>(t)];
                const double g = graw[static_cast<size_t>(flat)];
                brow[t] = g;
                mass += g;
                graw[static_cast<size_t>(flat)] = g * exp_eta;
                residual[static_cast<size_t>(flat)] +=
                    a * (1.0 - exp_eta) * g;
              }
            }
            block_mass[static_cast<size_t>(block)] = mass;
          });
      double box_mass = 0.0;  // merged in block order: thread-count-free
      for (const double bm : block_mass) box_mass += bm;
      update_us = MicrosSince(update_start);

      const Clock::time_point delta_start = Clock::now();
      const std::vector<double> delta =
          evaluator.EvaluateAllOnBox(parts, box_values);
      for (size_t qi = 0; qi < rawans.size(); ++qi) {
        rawans[qi] += (exp_eta - 1.0) * delta[qi];
      }
      eval_us += MicrosSince(delta_start);

      const Clock::time_point normalize_start = Clock::now();
      raw_total += (exp_eta - 1.0) * box_mass;
      current.NormalizeDeferred(n_hat, raw_total);
      avg_coeff += current.deferred_scale();
      log_drift += std::abs(eta);
      normalize_us = MicrosSince(normalize_start);
      ++result->perf.sparse_rounds;
    } else {
      // Dense fallback (non-indicator query, or a box covering most of the
      // tensor): ONE fused full pass (exp + residual + total)…
      const Clock::time_point update_start = Clock::now();
      for (size_t i = 0; i < m; ++i) {
        qvals[i] = family.table_queries(static_cast<int>(i))
                       [static_cast<size_t>(parts[i])]
                           .values.data();
      }
      const int64_t grain = ExecutionContext::TensorGrain();
      std::vector<double> block_total(
          static_cast<size_t>(NumBlocks(0, cells, grain)), 0.0);
      const double a = avg_coeff;
      ParallelForBlocks(
          0, cells, grain, [&](int64_t block, int64_t lo, int64_t hi) {
            double total = 0.0;
            internal::ForEachProductCell(
                shape, qvals, lo, hi, [&](int64_t flat, double q) {
                  const double g = graw[static_cast<size_t>(flat)];
                  const double e = std::exp(q * eta);
                  const double gn = g * e;
                  graw[static_cast<size_t>(flat)] = gn;
                  residual[static_cast<size_t>(flat)] += a * (1.0 - e) * g;
                  total += gn;
                });
            block_total[static_cast<size_t>(block)] = total;
          });
      double new_total = 0.0;
      for (const double bt : block_total) new_total += bt;
      update_us = MicrosSince(update_start);

      // …plus a full answer refresh (an arbitrary per-cell factor admits no
      // box-local delta).
      const Clock::time_point refresh_start = Clock::now();
      rawans = evaluator.EvaluateAllRaw(graw);
      eval_us += MicrosSince(refresh_start);

      const Clock::time_point normalize_start = Clock::now();
      raw_total = new_total;
      current.NormalizeDeferred(n_hat, raw_total);
      avg_coeff += current.deferred_scale();
      log_drift += std::abs(eta);
      normalize_us = MicrosSince(normalize_start);
      ++result->perf.dense_rounds;
    }

    if (options.record_trace) {
      result->trace.push_back({static_cast<int64_t>(chosen),
                              scores[chosen] * options.delta_tilde,
                              measurement});
    }

    // Drift control. Rebase: fold the deferred scale into storage before
    // box cells (which grow by e^η per hit, never renormalized in raw form)
    // can overflow. Refresh: periodically recompute the incremental answer
    // vector exactly. Both schedules depend only on round index and η —
    // never the thread count.
    const Clock::time_point upkeep_start = Clock::now();
    if (log_drift > options.factored_rebase_log_limit) {
      const double s_fold = current.deferred_scale();
      current.Materialize();
      raw_total = n_hat;  // s_fold·T by the invariant
      for (double& ra : rawans) ra *= s_fold;
      avg_coeff /= s_fold;
      log_drift = 0.0;
    }
    normalize_us += MicrosSince(upkeep_start);
    if (options.factored_refresh_rounds > 0 &&
        (round + 1) % options.factored_refresh_rounds == 0 &&
        round + 1 < result->rounds) {
      const Clock::time_point refresh_start = Clock::now();
      rawans = evaluator.EvaluateAllRaw(graw);
      eval_us += MicrosSince(refresh_start);
    }

    result->perf.eval_us.push_back(eval_us);
    result->perf.update_us.push_back(update_us);
    result->perf.normalize_us.push_back(normalize_us);
  }

  // Line 8: avg F_i = (a·G + R)/k, one fused pass. The exact value is an
  // average of positive tensors; clamp the tiny negative residue fp
  // cancellation can leave near zero.
  DenseTensor synthetic(shape);
  std::vector<double>& out = *synthetic.raw_values();
  const double a = avg_coeff;
  const double inv_k = 1.0 / static_cast<double>(result->rounds);
  ParallelFor(0, cells, ExecutionContext::TensorGrain(),
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  out[static_cast<size_t>(i)] = std::max(
                      0.0, (a * graw[static_cast<size_t>(i)] +
                            residual[static_cast<size_t>(i)]) *
                               inv_k);
                }
              });
  result->synthetic = std::move(synthetic);
}

}  // namespace

Result<PmwResult> PrivateMultiplicativeWeights(const Instance& instance,
                                               const QueryFamily& family,
                                               const PmwOptions& options,
                                               Rng& rng) {
  if (options.delta_tilde <= 0.0) {
    return Status::InvalidArgument("PMW needs a positive sensitivity bound");
  }
  const double epsilon = options.params.epsilon;
  const double delta = options.params.delta;
  if (delta <= 0.0) {
    return Status::InvalidArgument("PMW needs delta > 0");
  }

  // Parallelism only touches data-independent loops (cell updates, tensor
  // contractions); every DP noise draw stays on the caller's single `rng`,
  // so the output is identical for any thread count.
  const ScopedThreads scoped_threads(options.num_threads);

  PmwResult result;
  result.exact_count = JoinCount(instance);

  // Line 1: n̂ = count(I) + TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}.
  if (options.leak_exact_total) {
    result.noisy_total = result.exact_count;
    result.accountant.SpendSequential("pmw/noisy-total(LEAKED)",
                                      PrivacyParams(epsilon / 2, delta / 2));
  } else {
    const TruncatedLaplace tlap = TruncatedLaplace::ForSensitivity(
        epsilon / 2, delta / 2, options.delta_tilde);
    result.noisy_total = result.exact_count + tlap.Sample(rng);
    result.accountant.SpendSequential("pmw/noisy-total",
                                      PrivacyParams(epsilon / 2, delta / 2));
  }

  const MixedRadix shape = ReleaseShape(instance.query());
  const double domain_size = static_cast<double>(shape.size());
  if (result.noisy_total <= 0.0) {
    // count = 0 and the (measure-zero) zero noise draw: nothing to release.
    // The mechanism was still charged the full (ε, δ) — record the unused
    // rounds share so callers summing the ledger see what was spent, and
    // leave rounds/ε′ at their explicit "no rounds ran" values.
    result.rounds = 0;
    result.per_round_epsilon = 0.0;
    result.accountant.SpendSequential("pmw/rounds(degenerate)",
                                      PrivacyParams(epsilon / 2, delta / 2));
    result.synthetic = DenseTensor(shape);
    return result;
  }

  // Line 3: round count and per-round ε′.
  result.rounds =
      options.num_rounds > 0
          ? std::min(options.num_rounds, options.max_rounds)
          : PmwTheoryRounds(result.noisy_total, epsilon, delta,
                            options.delta_tilde, domain_size,
                            static_cast<double>(family.TotalCount()),
                            options.max_rounds);
  result.per_round_epsilon =
      options.per_round_epsilon_override > 0.0
          ? options.per_round_epsilon_override
          : PmwPerRoundEpsilon(epsilon, delta, result.rounds);

  // q(I) for every query, once (exact values; only noisy views are released).
  const std::vector<double> answers_instance =
      EvaluateAllOnInstance(family, instance);

  if (options.use_factored_loop) {
    RunFactoredRounds(family, options, answers_instance, shape, rng, &result);
  } else {
    RunOracleRounds(family, options, answers_instance, shape, rng, &result);
  }

  // The k rounds of (EM + Laplace) at ε′ each compose (advanced composition,
  // Theorem A.1) into the second (ε/2, δ/2) share.
  result.accountant.SpendSequential("pmw/rounds",
                                    PrivacyParams(epsilon / 2, delta / 2));
  return result;
}

}  // namespace dpjoin
