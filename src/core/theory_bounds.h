// Closed-form error expressions from the paper, used by benches to print
// predicted-vs-measured series. All formulas drop the unstated constants of
// the O(·)/Ω̃(·) notation — benches compare SHAPE (scaling, winners,
// crossovers), not absolute values.

#ifndef DPJOIN_CORE_THEORY_BOUNDS_H_
#define DPJOIN_CORE_THEORY_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "dp/privacy_params.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Theorem 1.3 (single table): α = O(√n · f_upper).
double SingleTableUpperBound(double n, double domain_size, double query_count,
                             const PrivacyParams& params);

/// Theorem 1.4 (single table): α = Ω̃(min{n, √n · f_lower}).
double SingleTableLowerBound(double n, double domain_size,
                             const PrivacyParams& params);

/// Theorem A.1 (PMW): α = O((√(count·Δ̃) + Δ̃·√λ)·f_upper).
double PmwUpperBound(double count, double delta_tilde, double domain_size,
                     double query_count, const PrivacyParams& params);

/// Theorem 3.3 (Algorithm 1, two-table):
/// α = O((√(count·(Δ+λ)) + (Δ+λ)·√λ)·f_upper).
double TwoTableUpperBound(double count, double local_sensitivity,
                          double domain_size, double query_count,
                          const PrivacyParams& params);

/// Theorem 3.5 / 1.6 (lower bound): α = Ω̃(min{OUT, √(OUT·Δ)·f_lower}).
double JoinLowerBound(double out, double local_sensitivity, double domain_size,
                      const PrivacyParams& params);

/// Theorem 1.5 (Algorithm 3, multi-table):
/// α = O((√(count·RS) + RS·√λ)·f_upper).
double MultiTableUpperBound(double count, double residual_sensitivity,
                            double domain_size, double query_count,
                            const PrivacyParams& params);

/// Theorem 4.4 (uniformized two-table): given per-bucket join sizes
/// count(I^i_{π*}) for buckets i = 1..ℓ with bucket ceilings γ_i = λ·2^i,
/// α = O((λ^{3/2}(Δ+λ) + Σ_i √(count_i · 2^i·λ)) · f_upper).
double UniformizedTwoTableUpperBound(const std::vector<double>& bucket_counts,
                                     double local_sensitivity,
                                     double domain_size, double query_count,
                                     const PrivacyParams& params);

/// Theorem 4.5 (uniformized lower bound):
/// α = Ω̃(max_i min{OUT_i, √(OUT_i·2^i·λ)·f_lower}).
double UniformizedTwoTableLowerBound(const std::vector<double>& bucket_counts,
                                     double domain_size,
                                     const PrivacyParams& params);

/// Appendix B.3 worst-case closed form, 0/1 relations (case 1):
/// α = O(√(n^{ρ(H)} · max_{E⊊[m]} n^{ρ(H_{E,∂E})})), exponents from the
/// fractional edge-cover LP.
double WorstCaseErrorExponent01(const JoinQuery& query);

/// Appendix B.3 worst-case, Z≥0 relations (case 2): α = O(n^{m−1/2});
/// returns the exponent m − 1/2.
double WorstCaseErrorExponentWeighted(const JoinQuery& query);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_THEORY_BOUNDS_H_
