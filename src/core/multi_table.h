// MultiTable — Algorithm 3 (paper §3.3).
//
//   1. β ← 1/λ                           (λ = (1/ε)·log(1/δ))
//   2. Δ̃ ← RS^β_count(I) · e^{TLap^{τ(ε/2,δ/2,β)}_{2β/ε}}
//      (ln RS^β has global sensitivity ≤ β, so the multiplicative noisy
//       bound is (ε/2, δ/2)-DP and never under-estimates RS)
//   3. return PMW_{ε/2,δ/2,Δ̃}(I)
//
// Guarantees: (ε, δ)-DP (Lemma 3.7); error
// O((√(count·RS^β) + RS^β·√λ)·f_upper) w.p. 1 − 1/poly(|Q|) (Theorem 1.5).

#ifndef DPJOIN_CORE_MULTI_TABLE_H_
#define DPJOIN_CORE_MULTI_TABLE_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/release_result.h"
#include "dp/privacy_params.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Runs Algorithm 3 on a join query with any number of relations.
Result<ReleaseResult> MultiTable(const Instance& instance,
                                 const QueryFamily& family,
                                 const PrivacyParams& params,
                                 const ReleaseOptions& options, Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_MULTI_TABLE_H_
