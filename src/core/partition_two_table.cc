#include "core/partition_two_table.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "dp/truncated_laplace.h"

namespace dpjoin {

namespace {

// Bucket index for a (possibly noisy) degree: max{1, ⌈log2(deg/λ)⌉}.
int BucketOf(double degree, double lambda) {
  if (degree <= lambda) return 1;
  return std::max(1, static_cast<int>(std::ceil(std::log2(degree / lambda))));
}

// Sorted, deduplicated union of the keys of two degree maps. Gives noisy
// bucketing a hash-layout-independent draw order.
std::vector<int64_t> SortedKeyUnion(
    const std::unordered_map<int64_t, int64_t>& deg1,
    const std::unordered_map<int64_t, int64_t>& deg2) {
  std::vector<int64_t> values;
  values.reserve(deg1.size() + deg2.size());
  // dpjoin-audit: allow(determinism) — key collection only; sorted below
  // before any caller draws noise.
  for (const auto& [value, d] : deg1) {
    (void)d;
    values.push_back(value);
  }
  // dpjoin-audit: allow(determinism) — key collection only; sorted below.
  for (const auto& [value, d] : deg2) {
    (void)d;
    values.push_back(value);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// Builds sub-instances from a bucket assignment over shared-attribute codes.
Result<TwoTablePartition> BuildPartition(
    const Instance& instance, AttributeSet shared,
    const std::unordered_map<int64_t, int>& bucket_of, double lambda) {
  // Collect per-bucket instances (ordered by bucket index).
  std::map<int, Instance> instances;
  std::map<int, int64_t> value_counts;
  // dpjoin-audit: allow(determinism) — creates one (keyed) Instance per
  // distinct bucket id; idempotent per bucket, so order-insensitive.
  for (const auto& [value, bucket] : bucket_of) {
    (void)value;
    if (instances.find(bucket) == instances.end()) {
      instances.emplace(bucket, Instance(instance.query_ptr()));
      value_counts.emplace(bucket, 0);
    }
  }
  // dpjoin-audit: allow(determinism) — commutative integer counting.
  for (const auto& [value, bucket] : bucket_of) {
    (void)value;
    ++value_counts[bucket];
  }
  // Tuple distribution, parallelized: the shared-attribute projection and
  // bucket lookup per tuple run on the thread pool into per-block routing
  // lists; the (hash-map) inserts stay serial, in block order. Every tuple
  // code is distinct within its relation, so the routed contents — and the
  // resulting partition — are identical to the serial loop for any thread
  // count and any grain.
  for (int rel = 0; rel < 2; ++rel) {
    const Relation& source = instance.relation(rel);
    std::vector<std::pair<int64_t, int64_t>> entries(
        source.entries().begin(), source.entries().end());
    struct Routed {
      int bucket;
      int64_t code;
      int64_t freq;
    };
    constexpr int64_t kEntryGrain = 1024;
    const int64_t n = static_cast<int64_t>(entries.size());
    std::vector<std::vector<Routed>> per_block(
        static_cast<size_t>(NumBlocks(0, n, kEntryGrain)));
    ParallelForBlocks(
        0, n, kEntryGrain, [&](int64_t block, int64_t lo, int64_t hi) {
          std::vector<Routed>& routed = per_block[static_cast<size_t>(block)];
          routed.reserve(static_cast<size_t>(hi - lo));
          for (int64_t e = lo; e < hi; ++e) {
            const auto& [code, freq] = entries[static_cast<size_t>(e)];
            const int64_t value = source.ProjectCode(code, shared);
            auto it = bucket_of.find(value);
            DPJOIN_CHECK(it != bucket_of.end(),
                         "join value missing from buckets");
            routed.push_back({it->second, code, freq});
          }
        });
    for (const auto& block : per_block) {
      for (const Routed& r : block) {
        instances.at(r.bucket).mutable_relation(rel).SetFrequencyByCode(
            r.code, r.freq);
      }
    }
  }
  TwoTablePartition partition;
  partition.lambda = lambda;
  for (auto& [bucket, sub] : instances) {
    if (sub.InputSize() == 0) continue;  // noise-only bucket: nothing to keep
    partition.buckets.push_back(
        {bucket, std::move(sub), value_counts.at(bucket)});
  }
  return partition;
}

// Parallel Relation::DegreeMap: deg(b) = Σ_{t : t|Y = b} freq(t). The
// per-tuple projections run on the thread pool; each block keeps its
// projected keys in first-occurrence order (with a block-local position map
// for dedup), and the blocks merge serially in block order. The resulting
// insertion sequence into the degree map is exactly the serial scan's
// first-occurrence sequence over the same entries() snapshot, so the map's
// bucket layout — and therefore the ITERATION order that downstream code
// draws bucketing noise in — is identical for every thread count.
std::unordered_map<int64_t, int64_t> ParallelDegreeMap(const Relation& rel,
                                                       AttributeSet y) {
  std::vector<std::pair<int64_t, int64_t>> entries(rel.entries().begin(),
                                                   rel.entries().end());
  struct BlockSums {
    std::vector<std::pair<int64_t, int64_t>> ordered;  // first-occurrence
  };
  constexpr int64_t kEntryGrain = 1024;
  const int64_t n = static_cast<int64_t>(entries.size());
  std::vector<BlockSums> per_block(
      static_cast<size_t>(NumBlocks(0, n, kEntryGrain)));
  ParallelForBlocks(
      0, n, kEntryGrain, [&](int64_t block, int64_t lo, int64_t hi) {
        BlockSums& out = per_block[static_cast<size_t>(block)];
        out.ordered.reserve(static_cast<size_t>(hi - lo));
        std::unordered_map<int64_t, size_t> pos;
        pos.reserve(static_cast<size_t>(hi - lo));
        for (int64_t e = lo; e < hi; ++e) {
          const auto& [code, f] = entries[static_cast<size_t>(e)];
          const int64_t value = rel.ProjectCode(code, y);
          const auto [it, inserted] = pos.emplace(value, out.ordered.size());
          if (inserted) {
            out.ordered.emplace_back(value, f);
          } else {
            out.ordered[it->second].second += f;
          }
        }
      });
  std::unordered_map<int64_t, int64_t> degrees;
  for (const BlockSums& block : per_block) {
    for (const auto& [value, sum] : block.ordered) {
      degrees[value] += sum;
    }
  }
  return degrees;
}

Result<AttributeSet> SharedAttribute(const Instance& instance) {
  if (instance.query().num_relations() != 2) {
    return Status::InvalidArgument(
        "Partition-TwoTable requires a two-relation query");
  }
  const AttributeSet shared = instance.query()
                                  .attributes_of(0)
                                  .Intersect(instance.query().attributes_of(1));
  if (shared.Empty()) {
    return Status::InvalidArgument("two-table query must share an attribute");
  }
  return shared;
}

}  // namespace

Result<TwoTablePartition> PartitionTwoTable(const Instance& instance,
                                            const PrivacyParams& params,
                                            double lambda, Rng& rng) {
  DPJOIN_ASSIGN_OR_RETURN(AttributeSet shared, SharedAttribute(instance));
  if (lambda <= 0.0) lambda = params.Lambda();

  const auto deg1 = ParallelDegreeMap(instance.relation(0), shared);
  const auto deg2 = ParallelDegreeMap(instance.relation(1), shared);

  // Values of dom(B) with no tuple in either relation produce empty
  // restrictions regardless of their noisy bucket, so only realized join
  // values need bucketing (their buckets are still decided by NOISY degrees,
  // preserving the DP argument of Lemma C.1).
  const TruncatedLaplace tlap =
      TruncatedLaplace::ForSensitivity(params.epsilon, params.delta, 1.0);
  // One noise draw per distinct realized join value, in sorted-value order:
  // drawing while iterating the degree hash maps would tie the noise
  // assignment to hash-map layout and break bit-identity across stdlib
  // versions. Materialize the key union, sort, then draw.
  std::vector<int64_t> values = SortedKeyUnion(deg1, deg2);
  std::unordered_map<int64_t, int> bucket_of;
  bucket_of.reserve(values.size());
  for (const int64_t value : values) {
    const auto it1 = deg1.find(value);
    const auto it2 = deg2.find(value);
    const int64_t d1 = it1 == deg1.end() ? 0 : it1->second;
    const int64_t d2 = it2 == deg2.end() ? 0 : it2->second;
    const double noisy =
        static_cast<double>(std::max(d1, d2)) + tlap.Sample(rng);
    bucket_of.emplace(value, BucketOf(noisy, lambda));
  }
  return BuildPartition(instance, shared, bucket_of, lambda);
}

Result<TwoTablePartition> UniformPartitionTwoTable(const Instance& instance,
                                                   double lambda) {
  DPJOIN_ASSIGN_OR_RETURN(AttributeSet shared, SharedAttribute(instance));
  DPJOIN_CHECK_GT(lambda, 0.0);
  const auto deg1 = ParallelDegreeMap(instance.relation(0), shared);
  const auto deg2 = ParallelDegreeMap(instance.relation(1), shared);
  const std::vector<int64_t> values = SortedKeyUnion(deg1, deg2);
  std::unordered_map<int64_t, int> bucket_of;
  bucket_of.reserve(values.size());
  for (const int64_t value : values) {
    const auto it1 = deg1.find(value);
    const auto it2 = deg2.find(value);
    const int64_t d1 = it1 == deg1.end() ? 0 : it1->second;
    const int64_t d2 = it2 == deg2.end() ? 0 : it2->second;
    bucket_of.emplace(value,
                      BucketOf(static_cast<double>(std::max(d1, d2)), lambda));
  }
  return BuildPartition(instance, shared, bucket_of, lambda);
}

}  // namespace dpjoin
