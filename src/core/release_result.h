// Common output type of the release algorithms (Algorithms 1, 3, 4).

#ifndef DPJOIN_CORE_RELEASE_RESULT_H_
#define DPJOIN_CORE_RELEASE_RESULT_H_

#include <cstdint>

#include "dp/composition.h"
#include "query/dense_tensor.h"
#include "release/pmw.h"

namespace dpjoin {

/// Tuning knobs shared by the release algorithms (they forward to PMW).
struct ReleaseOptions {
  /// PMW round override; 0 = theory-driven k.
  int64_t pmw_rounds = 0;
  /// Cap on PMW rounds.
  int64_t pmw_max_rounds = 64;
  /// Record PMW per-round traces.
  bool record_trace = false;
  /// EXPERIMENTAL: forwarded to PmwOptions::per_round_epsilon_override
  /// (see release/pmw.h for the caveat); 0 = paper formula.
  double pmw_epsilon_prime_override = 0.0;
  /// Forwarded to PmwOptions::use_factored_loop; false runs the retained
  /// straightforward round loop (the bench/test oracle).
  bool pmw_use_factored = true;
};

/// A released synthetic dataset F plus the mechanism diagnostics that the
/// paper's analysis talks about. Only `synthetic` is a DP output; the other
/// fields are diagnostics for experiments (they echo privatized values or
/// non-released internals, as labelled).
struct ReleaseResult {
  DenseTensor synthetic;        ///< F : ×_i D_i → R≥0.
  double delta_tilde = 0.0;     ///< Δ̃ passed to PMW (privatized value).
  double noisy_total = 0.0;     ///< n̂ used by PMW (privatized value).
  int64_t pmw_rounds = 0;       ///< k.
  PrivacyAccountant accountant; ///< full budget ledger.
  PmwResult::Perf pmw_perf;     ///< per-round hot-loop timing breakdown.
  /// The WorkloadEvaluator PMW's round loop built (null when the oracle
  /// loop ran, or no PMW rounds ran). Pure post-processing state — a
  /// ServingHandle over the same release reuses it instead of rebuilding
  /// the per-mode query matrices.
  std::shared_ptr<const WorkloadEvaluator> evaluator;
};

}  // namespace dpjoin

#endif  // DPJOIN_CORE_RELEASE_RESULT_H_
