#include "core/released_dataset.h"

#include <ostream>
#include <sstream>

#include "query/evaluation.h"
#include "query/quantize.h"

namespace dpjoin {

ReleasedDataset::ReleasedDataset(std::shared_ptr<const JoinQuery> query,
                                 DenseTensor tensor)
    : query_(std::move(query)), tensor_(std::move(tensor)) {
  DPJOIN_CHECK(query_ != nullptr, "ReleasedDataset needs a query");
  DPJOIN_CHECK_EQ(tensor_.shape().num_digits(),
                  static_cast<size_t>(query_->num_relations()));
}

ReleasedDataset::ReleasedDataset(
    std::shared_ptr<const JoinQuery> query,
    std::shared_ptr<const FactoredTensor> factored)
    : query_(std::move(query)), factored_(std::move(factored)) {
  DPJOIN_CHECK(query_ != nullptr, "ReleasedDataset needs a query");
  DPJOIN_CHECK(factored_ != nullptr, "ReleasedDataset needs a distribution");
  // The factored backing lives on a single relation's attribute space.
  DPJOIN_CHECK_EQ(query_->num_relations(), 1);
  DPJOIN_CHECK(factored_->shape().radices() ==
                   query_->tuple_space(0).radices(),
               "factored release shape does not match relation 0's tuple "
               "space");
}

const DenseTensor& ReleasedDataset::tensor() const {
  DPJOIN_CHECK(!factored_,
               "tensor() on a factored release — use factored()/dense()");
  return tensor_;
}

const SyntheticDistribution& ReleasedDataset::distribution() const {
  if (factored_) return *factored_;
  return tensor_;
}

double ReleasedDataset::Answer(const QueryFamily& family,
                               const std::vector<int64_t>& parts) const {
  if (!factored_) return EvaluateOnTensor(family, parts, tensor_);
  DPJOIN_CHECK_EQ(parts.size(), size_t{1});
  const TableQuery& tq =
      family.table_queries(0)[static_cast<size_t>(parts[0])];
  DPJOIN_CHECK(tq.HasFactors(),
               "factored release needs product-form queries: " + tq.label);
  std::vector<const double*> qvals(tq.factors.size());
  for (size_t d = 0; d < tq.factors.size(); ++d) {
    qvals[d] = tq.factors[d].data();
  }
  return factored_->AnswerProduct(qvals);
}

std::vector<double> ReleasedDataset::AnswerAll(
    const QueryFamily& family) const {
  if (!factored_) return EvaluateAllOnTensor(family, tensor_);
  // Cold path: one product contraction per query, O(|Q|·Σ factor cells).
  // Hot consumers (ServingHandle) use a cached WorkloadEvaluator instead.
  const auto& queries = family.table_queries(0);
  std::vector<double> answers(queries.size());
  std::vector<const double*> qvals;
  for (size_t j = 0; j < queries.size(); ++j) {
    const TableQuery& tq = queries[j];
    DPJOIN_CHECK(tq.HasFactors(),
                 "factored release needs product-form queries: " + tq.label);
    qvals.assign(tq.factors.size(), nullptr);
    for (size_t d = 0; d < tq.factors.size(); ++d) {
      qvals[d] = tq.factors[d].data();
    }
    answers[j] = factored_->AnswerProduct(qvals);
  }
  return answers;
}

ReleasedDataset ReleasedDataset::Quantized(Rng& rng) const {
  DPJOIN_CHECK(!factored_,
               "Quantized() would materialize a factored release's domain "
               "densely; quantization needs the dense backing");
  return ReleasedDataset(query_, QuantizeRandomized(tensor_, rng));
}

std::string ReleasedDataset::CsvHeader() const {
  std::ostringstream oss;
  for (int r = 0; r < query_->num_relations(); ++r) {
    for (int attr : query_->attribute_order_of(r)) {
      oss << "R" << (r + 1) << "." << query_->attribute_name(attr) << ",";
    }
  }
  oss << "mass";
  return oss.str();
}

Status ReleasedDataset::WriteCsv(std::ostream& os) const {
  if (factored_) {
    return Status::FailedPrecondition(
        "WriteCsv would materialize one row per cell of a factored "
        "release's domain (" +
        std::to_string(factored_->DomainCells()) +
        " cells); export marginals via the query surface instead");
  }
  os << CsvHeader() << "\n";
  const MixedRadix& shape = tensor_.shape();
  std::vector<int64_t> rel_codes(shape.num_digits());
  for (int64_t flat = 0; flat < tensor_.size(); ++flat) {
    const double mass = tensor_.At(flat);
    if (mass <= 0.0) continue;
    shape.DecodeInto(flat, &rel_codes);
    for (int r = 0; r < query_->num_relations(); ++r) {
      const MixedRadix& coder = query_->tuple_space(r);
      for (size_t d = 0; d < coder.num_digits(); ++d) {
        os << coder.Digit(rel_codes[static_cast<size_t>(r)], d) << ",";
      }
    }
    os << mass << "\n";
  }
  if (!os.good()) {
    return Status::Internal("CSV stream write failed");
  }
  return Status::OK();
}

}  // namespace dpjoin
