#include "core/released_dataset.h"

#include <ostream>
#include <sstream>

#include "query/evaluation.h"
#include "query/quantize.h"

namespace dpjoin {

ReleasedDataset::ReleasedDataset(std::shared_ptr<const JoinQuery> query,
                                 DenseTensor tensor)
    : query_(std::move(query)), tensor_(std::move(tensor)) {
  DPJOIN_CHECK(query_ != nullptr, "ReleasedDataset needs a query");
  DPJOIN_CHECK_EQ(tensor_.shape().num_digits(),
                  static_cast<size_t>(query_->num_relations()));
}

double ReleasedDataset::Answer(const QueryFamily& family,
                               const std::vector<int64_t>& parts) const {
  return EvaluateOnTensor(family, parts, tensor_);
}

std::vector<double> ReleasedDataset::AnswerAll(
    const QueryFamily& family) const {
  return EvaluateAllOnTensor(family, tensor_);
}

ReleasedDataset ReleasedDataset::Quantized(Rng& rng) const {
  return ReleasedDataset(query_, QuantizeRandomized(tensor_, rng));
}

std::string ReleasedDataset::CsvHeader() const {
  std::ostringstream oss;
  for (int r = 0; r < query_->num_relations(); ++r) {
    for (int attr : query_->attribute_order_of(r)) {
      oss << "R" << (r + 1) << "." << query_->attribute_name(attr) << ",";
    }
  }
  oss << "mass";
  return oss.str();
}

Status ReleasedDataset::WriteCsv(std::ostream& os) const {
  os << CsvHeader() << "\n";
  const MixedRadix& shape = tensor_.shape();
  std::vector<int64_t> rel_codes(shape.num_digits());
  for (int64_t flat = 0; flat < tensor_.size(); ++flat) {
    const double mass = tensor_.At(flat);
    if (mass <= 0.0) continue;
    shape.DecodeInto(flat, &rel_codes);
    for (int r = 0; r < query_->num_relations(); ++r) {
      const MixedRadix& coder = query_->tuple_space(r);
      for (size_t d = 0; d < coder.num_digits(); ++d) {
        os << coder.Digit(rel_codes[static_cast<size_t>(r)], d) << ",";
      }
    }
    os << mass << "\n";
  }
  if (!os.good()) {
    return Status::Internal("CSV stream write failed");
  }
  return Status::OK();
}

}  // namespace dpjoin
