// Uniformize — Algorithm 4 (paper §4).
//
//   1. I ← Partition_{ε/2,δ/2}(I)
//   2. for each sub-instance I′ ∈ I: F(I′) ← release_{ε/2,δ/2}(I′)
//   3. return ∪_{I′} F(I′)
//
// The partition is tuple-disjoint for two-table joins, so step 2 composes in
// parallel across sub-instances and the whole algorithm is (ε, δ)-DP
// (Lemma 4.1). The per-bucket primitive is TwoTable (Algorithm 1) for
// two-table queries — exactly the §4.1 instantiation; the hierarchical
// variant lives in src/hierarchical/uniformize_hierarchical.h.

#ifndef DPJOIN_CORE_UNIFORMIZE_H_
#define DPJOIN_CORE_UNIFORMIZE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/release_result.h"
#include "dp/privacy_params.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Per-bucket diagnostics from a uniformized release.
struct UniformizeBucketInfo {
  int bucket_index = 0;      ///< i with degree ceiling γ_i = λ·2^i.
  double count = 0.0;        ///< count(I^i) (diagnostic; not released).
  double delta_tilde = 0.0;  ///< per-bucket Δ̃.
  int64_t input_size = 0;    ///< Σ tuples in the bucket.
};

/// Output of Uniformize: the released union plus per-bucket diagnostics.
struct UniformizeResult {
  ReleaseResult release;
  std::vector<UniformizeBucketInfo> bucket_info;
};

/// Runs Algorithm 4 on a two-table instance (Partition-TwoTable + TwoTable
/// per bucket).
Result<UniformizeResult> UniformizeTwoTable(const Instance& instance,
                                            const QueryFamily& family,
                                            const PrivacyParams& params,
                                            const ReleaseOptions& options,
                                            Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_UNIFORMIZE_H_
