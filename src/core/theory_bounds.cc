#include "core/theory_bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dpjoin {

double SingleTableUpperBound(double n, double domain_size, double query_count,
                             const PrivacyParams& params) {
  return std::sqrt(std::max(n, 0.0)) *
         FUpper(domain_size, query_count, params.epsilon, params.delta);
}

double SingleTableLowerBound(double n, double domain_size,
                             const PrivacyParams& params) {
  return std::min(n, std::sqrt(std::max(n, 0.0)) *
                         FLower(domain_size, params.epsilon));
}

double PmwUpperBound(double count, double delta_tilde, double domain_size,
                     double query_count, const PrivacyParams& params) {
  const double lambda = params.Lambda();
  return (std::sqrt(std::max(count, 0.0) * delta_tilde) +
          delta_tilde * std::sqrt(lambda)) *
         FUpper(domain_size, query_count, params.epsilon, params.delta);
}

double TwoTableUpperBound(double count, double local_sensitivity,
                          double domain_size, double query_count,
                          const PrivacyParams& params) {
  const double lambda = params.Lambda();
  return PmwUpperBound(count, local_sensitivity + lambda, domain_size,
                       query_count, params);
}

double JoinLowerBound(double out, double local_sensitivity, double domain_size,
                      const PrivacyParams& params) {
  return std::min(out, std::sqrt(out * local_sensitivity) *
                           FLower(domain_size, params.epsilon));
}

double MultiTableUpperBound(double count, double residual_sensitivity,
                            double domain_size, double query_count,
                            const PrivacyParams& params) {
  return PmwUpperBound(count, residual_sensitivity, domain_size, query_count,
                       params);
}

double UniformizedTwoTableUpperBound(const std::vector<double>& bucket_counts,
                                     double local_sensitivity,
                                     double domain_size, double query_count,
                                     const PrivacyParams& params) {
  const double lambda = params.Lambda();
  double sum = std::pow(lambda, 1.5) * (local_sensitivity + lambda);
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const double gamma = std::pow(2.0, static_cast<double>(i + 1)) * lambda;
    sum += std::sqrt(std::max(bucket_counts[i], 0.0) * gamma);
  }
  return sum * FUpper(domain_size, query_count, params.epsilon, params.delta);
}

double UniformizedTwoTableLowerBound(const std::vector<double>& bucket_counts,
                                     double domain_size,
                                     const PrivacyParams& params) {
  const double lambda = params.Lambda();
  double best = 0.0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const double gamma = std::pow(2.0, static_cast<double>(i + 1)) * lambda;
    const double candidate =
        std::min(bucket_counts[i], std::sqrt(bucket_counts[i] * gamma) *
                                       FLower(domain_size, params.epsilon));
    best = std::max(best, candidate);
  }
  return best;
}

namespace {

// Fractional edge cover of a generic hypergraph given as attribute masks per
// edge (empty edges allowed — they cover nothing). Same vertex-enumeration
// LP as JoinQuery::FractionalEdgeCoverNumber.
double FractionalEdgeCoverOfMasks(const std::vector<uint64_t>& edges,
                                  uint64_t vertices) {
  if (vertices == 0) return 0.0;
  const int m = static_cast<int>(edges.size());
  std::vector<int> vertex_ids;
  for (int v = 0; v < 64; ++v) {
    if ((vertices >> v) & 1) vertex_ids.push_back(v);
  }
  const int na = static_cast<int>(vertex_ids.size());
  const int total = na + 2 * m;

  auto row_of = [&](int c, std::vector<double>* row, double* rhs) {
    row->assign(static_cast<size_t>(m), 0.0);
    if (c < na) {
      for (int r = 0; r < m; ++r) {
        if ((edges[static_cast<size_t>(r)] >> vertex_ids[static_cast<size_t>(c)]) & 1) {
          (*row)[static_cast<size_t>(r)] = 1.0;
        }
      }
      *rhs = 1.0;
    } else if (c < na + m) {
      (*row)[static_cast<size_t>(c - na)] = 1.0;
      *rhs = 0.0;
    } else {
      (*row)[static_cast<size_t>(c - na - m)] = 1.0;
      *rhs = 1.0;
    }
  };
  auto feasible = [&](const std::vector<double>& w) {
    for (int r = 0; r < m; ++r) {
      if (w[static_cast<size_t>(r)] < -1e-9 || w[static_cast<size_t>(r)] > 1.0 + 1e-9) return false;
    }
    for (int v : vertex_ids) {
      double cover = 0.0;
      for (int r = 0; r < m; ++r) {
        if ((edges[static_cast<size_t>(r)] >> v) & 1) cover += w[static_cast<size_t>(r)];
      }
      if (cover < 1.0 - 1e-9) return false;
    }
    return true;
  };
  auto solve = [&](std::vector<std::vector<double>> mat, std::vector<double> rhs,
                   std::vector<double>* out) {
    const size_t k = rhs.size();
    for (size_t col = 0; col < k; ++col) {
      size_t pivot = col;
      for (size_t row = col + 1; row < k; ++row) {
        if (std::abs(mat[row][col]) > std::abs(mat[pivot][col])) pivot = row;
      }
      if (std::abs(mat[pivot][col]) < 1e-12) return false;
      std::swap(mat[col], mat[pivot]);
      std::swap(rhs[col], rhs[pivot]);
      for (size_t row = 0; row < k; ++row) {
        if (row == col) continue;
        const double f = mat[row][col] / mat[col][col];
        if (f == 0.0) continue;
        for (size_t c2 = col; c2 < k; ++c2) mat[row][c2] -= f * mat[col][c2];
        rhs[row] -= f * rhs[col];
      }
    }
    out->resize(k);
    for (size_t i = 0; i < k; ++i) (*out)[i] = rhs[i] / mat[i][i];
    return true;
  };

  // A vertex of an infeasible LP doesn't exist; but a vertex uncovered by
  // every edge makes the LP infeasible — callers ensure coverage. W ≡ 1 is
  // then always feasible.
  double best = static_cast<double>(m);
  std::vector<int> idx(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) idx[static_cast<size_t>(i)] = i;
  while (true) {
    std::vector<std::vector<double>> mat(static_cast<size_t>(m));
    std::vector<double> rhs(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      double r = 0.0;
      row_of(idx[static_cast<size_t>(i)], &mat[static_cast<size_t>(i)], &r);
      rhs[static_cast<size_t>(i)] = r;
    }
    std::vector<double> w;
    if (solve(mat, rhs, &w) && feasible(w)) {
      double obj = 0.0;
      for (double v : w) obj += v;
      best = std::min(best, obj);
    }
    int pos = m - 1;
    while (pos >= 0 && idx[static_cast<size_t>(pos)] == total - m + pos) --pos;
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int i = pos + 1; i < m; ++i) {
      idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
    }
  }
  return best;
}

}  // namespace

double WorstCaseErrorExponent01(const JoinQuery& query) {
  const double rho = query.FractionalEdgeCoverNumber();
  // max over E ⊊ [m] of ρ(H_{E,∂E}).
  const int m = query.num_relations();
  double worst_residual = 0.0;
  for (uint64_t bits = 1; bits + 1 < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    const AttributeSet boundary = query.Boundary(set);
    uint64_t vertices = 0;
    std::vector<uint64_t> edges;
    for (int r : set.Elements()) {
      const AttributeSet surviving = query.attributes_of(r).Minus(boundary);
      edges.push_back(surviving.bits());
      vertices |= surviving.bits();
    }
    worst_residual = std::max(
        worst_residual, FractionalEdgeCoverOfMasks(edges, vertices));
  }
  // α = O(√(n^ρ · n^{ρ_res})) ⇒ exponent (ρ + ρ_res)/2.
  return 0.5 * (rho + worst_residual);
}

double WorstCaseErrorExponentWeighted(const JoinQuery& query) {
  return static_cast<double>(query.num_relations()) - 0.5;
}

}  // namespace dpjoin
