#include "core/independent_laplace.h"

#include <cmath>

#include "dp/laplace.h"
#include "dp/truncated_laplace.h"
#include "query/evaluation.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {

namespace {

// Largest ε0 whose k-fold advanced composition stays within ε_total with
// slack δ_slack (bisection; the composed ε is monotone in ε0).
double SolveAdvancedPerRound(double epsilon_total, double delta_slack,
                             int64_t k) {
  double lo = 0.0, hi = epsilon_total;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= 0.0) break;
    const double composed =
        AdvancedComposition(mid, 0.0, k, delta_slack).epsilon;
    if (composed <= epsilon_total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<IndependentLaplaceResult> AnswerIndependently(
    const Instance& instance, const QueryFamily& family,
    const PrivacyParams& params, CompositionRule rule, Rng& rng) {
  if (params.delta <= 0.0) {
    return Status::InvalidArgument("independent answering needs delta > 0");
  }
  const double epsilon = params.epsilon;
  const double delta = params.delta;
  const int64_t num_queries = family.TotalCount();

  IndependentLaplaceResult result;

  // Privatized sensitivity bound, as in Algorithm 3 (an (ε/2, δ/2) spend).
  const double beta = 1.0 / params.Lambda();
  const double residual = ResidualSensitivityValue(instance, beta);
  const TruncatedLaplace tlap =
      TruncatedLaplace::ForSensitivity(epsilon / 2, delta / 2, beta);
  result.delta_tilde = residual * std::exp(tlap.Sample(rng));
  result.accountant.SpendSequential("independent/rs-bound",
                                    PrivacyParams(epsilon / 2, delta / 2));

  // Per-query share of the remaining (ε/2, δ/2).
  switch (rule) {
    case CompositionRule::kBasic:
      result.per_query_epsilon =
          (epsilon / 2) / static_cast<double>(num_queries);
      break;
    case CompositionRule::kAdvanced:
      result.per_query_epsilon =
          SolveAdvancedPerRound(epsilon / 2, delta / 2, num_queries);
      break;
  }
  if (result.per_query_epsilon <= 0.0) {
    return Status::FailedPrecondition(
        "budget too small to answer this many queries");
  }
  result.accountant.SpendSequential(
      "independent/answers (composed)",
      PrivacyParams(epsilon / 2, delta / 2));

  const std::vector<double> exact = EvaluateAllOnInstance(family, instance);
  result.answers.resize(exact.size());
  for (size_t q = 0; q < exact.size(); ++q) {
    result.answers[q] = AddLaplaceNoise(
        exact[q], result.delta_tilde, result.per_query_epsilon, rng);
  }
  return result;
}

}  // namespace dpjoin
