// Partition-TwoTable — Algorithm 5 (paper §4.1).
//
// Buckets the join values b ∈ dom(B) by NOISY maximum degree
//   g̃deg(b) = max{deg_1(b), deg_2(b)} + TLap^{τ(ε,δ,1)}_{1/ε},
// into geometric buckets (γ_{i−1}, γ_i] with γ_i = λ·2^i, and splits the
// instance into tuple-disjoint sub-instances, one per non-empty bucket.
// The partition is (ε, δ)-DP (Lemma C.1: degrees have sensitivity 1 and the
// output is post-processing of truncated-Laplace-noised degrees).

#ifndef DPJOIN_CORE_PARTITION_TWO_TABLE_H_
#define DPJOIN_CORE_PARTITION_TWO_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/privacy_params.h"
#include "relational/instance.h"

namespace dpjoin {

/// One bucket of the partition.
struct TwoTableBucket {
  int bucket_index = 0;       ///< i, with ceiling γ_i = λ·2^i.
  Instance sub_instance;      ///< (R^i_1, R^i_2).
  int64_t num_join_values = 0;///< |B_i| among values with tuples.
};

/// The partition plus diagnostics.
struct TwoTablePartition {
  std::vector<TwoTableBucket> buckets;  ///< non-empty buckets, ascending i.
  double lambda = 0.0;                  ///< bucket scale λ.
};

/// Runs Algorithm 5 with the given (ε, δ) partition budget. `lambda` is the
/// bucket scale; pass 0 to use params.Lambda() (the paper's choice — note
/// the paper's λ refers to the OVERALL algorithm budget, so Uniformize
/// passes its own λ explicitly).
Result<TwoTablePartition> PartitionTwoTable(const Instance& instance,
                                            const PrivacyParams& params,
                                            double lambda, Rng& rng);

/// The deterministic uniform partition π* of Definition 4.3 (buckets by TRUE
/// degree; not DP — analysis/bench baseline for Theorem 4.4).
Result<TwoTablePartition> UniformPartitionTwoTable(const Instance& instance,
                                                   double lambda);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_PARTITION_TWO_TABLE_H_
