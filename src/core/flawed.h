// The two FLAWED join-as-one variants from §3.1, kept as baselines so the
// Figure 1 / Example 3.1 privacy-violation experiments can be reproduced.
// Neither is differentially private — do not use them for actual release.

#ifndef DPJOIN_CORE_FLAWED_H_
#define DPJOIN_CORE_FLAWED_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/release_result.h"
#include "dp/privacy_params.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// §3.1 "A Natural (but Flawed) Idea": compute J = JoinI and run single-table
/// PMW on it directly. The released dataset's total mass equals count(I),
/// which can differ by Δ ≫ 1 between neighbors (Figure 1), so an adversary
/// distinguishes them from the total mass alone.
Result<ReleaseResult> FlawedNaiveJoinAsOne(const Instance& instance,
                                           const QueryFamily& family,
                                           const PrivacyParams& params,
                                           const ReleaseOptions& options,
                                           Rng& rng);

/// §3.1 "Another Natural (but Still Flawed) Idea": release J̃1 via PMW as
/// above, then pad with J̃2 = η uniform dummy tuples,
/// η ~ TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}, and output J̃1 ∪ J̃2. Masks the total
/// but still violates DP (Example 3.1): on the Figure-1 pair the region
/// D′ keeps ~count(I) mass under I yet is empty with constant probability
/// under I′.
Result<ReleaseResult> FlawedPadThenRelease(const Instance& instance,
                                           const QueryFamily& family,
                                           const PrivacyParams& params,
                                           const ReleaseOptions& options,
                                           Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_FLAWED_H_
