#include "core/two_table.h"

#include "dp/truncated_laplace.h"
#include "release/pmw.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {

Result<ReleaseResult> TwoTable(const Instance& instance,
                               const QueryFamily& family,
                               const PrivacyParams& params,
                               const ReleaseOptions& options, Rng& rng) {
  if (instance.query().num_relations() != 2) {
    return Status::InvalidArgument(
        "TwoTable (Algorithm 1) requires a two-relation query");
  }
  const double epsilon = params.epsilon;
  const double delta = params.delta;

  ReleaseResult result;

  // Line 1: Δ̃ = Δ + TLap^{τ(ε/2,δ/2,1)}_{2/ε}; LS_count has global
  // sensitivity 1 for two-table joins, so this is an (ε/2, δ/2)-DP upper
  // bound on Δ (noise is non-negative by construction of TLap).
  const double delta_ls = TwoTableDelta(instance);
  const TruncatedLaplace tlap =
      TruncatedLaplace::ForSensitivity(epsilon / 2, delta / 2, 1.0);
  result.delta_tilde = delta_ls + tlap.Sample(rng);
  result.accountant.SpendSequential("two-table/delta-bound",
                                    PrivacyParams(epsilon / 2, delta / 2));

  // Line 2: PMW_{ε/2,δ/2,Δ̃}(I).
  PmwOptions pmw_options;
  pmw_options.params = PrivacyParams(epsilon / 2, delta / 2);
  pmw_options.delta_tilde = result.delta_tilde;
  pmw_options.num_rounds = options.pmw_rounds;
  pmw_options.max_rounds = options.pmw_max_rounds;
  pmw_options.record_trace = options.record_trace;
  pmw_options.per_round_epsilon_override = options.pmw_epsilon_prime_override;
  pmw_options.use_factored_loop = options.pmw_use_factored;
  DPJOIN_ASSIGN_OR_RETURN(
      PmwResult pmw, PrivateMultiplicativeWeights(instance, family,
                                                  pmw_options, rng));
  result.synthetic = std::move(pmw.synthetic);
  result.noisy_total = pmw.noisy_total;
  result.pmw_rounds = pmw.rounds;
  result.pmw_perf = std::move(pmw.perf);
  // dpjoin-audit: allow(determinism) — PrivacyAccountant::entries() is an
  // insertion-ordered vector; the auditor's name-based resolution collides
  // with the unordered Relation::entries().
  for (const auto& entry : pmw.accountant.entries()) {
    result.accountant.SpendSequential(entry.label, entry.params);
  }
  return result;
}

}  // namespace dpjoin
