// ReleasedDataset: the user-facing handle on a DP release.
//
// Bundles the synthetic tensor with its query/schema context and provides
// the operations a downstream consumer performs: answer queries (all
// post-processing — no further budget), quantize to an integer synthetic
// table (the paper's F : ×D_i → N), and export records as CSV.

#ifndef DPJOIN_CORE_RELEASED_DATASET_H_
#define DPJOIN_CORE_RELEASED_DATASET_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "query/dense_tensor.h"
#include "query/query_family.h"
#include "relational/join_query.h"

namespace dpjoin {

/// A released synthetic dataset plus its schema. All methods are
/// post-processing of the DP output.
class ReleasedDataset {
 public:
  ReleasedDataset(std::shared_ptr<const JoinQuery> query, DenseTensor tensor);

  const JoinQuery& query() const { return *query_; }
  const DenseTensor& tensor() const { return tensor_; }

  /// Total released mass (the privatized n̂).
  double TotalMass() const { return tensor_.TotalMass(); }

  /// q(F) for one product query of `family` (per-table indices `parts`).
  double Answer(const QueryFamily& family,
                const std::vector<int64_t>& parts) const;

  /// q(F) for every query in `family` (indexed by family.index()).
  std::vector<double> AnswerAll(const QueryFamily& family) const;

  /// Integer synthetic dataset via unbiased randomized rounding (the
  /// paper's F : ×D_i → N). Post-processing; no budget consumed.
  ReleasedDataset Quantized(Rng& rng) const;

  /// Writes the dataset as CSV: one row per joint record with positive
  /// (integer or real) mass — columns are one attribute-value list per
  /// relation plus the multiplicity. Quantize first for integer rows.
  Status WriteCsv(std::ostream& os) const;

  /// CSV header matching WriteCsv ("R1.A,R1.B,R2.B,R2.C,mass").
  std::string CsvHeader() const;

 private:
  std::shared_ptr<const JoinQuery> query_;
  DenseTensor tensor_;
};

}  // namespace dpjoin

#endif  // DPJOIN_CORE_RELEASED_DATASET_H_
