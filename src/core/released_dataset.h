// ReleasedDataset: the user-facing handle on a DP release.
//
// Bundles the released synthetic distribution with its query/schema context
// and provides the operations a downstream consumer performs: answer
// queries (all post-processing — no further budget), quantize to an integer
// synthetic table (the paper's F : ×D_i → N), and export records as CSV.
//
// Two backings:
//   * dense — one DenseTensor cell per point of the release domain
//     (every mechanism; the only backing that supports Quantized/WriteCsv);
//   * factored — a product-form FactoredTensor over a single relation's
//     attribute space (PMW beyond the dense envelope). Queries must then be
//     product-form (TableQuery::factors); materializing cells is refused.

#ifndef DPJOIN_CORE_RELEASED_DATASET_H_
#define DPJOIN_CORE_RELEASED_DATASET_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "query/dense_tensor.h"
#include "query/factored_tensor.h"
#include "query/query_family.h"
#include "query/synthetic_distribution.h"
#include "relational/join_query.h"

namespace dpjoin {

/// A released synthetic dataset plus its schema. All methods are
/// post-processing of the DP output.
class ReleasedDataset {
 public:
  /// Dense release over the m-mode release domain (one mode per relation).
  ReleasedDataset(std::shared_ptr<const JoinQuery> query, DenseTensor tensor);

  /// Product-form release over a single relation's attribute tuple space.
  ReleasedDataset(std::shared_ptr<const JoinQuery> query,
                  std::shared_ptr<const FactoredTensor> factored);

  const JoinQuery& query() const { return *query_; }

  /// The dense tensor; CHECK-fails on a factored release (legacy accessor —
  /// callers that handle both backings use dense()/factored()).
  const DenseTensor& tensor() const;

  /// The backing, or null for the other one.
  const DenseTensor* dense() const { return factored_ ? nullptr : &tensor_; }
  const FactoredTensor* factored() const { return factored_.get(); }

  /// The released distribution, backing-agnostic.
  const SyntheticDistribution& distribution() const;

  /// Total released mass (the privatized n̂).
  double TotalMass() const { return distribution().TotalMass(); }

  /// q(F) for one product query of `family` (per-table indices `parts`).
  /// Factored releases require the query to carry its product form.
  double Answer(const QueryFamily& family,
                const std::vector<int64_t>& parts) const;

  /// q(F) for every query in `family` (indexed by family.index()).
  std::vector<double> AnswerAll(const QueryFamily& family) const;

  /// Integer synthetic dataset via unbiased randomized rounding (the
  /// paper's F : ×D_i → N). Post-processing; no budget consumed.
  /// CHECK-fails on a factored release (rounding a product form cell by
  /// cell would materialize the domain).
  ReleasedDataset Quantized(Rng& rng) const;

  /// Writes the dataset as CSV: one row per joint record with positive
  /// (integer or real) mass — columns are one attribute-value list per
  /// relation plus the multiplicity. Quantize first for integer rows.
  /// FailedPrecondition on a factored release.
  Status WriteCsv(std::ostream& os) const;

  /// CSV header matching WriteCsv ("R1.A,R1.B,R2.B,R2.C,mass").
  std::string CsvHeader() const;

 private:
  std::shared_ptr<const JoinQuery> query_;
  DenseTensor tensor_;  // dense backing (empty when factored_ is set)
  std::shared_ptr<const FactoredTensor> factored_;
};

}  // namespace dpjoin

#endif  // DPJOIN_CORE_RELEASED_DATASET_H_
