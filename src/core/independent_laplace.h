// Independent per-query answering — the baseline the paper's introduction
// argues AGAINST: "One might consider answering each query independently
// but the utility would be very low due to the limited privacy budget,
// implied by DP composition rules."
//
// Each query q = (q_1,…,q_m) has |q(I) − q(I′)| ≤ LS_count-style sensitivity
// on neighbors (|q_i| ≤ 1), so a noisy answer needs Δ̃-calibrated Laplace
// noise; answering |Q| queries splits the budget |Q| ways (basic
// composition) or ~√|Q| ways (advanced composition). Either way the error
// grows polynomially in |Q|, while the synthetic-data route pays only
// polylog(|Q|) — bench_intro_composition measures the crossover.

#ifndef DPJOIN_CORE_INDEPENDENT_LAPLACE_H_
#define DPJOIN_CORE_INDEPENDENT_LAPLACE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/composition.h"
#include "dp/privacy_params.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// How the per-query budget is derived from the total.
enum class CompositionRule {
  kBasic,     ///< ε_q = ε / |Q|, δ_q = δ / |Q|
  kAdvanced,  ///< ε_q s.t. advanced composition of |Q| rounds meets (ε, δ)
};

struct IndependentLaplaceResult {
  std::vector<double> answers;     ///< noisy q(I), indexed by family.index()
  double per_query_epsilon = 0.0;  ///< the ε share each answer consumed
  double delta_tilde = 0.0;        ///< the privatized sensitivity bound used
  PrivacyAccountant accountant;
};

/// Answers every query in the family independently under the total (ε, δ):
/// first privatizes a sensitivity bound Δ̃ (as TwoTable/MultiTable do — an
/// (ε/2, δ/2) spend), then adds Lap(Δ̃/ε_q) to each exact answer with ε_q
/// from the chosen composition rule over the remaining (ε/2, δ/2).
Result<IndependentLaplaceResult> AnswerIndependently(
    const Instance& instance, const QueryFamily& family,
    const PrivacyParams& params, CompositionRule rule, Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_INDEPENDENT_LAPLACE_H_
