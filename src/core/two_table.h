// TwoTable — Algorithm 1 (paper §3.1).
//
//   1. Δ̃ ← Δ + TLap^{τ(ε/2,δ/2,1)}_{2/ε}       (Δ = LS_count(I), whose own
//      global sensitivity is 1 for two-table joins)
//   2. return PMW_{ε/2,δ/2,Δ̃}(I)
//
// Guarantees: (ε, δ)-DP (Lemma 3.2); error
// O((√(count·(Δ+λ)) + (Δ+λ)√λ)·f_upper) w.p. 1 − 1/poly(|Q|)
// (Theorem 3.3).

#ifndef DPJOIN_CORE_TWO_TABLE_H_
#define DPJOIN_CORE_TWO_TABLE_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/release_result.h"
#include "dp/privacy_params.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Runs Algorithm 1. Fails with InvalidArgument unless the instance's query
/// has exactly two relations (use MultiTable otherwise — the paper's §3.3
/// explains why this algorithm is unsound for m ≥ 3: LS itself then has
/// large global sensitivity).
Result<ReleaseResult> TwoTable(const Instance& instance,
                               const QueryFamily& family,
                               const PrivacyParams& params,
                               const ReleaseOptions& options, Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_CORE_TWO_TABLE_H_
