#include "core/flawed.h"

#include <cmath>

#include "dp/truncated_laplace.h"
#include "query/evaluation.h"
#include "release/pmw.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {

Result<ReleaseResult> FlawedNaiveJoinAsOne(const Instance& instance,
                                           const QueryFamily& family,
                                           const PrivacyParams& params,
                                           const ReleaseOptions& options,
                                           Rng& rng) {
  // Single-table PMW applied to J as if it were the private input: the
  // total mass is (essentially) count(I) itself. We model the "treat J as a
  // single table" step with sensitivity 1 and an exact total — the leak the
  // paper describes is that Σ_x F(x) tracks count(I).
  PmwOptions pmw_options;
  pmw_options.params = params;
  pmw_options.delta_tilde = 1.0;
  pmw_options.leak_exact_total = true;
  pmw_options.num_rounds = options.pmw_rounds;
  pmw_options.max_rounds = options.pmw_max_rounds;
  pmw_options.record_trace = options.record_trace;
  pmw_options.per_round_epsilon_override = options.pmw_epsilon_prime_override;
  DPJOIN_ASSIGN_OR_RETURN(
      PmwResult pmw,
      PrivateMultiplicativeWeights(instance, family, pmw_options, rng));
  ReleaseResult result;
  result.synthetic = std::move(pmw.synthetic);
  result.delta_tilde = 1.0;
  result.noisy_total = pmw.noisy_total;
  result.pmw_rounds = pmw.rounds;
  result.accountant.SpendSequential("flawed-naive/NOT-DP", params);
  return result;
}

Result<ReleaseResult> FlawedPadThenRelease(const Instance& instance,
                                           const QueryFamily& family,
                                           const PrivacyParams& params,
                                           const ReleaseOptions& options,
                                           Rng& rng) {
  const double epsilon = params.epsilon;
  const double delta = params.delta;
  ReleaseResult result;

  // Step 1: J̃1 = single-table PMW on J (same flawed step as above).
  PmwOptions pmw_options;
  pmw_options.params = PrivacyParams(epsilon / 2, delta / 2);
  pmw_options.delta_tilde = 1.0;
  pmw_options.leak_exact_total = true;
  pmw_options.num_rounds = options.pmw_rounds;
  pmw_options.max_rounds = options.pmw_max_rounds;
  pmw_options.per_round_epsilon_override = options.pmw_epsilon_prime_override;
  DPJOIN_ASSIGN_OR_RETURN(
      PmwResult pmw,
      PrivateMultiplicativeWeights(instance, family, pmw_options, rng));

  // Step 2: Δ̃ = Δ + TLap^{τ(ε/2,δ/2,1)}_{2/ε}.
  const double ls = LocalSensitivity(instance);
  const TruncatedLaplace bound_noise =
      TruncatedLaplace::ForSensitivity(epsilon / 2, delta / 2, 1.0);
  result.delta_tilde = ls + bound_noise.Sample(rng);

  // Step 3: J̃2 = η uniform random records, η ~ TLap^{τ(ε/2,δ/2,Δ̃)}_{2Δ̃/ε}.
  const TruncatedLaplace pad_noise = TruncatedLaplace::ForSensitivity(
      epsilon / 2, delta / 2, result.delta_tilde);
  const int64_t eta = static_cast<int64_t>(std::llround(pad_noise.Sample(rng)));
  DenseTensor combined = std::move(pmw.synthetic);
  for (int64_t s = 0; s < eta; ++s) {
    const int64_t cell = static_cast<int64_t>(
        rng.UniformIndex(static_cast<size_t>(combined.size())));
    combined.Add(cell, 1.0);
  }

  // Step 4: F = J̃1 ∪ J̃2. Padding AFTER releasing J̃1 is the flaw: J̃1's
  // internal mass distribution still reveals count(I) (Example 3.1).
  result.synthetic = std::move(combined);
  result.noisy_total = pmw.noisy_total + static_cast<double>(eta);
  result.pmw_rounds = pmw.rounds;
  result.accountant.SpendSequential("flawed-pad/NOT-DP", params);
  return result;
}

}  // namespace dpjoin
