#include "core/uniformize.h"

#include "core/partition_two_table.h"
#include "core/two_table.h"
#include "query/evaluation.h"
#include "relational/join.h"

namespace dpjoin {

Result<UniformizeResult> UniformizeTwoTable(const Instance& instance,
                                            const QueryFamily& family,
                                            const PrivacyParams& params,
                                            const ReleaseOptions& options,
                                            Rng& rng) {
  const PrivacyParams half = params.Half();

  UniformizeResult result;

  // Line 1: partition with (ε/2, δ/2). The bucket scale is the λ of the
  // OVERALL budget, matching the paper's fixed γ_i = λ·2^i grid.
  DPJOIN_ASSIGN_OR_RETURN(
      TwoTablePartition partition,
      PartitionTwoTable(instance, half, params.Lambda(), rng));
  result.release.accountant.SpendSequential("uniformize/partition", half);

  // Lines 2–3: per-bucket TwoTable at (ε/2, δ/2); buckets are tuple-disjoint
  // so these compose in parallel.
  DenseTensor combined(ReleaseShape(instance.query()));
  std::vector<PrivacyParams> branches;
  for (const TwoTableBucket& bucket : partition.buckets) {
    DPJOIN_ASSIGN_OR_RETURN(
        ReleaseResult sub,
        TwoTable(bucket.sub_instance, family, half, options, rng));
    combined.AddTensor(sub.synthetic);
    branches.push_back(half);

    UniformizeBucketInfo info;
    info.bucket_index = bucket.bucket_index;
    info.count = JoinCount(bucket.sub_instance);
    info.delta_tilde = sub.delta_tilde;
    info.input_size = bucket.sub_instance.InputSize();
    result.bucket_info.push_back(info);
    result.release.delta_tilde =
        std::max(result.release.delta_tilde, sub.delta_tilde);
    result.release.noisy_total += sub.noisy_total;
    result.release.pmw_rounds += sub.pmw_rounds;
  }
  if (!branches.empty()) {
    result.release.accountant.SpendParallel("uniformize/buckets", branches);
  }

  // Line 4: union of the per-bucket synthetic datasets.
  result.release.synthetic = std::move(combined);
  return result;
}

}  // namespace dpjoin
