#include "core/multi_table.h"

#include <cmath>

#include "dp/truncated_laplace.h"
#include "release/pmw.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {

Result<ReleaseResult> MultiTable(const Instance& instance,
                                 const QueryFamily& family,
                                 const PrivacyParams& params,
                                 const ReleaseOptions& options, Rng& rng) {
  const double epsilon = params.epsilon;
  const double delta = params.delta;
  if (delta <= 0.0) {
    return Status::InvalidArgument("MultiTable needs delta > 0");
  }

  ReleaseResult result;

  // Line 1: β = 1/λ.
  const double beta = 1.0 / params.Lambda();

  // Line 2: Δ̃ = RS^β(I)·exp(TLap^{τ(ε/2,δ/2,β)}_{2β/ε}).
  const double residual = ResidualSensitivityValue(instance, beta);
  const TruncatedLaplace tlap =
      TruncatedLaplace::ForSensitivity(epsilon / 2, delta / 2, beta);
  result.delta_tilde = residual * std::exp(tlap.Sample(rng));
  result.accountant.SpendSequential("multi-table/rs-bound",
                                    PrivacyParams(epsilon / 2, delta / 2));

  // Line 3: PMW_{ε/2,δ/2,Δ̃}(I).
  PmwOptions pmw_options;
  pmw_options.params = PrivacyParams(epsilon / 2, delta / 2);
  pmw_options.delta_tilde = result.delta_tilde;
  pmw_options.num_rounds = options.pmw_rounds;
  pmw_options.max_rounds = options.pmw_max_rounds;
  pmw_options.record_trace = options.record_trace;
  pmw_options.per_round_epsilon_override = options.pmw_epsilon_prime_override;
  pmw_options.use_factored_loop = options.pmw_use_factored;
  DPJOIN_ASSIGN_OR_RETURN(
      PmwResult pmw, PrivateMultiplicativeWeights(instance, family,
                                                  pmw_options, rng));
  result.synthetic = std::move(pmw.synthetic);
  result.noisy_total = pmw.noisy_total;
  result.pmw_rounds = pmw.rounds;
  result.pmw_perf = std::move(pmw.perf);
  result.evaluator = std::move(pmw.evaluator);
  // dpjoin-audit: allow(determinism) — PrivacyAccountant::entries() is an
  // insertion-ordered vector; the auditor's name-based resolution collides
  // with the unordered Relation::entries().
  for (const auto& entry : pmw.accountant.entries()) {
    result.accountant.SpendSequential(entry.label, entry.params);
  }
  return result;
}

}  // namespace dpjoin
