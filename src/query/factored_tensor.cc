#include "query/factored_tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "query/evaluation.h"

namespace dpjoin {

namespace {

bool IsAllOnesVector(const double* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (v[i] != 1.0) return false;
  }
  return true;
}

}  // namespace

FactoredTensor::FactoredTensor(MixedRadix shape,
                               std::vector<std::vector<size_t>> groups,
                               double total_mass)
    : shape_(std::move(shape)) {
  const size_t num_modes = shape_.num_digits();
  std::vector<bool> covered(num_modes, false);
  for (const auto& group : groups) {
    DPJOIN_CHECK(!group.empty(), "empty factor group");
    for (size_t i = 0; i < group.size(); ++i) {
      DPJOIN_CHECK(group[i] < num_modes, "factor mode out of range");
      DPJOIN_CHECK(i == 0 || group[i] > group[i - 1],
                   "factor modes must be ascending");
      DPJOIN_CHECK(!covered[group[i]], "factor groups must be disjoint");
      covered[group[i]] = true;
    }
  }
  // Uncovered attributes become uniform singleton factors (snippet-2's
  // ProductDist convention): the product then spans the full domain.
  for (size_t mode = 0; mode < num_modes; ++mode) {
    if (!covered[mode]) groups.push_back({mode});
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });

  mode_factor_.resize(num_modes);
  mode_digit_.resize(num_modes);
  factors_.reserve(groups.size());
  for (size_t k = 0; k < groups.size(); ++k) {
    Factor f;
    f.modes = std::move(groups[k]);
    std::vector<int64_t> radices;
    radices.reserve(f.modes.size());
    for (size_t i = 0; i < f.modes.size(); ++i) {
      mode_factor_[f.modes[i]] = k;
      mode_digit_[f.modes[i]] = i;
      radices.push_back(shape_.radix(f.modes[i]));
    }
    f.shape = MixedRadix(std::move(radices));
    // Uniform with factor mass exactly 1, so the product's mass is carried
    // entirely by the global scale.
    f.values.assign(static_cast<size_t>(f.shape.size()),
                    1.0 / static_cast<double>(f.shape.size()));
    factors_.push_back(std::move(f));
  }
  scale_ = total_mass;
}

double FactoredTensor::TotalMass() const {
  double mass = scale_;
  for (const Factor& f : factors_) {
    double sum = 0.0;
    for (const double v : f.values) sum += v;
    mass *= f.scale * sum;
  }
  return mass;
}

void FactoredTensor::NormalizeTo(double target) {
  const double mass = TotalMass();
  DPJOIN_CHECK_GT(mass, 0.0);
  scale_ *= target / mass;
}

int64_t FactoredTensor::StorageCells() const {
  int64_t cells = 0;
  for (const Factor& f : factors_) {
    cells += static_cast<int64_t>(f.values.size());
  }
  return cells;
}

void FactoredTensor::MultiplicativeUpdate(
    const std::vector<const double*>& qvals, double eta) {
  DPJOIN_CHECK_EQ(qvals.size(), shape_.num_digits());
  // The query's support: modes whose value vector is not identically 1.
  // The product form survives the update only when they share one factor.
  int touched = -1;
  for (size_t mode = 0; mode < qvals.size(); ++mode) {
    if (IsAllOnesVector(qvals[mode], shape_.radix(mode))) continue;
    const int k = static_cast<int>(mode_factor_[mode]);
    DPJOIN_CHECK(touched == -1 || touched == k,
                 "multiplicative update crosses factors — the query's "
                 "support must lie inside a single factor");
    touched = k;
  }
  if (touched < 0) {
    // q ≡ 1: the update is the uniform rescale e^η.
    scale_ *= std::exp(eta);
    return;
  }
  Factor& f = factors_[static_cast<size_t>(touched)];
  std::vector<const double*> fvals(f.modes.size());
  for (size_t i = 0; i < f.modes.size(); ++i) fvals[i] = qvals[f.modes[i]];
  internal::ForEachProductCell(f.shape, fvals, 0, f.shape.size(),
                               [&](int64_t flat, double q) {
                                 f.values[static_cast<size_t>(flat)] *=
                                     std::exp(q * eta);
                               });
}

std::vector<double> FactoredTensor::MarginalOver(
    const std::vector<size_t>& modes) const {
  std::vector<int64_t> radices;
  radices.reserve(modes.size());
  for (size_t i = 0; i < modes.size(); ++i) {
    DPJOIN_CHECK(modes[i] < shape_.num_digits(), "marginal mode out of range");
    DPJOIN_CHECK(i == 0 || modes[i] > modes[i - 1],
                 "marginal modes must be ascending");
    radices.push_back(shape_.radix(modes[i]));
  }
  const MixedRadix out_shape(radices);

  // Per factor: contract away the unselected modes, keeping a table over
  // the factor's selected modes (empty selection -> the factor's mass).
  std::vector<std::vector<size_t>> sel_in_factor(factors_.size());
  for (size_t i = 0; i < modes.size(); ++i) {
    sel_in_factor[mode_factor_[modes[i]]].push_back(digit_in_factor(modes[i]));
  }
  double mass_of_unselected = scale_;
  std::vector<std::vector<double>> tables(factors_.size());
  std::vector<MixedRadix> table_shapes(factors_.size());
  for (size_t k = 0; k < factors_.size(); ++k) {
    const Factor& f = factors_[k];
    if (sel_in_factor[k].empty()) {
      double sum = 0.0;
      for (const double v : f.values) sum += v;
      mass_of_unselected *= f.scale * sum;
      continue;
    }
    std::vector<int64_t> trad;
    for (const size_t d : sel_in_factor[k]) trad.push_back(f.shape.radix(d));
    table_shapes[k] = MixedRadix(std::move(trad));
    tables[k].assign(static_cast<size_t>(table_shapes[k].size()), 0.0);
    Odometer odo(f.shape);
    std::vector<int64_t> digits(sel_in_factor[k].size());
    for (int64_t flat = 0; flat < f.shape.size(); ++flat) {
      for (size_t i = 0; i < sel_in_factor[k].size(); ++i) {
        digits[i] = odo.digit(sel_in_factor[k][i]);
      }
      tables[k][static_cast<size_t>(table_shapes[k].Encode(digits))] +=
          f.scale * f.values[static_cast<size_t>(flat)];
      odo.Advance();
    }
  }

  // Combine: out[y] = mass_of_unselected · Π_{k selected} table_k(y|f_k).
  std::vector<double> out(static_cast<size_t>(out_shape.size()));
  Odometer odo(out_shape);
  std::vector<std::vector<int64_t>> fdigits(factors_.size());
  for (size_t k = 0; k < factors_.size(); ++k) {
    fdigits[k].resize(sel_in_factor[k].size());
  }
  // Position of each selected mode within its factor's selected list.
  std::vector<std::pair<size_t, size_t>> slot(modes.size());
  {
    std::vector<size_t> next(factors_.size(), 0);
    for (size_t i = 0; i < modes.size(); ++i) {
      const size_t k = mode_factor_[modes[i]];
      slot[i] = {k, next[k]++};
    }
  }
  for (int64_t flat = 0; flat < out_shape.size(); ++flat) {
    for (size_t i = 0; i < modes.size(); ++i) {
      fdigits[slot[i].first][slot[i].second] = odo.digit(i);
    }
    double v = mass_of_unselected;
    for (size_t k = 0; k < factors_.size(); ++k) {
      if (sel_in_factor[k].empty()) continue;
      v *= tables[k][static_cast<size_t>(table_shapes[k].Encode(fdigits[k]))];
    }
    out[static_cast<size_t>(flat)] = v;
    odo.Advance();
  }
  return out;
}

double FactoredTensor::AtDigits(const std::vector<int64_t>& digits) const {
  DPJOIN_CHECK_EQ(digits.size(), shape_.num_digits());
  double v = scale_;
  std::vector<int64_t> fdigits;
  for (const Factor& f : factors_) {
    fdigits.resize(f.modes.size());
    for (size_t i = 0; i < f.modes.size(); ++i) {
      fdigits[i] = digits[f.modes[i]];
    }
    v *= f.scale * f.values[static_cast<size_t>(f.shape.Encode(fdigits))];
  }
  return v;
}

double FactoredTensor::AnswerProduct(
    const std::vector<const double*>& qvals) const {
  DPJOIN_CHECK_EQ(qvals.size(), shape_.num_digits());
  double ans = scale_;
  std::vector<const double*> fvals;
  for (const Factor& f : factors_) {
    fvals.assign(f.modes.size(), nullptr);
    for (size_t i = 0; i < f.modes.size(); ++i) fvals[i] = qvals[f.modes[i]];
    double dot = 0.0;
    internal::ForEachProductCell(
        f.shape, fvals, 0, f.shape.size(), [&](int64_t flat, double q) {
          dot += f.values[static_cast<size_t>(flat)] * q;
        });
    ans *= f.scale * dot;
  }
  return ans;
}

DenseTensor FactoredTensor::ToDense() const {
  DPJOIN_CHECK(shape_.size() <= (int64_t{1} << 26),
               "ToDense beyond the dense envelope");
  DenseTensor dense(shape_);
  std::vector<double>& out = *dense.mutable_values();
  Odometer odo(shape_);
  std::vector<int64_t> fdigits;
  for (int64_t flat = 0; flat < shape_.size(); ++flat) {
    double v = scale_;
    for (const Factor& f : factors_) {
      fdigits.resize(f.modes.size());
      for (size_t i = 0; i < f.modes.size(); ++i) {
        fdigits[i] = odo.digit(f.modes[i]);
      }
      v *= f.scale * f.values[static_cast<size_t>(f.shape.Encode(fdigits))];
    }
    out[static_cast<size_t>(flat)] = v;
    odo.Advance();
  }
  return dense;
}

WorkloadFactorization ComputeWorkloadFactorization(const JoinQuery& query,
                                                   const QueryFamily& family) {
  WorkloadFactorization out;
  if (query.num_relations() != 1) {
    out.reason = "factored backing supports single-relation releases only";
    return out;
  }
  const MixedRadix& coder = query.tuple_space(0);
  const size_t num_modes = coder.num_digits();
  out.total_cells = 1.0;
  for (size_t d = 0; d < num_modes; ++d) {
    out.total_cells *= static_cast<double>(coder.radix(d));
  }

  // Union-find over attribute digits; each query cliques its support.
  std::vector<size_t> parent(num_modes);
  std::iota(parent.begin(), parent.end(), size_t{0});
  const auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const TableQuery& tq : family.table_queries(0)) {
    if (!tq.HasFactors()) {
      out.reason = "query '" + tq.label +
                   "' has no per-attribute product form (only dense values)";
      return out;
    }
    size_t first = num_modes;  // sentinel: no support digit seen yet
    for (size_t d = 0; d < num_modes; ++d) {
      if (IsAllOnesVector(tq.factors[d].data(), coder.radix(d))) continue;
      if (first == num_modes) {
        first = d;
      } else {
        parent[find(d)] = find(first);
      }
    }
  }

  // Components, ordered by their smallest digit; untouched digits fall out
  // as singletons automatically.
  std::vector<std::vector<size_t>> groups;
  std::vector<int64_t> root_group(num_modes, num_modes);
  for (size_t d = 0; d < num_modes; ++d) {
    const size_t r = find(d);
    if (root_group[r] == static_cast<int64_t>(num_modes)) {
      root_group[r] = static_cast<int64_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(root_group[r])].push_back(d);
  }

  out.product_form = true;
  out.groups = std::move(groups);
  out.group_cells.reserve(out.groups.size());
  for (const auto& group : out.groups) {
    int64_t cells = 1;
    for (const size_t d : group) cells *= coder.radix(d);
    out.group_cells.push_back(cells);
    out.max_group_cells = std::max(out.max_group_cells, cells);
    out.sum_cells += static_cast<double>(cells);
  }
  return out;
}

}  // namespace dpjoin
