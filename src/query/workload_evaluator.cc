#include "query/workload_evaluator.h"

#include <utility>

#include "common/check.h"
#include "query/evaluation.h"

namespace dpjoin {

WorkloadEvaluator::WorkloadEvaluator(const QueryFamily& family,
                                     const MixedRadix& shape)
    : shape_(shape) {
  const int m = family.num_relations();
  DPJOIN_CHECK_EQ(static_cast<size_t>(m), shape_.num_digits());
  counts_.reserve(static_cast<size_t>(m));
  matrices_.reserve(static_cast<size_t>(m));
  info_.reserve(static_cast<size_t>(m));
  total_queries_ = 1;
  for (int rel = 0; rel < m; ++rel) {
    const auto& queries = family.table_queries(rel);
    DPJOIN_CHECK_EQ(static_cast<int64_t>(queries[0].values.size()),
                    shape_.radix(static_cast<size_t>(rel)));
    counts_.push_back(static_cast<int64_t>(queries.size()));
    total_queries_ *= counts_.back();
    matrices_.push_back(internal::QueryMatrix(family, rel));

    std::vector<QueryInfo> mode_info(queries.size());
    for (size_t j = 0; j < queries.size(); ++j) {
      QueryInfo& qi = mode_info[j];
      qi.is_indicator = true;
      for (size_t d = 0; d < queries[j].values.size(); ++d) {
        const double v = queries[j].values[d];
        if (v == 1.0) {
          qi.support.push_back(static_cast<int64_t>(d));
        } else if (v != 0.0) {
          qi.is_indicator = false;
          break;
        }
      }
      if (!qi.is_indicator) {
        qi.support.clear();
      } else {
        qi.is_all_ones = qi.support.size() == queries[j].values.size();
      }
    }
    info_.push_back(std::move(mode_info));
  }
  DPJOIN_CHECK_EQ(total_queries_, family.TotalCount());
}

namespace {

// Shared last-to-first contraction over an arbitrary starting tensor. The
// first contraction reads `input` in place (no full-tensor copy — the
// intermediate buffers are already |Q_last|/|D_last| the size); only the
// shrunk intermediates are owned.
std::vector<double> ContractAll(const std::vector<double>& input,
                                std::vector<int64_t> shape,
                                const std::vector<const double*>& matrices,
                                const std::vector<int64_t>& counts) {
  std::vector<double> values;
  bool first = true;
  for (size_t mode = shape.size(); mode-- > 0;) {
    std::vector<double> next;
    std::vector<int64_t> next_shape;
    internal::ContractMode(first ? input : values, shape, mode,
                           matrices[mode], counts[mode], &next, &next_shape);
    values = std::move(next);
    shape = std::move(next_shape);
    first = false;
  }
  if (first) values = input;  // zero modes: identity (not reachable today)
  return values;
}

}  // namespace

std::vector<double> WorkloadEvaluator::EvaluateAllRaw(
    const std::vector<double>& values) const {
  DPJOIN_CHECK_EQ(static_cast<int64_t>(values.size()), shape_.size());
  std::vector<const double*> mats(matrices_.size());
  for (size_t i = 0; i < matrices_.size(); ++i) mats[i] = matrices_[i].data();
  std::vector<double> answers =
      ContractAll(values, shape_.radices(), mats, counts_);
  DPJOIN_CHECK_EQ(static_cast<int64_t>(answers.size()), total_queries_);
  return answers;
}

std::vector<double> WorkloadEvaluator::EvaluateAll(
    const DenseTensor& tensor) const {
  std::vector<double> answers = EvaluateAllRaw(tensor.raw_values());
  const double scale = tensor.deferred_scale();
  if (scale != 1.0) {
    for (double& a : answers) a *= scale;
  }
  return answers;
}

bool WorkloadEvaluator::IsProductIndicator(
    const std::vector<int64_t>& parts) const {
  DPJOIN_CHECK_EQ(parts.size(), counts_.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!info(static_cast<int>(i), parts[i]).is_indicator) return false;
  }
  return true;
}

bool WorkloadEvaluator::IsAllOnes(const std::vector<int64_t>& parts) const {
  DPJOIN_CHECK_EQ(parts.size(), counts_.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!info(static_cast<int>(i), parts[i]).is_all_ones) return false;
  }
  return true;
}

int64_t WorkloadEvaluator::BoxCells(const std::vector<int64_t>& parts) const {
  int64_t cells = 1;
  for (size_t i = 0; i < parts.size(); ++i) {
    const QueryInfo& qi = info(static_cast<int>(i), parts[i]);
    DPJOIN_CHECK(qi.is_indicator, "BoxCells on a non-indicator query");
    cells *= static_cast<int64_t>(qi.support.size());
  }
  return cells;
}

std::vector<double> WorkloadEvaluator::EvaluateAllOnBox(
    const std::vector<int64_t>& parts,
    const std::vector<double>& box_values) const {
  DPJOIN_CHECK_EQ(static_cast<int64_t>(box_values.size()), BoxCells(parts));
  const size_t m = counts_.size();
  // Restrict each mode's matrix to its support columns; the box tensor is
  // indexed by support positions, so the restricted contraction computes
  // exactly Σ_{x∈box} values[x]·Π_i q_i(x_i).
  std::vector<std::vector<double>> restricted(m);
  std::vector<const double*> mats(m);
  std::vector<int64_t> box_shape(m);
  for (size_t i = 0; i < m; ++i) {
    const QueryInfo& qi = info(static_cast<int>(i), parts[i]);
    const int64_t dom = shape_.radix(i);
    const int64_t b = static_cast<int64_t>(qi.support.size());
    box_shape[i] = b;
    if (qi.is_all_ones) {
      mats[i] = matrices_[i].data();  // full support: no restriction needed
      continue;
    }
    restricted[i].resize(static_cast<size_t>(counts_[i] * b));
    for (int64_t j = 0; j < counts_[i]; ++j) {
      for (int64_t t = 0; t < b; ++t) {
        restricted[i][static_cast<size_t>(j * b + t)] =
            matrices_[i][static_cast<size_t>(j * dom + qi.support[t])];
      }
    }
    mats[i] = restricted[i].data();
  }
  std::vector<double> answers =
      ContractAll(box_values, box_shape, mats, counts_);
  DPJOIN_CHECK_EQ(static_cast<int64_t>(answers.size()), total_queries_);
  return answers;
}

double WorkloadEvaluator::EvaluationFlops(
    const std::vector<int64_t>& domain_sizes,
    const std::vector<int64_t>& query_counts) {
  DPJOIN_CHECK_EQ(domain_sizes.size(), query_counts.size());
  double flops = 0.0;
  double suffix = 1.0;  // Π_{j>i} |Q_j| — modes contract last-to-first
  for (size_t mode = domain_sizes.size(); mode-- > 0;) {
    double prefix = 1.0;
    for (size_t j = 0; j < mode; ++j) {
      prefix *= static_cast<double>(domain_sizes[j]);
    }
    flops += prefix * static_cast<double>(query_counts[mode]) *
             static_cast<double>(domain_sizes[mode]) * suffix;
    suffix *= static_cast<double>(query_counts[mode]);
  }
  return flops;
}

}  // namespace dpjoin
