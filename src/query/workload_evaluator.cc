#include "query/workload_evaluator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "query/evaluation.h"

namespace dpjoin {

WorkloadEvaluator::WorkloadEvaluator(const QueryFamily& family,
                                     const MixedRadix& shape)
    : shape_(shape) {
  const int m = family.num_relations();
  DPJOIN_CHECK_EQ(static_cast<size_t>(m), shape_.num_digits());
  counts_.reserve(static_cast<size_t>(m));
  matrices_.reserve(static_cast<size_t>(m));
  info_.reserve(static_cast<size_t>(m));
  total_queries_ = 1;
  for (int rel = 0; rel < m; ++rel) {
    const auto& queries = family.table_queries(rel);
    DPJOIN_CHECK_EQ(static_cast<int64_t>(queries[0].values.size()),
                    shape_.radix(static_cast<size_t>(rel)));
    counts_.push_back(static_cast<int64_t>(queries.size()));
    total_queries_ *= counts_.back();
    matrices_.push_back(internal::QueryMatrix(family, rel));

    std::vector<QueryInfo> mode_info(queries.size());
    for (size_t j = 0; j < queries.size(); ++j) {
      QueryInfo& qi = mode_info[j];
      qi.is_indicator = true;
      for (size_t d = 0; d < queries[j].values.size(); ++d) {
        const double v = queries[j].values[d];
        if (v == 1.0) {
          qi.support.push_back(static_cast<int64_t>(d));
        } else if (v != 0.0) {
          qi.is_indicator = false;
          break;
        }
      }
      if (!qi.is_indicator) {
        qi.support.clear();
      } else {
        qi.is_all_ones = qi.support.size() == queries[j].values.size();
      }
    }
    info_.push_back(std::move(mode_info));
  }
  DPJOIN_CHECK_EQ(total_queries_, family.TotalCount());

  // Contraction order: last-to-first, EXCEPT when exactly one mode carries
  // a non-indicator query — then the indicator modes go first so the one
  // expensive dense matrix touches the smallest intermediate (indicator
  // contractions shrink |D_i| to |Q_i| and skip zero coefficients).
  std::vector<size_t> non_indicator_modes;
  for (size_t mode = 0; mode < info_.size(); ++mode) {
    for (const QueryInfo& qi : info_[mode]) {
      if (!qi.is_indicator) {
        non_indicator_modes.push_back(mode);
        break;
      }
    }
  }
  order_.reserve(static_cast<size_t>(m));
  if (m > 1 && non_indicator_modes.size() == 1) {
    for (size_t mode = static_cast<size_t>(m); mode-- > 0;) {
      if (mode != non_indicator_modes[0]) order_.push_back(mode);
    }
    order_.push_back(non_indicator_modes[0]);
  } else {
    for (size_t mode = static_cast<size_t>(m); mode-- > 0;) {
      order_.push_back(mode);
    }
  }
}

WorkloadEvaluator WorkloadEvaluator::ForFactored(
    const QueryFamily& family, const FactoredTensor& backing) {
  DPJOIN_CHECK_EQ(family.num_relations(), 1);
  WorkloadEvaluator ev;
  ev.factored_ = true;
  ev.shape_ = backing.shape();
  const auto& queries = family.table_queries(0);
  ev.total_queries_ = static_cast<int64_t>(queries.size());
  DPJOIN_CHECK_EQ(ev.total_queries_, family.TotalCount());

  const size_t num_modes = ev.shape_.num_digits();
  std::vector<const double*> fvals;
  for (size_t k = 0; k < backing.num_factors(); ++k) {
    const FactoredTensor::Factor& f = backing.factor(k);
    ev.factor_modes_.push_back(f.modes);
    ev.factor_cells_.push_back(f.shape.size());
    const int64_t cells = f.shape.size();
    std::vector<double> matrix(queries.size() * static_cast<size_t>(cells));
    for (size_t j = 0; j < queries.size(); ++j) {
      const TableQuery& tq = queries[j];
      DPJOIN_CHECK(tq.HasFactors(),
                   "query '" + tq.label +
                       "' has no product form — the factored evaluator "
                       "needs per-attribute factors");
      DPJOIN_CHECK_EQ(tq.factors.size(), num_modes);
      fvals.assign(f.modes.size(), nullptr);
      for (size_t i = 0; i < f.modes.size(); ++i) {
        fvals[i] = tq.factors[f.modes[i]].data();
      }
      double* row = matrix.data() + j * static_cast<size_t>(cells);
      internal::ForEachProductCell(
          f.shape, fvals, 0, cells,
          [&](int64_t flat, double q) { row[flat] = q; });
    }
    ev.factor_matrices_.push_back(std::move(matrix));
  }
  return ev;
}

namespace {

// Shared contraction over an arbitrary starting tensor, following the
// evaluator's precomputed mode order. The first contraction reads `input`
// in place (no full-tensor copy — the intermediate buffers are already
// |Q|/|D| the size); only the shrunk intermediates are owned. ContractMode
// preserves mode positions, so any order yields the same answer layout.
std::vector<double> ContractAll(const std::vector<double>& input,
                                std::vector<int64_t> shape,
                                const std::vector<const double*>& matrices,
                                const std::vector<int64_t>& counts,
                                const std::vector<size_t>& order) {
  std::vector<double> values;
  bool first = true;
  for (const size_t mode : order) {
    std::vector<double> next;
    std::vector<int64_t> next_shape;
    internal::ContractMode(first ? input : values, shape, mode,
                           matrices[mode], counts[mode], &next, &next_shape);
    values = std::move(next);
    shape = std::move(next_shape);
    first = false;
  }
  if (first) values = input;  // zero modes: identity (not reachable today)
  return values;
}

}  // namespace

std::vector<double> WorkloadEvaluator::EvaluateAllRaw(
    const std::vector<double>& values) const {
  DPJOIN_CHECK(!factored_, "EvaluateAllRaw on a factored evaluator");
  DPJOIN_CHECK_EQ(static_cast<int64_t>(values.size()), shape_.size());
  std::vector<const double*> mats(matrices_.size());
  for (size_t i = 0; i < matrices_.size(); ++i) mats[i] = matrices_[i].data();
  std::vector<double> answers =
      ContractAll(values, shape_.radices(), mats, counts_, order_);
  DPJOIN_CHECK_EQ(static_cast<int64_t>(answers.size()), total_queries_);
  return answers;
}

std::vector<double> WorkloadEvaluator::EvaluateAll(
    const DenseTensor& tensor) const {
  std::vector<double> answers = EvaluateAllRaw(tensor.raw_values());
  const double scale = tensor.deferred_scale();
  if (scale != 1.0) {
    for (double& a : answers) a *= scale;
  }
  return answers;
}

bool WorkloadEvaluator::IsProductIndicator(
    const std::vector<int64_t>& parts) const {
  DPJOIN_CHECK_EQ(parts.size(), counts_.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!info(static_cast<int>(i), parts[i]).is_indicator) return false;
  }
  return true;
}

bool WorkloadEvaluator::IsAllOnes(const std::vector<int64_t>& parts) const {
  DPJOIN_CHECK_EQ(parts.size(), counts_.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!info(static_cast<int>(i), parts[i]).is_all_ones) return false;
  }
  return true;
}

int64_t WorkloadEvaluator::BoxCells(const std::vector<int64_t>& parts) const {
  int64_t cells = 1;
  for (size_t i = 0; i < parts.size(); ++i) {
    const QueryInfo& qi = info(static_cast<int>(i), parts[i]);
    DPJOIN_CHECK(qi.is_indicator, "BoxCells on a non-indicator query");
    cells *= static_cast<int64_t>(qi.support.size());
  }
  return cells;
}

std::vector<double> WorkloadEvaluator::EvaluateAllOnBox(
    const std::vector<int64_t>& parts,
    const std::vector<double>& box_values) const {
  DPJOIN_CHECK_EQ(static_cast<int64_t>(box_values.size()), BoxCells(parts));
  const size_t m = counts_.size();
  // Restrict each mode's matrix to its support columns; the box tensor is
  // indexed by support positions, so the restricted contraction computes
  // exactly Σ_{x∈box} values[x]·Π_i q_i(x_i).
  std::vector<std::vector<double>> restricted(m);
  std::vector<const double*> mats(m);
  std::vector<int64_t> box_shape(m);
  for (size_t i = 0; i < m; ++i) {
    const QueryInfo& qi = info(static_cast<int>(i), parts[i]);
    const int64_t dom = shape_.radix(i);
    const int64_t b = static_cast<int64_t>(qi.support.size());
    box_shape[i] = b;
    if (qi.is_all_ones) {
      mats[i] = matrices_[i].data();  // full support: no restriction needed
      continue;
    }
    restricted[i].resize(static_cast<size_t>(counts_[i] * b));
    for (int64_t j = 0; j < counts_[i]; ++j) {
      for (int64_t t = 0; t < b; ++t) {
        restricted[i][static_cast<size_t>(j * b + t)] =
            matrices_[i][static_cast<size_t>(j * dom + qi.support[t])];
      }
    }
    mats[i] = restricted[i].data();
  }
  std::vector<double> answers =
      ContractAll(box_values, box_shape, mats, counts_, order_);
  DPJOIN_CHECK_EQ(static_cast<int64_t>(answers.size()), total_queries_);
  return answers;
}

std::vector<double> WorkloadEvaluator::EvaluateAllFactored(
    const FactoredTensor& tensor) const {
  DPJOIN_CHECK(factored_, "EvaluateAllFactored on a dense evaluator");
  DPJOIN_CHECK_EQ(tensor.num_factors(), factor_modes_.size());
  std::vector<double> answers(static_cast<size_t>(total_queries_),
                              tensor.scale());
  std::vector<double> dots(static_cast<size_t>(total_queries_));
  for (size_t k = 0; k < factor_modes_.size(); ++k) {
    FactorDotsRaw(k, tensor.factor(k).values, &dots);
    const double fs = tensor.factor_scale(k);
    for (size_t j = 0; j < answers.size(); ++j) {
      answers[j] *= fs * dots[j];
    }
  }
  return answers;
}

double WorkloadEvaluator::EvaluateOneFactored(
    int64_t flat, const FactoredTensor& tensor) const {
  DPJOIN_CHECK(factored_, "EvaluateOneFactored on a dense evaluator");
  DPJOIN_CHECK(flat >= 0 && flat < total_queries_, "query index out of range");
  double ans = tensor.scale();
  for (size_t k = 0; k < factor_modes_.size(); ++k) {
    const int64_t cells = factor_cells_[k];
    const double* row = factor_matrices_[k].data() +
                        static_cast<size_t>(flat) * static_cast<size_t>(cells);
    const std::vector<double>& raw = tensor.factor(k).values;
    double dot = 0.0;
    for (int64_t x = 0; x < cells; ++x) {
      dot += row[x] * raw[static_cast<size_t>(x)];
    }
    ans *= tensor.factor_scale(k) * dot;
  }
  return ans;
}

void WorkloadEvaluator::FactorDotsRaw(size_t k,
                                      const std::vector<double>& raw_values,
                                      std::vector<double>* dots) const {
  DPJOIN_CHECK(factored_, "FactorDotsRaw on a dense evaluator");
  const int64_t cells = factor_cells_[k];
  DPJOIN_CHECK_EQ(static_cast<int64_t>(raw_values.size()), cells);
  dots->resize(static_cast<size_t>(total_queries_));
  const std::vector<double>& matrix = factor_matrices_[k];
  // Each answer row is written by exactly one block; the grain depends only
  // on the factor size, so results are bit-identical for any thread count.
  constexpr int64_t kGrainFlops = int64_t{1} << 15;
  const int64_t grain = std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(
                                                              cells, 1));
  ParallelFor(0, total_queries_, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      const double* row =
          matrix.data() + static_cast<size_t>(j) * static_cast<size_t>(cells);
      double dot = 0.0;
      for (int64_t x = 0; x < cells; ++x) {
        dot += row[x] * raw_values[static_cast<size_t>(x)];
      }
      (*dots)[static_cast<size_t>(j)] = dot;
    }
  });
}

std::vector<double> WorkloadEvaluator::EvaluateAllOn(
    const SyntheticDistribution& dist) const {
  if (const DenseTensor* dense = dist.AsDense()) {
    return EvaluateAll(*dense);
  }
  const FactoredTensor* factored = dist.AsFactored();
  DPJOIN_CHECK(factored != nullptr, "unknown synthetic-distribution backing");
  return EvaluateAllFactored(*factored);
}

double WorkloadEvaluator::EvaluationFlops(
    const std::vector<int64_t>& domain_sizes,
    const std::vector<int64_t>& query_counts) {
  std::vector<size_t> order;
  order.reserve(domain_sizes.size());
  for (size_t mode = domain_sizes.size(); mode-- > 0;) {
    order.push_back(mode);
  }
  return EvaluationFlops(domain_sizes, query_counts, order);
}

double WorkloadEvaluator::EvaluationFlops(
    const std::vector<int64_t>& domain_sizes,
    const std::vector<int64_t>& query_counts,
    const std::vector<size_t>& order) {
  DPJOIN_CHECK_EQ(domain_sizes.size(), query_counts.size());
  DPJOIN_CHECK_EQ(order.size(), domain_sizes.size());
  // Walk the order, tracking each mode's current dimension (|D| before its
  // contraction, |Q| after).
  std::vector<double> dims(domain_sizes.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    dims[i] = static_cast<double>(domain_sizes[i]);
  }
  double flops = 0.0;
  for (const size_t mode : order) {
    double others = 1.0;
    for (size_t i = 0; i < dims.size(); ++i) {
      if (i != mode) others *= dims[i];
    }
    flops += others * static_cast<double>(query_counts[mode]) * dims[mode];
    dims[mode] = static_cast<double>(query_counts[mode]);
  }
  return flops;
}

double WorkloadEvaluator::FactoredEvaluationFlops(
    const std::vector<int64_t>& factor_cells, int64_t query_count) {
  double flops = 0.0;
  for (const int64_t cells : factor_cells) {
    flops += static_cast<double>(cells);
  }
  flops += static_cast<double>(
      std::max<size_t>(factor_cells.size(), 1) - 1);
  return flops * static_cast<double>(query_count);
}

}  // namespace dpjoin
