// Workload generators: per-table linear query families.
//
// Each generator returns the Q_i list for one relation; MakeProductFamily
// assembles the full Q = ×_i Q_i. Queries take values in [-1, 1] as required
// by the paper's definition. The first query of every generated list is the
// all-ones query q ≡ +1, so the counting join-size query count(I) is always
// a member of the family (paper §1.2 treats count as the special all-ones
// linear query).

#ifndef DPJOIN_QUERY_WORKLOADS_H_
#define DPJOIN_QUERY_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "query/query_family.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Largest relation domain for which generators materialize the dense
/// per-tuple value vector. Product-form generators (ones / point / marginal)
/// always emit per-attribute factors and skip the dense vector beyond this
/// cap, so they stay usable on domains only the factored backing can serve.
/// Matches the planner's dense-materialization envelope.
inline constexpr int64_t kDenseQueryValueCap = int64_t{1} << 26;

/// The all-ones query over relation `rel` (q ≡ +1).
TableQuery MakeAllOnesQuery(const JoinQuery& query, int rel);

/// `count` random ±1 queries (plus the leading all-ones query).
std::vector<TableQuery> MakeRandomSignQueries(const JoinQuery& query, int rel,
                                              int64_t count, Rng& rng);

/// `count` random queries with i.i.d. uniform [-1, 1] values (plus all-ones).
std::vector<TableQuery> MakeRandomUniformQueries(const JoinQuery& query,
                                                 int rel, int64_t count,
                                                 Rng& rng);

/// `count` prefix (threshold) indicators over the relation's tuple-code
/// order: query j is 1 on codes < threshold_j, 0 elsewhere, with thresholds
/// evenly spaced (plus all-ones). These are the geometric/range queries the
/// paper's intro cites as motivating workloads.
std::vector<TableQuery> MakePrefixQueries(const JoinQuery& query, int rel,
                                          int64_t count);

/// `count` random point indicators (1 on one random tuple, 0 elsewhere),
/// plus all-ones.
std::vector<TableQuery> MakePointQueries(const JoinQuery& query, int rel,
                                         int64_t count, Rng& rng);

/// One-attribute marginal indicators: for attribute `attr` of relation
/// `rel`, a query per domain value v with values 1[π_attr t = v] (plus the
/// leading all-ones query). Together the marginals partition the relation's
/// mass, so Σ_v q_v = ones — a classic workload for synthetic-data quality.
std::vector<TableQuery> MakeMarginalQueries(const JoinQuery& query, int rel,
                                            int attr);

/// Marginal indicators over EVERY attribute of the relation: the all-ones
/// query, then for each attribute (ascending) one query per domain value.
/// |Q_rel| = 1 + Σ_a |dom(a)| — the marginal workload regime the factored
/// backing targets (each query touches exactly one attribute).
std::vector<TableQuery> MakeAllAttributeMarginalQueries(const JoinQuery& query,
                                                        int rel);

/// Assembles a product family with the same generator applied to every
/// relation.
enum class WorkloadKind {
  kRandomSign,
  kRandomUniform,
  kPrefix,
  kPoint,
  kMarginal,     ///< per-relation marginals over its lowest-index attribute
  kMarginalAll,  ///< per-relation marginals over every attribute
};

/// Builds Q = ×_i Q_i with `per_table` queries per relation (plus the
/// leading all-ones query each, so |Q_i| = per_table + 1).
QueryFamily MakeWorkload(const JoinQuery& query, WorkloadKind kind,
                         int64_t per_table, Rng& rng);

/// The singleton family {count}: one all-ones query per relation.
QueryFamily MakeCountingFamily(const JoinQuery& query);

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_WORKLOADS_H_
