#include "query/evaluation.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "relational/join.h"

namespace dpjoin {

MixedRadix ReleaseShape(const JoinQuery& query, int64_t max_cells) {
  std::vector<int64_t> radices;
  radices.reserve(static_cast<size_t>(query.num_relations()));
  double cells = 1.0;
  for (int r = 0; r < query.num_relations(); ++r) {
    radices.push_back(query.relation_domain_size(r));
    cells *= static_cast<double>(query.relation_domain_size(r));
  }
  DPJOIN_CHECK(cells <= static_cast<double>(max_cells),
               "release domain too large to materialize densely");
  return MixedRadix(std::move(radices));
}

DenseTensor JoinTensor(const Instance& instance) {
  DenseTensor tensor(ReleaseShape(instance.query()));
  const MixedRadix& shape = tensor.shape();
  // Sharded enumeration with per-block (flat, weight) accumulators: blocks
  // only touch their own list, then the lists merge in block order. Join
  // weights are integers summed exactly in double, so the materialized
  // tensor is bit-identical to the serial enumeration for any thread count
  // (and any merge order).
  std::vector<std::vector<std::pair<int64_t, int64_t>>> per_block;
  EnumerateSubJoinSharded(
      instance, instance.query().all_relations(),
      [&](int64_t num_blocks) {
        per_block.assign(static_cast<size_t>(num_blocks), {});
      },
      [&](int64_t block, const std::vector<int64_t>& rel_codes,
          const std::vector<int64_t>&, int64_t weight) {
        per_block[static_cast<size_t>(block)].emplace_back(
            shape.Encode(rel_codes), weight);
      });
  for (const auto& block : per_block) {
    for (const auto& [flat, weight] : block) {
      tensor.Add(flat, static_cast<double>(weight));
    }
  }
  return tensor;
}

double EvaluateOnTensor(const QueryFamily& family,
                        const std::vector<int64_t>& parts,
                        const DenseTensor& tensor) {
  const MixedRadix& shape = tensor.shape();
  const size_t m = shape.num_digits();
  DPJOIN_CHECK_EQ(parts.size(), m);
  std::vector<const double*> qvals(m);
  for (size_t i = 0; i < m; ++i) {
    qvals[i] = family.table_queries(static_cast<int>(i))
                   [static_cast<size_t>(parts[i])]
                       .values.data();
  }
  // Each block walks its own odometer seeded at `lo`; the fixed grain keeps
  // the summation grouping identical for any thread count.
  return ParallelSum(0, shape.size(), ExecutionContext::TensorGrain(),
                     [&](int64_t lo, int64_t hi) {
                       double sum = 0.0;
                       internal::ForEachProductCell(
                           shape, qvals, lo, hi, [&](int64_t flat, double q) {
                             sum += tensor.At(flat) * q;
                           });
                       return sum;
                     });
}

namespace internal {

void ContractMode(const std::vector<double>& in,
                  const std::vector<int64_t>& shape, size_t mode,
                  const double* matrix, int64_t out_dim,
                  std::vector<double>* out, std::vector<int64_t>* out_shape) {
  int64_t prefix = 1, suffix = 1;
  for (size_t i = 0; i < mode; ++i) prefix *= shape[i];
  for (size_t i = mode + 1; i < shape.size(); ++i) suffix *= shape[i];
  const int64_t dim = shape[mode];
  out->assign(static_cast<size_t>(prefix * out_dim * suffix), 0.0);
  // Each output row (p, j) is written by exactly one block, so the result
  // is bit-identical for any thread count. The grain targets roughly
  // kContractGrainFlops multiply-adds per block.
  constexpr int64_t kContractGrainFlops = int64_t{1} << 15;
  const int64_t row_flops = std::max<int64_t>(dim * suffix, 1);
  const int64_t grain =
      std::max<int64_t>(1, kContractGrainFlops / row_flops);
  ParallelFor(0, prefix * out_dim, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t pj = lo; pj < hi; ++pj) {
      const int64_t p = pj / out_dim;
      const int64_t j = pj % out_dim;
      const double* in_base = in.data() + p * dim * suffix;
      double* out_row = out->data() + p * out_dim * suffix + j * suffix;
      const double* mrow = matrix + j * dim;
      for (int64_t d = 0; d < dim; ++d) {
        const double coef = mrow[d];
        if (coef == 0.0) continue;
        const double* in_row = in_base + d * suffix;
        for (int64_t x = 0; x < suffix; ++x) out_row[x] += coef * in_row[x];
      }
    }
  });
  *out_shape = shape;
  (*out_shape)[mode] = out_dim;
}

std::vector<double> QueryMatrix(const QueryFamily& family, int rel) {
  const auto& queries = family.table_queries(rel);
  DPJOIN_CHECK(!queries.empty(),
               "query family has no queries for relation " +
                   std::to_string(rel));
  const size_t dom = queries[0].values.size();
  std::vector<double> matrix(queries.size() * dom);
  for (size_t j = 0; j < queries.size(); ++j) {
    DPJOIN_CHECK(queries[j].HasDense(),
                 "query '" + queries[j].label +
                     "' has no dense values (product form only) — dense "
                     "evaluation is unavailable for this family");
    for (size_t d = 0; d < dom; ++d) {
      matrix[j * dom + d] = queries[j].values[d];
    }
  }
  return matrix;
}

}  // namespace internal

std::vector<double> EvaluateAllOnTensor(const QueryFamily& family,
                                        const DenseTensor& tensor) {
  const size_t m = tensor.shape().num_digits();
  DPJOIN_CHECK_EQ(static_cast<size_t>(family.num_relations()), m);
  std::vector<double> values = tensor.values();
  std::vector<int64_t> shape = tensor.shape().radices();
  // Contract the last un-contracted mode first; earlier modes keep their
  // data contiguous until their turn.
  for (size_t mode = m; mode-- > 0;) {
    const std::vector<double> matrix =
        internal::QueryMatrix(family, static_cast<int>(mode));
    const int64_t c = family.CountForTable(static_cast<int>(mode));
    std::vector<double> next;
    std::vector<int64_t> next_shape;
    internal::ContractMode(values, shape, mode, matrix.data(), c, &next,
                           &next_shape);
    values = std::move(next);
    shape = std::move(next_shape);
  }
  DPJOIN_CHECK_EQ(static_cast<int64_t>(values.size()), family.TotalCount());
  return values;
}

double EvaluateOnInstance(const QueryFamily& family,
                          const std::vector<int64_t>& parts,
                          const Instance& instance) {
  const size_t m = static_cast<size_t>(instance.num_relations());
  DPJOIN_CHECK_EQ(parts.size(), m);
  std::vector<const TableQuery*> queries(m);
  for (size_t i = 0; i < m; ++i) {
    queries[i] = &family.table_queries(static_cast<int>(i))
                      [static_cast<size_t>(parts[i])];
  }
  double total = 0.0;
  EnumerateSubJoin(instance, instance.query().all_relations(),
                   [&](const std::vector<int64_t>& rel_codes,
                       const std::vector<int64_t>&, int64_t weight) {
                     double value = static_cast<double>(weight);
                     for (size_t i = 0; i < m; ++i) {
                       // Dense when available, per-digit product otherwise
                       // (huge-domain product-form workloads).
                       value *= TableQueryValue(
                           *queries[i],
                           instance.query().tuple_space(static_cast<int>(i)),
                           rel_codes[i]);
                     }
                     total += value;
                   });
  return total;
}

std::vector<double> EvaluateAllOnInstance(const QueryFamily& family,
                                          const Instance& instance) {
  const size_t m = static_cast<size_t>(instance.num_relations());
  const size_t total = static_cast<size_t>(family.TotalCount());
  // Per-combination accumulation: for each joining combination, add
  // weight·Π_i q_{i,j_i}(t_i) into every flat query slot. The recursion
  // prunes subtrees whose partial product is exactly zero. Combinations are
  // sharded over the thread pool by depth-0 root block; each block owns an
  // answer vector (allocated on first visit so empty blocks cost nothing),
  // and the block vectors merge in block order — the floating-point grouping
  // is fixed by the instance alone, so the result is bit-identical for
  // every thread count (the single-thread run uses the same blocked path).
  std::vector<std::vector<double>> per_block;
  EnumerateSubJoinSharded(
      instance, instance.query().all_relations(),
      [&](int64_t num_blocks) {
        per_block.assign(static_cast<size_t>(num_blocks), {});
      },
      [&](int64_t block, const std::vector<int64_t>& rel_codes,
          const std::vector<int64_t>&, int64_t weight) {
        std::vector<double>& answers = per_block[static_cast<size_t>(block)];
        if (answers.empty()) answers.assign(total, 0.0);
        // values_at[i][j] = q_{i,j}(t_i)
        auto recurse = [&](auto&& self, size_t rel, int64_t flat_base,
                           double partial) -> void {
          if (partial == 0.0) return;
          if (rel == m) {
            answers[static_cast<size_t>(flat_base)] += partial;
            return;
          }
          const auto& queries = family.table_queries(static_cast<int>(rel));
          const MixedRadix& coder =
              instance.query().tuple_space(static_cast<int>(rel));
          const int64_t stride = family.index().stride(rel);
          const int64_t code = rel_codes[rel];
          for (size_t j = 0; j < queries.size(); ++j) {
            self(self, rel + 1, flat_base + static_cast<int64_t>(j) * stride,
                 partial * TableQueryValue(queries[j], coder, code));
          }
        };
        recurse(recurse, 0, 0, static_cast<double>(weight));
      });
  std::vector<double> answers(total, 0.0);
  for (const std::vector<double>& block : per_block) {
    if (block.empty()) continue;
    for (size_t q = 0; q < total; ++q) answers[q] += block[q];
  }
  return answers;
}

double MaxAbsDifference(const std::vector<double>& answers_a,
                        const std::vector<double>& answers_b) {
  DPJOIN_CHECK_EQ(answers_a.size(), answers_b.size());
  double worst = 0.0;
  for (size_t i = 0; i < answers_a.size(); ++i) {
    worst = std::max(worst, std::abs(answers_a[i] - answers_b[i]));
  }
  return worst;
}

double WorkloadError(const QueryFamily& family, const Instance& instance,
                     const DenseTensor& synthetic) {
  return MaxAbsDifference(EvaluateAllOnInstance(family, instance),
                          EvaluateAllOnTensor(family, synthetic));
}

}  // namespace dpjoin
