#include "query/dense_tensor.h"

#include "common/check.h"
#include "common/thread_pool.h"

namespace dpjoin {

double DenseTensor::TotalMass() const {
  // Fixed-grain blocked reduction: deterministic for any thread count.
  const double raw =
      ParallelSum(0, static_cast<int64_t>(values_.size()),
                  ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                    double sum = 0.0;
                    for (int64_t i = lo; i < hi; ++i) {
                      sum += values_[static_cast<size_t>(i)];
                    }
                    return sum;
                  });
  return scale_ * raw;
}

void DenseTensor::Fill(double v) {
  DPJOIN_CHECK(scale_ == 1.0, "Fill on a tensor with a deferred scale");
  for (double& cell : values_) cell = v;
}

void DenseTensor::Scale(double f) {
  ParallelFor(0, static_cast<int64_t>(values_.size()),
              ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  values_[static_cast<size_t>(i)] *= f;
                }
              });
}

void DenseTensor::NormalizeTo(double target) {
  const double mass = TotalMass();
  DPJOIN_CHECK_GT(mass, 0.0);
  Scale(target / mass);
}

void DenseTensor::Materialize() {
  if (scale_ == 1.0) return;
  Scale(scale_);
  scale_ = 1.0;
}

void DenseTensor::AddTensor(const DenseTensor& other) {
  DPJOIN_CHECK_EQ(values_.size(), other.values_.size());
  DPJOIN_CHECK(scale_ == 1.0 && other.scale_ == 1.0,
               "AddTensor needs both tensors materialized");
  ParallelFor(0, static_cast<int64_t>(values_.size()),
              ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  values_[static_cast<size_t>(i)] +=
                      other.values_[static_cast<size_t>(i)];
                }
              });
}

}  // namespace dpjoin
