#include "query/dense_tensor.h"

#include "common/check.h"

namespace dpjoin {

double DenseTensor::TotalMass() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

void DenseTensor::Fill(double v) {
  for (double& cell : values_) cell = v;
}

void DenseTensor::Scale(double f) {
  for (double& cell : values_) cell *= f;
}

void DenseTensor::NormalizeTo(double target) {
  const double mass = TotalMass();
  DPJOIN_CHECK_GT(mass, 0.0);
  Scale(target / mass);
}

void DenseTensor::AddTensor(const DenseTensor& other) {
  DPJOIN_CHECK_EQ(values_.size(), other.values_.size());
  for (size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
}

}  // namespace dpjoin
