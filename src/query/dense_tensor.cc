#include "query/dense_tensor.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "query/evaluation.h"

namespace dpjoin {

double DenseTensor::TotalMass() const {
  // Fixed-grain blocked reduction: deterministic for any thread count.
  const double raw =
      ParallelSum(0, static_cast<int64_t>(values_.size()),
                  ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                    double sum = 0.0;
                    for (int64_t i = lo; i < hi; ++i) {
                      sum += values_[static_cast<size_t>(i)];
                    }
                    return sum;
                  });
  return scale_ * raw;
}

void DenseTensor::MultiplicativeUpdate(
    const std::vector<const double*>& qvals, double eta) {
  DPJOIN_CHECK_EQ(qvals.size(), shape_.num_digits());
  // Per-cell updates are independent; each block seeds its own odometer at
  // `lo` and writes only its [lo, hi) slice, so the result is bit-identical
  // for any thread count.
  ParallelFor(0, shape_.size(), ExecutionContext::TensorGrain(),
              [&](int64_t lo, int64_t hi) {
                internal::ForEachProductCell(
                    shape_, qvals, lo, hi, [&](int64_t flat, double q) {
                      values_[static_cast<size_t>(flat)] *= std::exp(q * eta);
                    });
              });
}

std::vector<double> DenseTensor::MarginalOver(
    const std::vector<size_t>& modes) const {
  std::vector<int64_t> radices;
  radices.reserve(modes.size());
  for (size_t i = 0; i < modes.size(); ++i) {
    DPJOIN_CHECK(modes[i] < shape_.num_digits(), "marginal mode out of range");
    DPJOIN_CHECK(i == 0 || modes[i] > modes[i - 1],
                 "marginal modes must be ascending");
    radices.push_back(shape_.radix(modes[i]));
  }
  const MixedRadix out_shape(std::move(radices));
  std::vector<double> out(static_cast<size_t>(out_shape.size()), 0.0);
  Odometer odo(shape_);
  std::vector<int64_t> sel(modes.size());
  for (int64_t flat = 0; flat < shape_.size(); ++flat) {
    for (size_t i = 0; i < modes.size(); ++i) sel[i] = odo.digit(modes[i]);
    out[static_cast<size_t>(out_shape.Encode(sel))] +=
        scale_ * values_[static_cast<size_t>(flat)];
    odo.Advance();
  }
  return out;
}

void DenseTensor::Fill(double v) {
  DPJOIN_CHECK(scale_ == 1.0, "Fill on a tensor with a deferred scale");
  for (double& cell : values_) cell = v;
}

void DenseTensor::Scale(double f) {
  ParallelFor(0, static_cast<int64_t>(values_.size()),
              ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  values_[static_cast<size_t>(i)] *= f;
                }
              });
}

void DenseTensor::NormalizeTo(double target) {
  const double mass = TotalMass();
  DPJOIN_CHECK_GT(mass, 0.0);
  Scale(target / mass);
}

void DenseTensor::Materialize() {
  if (scale_ == 1.0) return;
  Scale(scale_);
  scale_ = 1.0;
}

void DenseTensor::AddTensor(const DenseTensor& other) {
  DPJOIN_CHECK_EQ(values_.size(), other.values_.size());
  DPJOIN_CHECK(scale_ == 1.0 && other.scale_ == 1.0,
               "AddTensor needs both tensors materialized");
  ParallelFor(0, static_cast<int64_t>(values_.size()),
              ExecutionContext::TensorGrain(), [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  values_[static_cast<size_t>(i)] +=
                      other.values_[static_cast<size_t>(i)];
                }
              });
}

}  // namespace dpjoin
