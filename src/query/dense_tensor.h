// Dense non-negative tensor over a mixed-radix shape.
//
// Used for (a) the synthetic dataset F : ×_i D_i → R≥0 that the release
// algorithms output (paper §1.1) and (b) the materialized join function
// JoinI. Mode i of the tensor indexes tuple codes of relation i's domain.

#ifndef DPJOIN_QUERY_DENSE_TENSOR_H_
#define DPJOIN_QUERY_DENSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/mixed_radix.h"

namespace dpjoin {

/// Block size (in cells) for parallel loops over tensor cells. Fixed — never
/// derived from the thread count — so blocked floating-point reductions
/// group identically for any thread count.
inline constexpr int64_t kTensorBlockGrain = 4096;

/// A flat row-major tensor of doubles with a MixedRadix shape.
class DenseTensor {
 public:
  DenseTensor() = default;

  /// Zero tensor of the given shape.
  explicit DenseTensor(MixedRadix shape)
      : shape_(std::move(shape)),
        values_(static_cast<size_t>(shape_.size()), 0.0) {}

  const MixedRadix& shape() const { return shape_; }
  int64_t size() const { return shape_.size(); }

  double At(int64_t flat) const {
    return values_[static_cast<size_t>(flat)];
  }
  void Set(int64_t flat, double v) {
    values_[static_cast<size_t>(flat)] = v;
  }
  void Add(int64_t flat, double v) {
    values_[static_cast<size_t>(flat)] += v;
  }

  double AtDigits(const std::vector<int64_t>& digits) const {
    return At(shape_.Encode(digits));
  }

  /// Σ_x T(x).
  double TotalMass() const;

  /// Sets every cell to `v`.
  void Fill(double v);

  /// Multiplies every cell by `f`.
  void Scale(double f);

  /// Rescales so TotalMass() == target (no-op target on an all-zero tensor
  /// is a programmer error).
  void NormalizeTo(double target);

  /// Element-wise sum with a same-shape tensor (dataset union — the ∪ of
  /// Algorithm 4 over a shared domain is frequency addition).
  void AddTensor(const DenseTensor& other);

  const std::vector<double>& values() const { return values_; }
  std::vector<double>* mutable_values() { return &values_; }

 private:
  MixedRadix shape_;
  std::vector<double> values_;
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_DENSE_TENSOR_H_
