// Dense non-negative tensor over a mixed-radix shape.
//
// Used for (a) the synthetic dataset F : ×_i D_i → R≥0 that the release
// algorithms output (paper §1.1) and (b) the materialized join function
// JoinI. Mode i of the tensor indexes tuple codes of relation i's domain.
//
// The tensor carries a LAZY SCALAR MULTIPLIER (`deferred_scale`): the
// logical cell value is scale·raw. PMW's factored round loop rescales the
// whole tensor every round (NormalizeTo), which the lazy multiplier turns
// into an O(1) update instead of a full-tensor pass; `Materialize()` folds
// the multiplier back into storage. Raw-storage accessors (`values`,
// `mutable_values`, `Set`, `Add`, `Fill`, `AddTensor`) CHECK that the scale
// is 1 so no caller can silently mix raw and logical views.

#ifndef DPJOIN_QUERY_DENSE_TENSOR_H_
#define DPJOIN_QUERY_DENSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/mixed_radix.h"
#include "query/synthetic_distribution.h"

namespace dpjoin {

/// A flat row-major tensor of doubles with a MixedRadix shape and a lazy
/// scalar multiplier. The fully-materialized SyntheticDistribution backing.
class DenseTensor : public SyntheticDistribution {
 public:
  DenseTensor() = default;

  /// Zero tensor of the given shape.
  explicit DenseTensor(MixedRadix shape)
      : shape_(std::move(shape)),
        values_(static_cast<size_t>(shape_.size()), 0.0) {}

  DenseTensor(const DenseTensor&) = default;
  DenseTensor(DenseTensor&&) = default;
  DenseTensor& operator=(const DenseTensor&) = default;
  DenseTensor& operator=(DenseTensor&&) = default;

  const MixedRadix& shape() const override { return shape_; }
  int64_t size() const { return shape_.size(); }

  /// Logical cell value scale·raw.
  double At(int64_t flat) const {
    return scale_ * values_[static_cast<size_t>(flat)];
  }
  void Set(int64_t flat, double v) {
    DPJOIN_CHECK(scale_ == 1.0, "Set on a tensor with a deferred scale");
    values_[static_cast<size_t>(flat)] = v;
  }
  void Add(int64_t flat, double v) {
    DPJOIN_CHECK(scale_ == 1.0, "Add on a tensor with a deferred scale");
    values_[static_cast<size_t>(flat)] += v;
  }

  double AtDigits(const std::vector<int64_t>& digits) const {
    return At(shape_.Encode(digits));
  }

  /// Σ_x T(x), including the deferred scale.
  double TotalMass() const override;

  /// |domain| as a double.
  double DomainCells() const override {
    return static_cast<double>(shape_.size());
  }

  /// Dense storage materializes every cell.
  int64_t StorageCells() const override { return shape_.size(); }

  /// T(x) *= exp(q(x)·eta) with q(x) = Π_i qvals[i][x_i]; NOT renormalized.
  /// One blocked parallel pass, bit-identical for any thread count.
  void MultiplicativeUpdate(const std::vector<const double*>& qvals,
                            double eta) override;

  /// Marginal onto ascending mode subset `modes` (serial; cold path).
  std::vector<double> MarginalOver(
      const std::vector<size_t>& modes) const override;

  const DenseTensor* AsDense() const override { return this; }

  /// Sets every cell to `v`.
  void Fill(double v);

  /// Multiplies every cell by `f` eagerly (one pass over storage).
  void Scale(double f);

  /// Rescales so TotalMass() == target (no-op target on an all-zero tensor
  /// is a programmer error). Eager — use NormalizeDeferred when the current
  /// mass is already known analytically.
  void NormalizeTo(double target) override;

  /// The lazy multiplier applied by At()/TotalMass(); 1 unless a deferred
  /// rescale is pending.
  double deferred_scale() const { return scale_; }

  /// Multiplies every logical cell by `f` in O(1) (scale_ *= f).
  void ScaleDeferred(double f) { scale_ *= f; }

  /// O(1) normalize for callers that track the total mass analytically:
  /// sets the deferred scale so TotalMass() == target, given that the RAW
  /// storage currently sums to `raw_mass` (CHECKed > 0).
  void NormalizeDeferred(double target, double raw_mass) {
    DPJOIN_CHECK_GT(raw_mass, 0.0);
    scale_ = target / raw_mass;
  }

  /// Folds the deferred scale into storage (one parallel pass; no-op when
  /// the scale is already 1). After this, values() is the logical view.
  void Materialize();

  /// Element-wise sum with a same-shape tensor (dataset union — the ∪ of
  /// Algorithm 4 over a shared domain is frequency addition). Both tensors
  /// must be materialized (scale 1).
  void AddTensor(const DenseTensor& other);

  /// Raw storage. CHECKs the deferred scale is 1, so raw == logical.
  const std::vector<double>& values() const {
    DPJOIN_CHECK(scale_ == 1.0,
                 "values() on a tensor with a deferred scale — call "
                 "Materialize() first");
    return values_;
  }
  std::vector<double>* mutable_values() {
    DPJOIN_CHECK(scale_ == 1.0,
                 "mutable_values() on a tensor with a deferred scale — call "
                 "Materialize() first");
    return &values_;
  }

  /// Raw storage WITHOUT the scale-1 check, for callers (PMW's factored
  /// loop) that deliberately work in the raw view and carry the scale
  /// algebra themselves.
  std::vector<double>* raw_values() { return &values_; }
  const std::vector<double>& raw_values() const { return values_; }

 private:
  MixedRadix shape_;
  std::vector<double> values_;
  double scale_ = 1.0;
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_DENSE_TENSOR_H_
