// The synthetic-dataset abstraction behind every release mechanism.
//
// PMW (and the mechanisms built on it) only ever ask a synthetic dataset F
// for a handful of operations: total mass, normalization, a multiplicative
// update on a product query's support, and marginal contraction. Nothing in
// that contract requires a materialized cell array — only the historical
// DenseTensor backing does. SyntheticDistribution names the contract so the
// engine can carry either backing:
//
//   * DenseTensor      — one double per cell of ×_i D_i (the original
//                        backing; exact for arbitrary workloads, memory
//                        O(Π |D_i|)).
//   * FactoredTensor   — a product of low-dimensional factors over disjoint
//                        attribute subsets (private-pgm's ProductDist);
//                        memory O(Σ factor sizes), exact for workloads whose
//                        queries each live inside one factor.
//
// Hot loops never dispatch through this interface: PMW's round loop and the
// WorkloadEvaluator bind the concrete backing up front (AsDense/AsFactored)
// and run backing-specific kernels. The virtuals exist for the cold paths —
// serving-layer plumbing, planners, tests — where one signature per backing
// would leak the representation into every layer above.

#ifndef DPJOIN_QUERY_SYNTHETIC_DISTRIBUTION_H_
#define DPJOIN_QUERY_SYNTHETIC_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/mixed_radix.h"

namespace dpjoin {

class DenseTensor;
class FactoredTensor;

/// A non-negative distribution (up to scale) over a mixed-radix domain.
class SyntheticDistribution {
 public:
  virtual ~SyntheticDistribution() = default;

  /// The domain's mode structure. For DenseTensor, one mode per relation
  /// (the release shape); for FactoredTensor, one mode per attribute digit
  /// of its single relation's tuple space.
  virtual const MixedRadix& shape() const = 0;

  /// Σ_x F(x), including any deferred scale.
  virtual double TotalMass() const = 0;

  /// Rescales so TotalMass() == target (CHECKs the current mass is > 0).
  virtual void NormalizeTo(double target) = 0;

  /// |domain| as a double (exact for domains within int64, meaningful
  /// beyond the dense-materialization envelope either way).
  virtual double DomainCells() const = 0;

  /// Doubles actually allocated for the cell representation — Π |D_i| for
  /// the dense backing, Σ_f Π_{i∈f} |D_i| for the factored one. This is the
  /// number the planner's memory envelope reasons about.
  virtual int64_t StorageCells() const = 0;

  /// F(x) *= exp(q(x)·eta) for the product query q(x) = Π_i qvals[i][x_i],
  /// one per-mode value vector per mode of shape(). NOT renormalized. The
  /// factored backing CHECKs that the query's support (modes whose vector
  /// is not all-ones) lies inside a single factor.
  virtual void MultiplicativeUpdate(const std::vector<const double*>& qvals,
                                    double eta) = 0;

  /// Marginal onto the given ascending mode subset: result[y] =
  /// Σ_{x: x|modes = y} F(x), row-major over the selected radices.
  virtual std::vector<double> MarginalOver(
      const std::vector<size_t>& modes) const = 0;

  /// Closed-world downcasts (exactly two backings exist; cold-path callers
  /// branch on these instead of paying a virtual per cell).
  virtual const DenseTensor* AsDense() const { return nullptr; }
  virtual const FactoredTensor* AsFactored() const { return nullptr; }
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_SYNTHETIC_DISTRIBUTION_H_
