// Integer quantization of synthetic datasets.
//
// The paper's release target is F : ×_i D_i → N (natural numbers) — an
// actual synthetic dataset whose records can be enumerated. PMW produces
// real-valued masses; randomized rounding converts them to integers without
// biasing any linear query: each cell rounds to ⌊v⌋ or ⌈v⌉ with probability
// proportional to the fraction, so E[q(F_int)] = q(F) for every linear
// query, and |q(F_int) − q(F)| concentrates as O(√|support|) by Hoeffding.
// Quantization is post-processing of a DP output — it consumes no budget.

#ifndef DPJOIN_QUERY_QUANTIZE_H_
#define DPJOIN_QUERY_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "query/dense_tensor.h"

namespace dpjoin {

/// Randomized rounding: cell v → ⌊v⌋ + Bernoulli(v − ⌊v⌋), independently.
/// Unbiased for every linear query.
DenseTensor QuantizeRandomized(const DenseTensor& tensor, Rng& rng);

/// Deterministic residual-carrying rounding (row-major error diffusion):
/// preserves the total mass within ±1 and keeps every prefix sum within ±1
/// of the real-valued prefix — tighter than randomized rounding for
/// prefix/range workloads, but biased for general queries.
DenseTensor QuantizeErrorDiffusion(const DenseTensor& tensor);

/// Enumerates the quantized dataset as (flat cell index, multiplicity)
/// records — the releasable synthetic table.
std::vector<std::pair<int64_t, int64_t>> EnumerateRecords(
    const DenseTensor& integer_tensor);

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_QUANTIZE_H_
