// Cached all-query evaluator over a (family, shape) pair — the factored
// heart of PMW's round loop.
//
// EvaluateAllOnTensor re-flattens every per-mode query matrix and re-derives
// the query structure on every call; PMW calls it every round, and every
// ServingHandle re-does the same work per AnswerAll. WorkloadEvaluator
// precomputes, ONCE per (family, shape):
//   * the per-mode query-value matrices (|Q_i| × |D_i|, row-major) fed to
//     the blocked mode contractions, and
//   * per-query structure metadata: whether each table query is a 0/1
//     indicator (interval/threshold/point/marginal workloads) and, if so,
//     its support — which is what lets the multiplicative-weights update
//     touch only the affected sub-box instead of the whole tensor.
//
// EvaluateAll matches EvaluateAllOnTensor bit-for-bit (same contraction
// kernel, same matrices); the naive path is retained as the test oracle.

#ifndef DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_
#define DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/mixed_radix.h"
#include "query/dense_tensor.h"
#include "query/query_family.h"

namespace dpjoin {

class WorkloadEvaluator {
 public:
  /// Structure of one per-table query, detected once at construction.
  struct QueryInfo {
    bool is_indicator = false;  ///< every value ∈ {0, 1}
    bool is_all_ones = false;   ///< indicator with full support (q ≡ 1)
    /// Codes with value 1, ascending (indicator queries only).
    std::vector<int64_t> support;
  };

  /// `shape` must be the release domain of the family's query (mode i has
  /// radix |D_i|); CHECK-fails on a mode-count or domain-size mismatch.
  WorkloadEvaluator(const QueryFamily& family, const MixedRadix& shape);

  const MixedRadix& shape() const { return shape_; }
  int num_modes() const { return static_cast<int>(counts_.size()); }
  int64_t TotalQueries() const { return total_queries_; }

  /// All-query answers over raw cell values (length shape().size()),
  /// by blocked mode contraction with the cached matrices. Bit-identical
  /// to EvaluateAllOnTensor on the same values, for any thread count.
  std::vector<double> EvaluateAllRaw(const std::vector<double>& values) const;

  /// EvaluateAllRaw on the tensor's raw storage, with the deferred scale
  /// applied to the answers (linear queries commute with the scale).
  std::vector<double> EvaluateAll(const DenseTensor& tensor) const;

  /// Metadata for table query `j` of relation `rel`.
  const QueryInfo& info(int rel, int64_t j) const {
    return info_[static_cast<size_t>(rel)][static_cast<size_t>(j)];
  }

  /// True when every per-mode factor of the product query `parts` is a 0/1
  /// indicator — the update then touches only ×_i support_i.
  bool IsProductIndicator(const std::vector<int64_t>& parts) const;

  /// True when the product query is identically 1 (the counting query).
  bool IsAllOnes(const std::vector<int64_t>& parts) const;

  /// Π_i |support_i| for an indicator product query (CHECKed).
  int64_t BoxCells(const std::vector<int64_t>& parts) const;

  /// All-query answers restricted to the sub-box of the indicator product
  /// query `parts`: result[q] = Σ_{x ∈ box} box_values[pos(x)]·q(x), where
  /// `box_values` is the box extracted in row-major support order (as
  /// produced by iterating supports mode by mode, last mode fastest).
  /// Same contraction kernel over support-restricted matrices, so the
  /// result is bit-identical for any thread count.
  std::vector<double> EvaluateAllOnBox(
      const std::vector<int64_t>& parts,
      const std::vector<double>& box_values) const;

  /// Multiply-add count of one all-query evaluation, from shapes alone (no
  /// family construction needed — this is the planner's per-round PMW cost
  /// model): contracting modes last-to-first, mode i costs
  /// Π_{j<i}|D_j| · |Q_i| · |D_i| · Π_{j>i}|Q_j|.
  static double EvaluationFlops(const std::vector<int64_t>& domain_sizes,
                                const std::vector<int64_t>& query_counts);

 private:
  MixedRadix shape_;
  std::vector<int64_t> counts_;               // |Q_i|
  std::vector<std::vector<double>> matrices_;  // per-mode |Q_i| × |D_i|
  std::vector<std::vector<QueryInfo>> info_;
  int64_t total_queries_ = 0;
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_
