// Cached all-query evaluator over a (family, shape) pair — the factored
// heart of PMW's round loop.
//
// EvaluateAllOnTensor re-flattens every per-mode query matrix and re-derives
// the query structure on every call; PMW calls it every round, and every
// ServingHandle re-does the same work per AnswerAll. WorkloadEvaluator
// precomputes, ONCE per (family, shape):
//   * the per-mode query-value matrices (|Q_i| × |D_i|, row-major) fed to
//     the blocked mode contractions, and
//   * per-query structure metadata: whether each table query is a 0/1
//     indicator (interval/threshold/point/marginal workloads) and, if so,
//     its support — which is what lets the multiplicative-weights update
//     touch only the affected sub-box instead of the whole tensor.
//
// EvaluateAll matches EvaluateAllOnTensor bit-for-bit (same contraction
// kernel, same matrices); the naive path is retained as the test oracle.

#ifndef DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_
#define DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/mixed_radix.h"
#include "query/dense_tensor.h"
#include "query/factored_tensor.h"
#include "query/query_family.h"
#include "query/synthetic_distribution.h"

namespace dpjoin {

class WorkloadEvaluator {
 public:
  /// Structure of one per-table query, detected once at construction.
  struct QueryInfo {
    bool is_indicator = false;  ///< every value ∈ {0, 1}
    bool is_all_ones = false;   ///< indicator with full support (q ≡ 1)
    /// Codes with value 1, ascending (indicator queries only).
    std::vector<int64_t> support;
  };

  /// `shape` must be the release domain of the family's query (mode i has
  /// radix |D_i|); CHECK-fails on a mode-count or domain-size mismatch.
  WorkloadEvaluator(const QueryFamily& family, const MixedRadix& shape);

  /// Factored-backing evaluator: per-factor answer matrices R_k
  /// (|Q| × factor-cells, row j the product of query j's per-attribute
  /// factors over the factor's modes), so EvaluateAllFactored costs
  /// Σ_k |Q|·cells_k instead of anything proportional to the domain.
  /// Requires a single-relation product-form family whose tuple space
  /// matches `backing.shape()`.
  static WorkloadEvaluator ForFactored(const QueryFamily& family,
                                       const FactoredTensor& backing);

  const MixedRadix& shape() const { return shape_; }
  int num_modes() const { return static_cast<int>(counts_.size()); }
  int64_t TotalQueries() const { return total_queries_; }

  /// True when built by ForFactored; the dense evaluation surface
  /// (EvaluateAll*, info, box helpers) then CHECK-fails and the factored
  /// one (EvaluateAllFactored, FactorDotsRaw) is live — and vice versa.
  bool factored() const { return factored_; }

  /// All-query answers over raw cell values (length shape().size()),
  /// by blocked mode contraction with the cached matrices. Bit-identical
  /// to EvaluateAllOnTensor on the same values, for any thread count.
  std::vector<double> EvaluateAllRaw(const std::vector<double>& values) const;

  /// EvaluateAllRaw on the tensor's raw storage, with the deferred scale
  /// applied to the answers (linear queries commute with the scale).
  std::vector<double> EvaluateAll(const DenseTensor& tensor) const;

  /// Metadata for table query `j` of relation `rel`.
  const QueryInfo& info(int rel, int64_t j) const {
    return info_[static_cast<size_t>(rel)][static_cast<size_t>(j)];
  }

  /// True when every per-mode factor of the product query `parts` is a 0/1
  /// indicator — the update then touches only ×_i support_i.
  bool IsProductIndicator(const std::vector<int64_t>& parts) const;

  /// True when the product query is identically 1 (the counting query).
  bool IsAllOnes(const std::vector<int64_t>& parts) const;

  /// Π_i |support_i| for an indicator product query (CHECKed).
  int64_t BoxCells(const std::vector<int64_t>& parts) const;

  /// All-query answers restricted to the sub-box of the indicator product
  /// query `parts`: result[q] = Σ_{x ∈ box} box_values[pos(x)]·q(x), where
  /// `box_values` is the box extracted in row-major support order (as
  /// produced by iterating supports mode by mode, last mode fastest).
  /// Same contraction kernel over support-restricted matrices, so the
  /// result is bit-identical for any thread count.
  std::vector<double> EvaluateAllOnBox(
      const std::vector<int64_t>& parts,
      const std::vector<double>& box_values) const;

  /// The mode contraction order EvaluateAll* uses. Default: modes
  /// last-to-first. When EXACTLY ONE mode carries a non-indicator query
  /// (mixed workloads), the indicator modes contract first (last-to-first
  /// among themselves) so the expensive dense matrix touches the smallest
  /// intermediate — indicator contractions shrink |D_i| to |Q_i| while
  /// skipping their zero coefficients. Reordering changes the answers only
  /// by floating-point associativity; homogeneous workloads keep the
  /// historical order, so they stay bit-identical to EvaluateAllOnTensor.
  const std::vector<size_t>& contraction_order() const { return order_; }

  /// All-query answers against the factored backing:
  /// ans_j = scale·Π_k scale_k·⟨R_k[j], raw_k⟩. Bit-identical for any
  /// thread count (each answer row is written by exactly one block).
  std::vector<double> EvaluateAllFactored(const FactoredTensor& tensor) const;

  /// One flat query against the factored backing, O(Σ_k cells_k).
  double EvaluateOneFactored(int64_t flat, const FactoredTensor& tensor) const;

  /// Raw per-factor dot products dots[j] = ⟨R_k[j], raw_values⟩ — the
  /// incremental currency of PMW's factored round loop, which tracks the
  /// per-factor scales itself.
  void FactorDotsRaw(size_t k, const std::vector<double>& raw_values,
                     std::vector<double>* dots) const;

  size_t num_factors() const { return factor_modes_.size(); }
  int64_t factor_cells(size_t k) const { return factor_cells_[k]; }

  /// Row `flat` of factor k's answer matrix — query `flat`'s per-cell
  /// restriction over the factor's modes (the update coefficients of PMW's
  /// factored round loop).
  const double* FactorRow(size_t k, int64_t flat) const {
    return factor_matrices_[k].data() +
           static_cast<size_t>(flat) * static_cast<size_t>(factor_cells_[k]);
  }
  const std::vector<size_t>& factor_modes(size_t k) const {
    return factor_modes_[k];
  }

  /// All-query answers against either backing (cold-path dispatch for the
  /// serving layer).
  std::vector<double> EvaluateAllOn(const SyntheticDistribution& dist) const;

  /// Multiply-add count of one all-query evaluation, from shapes alone (no
  /// family construction needed — this is the planner's per-round PMW cost
  /// model): contracting modes last-to-first, mode i costs
  /// Π_{j<i}|D_j| · |Q_i| · |D_i| · Π_{j>i}|Q_j|.
  static double EvaluationFlops(const std::vector<int64_t>& domain_sizes,
                                const std::vector<int64_t>& query_counts);

  /// Same, following an explicit contraction order (what an evaluator with
  /// a reordered mixed workload actually pays).
  static double EvaluationFlops(const std::vector<int64_t>& domain_sizes,
                                const std::vector<int64_t>& query_counts,
                                const std::vector<size_t>& order);

  /// Multiply-add count of one factored all-query evaluation:
  /// |Q|·(Σ_k cells_k) dot products plus |Q|·(K−1) cross-factor combines.
  static double FactoredEvaluationFlops(
      const std::vector<int64_t>& factor_cells, int64_t query_count);

 private:
  WorkloadEvaluator() = default;  // ForFactored fills the fields directly

  MixedRadix shape_;
  std::vector<int64_t> counts_;               // |Q_i|
  std::vector<std::vector<double>> matrices_;  // per-mode |Q_i| × |D_i|
  std::vector<std::vector<QueryInfo>> info_;
  std::vector<size_t> order_;  // dense contraction order
  int64_t total_queries_ = 0;

  // Factored mode (ForFactored).
  bool factored_ = false;
  std::vector<std::vector<size_t>> factor_modes_;
  std::vector<int64_t> factor_cells_;
  std::vector<std::vector<double>> factor_matrices_;  // |Q| × cells_k
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_WORKLOAD_EVALUATOR_H_
