#include "query/query_family.h"

namespace dpjoin {

double TableQueryValue(const TableQuery& tq, const MixedRadix& coder,
                       int64_t code) {
  if (tq.HasDense()) return tq.values[static_cast<size_t>(code)];
  double q = 1.0;
  for (size_t d = 0; d < tq.factors.size(); ++d) {
    q *= tq.factors[d][static_cast<size_t>(coder.Digit(code, d))];
  }
  return q;
}

Result<QueryFamily> QueryFamily::Create(
    const JoinQuery& query, std::vector<std::vector<TableQuery>> per_table) {
  if (static_cast<int>(per_table.size()) != query.num_relations()) {
    return Status::InvalidArgument(
        "need exactly one query list per relation");
  }
  for (int r = 0; r < query.num_relations(); ++r) {
    if (per_table[static_cast<size_t>(r)].empty()) {
      return Status::InvalidArgument("empty query list for relation " +
                                     std::to_string(r));
    }
    const int64_t dom = query.relation_domain_size(r);
    const MixedRadix& coder = query.tuple_space(r);
    for (const TableQuery& tq : per_table[static_cast<size_t>(r)]) {
      if (!tq.HasDense() && !tq.HasFactors()) {
        return Status::InvalidArgument(
            "query '" + tq.label + "' has neither dense values nor factors");
      }
      if (tq.HasDense()) {
        if (static_cast<int64_t>(tq.values.size()) != dom) {
          return Status::InvalidArgument(
              "query '" + tq.label + "' has wrong arity for relation " +
              std::to_string(r));
        }
        for (double v : tq.values) {
          if (v < -1.0 || v > 1.0) {
            return Status::InvalidArgument("query '" + tq.label +
                                           "' has a value outside [-1, 1]");
          }
        }
      }
      if (tq.HasFactors()) {
        if (tq.factors.size() != coder.num_digits()) {
          return Status::InvalidArgument(
              "query '" + tq.label + "' has " +
              std::to_string(tq.factors.size()) + " factors for the " +
              std::to_string(coder.num_digits()) + " attributes of relation " +
              std::to_string(r));
        }
        for (size_t d = 0; d < tq.factors.size(); ++d) {
          if (static_cast<int64_t>(tq.factors[d].size()) != coder.radix(d)) {
            return Status::InvalidArgument(
                "query '" + tq.label + "' factor " + std::to_string(d) +
                " has wrong arity for relation " + std::to_string(r));
          }
          for (double v : tq.factors[d]) {
            if (v < -1.0 || v > 1.0) {
              return Status::InvalidArgument(
                  "query '" + tq.label +
                  "' has a factor value outside [-1, 1]");
            }
          }
        }
      }
    }
  }
  QueryFamily family;
  std::vector<int64_t> counts;
  counts.reserve(per_table.size());
  for (const auto& qs : per_table) {
    counts.push_back(static_cast<int64_t>(qs.size()));
  }
  family.per_table_ = std::move(per_table);
  family.index_ = MixedRadix(std::move(counts));
  return family;
}

std::string QueryFamily::LabelOf(int64_t flat) const {
  const std::vector<int64_t> parts = index_.Decode(flat);
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " × ";
    out += per_table_[i][static_cast<size_t>(parts[i])].label;
  }
  return out;
}

}  // namespace dpjoin
