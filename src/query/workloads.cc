#include "query/workloads.h"

#include <string>

#include "common/check.h"

namespace dpjoin {

namespace {

// Fills the dense value vector from the per-attribute factors — but only
// while the relation's domain fits the dense-materialization cap, so the
// product-form generators stay usable on factored-backing-sized domains.
void MaterializeDenseWithinCap(const MixedRadix& coder, TableQuery* tq) {
  if (coder.size() > kDenseQueryValueCap) return;
  tq->values.resize(static_cast<size_t>(coder.size()));
  Odometer odo(coder);
  for (int64_t code = 0; code < coder.size(); ++code) {
    double v = 1.0;
    for (size_t d = 0; d < tq->factors.size(); ++d) {
      v *= tq->factors[d][static_cast<size_t>(odo.digit(d))];
    }
    tq->values[static_cast<size_t>(code)] = v;
    odo.Advance();
  }
}

// All-ones factor vectors over every attribute of the relation.
std::vector<std::vector<double>> OnesFactors(const MixedRadix& coder) {
  std::vector<std::vector<double>> factors(coder.num_digits());
  for (size_t d = 0; d < coder.num_digits(); ++d) {
    factors[d].assign(static_cast<size_t>(coder.radix(d)), 1.0);
  }
  return factors;
}

}  // namespace

TableQuery MakeAllOnesQuery(const JoinQuery& query, int rel) {
  TableQuery tq;
  tq.label = "ones";
  tq.factors = OnesFactors(query.tuple_space(rel));
  const int64_t dom = query.relation_domain_size(rel);
  if (dom <= kDenseQueryValueCap) {
    tq.values.assign(static_cast<size_t>(dom), 1.0);
  }
  return tq;
}

std::vector<TableQuery> MakeRandomSignQueries(const JoinQuery& query, int rel,
                                              int64_t count, Rng& rng) {
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  const size_t dom = static_cast<size_t>(query.relation_domain_size(rel));
  for (int64_t j = 0; j < count; ++j) {
    TableQuery tq;
    tq.label = "sgn" + std::to_string(j);
    tq.values.resize(dom);
    for (size_t d = 0; d < dom; ++d) {
      tq.values[d] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    }
    out.push_back(std::move(tq));
  }
  return out;
}

std::vector<TableQuery> MakeRandomUniformQueries(const JoinQuery& query,
                                                 int rel, int64_t count,
                                                 Rng& rng) {
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  const size_t dom = static_cast<size_t>(query.relation_domain_size(rel));
  for (int64_t j = 0; j < count; ++j) {
    TableQuery tq;
    tq.label = "unif" + std::to_string(j);
    tq.values.resize(dom);
    for (size_t d = 0; d < dom; ++d) {
      tq.values[d] = rng.UniformDouble(-1.0, 1.0);
    }
    out.push_back(std::move(tq));
  }
  return out;
}

std::vector<TableQuery> MakePrefixQueries(const JoinQuery& query, int rel,
                                          int64_t count) {
  DPJOIN_CHECK_GT(count, 0);
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  const int64_t dom = query.relation_domain_size(rel);
  for (int64_t j = 0; j < count; ++j) {
    TableQuery tq;
    tq.label = "pfx" + std::to_string(j);
    // Thresholds (j+1)/count of the way through the code order, ≥ 1.
    const int64_t threshold =
        std::max<int64_t>(1, (j + 1) * dom / count);
    tq.values.assign(static_cast<size_t>(dom), 0.0);
    for (int64_t d = 0; d < threshold && d < dom; ++d) {
      tq.values[static_cast<size_t>(d)] = 1.0;
    }
    out.push_back(std::move(tq));
  }
  return out;
}

std::vector<TableQuery> MakePointQueries(const JoinQuery& query, int rel,
                                         int64_t count, Rng& rng) {
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  const size_t dom = static_cast<size_t>(query.relation_domain_size(rel));
  const MixedRadix& coder = query.tuple_space(rel);
  for (int64_t j = 0; j < count; ++j) {
    TableQuery tq;
    tq.label = "pt" + std::to_string(j);
    const int64_t code = static_cast<int64_t>(rng.UniformIndex(dom));
    // A point indicator factors as the product of one-hot digit indicators.
    tq.factors.resize(coder.num_digits());
    for (size_t d = 0; d < coder.num_digits(); ++d) {
      tq.factors[d].assign(static_cast<size_t>(coder.radix(d)), 0.0);
      tq.factors[d][static_cast<size_t>(coder.Digit(code, d))] = 1.0;
    }
    MaterializeDenseWithinCap(coder, &tq);
    out.push_back(std::move(tq));
  }
  return out;
}

namespace {

// The marginal indicator 1[π_attr t = v], in product form: all-ones factors
// everywhere except a one-hot at `attr`'s digit.
TableQuery MakeOneMarginalQuery(const JoinQuery& query, int rel, int attr,
                                int digit, int64_t v) {
  const MixedRadix& coder = query.tuple_space(rel);
  TableQuery tq;
  tq.label = query.attribute_name(attr) + "=" + std::to_string(v);
  tq.factors = OnesFactors(coder);
  tq.factors[static_cast<size_t>(digit)]
      .assign(static_cast<size_t>(coder.radix(static_cast<size_t>(digit))),
              0.0);
  tq.factors[static_cast<size_t>(digit)][static_cast<size_t>(v)] = 1.0;
  MaterializeDenseWithinCap(coder, &tq);
  return tq;
}

}  // namespace

std::vector<TableQuery> MakeMarginalQueries(const JoinQuery& query, int rel,
                                            int attr) {
  DPJOIN_CHECK(query.attributes_of(rel).Contains(attr),
               "attribute not in relation");
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  // Digit position of `attr` within the relation's ascending order.
  int digit = -1;
  const auto& order = query.attribute_order_of(rel);
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == attr) digit = static_cast<int>(i);
  }
  DPJOIN_CHECK_GE(digit, 0);
  for (int64_t v = 0; v < query.domain_size(attr); ++v) {
    out.push_back(MakeOneMarginalQuery(query, rel, attr, digit, v));
  }
  return out;
}

std::vector<TableQuery> MakeAllAttributeMarginalQueries(const JoinQuery& query,
                                                        int rel) {
  std::vector<TableQuery> out;
  out.push_back(MakeAllOnesQuery(query, rel));
  const auto& order = query.attribute_order_of(rel);
  for (size_t i = 0; i < order.size(); ++i) {
    const int attr = order[i];
    for (int64_t v = 0; v < query.domain_size(attr); ++v) {
      out.push_back(
          MakeOneMarginalQuery(query, rel, attr, static_cast<int>(i), v));
    }
  }
  return out;
}

QueryFamily MakeWorkload(const JoinQuery& query, WorkloadKind kind,
                         int64_t per_table, Rng& rng) {
  std::vector<std::vector<TableQuery>> per_table_queries;
  per_table_queries.reserve(static_cast<size_t>(query.num_relations()));
  for (int r = 0; r < query.num_relations(); ++r) {
    switch (kind) {
      case WorkloadKind::kRandomSign:
        per_table_queries.push_back(
            MakeRandomSignQueries(query, r, per_table, rng));
        break;
      case WorkloadKind::kRandomUniform:
        per_table_queries.push_back(
            MakeRandomUniformQueries(query, r, per_table, rng));
        break;
      case WorkloadKind::kPrefix:
        per_table_queries.push_back(MakePrefixQueries(query, r, per_table));
        break;
      case WorkloadKind::kPoint:
        per_table_queries.push_back(
            MakePointQueries(query, r, per_table, rng));
        break;
      case WorkloadKind::kMarginal:
        per_table_queries.push_back(MakeMarginalQueries(
            query, r, query.attribute_order_of(r).front()));
        break;
      case WorkloadKind::kMarginalAll:
        per_table_queries.push_back(
            MakeAllAttributeMarginalQueries(query, r));
        break;
    }
  }
  auto family = QueryFamily::Create(query, std::move(per_table_queries));
  DPJOIN_CHECK(family.ok(), family.status().ToString());
  return std::move(family).value();
}

QueryFamily MakeCountingFamily(const JoinQuery& query) {
  std::vector<std::vector<TableQuery>> per_table;
  for (int r = 0; r < query.num_relations(); ++r) {
    per_table.push_back({MakeAllOnesQuery(query, r)});
  }
  auto family = QueryFamily::Create(query, std::move(per_table));
  DPJOIN_CHECK(family.ok(), family.status().ToString());
  return std::move(family).value();
}

}  // namespace dpjoin
