// Product-form synthetic distribution (private-pgm's ProductDist, the
// factored backing of MWEM/PMW).
//
// A FactoredTensor represents F over a full attribute tuple space
// ×_d D_d as a product of low-dimensional factors over DISJOINT attribute
// subsets f_1, ..., f_K (uncovered attributes are auto-filled as uniform
// singleton factors):
//
//   F(x) = scale · Π_k  factor_scale_k · raw_k(x|f_k)
//
// Memory is O(Σ_k Π_{d∈f_k} |D_d|) — the SUM of factor sizes — instead of
// the dense backing's O(Π_d |D_d|) product, which is what lets PMW run on
// domains far beyond the 2^26 dense envelope (e.g. 10 attributes of size
// 16, 2^40 cells, in ~10·16 doubles). The representation is EXACT (not an
// approximation) for PMW whenever every workload query's support lies
// inside a single factor: a multiplicative update exp(q(x)·η) then touches
// only that factor and preserves the product form. ComputeWorkloadFactorization
// derives the coarsest such grouping from the workload — connected
// components of the attribute co-occurrence graph of the query family.
//
// Like DenseTensor, every factor carries a lazy scalar multiplier so PMW's
// per-round renormalization is O(1); Materialize-style folds happen per
// factor via the raw accessors.

#ifndef DPJOIN_QUERY_FACTORED_TENSOR_H_
#define DPJOIN_QUERY_FACTORED_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mixed_radix.h"
#include "query/dense_tensor.h"
#include "query/query_family.h"
#include "query/synthetic_distribution.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Product of disjoint low-dimensional factors over a mixed-radix domain.
class FactoredTensor : public SyntheticDistribution {
 public:
  /// One factor: a dense table over a subset of the domain's modes.
  struct Factor {
    std::vector<size_t> modes;   ///< ascending mode indices of shape()
    MixedRadix shape;            ///< radices of those modes
    std::vector<double> values;  ///< raw table, logical = scale·values
    double scale = 1.0;          ///< lazy per-factor multiplier
  };

  /// Uniform distribution of mass `total_mass` over `shape`, factored by
  /// `groups` (disjoint ascending mode subsets; modes not covered by any
  /// group become uniform singleton factors). Factors are ordered by their
  /// first mode.
  FactoredTensor(MixedRadix shape, std::vector<std::vector<size_t>> groups,
                 double total_mass);

  const MixedRadix& shape() const override { return shape_; }
  double TotalMass() const override;
  void NormalizeTo(double target) override;
  double DomainCells() const override {
    return static_cast<double>(shape_.size());
  }
  int64_t StorageCells() const override;
  void MultiplicativeUpdate(const std::vector<const double*>& qvals,
                            double eta) override;
  std::vector<double> MarginalOver(
      const std::vector<size_t>& modes) const override;
  const FactoredTensor* AsFactored() const override { return this; }

  size_t num_factors() const { return factors_.size(); }
  const Factor& factor(size_t k) const { return factors_[k]; }

  /// Factor index covering `mode`, and the mode's digit position within
  /// that factor's shape.
  size_t factor_of_mode(size_t mode) const { return mode_factor_[mode]; }
  size_t digit_in_factor(size_t mode) const { return mode_digit_[mode]; }

  /// Logical cell value scale·Π_k scale_k·raw_k at a flat index / digit
  /// vector of shape(). O(num modes); for tests and spot answers.
  double At(int64_t flat) const { return AtDigits(shape_.Decode(flat)); }
  double AtDigits(const std::vector<int64_t>& digits) const;

  /// Answer of the product query q(x) = Π_d qvals[d][x_d] (one value
  /// vector per mode of shape()): Σ_x F(x)·q(x), computed per factor in
  /// O(Σ_k factor cells).
  double AnswerProduct(const std::vector<const double*>& qvals) const;

  /// Materializes the full dense tensor; CHECKs the domain fits the dense
  /// envelope (tests only).
  DenseTensor ToDense() const;

  /// Raw mutation surface for PMW's round loop, which carries the scale
  /// algebra itself (mirrors DenseTensor::raw_values).
  std::vector<double>* mutable_factor_values(size_t k) {
    return &factors_[k].values;
  }
  double factor_scale(size_t k) const { return factors_[k].scale; }
  void set_factor_scale(size_t k, double s) { factors_[k].scale = s; }
  double scale() const { return scale_; }
  void set_scale(double s) { scale_ = s; }

 private:
  MixedRadix shape_;
  std::vector<Factor> factors_;
  std::vector<size_t> mode_factor_;  // mode -> factor index
  std::vector<size_t> mode_digit_;   // mode -> digit within factor
  double scale_ = 1.0;               // global lazy multiplier
};

/// A workload-driven factorization of a single-relation release domain:
/// connected components of the attribute co-occurrence graph, where each
/// product-form query cliques together the attributes its non-trivial
/// factors touch. Every query's support then lies inside one group, which
/// is exactly the condition under which PMW on a FactoredTensor is exact.
struct WorkloadFactorization {
  bool product_form = false;  ///< every query factorizes over attributes
  std::string reason;         ///< why not, when product_form is false
  std::vector<std::vector<size_t>> groups;  ///< ascending attribute digits
  std::vector<int64_t> group_cells;         ///< Π |D_d| per group
  int64_t max_group_cells = 0;
  double sum_cells = 0.0;    ///< Σ group cells (factored memory)
  double total_cells = 0.0;  ///< Π |D_d| (dense memory)
};

/// Derives the coarsest exact factorization of relation 0's tuple space for
/// `family`. Requires a single-relation query; product_form is false (with
/// a reason) when any query lacks the per-attribute product form.
WorkloadFactorization ComputeWorkloadFactorization(const JoinQuery& query,
                                                   const QueryFamily& family);

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_FACTORED_TENSOR_H_
