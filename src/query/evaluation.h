// Exact evaluation of linear-query families against instances and against
// synthetic datasets (dense tensors over ×_i D_i).
//
// All-query evaluation uses mode-by-mode tensor contraction, which makes
// PMW's per-round exponential-mechanism scoring tractable: the cost is
// O(Σ_i |D_{≤i}|·|Q_{>i}| ) instead of O(|Q|·|D|).

#ifndef DPJOIN_QUERY_EVALUATION_H_
#define DPJOIN_QUERY_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "common/mixed_radix.h"
#include "query/dense_tensor.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

namespace internal {

/// Calls fn(flat, Π_i qvals[i][digit_i(flat)]) for every flat index in
/// [lo, hi) of `shape`, maintaining the product incrementally with a
/// seekable digit odometer. This is the shared inner loop of PMW's
/// multiplicative update and single-query tensor evaluation; parallel
/// callers hand each worker its own [lo, hi) block.
template <typename Fn>
void ForEachProductCell(const MixedRadix& shape,
                        const std::vector<const double*>& qvals, int64_t lo,
                        int64_t hi, Fn&& fn) {
  if (lo >= hi) return;
  const size_t m = shape.num_digits();
  Odometer odo(shape, lo);
  // prefix[i] = Π_{<i} qvals[digit]; refreshed from the lowest changed digit.
  std::vector<double> prefix(m + 1, 1.0);
  for (size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] * qvals[i][odo.digit(i)];
  for (int64_t flat = lo; flat < hi; ++flat) {
    fn(flat, prefix[m]);
    if (flat + 1 < hi) {
      for (size_t i = odo.Advance(); i < m; ++i) {
        prefix[i + 1] = prefix[i] * qvals[i][odo.digit(i)];
      }
    }
  }
}

/// Contracts mode `mode` of V (shape `shape`) with the c×d matrix M (flat
/// row-major): out[p, j, x] = Σ_d V[p, d, x]·M[j*d_dim + d]. Rows (p, j) are
/// sharded over the thread pool; each is written by exactly one block, so
/// the result is bit-identical for any thread count. Shared by
/// EvaluateAllOnTensor and the cached WorkloadEvaluator.
void ContractMode(const std::vector<double>& in,
                  const std::vector<int64_t>& shape, size_t mode,
                  const double* matrix, int64_t out_dim,
                  std::vector<double>* out, std::vector<int64_t>* out_shape);

/// Flattens family queries for relation `rel` into a row-major
/// (|Q_rel| × |D_rel|) matrix.
std::vector<double> QueryMatrix(const QueryFamily& family, int rel);

}  // namespace internal

/// The release domain D = ×_i D_i of an instance as a tensor shape (mode i
/// has radix |D_i|). CHECK-fails when |D| exceeds `max_cells`
/// (default 2^26 ≈ 67M — the dense-PMW tractability envelope; see DESIGN.md
/// "Substitutions").
MixedRadix ReleaseShape(const JoinQuery& query,
                        int64_t max_cells = int64_t{1} << 26);

/// Materializes JoinI as a dense tensor over D: Join(t⃗) = ρ(t⃗)·Π R_i(t_i).
DenseTensor JoinTensor(const Instance& instance);

/// q(F) for one product query (per-table indices `parts`).
double EvaluateOnTensor(const QueryFamily& family,
                        const std::vector<int64_t>& parts,
                        const DenseTensor& tensor);

/// q(F) for ALL queries in the family; result is indexed by family.index().
std::vector<double> EvaluateAllOnTensor(const QueryFamily& family,
                                        const DenseTensor& tensor);

/// q(I) for one product query, by sparse join enumeration (no |D|-sized
/// materialization; usable on instances whose release domain is huge).
double EvaluateOnInstance(const QueryFamily& family,
                          const std::vector<int64_t>& parts,
                          const Instance& instance);

/// q(I) for ALL queries in the family, by sparse join enumeration sharded
/// over the thread pool (per-block answer vectors merged in block order, so
/// the result is bit-identical for any thread count).
std::vector<double> EvaluateAllOnInstance(const QueryFamily& family,
                                          const Instance& instance);

/// ℓ∞ workload error  α = max_q |answers_a[q] − answers_b[q]|.
double MaxAbsDifference(const std::vector<double>& answers_a,
                        const std::vector<double>& answers_b);

/// Convenience: ℓ∞ error of a synthetic dataset F against instance I over
/// the family.
double WorkloadError(const QueryFamily& family, const Instance& instance,
                     const DenseTensor& synthetic);

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_EVALUATION_H_
