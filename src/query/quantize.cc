#include "query/quantize.h"

#include <cmath>

#include "common/check.h"

namespace dpjoin {

DenseTensor QuantizeRandomized(const DenseTensor& tensor, Rng& rng) {
  DenseTensor out(tensor.shape());
  for (int64_t flat = 0; flat < tensor.size(); ++flat) {
    const double v = tensor.At(flat);
    DPJOIN_CHECK_GE(v, 0.0);
    const double floor = std::floor(v);
    const double frac = v - floor;
    double value = floor;
    if (frac > 0.0 && rng.UniformDouble() < frac) value += 1.0;
    out.Set(flat, value);
  }
  return out;
}

DenseTensor QuantizeErrorDiffusion(const DenseTensor& tensor) {
  DenseTensor out(tensor.shape());
  double carry = 0.0;
  for (int64_t flat = 0; flat < tensor.size(); ++flat) {
    const double v = tensor.At(flat);
    DPJOIN_CHECK_GE(v, 0.0);
    const double target = v + carry;
    const double rounded = std::max(0.0, std::round(target));
    carry = target - rounded;
    out.Set(flat, rounded);
  }
  return out;
}

std::vector<std::pair<int64_t, int64_t>> EnumerateRecords(
    const DenseTensor& integer_tensor) {
  std::vector<std::pair<int64_t, int64_t>> records;
  for (int64_t flat = 0; flat < integer_tensor.size(); ++flat) {
    const double v = integer_tensor.At(flat);
    DPJOIN_CHECK(v >= 0.0 && v == std::floor(v),
                 "EnumerateRecords needs an integer tensor");
    if (v > 0.0) {
      records.emplace_back(flat, static_cast<int64_t>(v));
    }
  }
  return records;
}

}  // namespace dpjoin
