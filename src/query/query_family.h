// Linear queries over multi-table instances (paper §1.1).
//
// A per-table linear query is a function q_i : D_i → [-1, +1], stored as a
// dense vector over the relation's tuple codes. The query family is the
// product Q = ×_i Q_i; a member q = (q_1, ..., q_m) has
//   q(I) = Σ_{t⃗} ρ(t⃗) Π_i q_i(t_i)·R_i(t_i)      (answer on the instance)
//   q(F) = Σ_{t⃗} F(t⃗) Π_i q_i(t_i)               (answer on synthetic data)

#ifndef DPJOIN_QUERY_QUERY_FAMILY_H_
#define DPJOIN_QUERY_QUERY_FAMILY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mixed_radix.h"
#include "common/result.h"
#include "relational/join_query.h"

namespace dpjoin {

/// One per-table linear query, in one (or both) of two forms:
///   * dense: values[code] ∈ [-1, 1] for every tuple code of the table's
///     domain (required by the dense evaluation paths);
///   * product: factors[d][v] ∈ [-1, 1] per attribute digit d of the
///     relation's tuple space, with q(t) = Π_d factors[d][digit_d(t)]
///     (required by the factored backing, and the only representable form
///     once the relation's domain exceeds the dense-materialization
///     envelope).
/// Workload generators emit the product form whenever the query factorizes
/// over attributes, and materialize the dense vector only while the domain
/// is small enough; when both are present they must describe the same
/// query.
struct TableQuery {
  std::string label;
  std::vector<double> values;
  std::vector<std::vector<double>> factors;

  bool HasDense() const { return !values.empty(); }
  bool HasFactors() const { return !factors.empty(); }
};

/// q(t) for tuple code `t` under the relation's tuple space `coder`, from
/// the dense vector when present, else the per-digit product form.
double TableQueryValue(const TableQuery& tq, const MixedRadix& coder,
                       int64_t code);

/// Product family Q = ×_i Q_i over a join query.
class QueryFamily {
 public:
  /// Validates shapes (one non-empty query list per relation, each query a
  /// vector over the relation's full domain with entries in [-1, 1]).
  static Result<QueryFamily> Create(const JoinQuery& query,
                                    std::vector<std::vector<TableQuery>> per_table);

  int num_relations() const { return static_cast<int>(per_table_.size()); }

  /// |Q_i|.
  int64_t CountForTable(int rel) const {
    return static_cast<int64_t>(per_table_[rel].size());
  }

  /// |Q| = Π_i |Q_i|.
  int64_t TotalCount() const { return index_.size(); }

  const std::vector<TableQuery>& table_queries(int rel) const {
    DPJOIN_CHECK(rel >= 0 && rel < num_relations(),
                 "relation index out of range");
    return per_table_[static_cast<size_t>(rel)];
  }

  /// Coder from per-table query indices (j_1, ..., j_m) to flat indices in
  /// [0, |Q|); all-query evaluation results use this layout.
  const MixedRadix& index() const { return index_; }

  /// Per-table indices of the flat query `flat`.
  std::vector<int64_t> Decompose(int64_t flat) const {
    return index_.Decode(flat);
  }

  /// Human-readable name of a flat query ("rnd3 × ones").
  std::string LabelOf(int64_t flat) const;

 private:
  std::vector<std::vector<TableQuery>> per_table_;
  MixedRadix index_;
};

}  // namespace dpjoin

#endif  // DPJOIN_QUERY_QUERY_FAMILY_H_
