// POSIX socket primitives for the serving front-end.
//
// This is the ONLY place in the tree allowed to make raw socket syscalls
// (socket/bind/listen/accept/connect/epoll_* — enforced by the
// `raw-socket` rule in scripts/dpjoin_lint.py). Everything above speaks in
// terms of these wrappers, so the platform surface stays in one layer:
//
//   Socket       RAII owner of one file descriptor (move-only; closes on
//                destruction). Read/Write never raise SIGPIPE and report
//                would-block as a value, not an error — the event loop
//                treats EAGAIN as "try again after poll", never a failure.
//   ListenTcp    bound + listening TCP socket (port 0 = kernel-assigned;
//                read it back with LocalPort). Loopback-only by default:
//                dpjoin_serve has no authentication story yet, so binding
//                a wildcard address is an explicit opt-in.
//   AcceptConnection / ConnectTcp
//                non-blocking accept (invalid Socket = nothing pending)
//                and blocking client connect (tests, benches, soak tools).
//   WakePipe     self-pipe for waking a poll loop from another thread —
//                the one cross-thread signal the event loop needs (e.g.
//                RequestShutdown), without any shared mutable state.
//
// The layer is dependency-free POSIX: no third-party networking, no
// global initialization. Windows is out of scope.

#ifndef DPJOIN_NET_SOCKET_H_
#define DPJOIN_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dpjoin {

/// Move-only owner of one socket (or pipe) file descriptor.
class Socket {
 public:
  /// Default-constructs an invalid socket (fd -1).
  Socket() = default;
  /// Takes ownership of `fd`.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor now (idempotent).
  void Close();

  /// O_NONBLOCK on the descriptor.
  Status SetNonBlocking(bool enabled);

  /// TCP_NODELAY: the serving protocol is request/response with its own
  /// micro-batching; Nagle's algorithm only adds latency under it.
  Status SetNoDelay(bool enabled);

  /// Reads up to `len` bytes. Returns the byte count, 0 on EOF, or -1 when
  /// the read would block (EAGAIN on a non-blocking socket). EINTR is
  /// retried internally; real errors are a Status.
  Result<int64_t> Read(void* buf, size_t len);

  /// Writes up to `len` bytes without ever raising SIGPIPE. Returns the
  /// byte count (possibly short) or -1 when the write would block.
  Result<int64_t> Write(const void* buf, size_t len);

 private:
  int fd_ = -1;
};

struct ListenOptions {
  int backlog = 128;
  /// Bind 127.0.0.1 (default) or the wildcard address.
  bool loopback_only = true;
};

/// A bound, listening, NON-BLOCKING TCP socket on `port` (0 = ephemeral;
/// recover the assignment with LocalPort). SO_REUSEADDR is set so a
/// restarted daemon can rebind its port through TIME_WAIT.
Result<Socket> ListenTcp(uint16_t port, const ListenOptions& options = {});

/// The locally bound port of a listening socket.
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one pending connection from a non-blocking listener. The
/// accepted socket is returned non-blocking with TCP_NODELAY set. An
/// INVALID socket means nothing was pending (not an error).
Result<Socket> AcceptConnection(const Socket& listener);

/// Blocking client connect to host:port ("127.0.0.1" style IPv4 literal).
/// The socket stays blocking — this is the test/bench/client side.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Self-pipe: Notify() from any thread makes the read end readable, so a
/// poll loop parked in Poller::Wait wakes up. Notifications coalesce.
class WakePipe {
 public:
  /// CHECK-fails if the pipe cannot be created (fd exhaustion at startup
  /// is not a recoverable serving state).
  WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// The readable end, for Poller registration.
  int read_fd() const { return read_end_.fd(); }

  /// Wakes the poller (async-signal-safe, callable from any thread).
  void Notify();

  /// Drains queued notifications (call after the read end polls readable).
  void Drain();

 private:
  Socket read_end_;
  Socket write_end_;
};

}  // namespace dpjoin

#endif  // DPJOIN_NET_SOCKET_H_
