// Socket-free '\n' framing.
//
// LineFramer reassembles a byte stream into protocol lines: feed it raw
// chunks in any split, pop complete lines (without the '\n'; a single
// trailing '\r' is stripped so telnet-style clients work). Both sides of
// the JSON-lines transport — the event-loop LineChannel and the blocking
// LineClient — share this logic, and the fuzz harness drives it directly
// with adversarial chunkings, no sockets involved.

#ifndef DPJOIN_NET_LINE_FRAMER_H_
#define DPJOIN_NET_LINE_FRAMER_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace dpjoin {

class LineFramer {
 public:
  /// An unterminated tail longer than `max_line_bytes` is protocol abuse
  /// (requests are single JSON lines); Append reports it as overflow.
  explicit LineFramer(size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends `n` raw bytes, splitting off every complete line into the
  /// pending-line queue. Returns false (and latches the overflow state)
  /// when the unterminated tail exceeds max_line_bytes — the caller
  /// should drop the connection.
  bool Append(const char* data, size_t n);

  /// Moves every pending complete line into `lines`; returns how many.
  size_t DrainLines(std::vector<std::string>* lines);

  /// Pops the oldest pending complete line, if any.
  bool PopLine(std::string* line);

  bool overflowed() const { return overflowed_; }
  bool has_line() const { return !lines_.empty(); }
  /// Bytes of the unterminated tail (a half-line at EOF is a truncated
  /// request, not a request — callers decide what to do with it).
  size_t tail_bytes() const { return buffer_.size(); }

 private:
  const size_t max_line_bytes_;
  std::string buffer_;            // unterminated tail only
  std::deque<std::string> lines_; // complete lines, oldest first
  bool overflowed_ = false;
};

}  // namespace dpjoin

#endif  // DPJOIN_NET_LINE_FRAMER_H_
