#include "net/line_framer.h"

namespace dpjoin {

bool LineFramer::Append(const char* data, size_t n) {
  if (overflowed_) return false;
  buffer_.append(data, n);
  size_t start = 0;
  for (;;) {
    const size_t newline = buffer_.find('\n', start);
    if (newline == std::string::npos) break;
    size_t end = newline;
    if (end > start && buffer_[end - 1] == '\r') --end;
    lines_.emplace_back(buffer_, start, end - start);
    start = newline + 1;
  }
  if (start > 0) buffer_.erase(0, start);
  if (buffer_.size() > max_line_bytes_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

size_t LineFramer::DrainLines(std::vector<std::string>* lines) {
  const size_t count = lines_.size();
  for (auto& line : lines_) {
    lines->push_back(std::move(line));
  }
  lines_.clear();
  return count;
}

bool LineFramer::PopLine(std::string* line) {
  if (lines_.empty()) return false;
  *line = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

}  // namespace dpjoin
