// Readiness multiplexer: epoll on Linux, poll(2) everywhere (and as a
// runtime-selectable fallback so both backends stay tested on Linux).
//
// The Poller owns no file descriptors — it only watches them. One event
// loop thread owns a Poller; it is deliberately NOT thread-safe (wake it
// from other threads through a registered WakePipe instead of mutating
// interest sets cross-thread).

#ifndef DPJOIN_NET_POLLER_H_
#define DPJOIN_NET_POLLER_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace dpjoin {

class Poller {
 public:
  enum class Backend {
    kAuto,   ///< epoll where available, poll otherwise
    kEpoll,  ///< Linux epoll (falls back to poll off-Linux)
    kPoll,   ///< portable poll(2)
  };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error or hangup on the descriptor — the owner should close it.
    bool error = false;
  };

  explicit Poller(Backend backend = Backend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// The backend actually in use (kAuto/kEpoll resolve to kPoll where
  /// epoll does not exist).
  Backend backend() const { return backend_; }

  /// Starts watching `fd`. InvalidArgument if already watched.
  Status Add(int fd, bool want_read, bool want_write);

  /// Changes the interest set of a watched `fd`.
  Status Update(int fd, bool want_read, bool want_write);

  /// Stops watching `fd` (call BEFORE closing it).
  Status Remove(int fd);

  size_t num_watched() const { return interest_.size(); }

  /// Blocks until readiness, `timeout_ms` elapses (-1 = no timeout), or a
  /// signal. Replaces `events` with the ready set (empty on timeout).
  Status Wait(int timeout_ms, std::vector<Event>* events);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;  // kEpoll only
  std::unordered_map<int, Interest> interest_;
};

}  // namespace dpjoin

#endif  // DPJOIN_NET_POLLER_H_
