// Line framing over sockets.
//
// LineChannel is the server side of one connection: a non-blocking socket
// plus a read buffer that reassembles '\n'-terminated protocol lines and a
// write buffer that absorbs partial writes. It is owned and driven by a
// single event-loop thread — NOT thread-safe by design (cross-thread
// traffic reaches the loop through net::WakePipe, never through a channel).
//
// LineClient is the blocking client side (tests, benches, soak drivers):
// connect, send request lines, read response lines.

#ifndef DPJOIN_NET_LINE_CHANNEL_H_
#define DPJOIN_NET_LINE_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/line_framer.h"
#include "net/socket.h"

namespace dpjoin {

class LineChannel {
 public:
  /// Takes ownership of a NON-BLOCKING socket. A line longer than
  /// `max_line_bytes` (protocol abuse — requests are single JSON lines)
  /// puts the channel in the error state.
  explicit LineChannel(Socket socket, size_t max_line_bytes = 1 << 20);

  int fd() const { return socket_.fd(); }

  enum class ReadState {
    kOpen,   ///< more data may arrive later
    kEof,    ///< peer closed its write side (delivered lines still valid)
    kError,  ///< socket error or oversized line — close the connection
  };

  /// Drains everything currently readable, appending each complete line
  /// (without the '\n'; a trailing '\r' is stripped so telnet-style
  /// clients work) to `lines`.
  ReadState ReadLines(std::vector<std::string>* lines);

  /// Queues `line` plus '\n' for writing. Call FlushWrites to move bytes;
  /// the caller owns write-interest bookkeeping via wants_write().
  void QueueLine(const std::string& line);

  /// Writes as much queued data as the socket accepts right now.
  /// Returns kOpen (possibly with bytes still pending), or kError when the
  /// peer is gone.
  ReadState FlushWrites();

  /// True while queued bytes remain unsent — keep POLLOUT interest on.
  bool wants_write() const { return write_pos_ < write_buffer_.size(); }

  int64_t lines_read() const { return lines_read_; }
  int64_t lines_written() const { return lines_written_; }

 private:
  Socket socket_;
  LineFramer framer_;
  std::string write_buffer_;
  size_t write_pos_ = 0;
  int64_t lines_read_ = 0;
  int64_t lines_written_ = 0;
  bool read_error_ = false;
};

/// Blocking request/response client for the JSON-lines protocol.
class LineClient {
 public:
  /// Connects to 127.0.0.1-style `host`:`port`.
  static Result<LineClient> Connect(const std::string& host, uint16_t port);

  /// Sends `line` + '\n' (blocking until fully written).
  Status SendLine(const std::string& line);

  /// Reads one '\n'-terminated line (blocking). NotFound on clean EOF
  /// before a complete line.
  Result<std::string> ReadLine();

  /// Half-close: no more requests, but responses can still be read.
  Status FinishWriting();

 private:
  explicit LineClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
  // Responses (large query-answer batches) have no line cap on the
  // client side; only server-side requests are bounded.
  LineFramer framer_{SIZE_MAX};
};

}  // namespace dpjoin

#endif  // DPJOIN_NET_LINE_CHANNEL_H_
