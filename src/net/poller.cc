#include "net/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#define DPJOIN_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define DPJOIN_HAVE_EPOLL 0
#endif

namespace dpjoin {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Poller::Poller(Backend backend) : backend_(backend) {
#if DPJOIN_HAVE_EPOLL
  if (backend_ == Backend::kAuto) backend_ = Backend::kEpoll;
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;  // degrade, don't die
  }
#else
  backend_ = Backend::kPoll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#if DPJOIN_HAVE_EPOLL
namespace {

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace
#endif

Status Poller::Add(int fd, bool want_read, bool want_write) {
  if (interest_.count(fd) != 0) {
    return Status::InvalidArgument("fd " + std::to_string(fd) +
                                   " is already watched");
  }
#if DPJOIN_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  interest_[fd] = {want_read, want_write};
  return Status::OK();
}

Status Poller::Update(int fd, bool want_read, bool want_write) {
  const auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " is not watched");
  }
#if DPJOIN_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  it->second = {want_read, want_write};
  return Status::OK();
}

Status Poller::Remove(int fd) {
  if (interest_.erase(fd) == 0) {
    return Status::NotFound("fd " + std::to_string(fd) + " is not watched");
  }
#if DPJOIN_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
      return Errno("epoll_ctl(DEL)");
    }
  }
#endif
  return Status::OK();
}

Status Poller::Wait(int timeout_ms, std::vector<Event>* events) {
  events->clear();
#if DPJOIN_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    // One output slot per watched fd; epoll_wait fills at most that many.
    std::vector<epoll_event> ready(interest_.empty() ? 1 : interest_.size());
    const int n = ::epoll_wait(epoll_fd_, ready.data(),
                               static_cast<int>(ready.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();  // caller re-evaluates + waits
      return Errno("epoll_wait");
    }
    events->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[static_cast<size_t>(i)].data.fd;
      const uint32_t mask = ready[static_cast<size_t>(i)].events;
      event.readable = (mask & EPOLLIN) != 0;
      event.writable = (mask & EPOLLOUT) != 0;
      event.error = (mask & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }
#endif
  // poll(2) path: rebuild the pollfd set from the interest map. Order is
  // whatever the map yields — callers never depend on event order.
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, interest] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (interest.read) p.events |= POLLIN;
    if (interest.write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    return Errno("poll");
  }
  events->reserve(static_cast<size_t>(n));
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return Status::OK();
}

}  // namespace dpjoin
