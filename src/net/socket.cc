#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace dpjoin {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// MSG_NOSIGNAL keeps a write to a peer-closed socket an EPIPE error instead
// of a process-killing SIGPIPE — a serving daemon must survive any client.
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SetNoDelay(bool enabled) {
  const int value = enabled ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) <
      0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<int64_t> Socket::Read(void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t{-1};
    return Errno("recv");
  }
}

Result<int64_t> Socket::Write(const void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd_, buf, len, kSendFlags);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t{-1};
    return Errno("send");
  }
}

Result<Socket> ListenTcp(uint16_t port, const ListenOptions& options) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  const int reuse = 1;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &reuse,
                   sizeof(reuse)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(socket.fd(), options.backlog) < 0) return Errno("listen");
  DPJOIN_RETURN_NOT_OK(socket.SetNonBlocking(true));
  return socket;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptConnection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket socket(fd);
      DPJOIN_RETURN_NOT_OK(socket.SetNonBlocking(true));
      // Best-effort: some accepted fds (e.g. AF_UNIX in future tests)
      // have no TCP_NODELAY; a refusal is not fatal.
      (void)socket.SetNoDelay(true);  // latency knob, not correctness
      return socket;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    // Transient per-connection failures (the peer vanished between the
    // poll and the accept) must not kill the accept loop.
    if (errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 literal: '" + host + "'");
  }
  for (;;) {
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      (void)socket.SetNoDelay(true);  // latency knob, not correctness
      return socket;
    }
    if (errno == EINTR) continue;
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  DPJOIN_CHECK(::pipe(fds) == 0, "WakePipe: pipe() failed");
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  DPJOIN_CHECK(read_end_.SetNonBlocking(true).ok(),
               "WakePipe: cannot set O_NONBLOCK");
  DPJOIN_CHECK(write_end_.SetNonBlocking(true).ok(),
               "WakePipe: cannot set O_NONBLOCK");
}

void WakePipe::Notify() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)::write(write_end_.fd(), &byte, 1);
}

void WakePipe::Drain() {
  char buf[64];
  while (::read(read_end_.fd(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace dpjoin
