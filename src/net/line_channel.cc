#include "net/line_channel.h"

#include <sys/socket.h>

#include <utility>

namespace dpjoin {

LineChannel::LineChannel(Socket socket, size_t max_line_bytes)
    : socket_(std::move(socket)), framer_(max_line_bytes) {}

LineChannel::ReadState LineChannel::ReadLines(
    std::vector<std::string>* lines) {
  if (read_error_) return ReadState::kError;
  char chunk[16384];
  for (;;) {
    auto n = socket_.Read(chunk, sizeof(chunk));
    if (!n.ok()) {
      read_error_ = true;
      return ReadState::kError;
    }
    if (*n == -1) break;  // drained: would block
    if (*n == 0) {
      // Peer EOF. Any unterminated tail is discarded — a half-line at EOF
      // is a truncated request, not a request.
      return ReadState::kEof;
    }
    const bool ok = framer_.Append(chunk, static_cast<size_t>(*n));
    // Lines completed before an oversized tail are still delivered.
    lines_read_ += static_cast<int64_t>(framer_.DrainLines(lines));
    if (!ok) {
      read_error_ = true;
      return ReadState::kError;
    }
  }
  return ReadState::kOpen;
}

void LineChannel::QueueLine(const std::string& line) {
  // Compact the consumed prefix before growing — the buffer stays
  // proportional to genuinely unsent bytes, not to connection lifetime.
  if (write_pos_ > 0 && write_pos_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > (1u << 16)) {
    write_buffer_.erase(0, write_pos_);
    write_pos_ = 0;
  }
  write_buffer_.append(line);
  write_buffer_.push_back('\n');
  ++lines_written_;
}

LineChannel::ReadState LineChannel::FlushWrites() {
  while (write_pos_ < write_buffer_.size()) {
    auto n = socket_.Write(write_buffer_.data() + write_pos_,
                           write_buffer_.size() - write_pos_);
    if (!n.ok()) return ReadState::kError;
    if (*n == -1) break;  // kernel buffer full: wait for POLLOUT
    write_pos_ += static_cast<size_t>(*n);
  }
  return ReadState::kOpen;
}

Result<LineClient> LineClient::Connect(const std::string& host,
                                       uint16_t port) {
  DPJOIN_ASSIGN_OR_RETURN(Socket socket, ConnectTcp(host, port));
  return LineClient(std::move(socket));
}

Status LineClient::SendLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    DPJOIN_ASSIGN_OR_RETURN(
        int64_t n, socket_.Write(framed.data() + sent, framed.size() - sent));
    // A blocking socket never returns would-block; treat it as a stall.
    if (n <= 0) return Status::Internal("short write on blocking socket");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  for (;;) {
    std::string line;
    if (framer_.PopLine(&line)) return line;
    char chunk[16384];
    DPJOIN_ASSIGN_OR_RETURN(int64_t n, socket_.Read(chunk, sizeof(chunk)));
    if (n == 0) {
      return Status::NotFound("connection closed before a complete line");
    }
    if (n > 0) framer_.Append(chunk, static_cast<size_t>(n));
  }
}

Status LineClient::FinishWriting() {
  if (::shutdown(socket_.fd(), SHUT_WR) < 0) {
    return Status::Internal("shutdown(SHUT_WR) failed");
  }
  return Status::OK();
}

}  // namespace dpjoin
