#include "engine/budget_ledger.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dpjoin {

namespace {

void AppendParamsJson(std::ostringstream& oss, double epsilon, double delta) {
  oss << "{\"epsilon\": " << epsilon << ", \"delta\": " << delta << "}";
}

// Ledger labels are engine-supplied spec names / mechanism labels; escape
// the JSON-breaking characters anyway so a hostile name cannot corrupt the
// audit record.
std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<int64_t> BudgetLedger::Reserve(const std::string& label,
                                      const PrivacyParams& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const double remaining_eps = RemainingEpsilonLocked();
  const double remaining_del = RemainingDeltaLocked();
  if (request.epsilon > remaining_eps + 1e-12 ||
      request.delta > remaining_del + 1e-15) {
    std::ostringstream oss;
    oss << "release '" << label << "' requests (" << request.epsilon << ", "
        << request.delta << ") but only (" << remaining_eps << ", "
        << remaining_del << ") of the global cap (" << cap_.epsilon << ", "
        << cap_.delta << ") remains";
    return Status::FailedPrecondition(oss.str());
  }
  const int64_t ticket = next_ticket_++;
  outstanding_.emplace(ticket, Reservation{label, request});
  reserved_epsilon_ += request.epsilon;
  reserved_delta_ += request.delta;
  return ticket;
}

void BudgetLedger::Commit(int64_t ticket, const PrivacyAccountant& accountant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = outstanding_.find(ticket);
  DPJOIN_CHECK(it != outstanding_.end(), "unknown or settled ledger ticket");
  const std::string label = it->second.label;
  reserved_epsilon_ -= it->second.request.epsilon;
  reserved_delta_ -= it->second.request.delta;
  outstanding_.erase(it);

  const PrivacyParams total = accountant.Total();
  committed_.push_back(Entry{label, total, accountant.entries()});
  committed_epsilon_ += total.epsilon;
  committed_delta_ += total.delta;
}

void BudgetLedger::Abandon(int64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = outstanding_.find(ticket);
  DPJOIN_CHECK(it != outstanding_.end(), "unknown or settled ledger ticket");
  reserved_epsilon_ -= it->second.request.epsilon;
  reserved_delta_ -= it->second.request.delta;
  outstanding_.erase(it);
}

PrivacyParams BudgetLedger::Total() const {
  std::lock_guard<std::mutex> lock(mu_);
  DPJOIN_CHECK(!committed_.empty(), "BudgetLedger::Total() with no releases");
  return PrivacyParams(committed_epsilon_, std::min(committed_delta_, 0.5));
}

double BudgetLedger::SpentEpsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_epsilon_;
}

double BudgetLedger::SpentDelta() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_delta_;
}

double BudgetLedger::RemainingEpsilonLocked() const {
  return std::max(0.0, cap_.epsilon - committed_epsilon_ - reserved_epsilon_);
}

double BudgetLedger::RemainingDeltaLocked() const {
  return std::max(0.0, cap_.delta - committed_delta_ - reserved_delta_);
}

double BudgetLedger::RemainingEpsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RemainingEpsilonLocked();
}

double BudgetLedger::RemainingDelta() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RemainingDeltaLocked();
}

int64_t BudgetLedger::num_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(committed_.size());
}

int64_t BudgetLedger::num_outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(outstanding_.size());
}

std::vector<BudgetLedger::Entry> BudgetLedger::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

std::string BudgetLedger::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "budget cap (" << cap_.epsilon << ", " << cap_.delta << ")\n";
  for (const Entry& entry : committed_) {
    oss << "  " << entry.label << ": (" << entry.total.epsilon << ", "
        << entry.total.delta << ")\n";
  }
  oss << "spent (" << committed_epsilon_ << ", " << committed_delta_
      << "), remaining (" << RemainingEpsilonLocked() << ", "
      << RemainingDeltaLocked() << ")";
  if (!outstanding_.empty()) {
    oss << ", " << outstanding_.size() << " reservation(s) outstanding";
  }
  return oss.str();
}

std::string BudgetLedger::SerializeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"cap\": ";
  AppendParamsJson(oss, cap_.epsilon, cap_.delta);
  oss << ", \"entries\": [";
  for (size_t i = 0; i < committed_.size(); ++i) {
    const Entry& entry = committed_[i];
    if (i > 0) oss << ", ";
    oss << "{\"label\": \"" << EscapeLabel(entry.label) << "\", \"total\": ";
    AppendParamsJson(oss, entry.total.epsilon, entry.total.delta);
    oss << ", \"breakdown\": [";
    for (size_t j = 0; j < entry.breakdown.size(); ++j) {
      if (j > 0) oss << ", ";
      oss << "{\"label\": \"" << EscapeLabel(entry.breakdown[j].label)
          << "\", \"params\": ";
      AppendParamsJson(oss, entry.breakdown[j].params.epsilon,
                       entry.breakdown[j].params.delta);
      oss << "}";
    }
    oss << "]}";
  }
  oss << "], \"total\": ";
  AppendParamsJson(oss, committed_epsilon_, committed_delta_);
  oss << ", \"remaining\": ";
  AppendParamsJson(oss, RemainingEpsilonLocked(), RemainingDeltaLocked());
  oss << "}";
  return oss.str();
}

}  // namespace dpjoin
