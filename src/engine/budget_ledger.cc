#include "engine/budget_ledger.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/json.h"

namespace dpjoin {

namespace {

void AppendParamsJson(std::ostringstream& oss, double epsilon, double delta) {
  // %.17g: the serialization doubles as restart persistence (SaveJson /
  // LoadJson), and recorded privacy spend must round-trip value-exact —
  // truncating digits here would silently shrink the spend a restarted
  // server enforces.
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", epsilon);
  oss << "{\"epsilon\": " << buffer;
  std::snprintf(buffer, sizeof(buffer), "%.17g", delta);
  oss << ", \"delta\": " << buffer << "}";
}

// Ledger labels are engine-supplied spec names / mechanism labels; escape
// the JSON-breaking characters anyway so a hostile name cannot corrupt the
// audit record.
std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<int64_t> BudgetLedger::Reserve(const std::string& label,
                                      const PrivacyParams& request) {
  MutexLock lock(mu_);
  const double remaining_eps = RemainingEpsilonLocked();
  const double remaining_del = RemainingDeltaLocked();
  if (request.epsilon > remaining_eps + 1e-12 ||
      request.delta > remaining_del + 1e-15) {
    std::ostringstream oss;
    oss << "release '" << label << "' requests (" << request.epsilon << ", "
        << request.delta << ") but only (" << remaining_eps << ", "
        << remaining_del << ") of the global cap (" << cap_.epsilon << ", "
        << cap_.delta << ") remains";
    return Status::FailedPrecondition(oss.str());
  }
  const int64_t ticket = next_ticket_++;
  outstanding_.emplace(ticket, Reservation{label, request});
  reserved_epsilon_ += request.epsilon;
  reserved_delta_ += request.delta;
  return ticket;
}

void BudgetLedger::Commit(int64_t ticket, const PrivacyAccountant& accountant) {
  MutexLock lock(mu_);
  const auto it = outstanding_.find(ticket);
  DPJOIN_CHECK(it != outstanding_.end(), "unknown or settled ledger ticket");
  const std::string label = it->second.label;
  reserved_epsilon_ -= it->second.request.epsilon;
  reserved_delta_ -= it->second.request.delta;
  outstanding_.erase(it);

  const PrivacyParams total = accountant.Total();
  committed_.push_back(Entry{label, total, accountant.entries()});
  committed_epsilon_ += total.epsilon;
  committed_delta_ += total.delta;
}

void BudgetLedger::Abandon(int64_t ticket) {
  MutexLock lock(mu_);
  const auto it = outstanding_.find(ticket);
  DPJOIN_CHECK(it != outstanding_.end(), "unknown or settled ledger ticket");
  reserved_epsilon_ -= it->second.request.epsilon;
  reserved_delta_ -= it->second.request.delta;
  outstanding_.erase(it);
}

PrivacyParams BudgetLedger::Total() const {
  MutexLock lock(mu_);
  DPJOIN_CHECK(!committed_.empty(), "BudgetLedger::Total() with no releases");
  return PrivacyParams(committed_epsilon_, std::min(committed_delta_, 0.5));
}

double BudgetLedger::SpentEpsilon() const {
  MutexLock lock(mu_);
  return committed_epsilon_;
}

double BudgetLedger::SpentDelta() const {
  MutexLock lock(mu_);
  return committed_delta_;
}

double BudgetLedger::RemainingEpsilonLocked() const {
  return std::max(0.0, cap_.epsilon - committed_epsilon_ - reserved_epsilon_);
}

double BudgetLedger::RemainingDeltaLocked() const {
  return std::max(0.0, cap_.delta - committed_delta_ - reserved_delta_);
}

double BudgetLedger::RemainingEpsilon() const {
  MutexLock lock(mu_);
  return RemainingEpsilonLocked();
}

double BudgetLedger::RemainingDelta() const {
  MutexLock lock(mu_);
  return RemainingDeltaLocked();
}

int64_t BudgetLedger::num_committed() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(committed_.size());
}

int64_t BudgetLedger::num_outstanding() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(outstanding_.size());
}

std::vector<BudgetLedger::Entry> BudgetLedger::Entries() const {
  MutexLock lock(mu_);
  return committed_;
}

std::string BudgetLedger::ToString() const {
  MutexLock lock(mu_);
  std::ostringstream oss;
  oss << "budget cap (" << cap_.epsilon << ", " << cap_.delta << ")\n";
  for (const Entry& entry : committed_) {
    oss << "  " << entry.label << ": (" << entry.total.epsilon << ", "
        << entry.total.delta << ")\n";
  }
  oss << "spent (" << committed_epsilon_ << ", " << committed_delta_
      << "), remaining (" << RemainingEpsilonLocked() << ", "
      << RemainingDeltaLocked() << ")";
  if (!outstanding_.empty()) {
    oss << ", " << outstanding_.size() << " reservation(s) outstanding";
  }
  return oss.str();
}

std::string BudgetLedger::SerializeJson() const {
  MutexLock lock(mu_);
  std::ostringstream oss;
  oss << "{\"cap\": ";
  AppendParamsJson(oss, cap_.epsilon, cap_.delta);
  oss << ", \"entries\": [";
  for (size_t i = 0; i < committed_.size(); ++i) {
    const Entry& entry = committed_[i];
    if (i > 0) oss << ", ";
    oss << "{\"label\": \"" << EscapeLabel(entry.label) << "\", \"total\": ";
    AppendParamsJson(oss, entry.total.epsilon, entry.total.delta);
    oss << ", \"breakdown\": [";
    for (size_t j = 0; j < entry.breakdown.size(); ++j) {
      if (j > 0) oss << ", ";
      oss << "{\"label\": \"" << EscapeLabel(entry.breakdown[j].label)
          << "\", \"params\": ";
      AppendParamsJson(oss, entry.breakdown[j].params.epsilon,
                       entry.breakdown[j].params.delta);
      oss << "}";
    }
    oss << "]}";
  }
  oss << "], \"total\": ";
  AppendParamsJson(oss, committed_epsilon_, committed_delta_);
  oss << ", \"remaining\": ";
  AppendParamsJson(oss, RemainingEpsilonLocked(), RemainingDeltaLocked());
  oss << "}";
  return oss.str();
}

void BudgetLedger::Snapshot(double* spent_epsilon, double* spent_delta,
                            double* remaining_epsilon,
                            double* remaining_delta,
                            int64_t* num_committed) const {
  MutexLock lock(mu_);
  *spent_epsilon = committed_epsilon_;
  *spent_delta = committed_delta_;
  *remaining_epsilon = RemainingEpsilonLocked();
  *remaining_delta = RemainingDeltaLocked();
  *num_committed = static_cast<int64_t>(committed_.size());
}

Status BudgetLedger::SaveJson(const std::string& path) const {
  const std::string json = SerializeJson();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) {
      return Status::NotFound("cannot write ledger file '" + tmp + "'");
    }
    file << json << "\n";
    // Flush and re-check BEFORE the rename: a buffered write that fails at
    // close (ENOSPC, say) must not replace a previously good ledger with a
    // truncated one.
    file.flush();
    if (!file.good()) {
      return Status::Internal("short write to ledger file '" + tmp + "'");
    }
  }
#ifndef _WIN32
  // fsync the temp file before publishing it: rename() is metadata-atomic,
  // but without a data sync a crash can leave the NEW name pointing at
  // not-yet-written blocks — destroying the only copy of the spend record.
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      return Status::Internal("cannot fsync ledger file '" + tmp + "'");
    }
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
#ifndef _WIN32
  // Best-effort directory sync so the rename itself is durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
  return Status::OK();
}

namespace {

// Reads {"epsilon": e, "delta": d} with finite non-negative values.
Result<PrivacyParams> ParseParamsJson(const JsonValue& v,
                                      const std::string& what) {
  if (!v.is_object()) {
    return Status::InvalidArgument("ledger file: " + what +
                                   " is not an object");
  }
  const JsonValue* eps = v.Find("epsilon");
  const JsonValue* del = v.Find("delta");
  if (eps == nullptr || del == nullptr || !eps->is_number() ||
      !del->is_number()) {
    return Status::InvalidArgument("ledger file: " + what +
                                   " needs numeric epsilon and delta");
  }
  const double e = eps->AsDouble(), d = del->AsDouble();
  if (!std::isfinite(e) || e < 0.0 || !std::isfinite(d) || d < 0.0) {
    return Status::InvalidArgument("ledger file: " + what +
                                   " has negative or non-finite budget");
  }
  // Field assignment, not the checking constructor: recorded spends may
  // legitimately carry ε = 0 components (e.g. PMW's degenerate rounds=0
  // entry), which PrivacyParams(e, d) would abort on.
  PrivacyParams params;
  params.epsilon = e;
  params.delta = d;
  return params;
}

}  // namespace

Status BudgetLedger::LoadJson(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open ledger file '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  JsonValue root;
  {
    auto parsed = JsonValue::Parse(text.str());
    if (!parsed.ok()) {
      return Status(parsed.status().code(), "ledger file '" + path +
                                                "': " +
                                                parsed.status().message());
    }
    root = std::move(parsed).value();
  }
  if (!root.is_object() || root.Find("entries") == nullptr ||
      !root.Find("entries")->is_array()) {
    return Status::InvalidArgument("ledger file '" + path +
                                   "' has no entries array");
  }

  // Parse everything before mutating any state.
  std::vector<Entry> entries;
  double total_epsilon = 0.0, total_delta = 0.0;
  for (const JsonValue& item : root.Find("entries")->items()) {
    if (!item.is_object() || item.Find("label") == nullptr ||
        !item.Find("label")->is_string() || item.Find("total") == nullptr) {
      return Status::InvalidArgument(
          "ledger file '" + path +
          "': every entry needs a string label and a total");
    }
    Entry entry;
    entry.label = item.Find("label")->AsString();
    DPJOIN_ASSIGN_OR_RETURN(
        entry.total, ParseParamsJson(*item.Find("total"),
                                     "entry '" + entry.label + "' total"));
    if (const JsonValue* breakdown = item.Find("breakdown")) {
      if (!breakdown->is_array()) {
        return Status::InvalidArgument("ledger file '" + path +
                                       "': breakdown is not an array");
      }
      for (const JsonValue& spend : breakdown->items()) {
        if (!spend.is_object() || spend.Find("label") == nullptr ||
            !spend.Find("label")->is_string() ||
            spend.Find("params") == nullptr) {
          return Status::InvalidArgument(
              "ledger file '" + path +
              "': every breakdown spend needs a label and params");
        }
        PrivacyAccountant::Entry be;
        be.label = spend.Find("label")->AsString();
        DPJOIN_ASSIGN_OR_RETURN(
            be.params, ParseParamsJson(*spend.Find("params"),
                                       "spend '" + be.label + "'"));
        entry.breakdown.push_back(std::move(be));
      }
    }
    total_epsilon += entry.total.epsilon;
    total_delta += entry.total.delta;
    entries.push_back(std::move(entry));
  }

  MutexLock lock(mu_);
  if (!committed_.empty() || !outstanding_.empty()) {
    return Status::FailedPrecondition(
        "LoadJson needs an empty ledger: this one has " +
        std::to_string(committed_.size()) + " commit(s) and " +
        std::to_string(outstanding_.size()) + " reservation(s)");
  }
  // Refuse a file that resurrects more spend than this process's cap: the
  // restarted server must keep honoring the guarantee it is configured for.
  if (total_epsilon > cap_.epsilon + 1e-12 ||
      total_delta > cap_.delta + 1e-15) {
    std::ostringstream oss;
    oss << "ledger file '" << path << "' records spend (" << total_epsilon
        << ", " << total_delta << ") exceeding the configured cap ("
        << cap_.epsilon << ", " << cap_.delta << ") — refusing to load";
    return Status::FailedPrecondition(oss.str());
  }
  committed_ = std::move(entries);
  committed_epsilon_ = total_epsilon;
  committed_delta_ = total_delta;
  return Status::OK();
}

}  // namespace dpjoin
