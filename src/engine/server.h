// dpjoin_serve: a long-lived JSON-lines request loop over a ReleaseEngine.
//
// One request per input line, one response per output line — the classic
// stdin/stdout protocol that composes with pipes, tests, and benches, and
// upgrades trivially to a socket. Every command is a JSON object with a
// "cmd" member:
//
//   {"cmd": "register", "name": "demo",
//    "source": "generated:zipf(tuples=400,s=1.0,seed=7)",
//    "attributes": ["A:8", "B:4", "C:8"],
//    "relations": ["R1:A,B", "R2:B,C"]}
//     -> {"ok": true, "cmd": "register", "name": "demo",
//         "source": "<canonical>", "fingerprint": "0x...",
//         "input_size": N, "num_relations": m}
//
//   {"cmd": "release", "dataset": "demo", "seed": 7,
//    "spec": "# dpjoin-release-spec v1\nname = r1\n..."}
//     -> {"ok": true, "cmd": "release", "release": "0x...", "name": "r1",
//         "dataset": "demo", "mechanism": "...", "from_cache": false,
//         "rationale": "...", "num_queries": N,
//         "spent": {"epsilon": e, "delta": d}, "remaining": {...}}
//        (re-releasing an identical spec+dataset: from_cache = true and
//         spent unchanged — privacy is paid once)
//
//   {"cmd": "query", "release": "0x...", "queries": [0, 3, 7]}   or
//   {"cmd": "query", "release": "0x...", "all": true}
//     -> {"ok": true, "cmd": "query", "answers": [...]}
//
//   {"cmd": "unregister", "name": "demo"}
//     -> frees the catalog name (releases already paid keep serving; no
//        budget is refunded). Auto-registered csv:/generated: datasets can
//        be dropped this way too (their auto-name is source@schema-hash) —
//        until an eviction policy exists, long-running servers releasing
//        over many DISTINCT sources should unregister retired ones.
//
//   {"cmd": "ledger"}   -> {"ok": true, "cmd": "ledger", "ledger": {...}}
//   {"cmd": "stats"}    -> cache/catalog/fingerprint/save-failure counters
//   {"cmd": "shutdown"} -> {"ok": true, ...}; Serve() returns
//
// Errors never kill the loop: a malformed line or failed command answers
// {"ok": false, "cmd": ..., "error": "<Code>: <message>"} and the server
// keeps serving. 64-bit ids (release ids, fingerprints) travel as 0x-hex
// strings because JSON numbers are doubles.
//
// HandleLine is safe to call from any number of threads (the engine's
// catalog/ledger/cache synchronize internally); Serve() is the
// single-threaded convenience loop over a stream pair. When
// ServerOptions::ledger_path is set, the ledger is loaded at construction
// (if the file exists) and saved after every fresh release, so a restarted
// server resumes with its spent budget intact.

#ifndef DPJOIN_ENGINE_SERVER_H_
#define DPJOIN_ENGINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include <vector>

#include "common/json.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/engine.h"
#include "engine/serving_stats.h"

namespace dpjoin {

/// A parsed `query` request: which release, and either the whole workload
/// (`all`) or an explicit id list. Shared between the inline stdio path and
/// the net front-end's micro-batcher so both produce byte-identical wire
/// responses from identical requests.
struct QueryCommand {
  uint64_t release_id = 0;
  bool all = false;
  std::vector<int64_t> ids;
};

/// Parses the wire form ({"release": "0x...", "queries": [...]} or
/// {"release": "0x...", "all": true}). Purely syntactic — the release is
/// not looked up, so a batcher can parse at enqueue time and resolve at
/// flush time.
Result<QueryCommand> ParseQueryCommand(const JsonValue& request);

/// The ok:true `query` response carrying `answers` — THE one serializer
/// for query results, so batched and inline paths cannot drift.
JsonValue QueryAnswersResponse(const std::vector<double>& answers);

/// The ok:false `query` response for `status` (same shape every failed
/// query gets, whichever path produced it).
JsonValue QueryErrorResponse(const Status& status);

struct ServerOptions {
  /// Base directory for relative `csv:` dataset paths.
  std::string base_dir;

  /// When non-empty: LoadJson at startup (missing file = fresh start),
  /// SaveJson after every budget-spending release.
  std::string ledger_path;
};

class ReleaseServer {
 public:
  /// The engine must outlive the server. Ledger restore errors from
  /// `options.ledger_path` are deferred to startup_status() so callers can
  /// decide whether a corrupt/over-cap file is fatal.
  ReleaseServer(ReleaseEngine& engine, ServerOptions options = {});

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  /// OK, or why the ledger restore was refused (over-cap, corrupt file).
  const Status& startup_status() const { return startup_status_; }

  /// Handles one request line, returns one response line (no trailing
  /// newline). Never fails — protocol errors become ok:false responses.
  std::string HandleLine(const std::string& line);

  /// Reads JSON-lines from `in` until EOF or a shutdown command, writing
  /// one response line each (flushed — the peer may be a pipe waiting on
  /// the answer). Returns the number of requests handled.
  int64_t Serve(std::istream& in, std::ostream& out);

  int64_t num_requests() const { return requests_.load(); }

  /// The engine this server fronts — the net layer's batcher answers
  /// queries against it directly (responses still flow through the shared
  /// QueryAnswersResponse/QueryErrorResponse serializers).
  ReleaseEngine& engine() { return engine_; }

  /// Counts a request that bypassed HandleLine (a batched query taken off
  /// a connection by the net front-end) so `stats.requests` stays the
  /// number of protocol requests, not the number of HandleLine calls.
  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }

  /// Per-release query counters + batch-size histogram, surfaced under
  /// `stats.serving`. The batcher records coalesced batches here; the
  /// inline query path records batches of one.
  ServingStats& serving_stats() { return serving_stats_; }

 private:
  // `shutdown` (optional) is set when the request was a shutdown command,
  // so Serve() needs no second parse of the line.
  std::string HandleLineImpl(const std::string& line, bool* shutdown);
  JsonValue Dispatch(const JsonValue& request, bool* shutdown);
  JsonValue HandleRegister(const JsonValue& request);
  JsonValue HandleUnregister(const JsonValue& request);
  JsonValue HandleRelease(const JsonValue& request);
  JsonValue HandleQuery(const JsonValue& request);
  JsonValue HandleLedger();
  JsonValue HandleStats();

  void MaybeSaveLedger() EXCLUDES(save_mu_);

  ReleaseEngine& engine_;
  const ServerOptions options_;
  Status startup_status_;
  ServingStats serving_stats_;
  std::atomic<int64_t> requests_{0};
  // Failed ledger saves: logged to stderr and surfaced in `stats` so an
  // operator can see the on-disk record drifting from real spend.
  std::atomic<int64_t> ledger_save_failures_{0};
  // Serializes ledger-file writes (guards the FILE at ledger_path, not a
  // field — two interleaved SaveJson tmp+rename sequences could publish a
  // stale spend record over a newer one).
  Mutex save_mu_;
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_SERVER_H_
