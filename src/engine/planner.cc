#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/theory_bounds.h"
#include "dp/composition.h"
#include "query/factored_tensor.h"
#include "query/workload_evaluator.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {

namespace {

// Matches the default dense-materialization envelope of ReleaseShape()
// (query/evaluation.h): the largest release domain PMW will materialize.
constexpr double kDenseCellCap = static_cast<double>(int64_t{1} << 26);

// The theory-bound helpers CHECK |Q| > 1 (log|Q| appears in f_upper); the
// counting-only family clamps to e so log|Q| -> 1 and predictions stay
// finite.
double PredictSyntheticError(MechanismKind mechanism,
                             const InstanceStats& stats,
                             const PrivacyParams& params) {
  const double query_count =
      std::max(static_cast<double>(stats.query_count), std::exp(1.0));
  switch (mechanism) {
    case MechanismKind::kPmw:
      if (stats.num_relations == 1) {
        return SingleTableUpperBound(static_cast<double>(stats.input_size),
                                     stats.release_domain_cells, query_count,
                                     params);
      }
      return MultiTableUpperBound(stats.join_count,
                                  std::max(stats.residual_sensitivity, 1.0),
                                  stats.release_domain_cells, query_count,
                                  params);
    case MechanismKind::kTwoTable:
      return TwoTableUpperBound(stats.join_count,
                                std::max(stats.local_sensitivity, 1.0),
                                stats.release_domain_cells, query_count,
                                params);
    case MechanismKind::kHierarchical:
      // No per-bucket closed form without running the partition; the
      // Algorithm 3 bound with RS^β is the planner's proxy (Theorem C.2
      // replaces RS by the per-configuration bound, which RS dominates).
      return MultiTableUpperBound(stats.join_count,
                                  std::max(stats.residual_sensitivity, 1.0),
                                  stats.release_domain_cells, query_count,
                                  params);
    case MechanismKind::kLaplace:
    case MechanismKind::kAuto:
      break;
  }
  return 0.0;
}

// A factorization PMW's product-form backing can run: every query factors
// over the attribute groups, every group's table fits the dense envelope,
// and so does their sum (the factored release's total memory).
bool FactorizationFits(const WorkloadFactorization& wf) {
  return wf.product_form &&
         static_cast<double>(wf.max_group_cells) <= kDenseCellCap &&
         wf.sum_cells <= kDenseCellCap;
}

// "3 disjoint attribute groups (factor sizes 256 + 16 + 4096 = 4368 cells
// vs 1.6777e+07 dense)" — the factor-size math behind a factored plan.
void AppendFactorSizes(const WorkloadFactorization& wf, std::ostream& os) {
  os << wf.groups.size() << " disjoint attribute groups (factor sizes ";
  for (size_t k = 0; k < wf.group_cells.size(); ++k) {
    if (k > 0) os << " + ";
    os << wf.group_cells[k];
  }
  os << " = " << wf.sum_cells << " cells vs " << wf.total_cells << " dense)";
}

void AdoptFactorization(WorkloadFactorization wf, Plan* plan) {
  plan->factored = true;
  plan->factor_groups = std::move(wf.groups);
  plan->factor_cells = std::move(wf.group_cells);
}

}  // namespace

InstanceStats ComputeInstanceStats(const Instance& instance,
                                   const QueryFamily& family,
                                   const PrivacyParams& params) {
  const JoinQuery& query = instance.query();
  InstanceStats stats;
  stats.num_relations = query.num_relations();
  stats.input_size = instance.InputSize();
  stats.join_count = ParallelJoinCount(instance);
  stats.hierarchical = query.IsHierarchical();
  stats.release_domain_cells = query.ReleaseDomainSize();
  stats.query_count = family.TotalCount();
  if (stats.num_relations == 1) {
    // A single relation's count changes by exactly 1 between neighbors.
    stats.local_sensitivity = 1.0;
    stats.residual_sensitivity = 1.0;
  } else {
    stats.local_sensitivity = LocalSensitivity(instance);
    stats.residual_sensitivity =
        ResidualSensitivityValue(instance, 1.0 / params.Lambda());
  }
  return stats;
}

int64_t PmwLaplaceCrossoverQueries(double release_domain_cells) {
  const double dim = std::log2(std::max(release_domain_cells, 2.0));
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(dim)));
}

double PredictedLaplaceError(double delta_tilde, int64_t query_count,
                             const PrivacyParams& params,
                             CompositionRule rule) {
  // Mirrors core/independent_laplace: (ε/2, δ/2) buys Δ̃, the other half is
  // shared across |Q| answers; each answer's noise has scale Δ̃/ε_q. The
  // advanced-composition share scales as ε/(2·sqrt(8|Q|·ln(2/δ))) (Theorem
  // 3.20 of Dwork–Roth, the same form AdvancedComposition inverts).
  const double k = static_cast<double>(query_count);
  double per_query = 0.0;
  switch (rule) {
    case CompositionRule::kBasic:
      per_query = (params.epsilon / 2.0) / k;
      break;
    case CompositionRule::kAdvanced:
      per_query = (params.epsilon / 2.0) /
                  std::sqrt(8.0 * k * std::log(2.0 / params.delta));
      break;
  }
  return delta_tilde / per_query;
}

Result<Plan> PlanRelease(const ReleaseSpec& spec, const Instance& instance,
                         const QueryFamily& family) {
  const JoinQuery& query = instance.query();
  const PrivacyParams budget = spec.Budget();
  Plan plan;
  plan.stats = ComputeInstanceStats(instance, family, budget);
  const InstanceStats& stats = plan.stats;
  const bool dense_ok = stats.release_domain_cells <= kDenseCellCap;
  const int m = stats.num_relations;

  std::ostringstream why;
  if (spec.mechanism != MechanismKind::kAuto) {
    // Explicit request: validate structural feasibility only.
    plan.mechanism = spec.mechanism;
    why << "explicitly requested " << MechanismName(spec.mechanism);
    switch (spec.mechanism) {
      case MechanismKind::kLaplace:
        break;
      case MechanismKind::kTwoTable:
        if (m != 2) {
          return Status::InvalidArgument(
              "mechanism two_table needs exactly two relations, query has " +
              std::to_string(m) + " (use pmw/hierarchical)");
        }
        break;
      case MechanismKind::kHierarchical:
        if (!stats.hierarchical) {
          return Status::InvalidArgument(
              "mechanism hierarchical needs a hierarchical join query "
              "(atom(x)/atom(y) nested or disjoint for every attribute "
              "pair); " +
              query.ToString() + " is not (use pmw)");
        }
        break;
      case MechanismKind::kPmw:
        break;
      case MechanismKind::kAuto:
        break;  // unreachable
    }
    if (spec.mechanism != MechanismKind::kLaplace && !dense_ok) {
      // One escape hatch: single-relation PMW whose workload factorizes
      // into envelope-sized groups runs on the product-form backing.
      bool factored_ok = false;
      if (spec.mechanism == MechanismKind::kPmw && m == 1 &&
          spec.pmw_backing != PmwBackingKind::kDense) {
        WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
        if (FactorizationFits(wf)) {
          why << "; |D| = " << stats.release_domain_cells
              << " cells exceeds the dense envelope (" << kDenseCellCap
              << ") but the workload factors into ";
          AppendFactorSizes(wf, why);
          why << " — product-form FactoredTensor backing";
          AdoptFactorization(std::move(wf), &plan);
          factored_ok = true;
        }
      }
      if (!factored_ok) {
        return Status::InvalidArgument(
            "mechanism " + std::string(MechanismName(spec.mechanism)) +
            " materializes the release domain densely, but |D| = " +
            std::to_string(stats.release_domain_cells) +
            " cells exceeds the " + std::to_string(kDenseCellCap) +
            "-cell envelope (use laplace, shrink attribute domains, or — for "
            "single-relation pmw — a product-form workload such as "
            "marginal_all so the factored backing applies)");
      }
    }
  } else if (!dense_ok) {
    bool factored_ok = false;
    if (m == 1 && spec.pmw_backing != PmwBackingKind::kDense &&
        stats.query_count >
            PmwLaplaceCrossoverQueries(stats.release_domain_cells)) {
      WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
      if (FactorizationFits(wf)) {
        plan.mechanism = MechanismKind::kPmw;
        why << "auto: release domain |D| = " << stats.release_domain_cells
            << " cells exceeds the dense envelope (" << kDenseCellCap
            << ") but the workload factors into ";
        AppendFactorSizes(wf, why);
        why << " — single-table PMW on the product-form FactoredTensor "
               "backing (memory ~ sum of factor sizes)";
        AdoptFactorization(std::move(wf), &plan);
        factored_ok = true;
      }
    }
    if (!factored_ok) {
      plan.mechanism = MechanismKind::kLaplace;
      why << "auto: release domain |D| = " << stats.release_domain_cells
          << " cells exceeds the dense-materialization envelope ("
          << kDenseCellCap
          << "); independent Laplace is the only mechanism that never "
             "materializes x_i D_i";
    }
  } else if (stats.query_count <=
             PmwLaplaceCrossoverQueries(stats.release_domain_cells)) {
    plan.mechanism = MechanismKind::kLaplace;
    if (stats.query_count == 1) {
      why << "auto: |Q| = 1 (counting only) — a single calibrated Laplace "
             "answer beats paying PMW's f_upper factors for one query";
    } else {
      // Per-round cost of the factored PMW loop, from the evaluator's
      // contraction model (data-independent: shapes and counts only).
      std::vector<int64_t> domains, counts;
      for (int r = 0; r < m; ++r) {
        domains.push_back(query.relation_domain_size(r));
        counts.push_back(family.CountForTable(r));
      }
      const double round_flops =
          WorkloadEvaluator::EvaluationFlops(domains, counts);
      why << "auto: |Q| = " << stats.query_count
          << " <= log2|D| = " << PmwLaplaceCrossoverQueries(
                 stats.release_domain_cells)
          << " (the MW learning dimension) — PMW cannot amortize its "
             "per-round evaluator cost (~"
          << round_flops
          << " flops/round) or its additive noise floor over so few "
             "queries; independent Laplace answers each directly";
    }
  } else if (m == 1) {
    plan.mechanism = MechanismKind::kPmw;
    why << "auto: single relation — single-table PMW meets the Theorem 1.3 "
           "bound O(sqrt(n)*f_upper)";
  } else if (m == 2) {
    plan.mechanism = MechanismKind::kTwoTable;
    why << "auto: two relations — uniformized release (Partition-TwoTable + "
           "TwoTable per bucket, Section 4.1) is robust to join-degree skew "
           "that plain Algorithm 1 pays for linearly";
  } else if (stats.hierarchical) {
    plan.mechanism = MechanismKind::kHierarchical;
    why << "auto: " << m
        << " relations and the query is hierarchical — hierarchical "
           "uniformize (Section 4.2) decomposes by attribute-tree degree";
  } else {
    plan.mechanism = MechanismKind::kPmw;
    why << "auto: " << m
        << " relations, non-hierarchical — MultiTable (Algorithm 3) with "
           "residual-sensitivity-calibrated PMW is the general mechanism";
  }

  // An explicitly requested factored backing binds even inside the dense
  // envelope (memory-constrained callers; the equivalence tests); it still
  // needs a single-relation pmw plan and a factorizable workload.
  if (spec.pmw_backing == PmwBackingKind::kFactored && !plan.factored) {
    if (plan.mechanism != MechanismKind::kPmw || m != 1) {
      return Status::InvalidArgument(
          "pmw_backing = factored needs a single-relation pmw release, but "
          "the plan is " +
          std::string(MechanismName(plan.mechanism)) + " over " +
          std::to_string(m) +
          " relation(s) (set mechanism = pmw on a one-relation schema)");
    }
    WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
    if (!FactorizationFits(wf)) {
      return Status::InvalidArgument(
          "pmw_backing = factored, but " +
          (wf.product_form
               ? "a factor group of " + std::to_string(wf.max_group_cells) +
                     " cells exceeds the " + std::to_string(kDenseCellCap) +
                     "-cell envelope"
               : wf.reason) +
          " (use pmw_backing = auto or a product-form workload)");
    }
    why << "; pmw_backing = factored: ";
    AppendFactorSizes(wf, why);
    AdoptFactorization(std::move(wf), &plan);
  }

  if (plan.mechanism == MechanismKind::kLaplace) {
    const double delta_tilde_proxy =
        std::max(stats.local_sensitivity, 1.0) + budget.Lambda();
    plan.predicted_error = PredictedLaplaceError(
        delta_tilde_proxy, stats.query_count, budget, spec.laplace_rule);
  } else {
    plan.predicted_error = PredictSyntheticError(plan.mechanism, stats, budget);
  }
  why << " | budget (" << budget.epsilon << ", " << budget.delta << "), |Q| = "
      << stats.query_count << ", predicted error ~" << plan.predicted_error;
  plan.rationale = why.str();
  return plan;
}

}  // namespace dpjoin
