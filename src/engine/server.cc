#include "engine/server.h"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/strings.h"

#include "engine/catalog.h"
#include "engine/release_spec.h"

namespace dpjoin {

namespace {

JsonValue ErrorResponse(const std::string& cmd, const Status& status) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  if (!cmd.empty()) response.Set("cmd", JsonValue::String(cmd));
  response.Set("error", JsonValue::String(status.ToString()));
  return response;
}

JsonValue OkResponse(const std::string& cmd) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("cmd", JsonValue::String(cmd));
  return response;
}

JsonValue ParamsJson(double epsilon, double delta) {
  JsonValue v = JsonValue::Object();
  v.Set("epsilon", JsonValue::Number(epsilon));
  v.Set("delta", JsonValue::Number(delta));
  return v;
}

/// The request's `key` as an exact integer in [min, max] ⊆ [-2^53, 2^53]
/// (the doubles JSON can carry exactly). Rejects NaN, fractions, and
/// out-of-range values BEFORE any cast — casting an unrepresentable
/// double is undefined behavior, and the loop must survive any input.
Result<int64_t> GetExactInt(const JsonValue& v, const std::string& what,
                            double min, double max) {
  const double d = v.is_number() ? v.AsDouble() : std::nan("");
  if (!(d >= min) || !(d <= max) || std::floor(d) != d) {
    char bounds[80];
    std::snprintf(bounds, sizeof(bounds), "%.17g, %.17g", min, max);
    return Status::InvalidArgument(what + " must be an integer in [" +
                                   bounds + "]");
  }
  return static_cast<int64_t>(d);
}

/// The request's `key` as a string; `required` distinguishes "absent"
/// (error only when required) from "present but not a string" (always an
/// error).
Result<std::string> GetString(const JsonValue& request, const std::string& key,
                              bool required) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr) {
    if (!required) return std::string();
    return Status::InvalidArgument("request needs a string '" + key + "'");
  }
  if (!v->is_string()) {
    return Status::InvalidArgument("request member '" + key +
                                   "' must be a string");
  }
  return v->AsString();
}

/// "NAME:SIZE" attribute strings + "NAME:A,B" relation strings → JoinQuery.
Result<JoinQuery> BuildQueryFromJson(const JsonValue& request) {
  const JsonValue* attributes = request.Find("attributes");
  const JsonValue* relations = request.Find("relations");
  if (attributes == nullptr || !attributes->is_array() ||
      relations == nullptr || !relations->is_array()) {
    return Status::InvalidArgument(
        "register needs 'attributes' (e.g. [\"A:8\"]) and 'relations' "
        "(e.g. [\"R1:A,B\"]) arrays");
  }
  // SplitAndTrim everywhere, so "R1:A, B" means the same thing here as in
  // a .spec file's `relation =` line.
  std::vector<AttributeSpec> attrs;
  for (const JsonValue& item : attributes->items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("attributes entries must be strings");
    }
    const std::string& text = item.AsString();
    const std::vector<std::string> parts = SplitAndTrim(text, ':');
    if (parts.size() != 2 || parts[0].empty()) {
      return Status::InvalidArgument("attribute '" + text +
                                     "' wants NAME:DOMAIN_SIZE");
    }
    try {
      size_t consumed = 0;
      const int64_t size = std::stoll(parts[1], &consumed);
      if (consumed != parts[1].size()) throw std::exception();
      attrs.push_back({parts[0], size});
    } catch (const std::exception&) {
      return Status::InvalidArgument("attribute '" + text +
                                     "' has a bad domain size");
    }
  }
  std::vector<std::vector<std::string>> edges;
  for (const JsonValue& item : relations->items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("relations entries must be strings");
    }
    const std::string& text = item.AsString();
    const size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size()) {
      return Status::InvalidArgument("relation '" + text +
                                     "' wants NAME:ATTR[,ATTR...]");
    }
    edges.push_back(SplitAndTrim(text.substr(colon + 1), ','));
  }
  return JoinQuery::Create(std::move(attrs), std::move(edges));
}

}  // namespace

Result<QueryCommand> ParseQueryCommand(const JsonValue& request) {
  QueryCommand cmd;
  {
    DPJOIN_ASSIGN_OR_RETURN(const std::string release_hex,
                            GetString(request, "release", /*required=*/true));
    DPJOIN_ASSIGN_OR_RETURN(cmd.release_id, ParseJsonHexId(release_hex));
  }
  const JsonValue* all = request.Find("all");
  const JsonValue* queries = request.Find("queries");
  if (all != nullptr && all->is_bool() && all->AsBool()) {
    cmd.all = true;
    return cmd;
  }
  if (queries != nullptr && queries->is_array()) {
    cmd.ids.reserve(queries->items().size());
    for (const JsonValue& q : queries->items()) {
      DPJOIN_ASSIGN_OR_RETURN(
          const int64_t id,
          GetExactInt(q, "queries entries", -9007199254740992.0,
                      9007199254740992.0));
      cmd.ids.push_back(id);
    }
    return cmd;
  }
  return Status::InvalidArgument(
      "query wants 'queries': [ids...] or 'all': true");
}

JsonValue QueryAnswersResponse(const std::vector<double>& answers) {
  JsonValue response = OkResponse("query");
  JsonValue array = JsonValue::Array();
  for (const double a : answers) array.Append(JsonValue::Number(a));
  response.Set("answers", std::move(array));
  return response;
}

JsonValue QueryErrorResponse(const Status& status) {
  return ErrorResponse("query", status);
}

ReleaseServer::ReleaseServer(ReleaseEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (!options_.ledger_path.empty()) {
    // Only a genuinely ABSENT file is a fresh start. An existing but
    // unreadable file must be a startup error: silently serving with an
    // empty ledger would let the server re-spend budget the file proves
    // was already consumed.
    struct stat st;
    if (::stat(options_.ledger_path.c_str(), &st) == 0) {
      startup_status_ = engine_.mutable_ledger().LoadJson(options_.ledger_path);
    } else if (errno != ENOENT) {
      startup_status_ = Status::Internal(
          "cannot stat ledger file '" + options_.ledger_path +
          "': " + std::strerror(errno));
    }
  }
}

std::string ReleaseServer::HandleLine(const std::string& line) {
  return HandleLineImpl(line, /*shutdown=*/nullptr);
}

std::string ReleaseServer::HandleLineImpl(const std::string& line,
                                          bool* shutdown) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto request = JsonValue::Parse(line);
  if (!request.ok()) {
    return ErrorResponse("", request.status()).Serialize();
  }
  if (!request->is_object()) {
    return ErrorResponse("", Status::InvalidArgument(
                                 "request must be a JSON object"))
        .Serialize();
  }
  return Dispatch(*request, shutdown).Serialize();
}

int64_t ReleaseServer::Serve(std::istream& in, std::ostream& out) {
  int64_t handled = 0;
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    // A shutdown command is honored AFTER answering, so the peer sees the
    // ack.
    const std::string response = HandleLineImpl(line, &shutdown);
    out << response << "\n" << std::flush;
    ++handled;
  }
  return handled;
}

JsonValue ReleaseServer::Dispatch(const JsonValue& request, bool* shutdown) {
  std::string cmd;
  {
    auto cmd_or = GetString(request, "cmd", /*required=*/true);
    if (!cmd_or.ok()) return ErrorResponse("", cmd_or.status());
    cmd = *cmd_or;
  }
  if (cmd == "register") return HandleRegister(request);
  if (cmd == "unregister") return HandleUnregister(request);
  if (cmd == "release") return HandleRelease(request);
  if (cmd == "query") return HandleQuery(request);
  if (cmd == "ledger") return HandleLedger();
  if (cmd == "stats") return HandleStats();
  if (cmd == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    return OkResponse("shutdown");
  }
  return ErrorResponse(
      cmd,
      Status::InvalidArgument(
          "unknown command '" + cmd +
          "' (expected register|unregister|release|query|ledger|stats|"
          "shutdown)"));
}

JsonValue ReleaseServer::HandleRegister(const JsonValue& request) {
  std::string name, source;
  {
    auto name_or = GetString(request, "name", /*required=*/true);
    if (!name_or.ok()) return ErrorResponse("register", name_or.status());
    name = *name_or;
    auto source_or = GetString(request, "source", /*required=*/true);
    if (!source_or.ok()) return ErrorResponse("register", source_or.status());
    source = *source_or;
  }
  auto query = BuildQueryFromJson(request);
  if (!query.ok()) return ErrorResponse("register", query.status());
  auto handle = engine_.catalog().RegisterSource(
      name, source, std::make_shared<JoinQuery>(std::move(query).value()),
      options_.base_dir);
  if (!handle.ok()) return ErrorResponse("register", handle.status());

  JsonValue response = OkResponse("register");
  response.Set("name", JsonValue::String((*handle)->name()));
  response.Set("source", JsonValue::String((*handle)->source()));
  response.Set("fingerprint",
               JsonValue::String(JsonHexId((*handle)->fingerprint())));
  response.Set("input_size",
               JsonValue::Number(static_cast<double>((*handle)->input_size())));
  response.Set("num_relations",
               JsonValue::Number((*handle)->instance().num_relations()));
  return response;
}

JsonValue ReleaseServer::HandleUnregister(const JsonValue& request) {
  // Frees the NAME (and the catalog's reference — memory returns once no
  // live release still shares the instance). Already-paid releases keep
  // serving; this does not refund any budget.
  auto name_or = GetString(request, "name", /*required=*/true);
  if (!name_or.ok()) return ErrorResponse("unregister", name_or.status());
  if (!engine_.catalog().Unregister(*name_or)) {
    return ErrorResponse("unregister",
                         Status::NotFound("unknown dataset '" + *name_or +
                                          "'"));
  }
  JsonValue response = OkResponse("unregister");
  response.Set("name", JsonValue::String(*name_or));
  return response;
}

JsonValue ReleaseServer::HandleRelease(const JsonValue& request) {
  std::string spec_text;
  {
    auto spec_or = GetString(request, "spec", /*required=*/true);
    if (!spec_or.ok()) return ErrorResponse("release", spec_or.status());
    spec_text = *spec_or;
  }
  auto spec = ParseReleaseSpec(spec_text);
  if (!spec.ok()) return ErrorResponse("release", spec.status());

  ReleaseRequest release_request;
  release_request.spec = std::move(spec).value();
  release_request.base_dir = options_.base_dir;
  {
    auto dataset_or = GetString(request, "dataset", /*required=*/false);
    if (!dataset_or.ok()) return ErrorResponse("release", dataset_or.status());
    release_request.dataset = *dataset_or;
  }
  if (const JsonValue* seed = request.Find("seed")) {
    auto value = GetExactInt(*seed, "seed", 0, 9007199254740992.0 /*2^53*/);
    if (!value.ok()) return ErrorResponse("release", value.status());
    release_request.seed = static_cast<uint64_t>(*value);
  }

  auto response_or = engine_.Submit(release_request);
  if (!response_or.ok()) return ErrorResponse("release", response_or.status());
  const ReleaseResponse& submitted = *response_or;
  serving_stats_.RecordRelease(submitted.dataset_name, submitted.from_cache);
  if (!submitted.from_cache) MaybeSaveLedger();

  JsonValue response = OkResponse("release");
  response.Set("release", JsonValue::String(JsonHexId(submitted.release_id)));
  response.Set("name", JsonValue::String(release_request.spec.name));
  response.Set("dataset", JsonValue::String(submitted.dataset_name));
  response.Set("mechanism",
               JsonValue::String(MechanismName(submitted.plan.mechanism)));
  response.Set("from_cache", JsonValue::Bool(submitted.from_cache));
  response.Set("rationale", JsonValue::String(submitted.plan.rationale));
  response.Set("num_queries",
               JsonValue::Number(
                   static_cast<double>(submitted.handle->NumQueries())));
  response.Set("spent", ParamsJson(submitted.ledger.spent_epsilon,
                                   submitted.ledger.spent_delta));
  response.Set("remaining", ParamsJson(submitted.ledger.remaining_epsilon,
                                       submitted.ledger.remaining_delta));
  if (!release_request.spec.parse_notes.empty()) {
    JsonValue notes = JsonValue::Array();
    for (const std::string& note : release_request.spec.parse_notes) {
      notes.Append(JsonValue::String(note));
    }
    response.Set("notes", std::move(notes));
  }
  return response;
}

JsonValue ReleaseServer::HandleQuery(const JsonValue& request) {
  auto cmd = ParseQueryCommand(request);
  if (!cmd.ok()) return QueryErrorResponse(cmd.status());
  auto handle = engine_.FindRelease(cmd->release_id);
  if (!handle.ok()) return QueryErrorResponse(handle.status());

  std::vector<double> answers;
  if (cmd->all) {
    answers = (*handle)->AnswerAll();
  } else {
    auto batch_answers = (*handle)->AnswerBatch(cmd->ids);
    if (!batch_answers.ok()) {
      return QueryErrorResponse(batch_answers.status());
    }
    answers = std::move(batch_answers).value();
  }
  // An inline query is a batch of one — it lands in the histogram's "1"
  // bucket, against which the net front-end's coalescing is measured.
  serving_stats_.RecordBatch(cmd->release_id, /*requests=*/1,
                             static_cast<int64_t>(answers.size()),
                             /*used_answer_all=*/cmd->all);
  return QueryAnswersResponse(answers);
}

JsonValue ReleaseServer::HandleLedger() {
  // SerializeJson is the audit format; parse it back so the response embeds
  // a structured object rather than a double-encoded string.
  auto ledger = JsonValue::Parse(engine_.ledger().SerializeJson());
  if (!ledger.ok()) return ErrorResponse("ledger", ledger.status());
  JsonValue response = OkResponse("ledger");
  response.Set("ledger", std::move(ledger).value());
  return response;
}

JsonValue ReleaseServer::HandleStats() {
  const ReleaseCache& cache = engine_.cache();
  const int64_t hits = cache.hits();
  const int64_t misses = cache.misses();
  JsonValue response = OkResponse("stats");
  response.Set("requests",
               JsonValue::Number(static_cast<double>(num_requests())));
  response.Set("datasets",
               JsonValue::Number(static_cast<double>(engine_.catalog().size())));
  JsonValue cache_stats = JsonValue::Object();
  cache_stats.Set("size",
                  JsonValue::Number(static_cast<double>(cache.size())));
  cache_stats.Set("capacity",
                  JsonValue::Number(static_cast<double>(cache.capacity())));
  cache_stats.Set("hits", JsonValue::Number(static_cast<double>(hits)));
  cache_stats.Set("misses", JsonValue::Number(static_cast<double>(misses)));
  cache_stats.Set(
      "hit_rate",
      JsonValue::Number(hits + misses == 0
                            ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(hits + misses)));
  response.Set("cache", std::move(cache_stats));
  response.Set("fingerprints_computed",
               JsonValue::Number(
                   static_cast<double>(InstanceFingerprintCount())));
  response.Set("ledger_save_failures",
               JsonValue::Number(static_cast<double>(
                   ledger_save_failures_.load(std::memory_order_relaxed))));
  response.Set("serving", serving_stats_.ToJson());
  return response;
}

void ReleaseServer::MaybeSaveLedger() {
  if (options_.ledger_path.empty()) return;
  MutexLock lock(save_mu_);
  // Best-effort: a failed save must not fail the release that triggered it
  // (the budget was already spent); the next save retries. But never
  // silent — the operator needs to know the on-disk record is stale.
  const Status saved = engine_.ledger().SaveJson(options_.ledger_path);
  if (!saved.ok()) {
    ledger_save_failures_.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "dpjoin_serve: ledger save failed: " << saved << "\n";
  }
}

}  // namespace dpjoin
