#include "engine/engine.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "core/independent_laplace.h"
#include "core/multi_table.h"
#include "core/uniformize.h"
#include "hierarchical/uniformize_hierarchical.h"
#include "release/pmw.h"

namespace dpjoin {

// RAII in-flight marker: the constructor blocks while another submission
// holds the same key, the destructor releases it and wakes waiters.
class ReleaseEngine::InFlightGuard {
 public:
  InFlightGuard(ReleaseEngine& engine, uint64_t key)
      : engine_(engine), key_(key) {
    MutexLock lock(engine_.in_flight_mu_);
    while (engine_.in_flight_.count(key_) != 0) {
      engine_.in_flight_cv_.Wait(engine_.in_flight_mu_);
    }
    engine_.in_flight_.insert(key_);
  }
  ~InFlightGuard() {
    {
      MutexLock lock(engine_.in_flight_mu_);
      engine_.in_flight_.erase(key_);
    }
    engine_.in_flight_cv_.NotifyAll();
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  ReleaseEngine& engine_;
  uint64_t key_;
};

ReleaseEngine::ReleaseEngine(PrivacyParams global_budget,
                             size_t cache_capacity)
    : ledger_(global_budget), cache_(cache_capacity) {}

LedgerSnapshot ReleaseEngine::SnapshotLedger() const {
  // One-lock read: spent/remaining from separate getters could tear under
  // a concurrent Commit (spent + remaining != cap).
  LedgerSnapshot snapshot;
  ledger_.Snapshot(&snapshot.spent_epsilon, &snapshot.spent_delta,
                   &snapshot.remaining_epsilon, &snapshot.remaining_delta,
                   &snapshot.num_committed);
  return snapshot;
}

Result<ReleaseResponse> ReleaseEngine::Submit(const ReleaseRequest& request) {
  const std::string& source =
      request.dataset.empty() ? request.spec.dataset : request.dataset;
  if (source.empty()) {
    return Status::InvalidArgument(
        "request names no dataset (set ReleaseRequest::dataset or the "
        "spec's `dataset` key)");
  }
  DPJOIN_RETURN_NOT_OK(request.spec.ValidateFields());
  // Built once and passed down (Resolve + schema check share it).
  Result<JoinQuery> query = request.spec.BuildQuery();
  if (!query.ok()) return query.status();
  auto spec_query = std::make_shared<JoinQuery>(std::move(query).value());
  std::shared_ptr<const DatasetHandle> data;
  DPJOIN_ASSIGN_OR_RETURN(
      data, catalog_.Resolve(source, spec_query, request.base_dir));
  Rng rng(request.seed);
  return SubmitResolved(request.spec, *spec_query, data->name(),
                        data->fingerprint(), data->instance(), rng);
}

Result<std::shared_ptr<const ServingHandle>> ReleaseEngine::FindRelease(
    uint64_t release_id) {
  // Touch, not Get: query traffic must not skew the hit/miss counters,
  // which report submission-dedup effectiveness.
  if (std::shared_ptr<const ServingHandle> handle =
          cache_.Touch(release_id)) {
    return handle;
  }
  return Status::NotFound("no live release " + JsonHexId(release_id) +
                          " (never submitted here, or evicted from the "
                          "serving cache — re-submit its spec to rebuild)");
}

namespace {

EngineRelease ToEngineRelease(ReleaseResponse&& response) {
  EngineRelease release;
  release.handle = std::move(response.handle);
  release.plan = std::move(response.plan);
  release.from_cache = response.from_cache;
  release.accountant = std::move(response.accountant);
  return release;
}

}  // namespace

Result<EngineRelease> ReleaseEngine::Run(const ReleaseSpec& spec,
                                         const Instance& instance, Rng& rng) {
  DPJOIN_RETURN_NOT_OK(spec.ValidateFields());
  Result<JoinQuery> query = spec.BuildQuery();
  if (!query.ok()) return query.status();
  // Ad-hoc instance: fingerprinted on EVERY call — the legacy cost the
  // catalog path amortizes away.
  const uint64_t fingerprint = InstanceFingerprint(instance);
  Result<ReleaseResponse> response =
      SubmitResolved(spec, *query, "<ad-hoc>", fingerprint, instance, rng);
  if (!response.ok()) return response.status();
  return ToEngineRelease(std::move(response).value());
}

Result<EngineRelease> ReleaseEngine::RunFromFile(const ReleaseSpec& spec,
                                                 const std::string& base_dir,
                                                 Rng& rng) {
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("spec '" + spec.name +
                                   "' declares no dataset");
  }
  // Not a Submit() call: the legacy contract is that the CALLER's rng
  // drives every noise draw, while Submit seeds its own from the request.
  DPJOIN_RETURN_NOT_OK(spec.ValidateFields());
  Result<JoinQuery> query = spec.BuildQuery();
  if (!query.ok()) return query.status();
  auto spec_query = std::make_shared<JoinQuery>(std::move(query).value());
  std::shared_ptr<const DatasetHandle> data;
  DPJOIN_ASSIGN_OR_RETURN(data,
                          catalog_.Resolve(spec.dataset, spec_query, base_dir));
  Result<ReleaseResponse> response =
      SubmitResolved(spec, *spec_query, data->name(), data->fingerprint(),
                     data->instance(), rng);
  if (!response.ok()) return response.status();
  return ToEngineRelease(std::move(response).value());
}

Result<ReleaseResponse> ReleaseEngine::SubmitResolved(
    const ReleaseSpec& spec, const JoinQuery& spec_query,
    const std::string& dataset_name, uint64_t dataset_fingerprint,
    const Instance& instance, Rng& rng) {
  // Domain-inclusive comparison: the same hypergraph over different domain
  // sizes is a DIFFERENT release domain, and serving it as declared would
  // silently change the released object.
  if (SchemaString(spec_query) != SchemaString(instance.query())) {
    return Status::InvalidArgument(
        "dataset '" + dataset_name +
        "' does not match the spec's schema: spec declares " +
        SchemaString(spec_query) + " but the dataset is over " +
        SchemaString(instance.query()));
  }
  ReleaseResponse response;
  response.dataset_name = dataset_name;
  response.dataset_fingerprint = dataset_fingerprint;
  response.release_id = spec.Hash() ^ dataset_fingerprint;

  // Serialize concurrent submissions of the same release: whoever enters
  // first runs the mechanism, later callers block here, then hit the cache.
  // The cache is consulted BEFORE the workload family is built — a hit's
  // cost is one spec hash and one lock, independent of workload size (the
  // handle already carries the family).
  const InFlightGuard in_flight(*this, response.release_id);
  if (std::shared_ptr<const ServingHandle> cached =
          cache_.Get(response.release_id)) {
    response.handle = std::move(cached);
    response.plan = response.handle->plan();
    response.from_cache = true;  // pure post-processing; nothing spent
    response.ledger = SnapshotLedger();
    return response;
  }

  Result<QueryFamily> family_or = spec.BuildWorkload(instance.query());
  if (!family_or.ok()) return family_or.status();
  const QueryFamily& family = *family_or;

  // Reserve before planning: an over-budget spec is refused before any
  // instance statistic is measured.
  int64_t ticket = 0;
  DPJOIN_ASSIGN_OR_RETURN(ticket, ledger_.Reserve(spec.name, spec.Budget()));

  Result<Plan> plan_or = PlanRelease(spec, instance, family);
  if (!plan_or.ok()) {
    ledger_.Abandon(ticket);
    return plan_or.status();
  }
  Plan plan = std::move(plan_or).value();

  // Thread-local override: concurrent submissions each carry their own.
  const ScopedThreads scoped(spec.num_threads);
  const PrivacyParams budget = spec.Budget();
  const ReleaseOptions options = spec.BuildReleaseOptions();

  PrivacyAccountant accountant;
  std::shared_ptr<const ServingHandle> handle;
  auto fail = [&](const Status& status) -> Status {
    ledger_.Abandon(ticket);
    return status;
  };

  switch (plan.mechanism) {
    case MechanismKind::kLaplace: {
      auto result =
          AnswerIndependently(instance, family, budget, spec.laplace_rule, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->accountant;
      handle = std::make_shared<ServingHandle>(std::move(result->answers),
                                               family, plan);
      break;
    }
    case MechanismKind::kTwoTable: {
      auto result = UniformizeTwoTable(instance, family, budget, options, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->release.accountant;
      auto dataset = std::make_shared<const ReleasedDataset>(
          instance.query_ptr(), std::move(result->release.synthetic));
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan);
      break;
    }
    case MechanismKind::kHierarchical: {
      auto result =
          UniformizeHierarchical(instance, family, budget, options, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->release.accountant;
      auto dataset = std::make_shared<const ReleasedDataset>(
          instance.query_ptr(), std::move(result->release.synthetic));
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan);
      break;
    }
    case MechanismKind::kPmw: {
      std::shared_ptr<const ReleasedDataset> dataset;
      std::shared_ptr<const WorkloadEvaluator> evaluator;
      if (instance.num_relations() == 1) {
        // Degenerate join: a single relation's count moves by 1 between
        // neighbors, so PMW runs directly with Δ̃ = 1 (Theorem 1.3).
        PmwOptions pmw;
        pmw.params = budget;
        pmw.delta_tilde = 1.0;
        pmw.num_rounds = options.pmw_rounds;
        pmw.max_rounds = options.pmw_max_rounds;
        pmw.per_round_epsilon_override = options.pmw_epsilon_prime_override;
        pmw.use_factored_loop = options.pmw_use_factored;
        if (plan.factored) {
          // Beyond the dense envelope: product-form FactoredTensor
          // backing, grouped by the planner's workload factorization.
          auto result = PrivateMultiplicativeWeightsFactored(
              instance, family, plan.factor_groups, pmw, rng);
          if (!result.ok()) return fail(result.status());
          accountant = result->accountant;
          evaluator = std::move(result->evaluator);
          dataset = std::make_shared<const ReleasedDataset>(
              instance.query_ptr(), std::move(result->factored_synthetic));
        } else {
          auto result =
              PrivateMultiplicativeWeights(instance, family, pmw, rng);
          if (!result.ok()) return fail(result.status());
          accountant = result->accountant;
          evaluator = std::move(result->evaluator);
          dataset = std::make_shared<const ReleasedDataset>(
              instance.query_ptr(), std::move(result->synthetic));
        }
      } else {
        auto result = MultiTable(instance, family, budget, options, rng);
        if (!result.ok()) return fail(result.status());
        accountant = result->accountant;
        evaluator = std::move(result->evaluator);
        dataset = std::make_shared<const ReleasedDataset>(
            instance.query_ptr(), std::move(result->synthetic));
      }
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan, std::move(evaluator));
      break;
    }
    case MechanismKind::kAuto:
      return fail(Status::Internal("planner returned an unresolved plan"));
  }

  ledger_.Commit(ticket, accountant);
  cache_.Put(response.release_id, handle);

  response.handle = std::move(handle);
  response.plan = std::move(plan);
  response.from_cache = false;
  response.accountant = std::move(accountant);
  response.ledger = SnapshotLedger();
  return response;
}

}  // namespace dpjoin
