#include "engine/engine.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/independent_laplace.h"
#include "core/multi_table.h"
#include "core/uniformize.h"
#include "hierarchical/uniformize_hierarchical.h"
#include "release/pmw.h"
#include "relational/io.h"

namespace dpjoin {

namespace {

// FNV-1a over the instance's sorted (relation, code, frequency) triples:
// part of the cache key, so an identical spec over DIFFERENT data is a
// different release rather than a stale cache hit.
uint64_t InstanceFingerprint(const Instance& instance) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (int r = 0; r < instance.num_relations(); ++r) {
    std::vector<std::pair<int64_t, int64_t>> entries(
        instance.relation(r).entries().begin(),
        instance.relation(r).entries().end());
    std::sort(entries.begin(), entries.end());
    mix(static_cast<uint64_t>(r));
    for (const auto& [code, freq] : entries) {
      mix(static_cast<uint64_t>(code));
      mix(static_cast<uint64_t>(freq));
    }
  }
  return hash;
}

}  // namespace

// RAII in-flight marker: the constructor blocks while another Run holds the
// same key, the destructor releases it and wakes waiters.
class ReleaseEngine::InFlightGuard {
 public:
  InFlightGuard(ReleaseEngine& engine, uint64_t key)
      : engine_(engine), key_(key) {
    std::unique_lock<std::mutex> lock(engine_.in_flight_mu_);
    engine_.in_flight_cv_.wait(
        lock, [&] { return engine_.in_flight_.count(key_) == 0; });
    engine_.in_flight_.insert(key_);
  }
  ~InFlightGuard() {
    {
      std::lock_guard<std::mutex> lock(engine_.in_flight_mu_);
      engine_.in_flight_.erase(key_);
    }
    engine_.in_flight_cv_.notify_all();
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  ReleaseEngine& engine_;
  uint64_t key_;
};

ReleaseEngine::ReleaseEngine(PrivacyParams global_budget,
                             size_t cache_capacity)
    : ledger_(global_budget), cache_(cache_capacity) {}

Result<EngineRelease> ReleaseEngine::Run(const ReleaseSpec& spec,
                                         const Instance& instance, Rng& rng) {
  DPJOIN_RETURN_NOT_OK(spec.Validate());
  const Result<JoinQuery> spec_query = spec.BuildQuery();
  if (!spec_query.ok()) return spec_query.status();
  if (spec_query->ToString() != instance.query().ToString()) {
    return Status::InvalidArgument(
        "instance query does not match the spec's schema: spec declares " +
        spec_query->ToString() + " but the instance is over " +
        instance.query().ToString());
  }
  Result<QueryFamily> family_or = spec.BuildWorkload(instance.query());
  if (!family_or.ok()) return family_or.status();
  const QueryFamily& family = *family_or;

  const uint64_t key = spec.Hash() ^ InstanceFingerprint(instance);
  // Serialize concurrent Runs of the same release: whoever enters first
  // runs the mechanism, later callers block here and then hit the cache.
  const InFlightGuard in_flight(*this, key);
  if (std::shared_ptr<const ServingHandle> cached = cache_.Get(key)) {
    EngineRelease release;
    release.handle = cached;
    release.plan = cached->plan();
    release.from_cache = true;  // pure post-processing; nothing spent
    return release;
  }

  // Reserve before planning: an over-budget spec is refused before any
  // instance statistic is measured.
  int64_t ticket = 0;
  DPJOIN_ASSIGN_OR_RETURN(ticket, ledger_.Reserve(spec.name, spec.Budget()));

  Result<Plan> plan_or = PlanRelease(spec, instance, family);
  if (!plan_or.ok()) {
    ledger_.Abandon(ticket);
    return plan_or.status();
  }
  Plan plan = std::move(plan_or).value();

  // Thread-local override: concurrent Run calls each carry their own count.
  const ScopedThreads scoped(spec.num_threads);
  const PrivacyParams budget = spec.Budget();
  const ReleaseOptions options = spec.BuildReleaseOptions();

  PrivacyAccountant accountant;
  std::shared_ptr<const ServingHandle> handle;
  auto fail = [&](const Status& status) -> Status {
    ledger_.Abandon(ticket);
    return status;
  };

  switch (plan.mechanism) {
    case MechanismKind::kLaplace: {
      auto result =
          AnswerIndependently(instance, family, budget, spec.laplace_rule, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->accountant;
      handle = std::make_shared<ServingHandle>(std::move(result->answers),
                                               family, plan);
      break;
    }
    case MechanismKind::kTwoTable: {
      auto result = UniformizeTwoTable(instance, family, budget, options, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->release.accountant;
      auto dataset = std::make_shared<const ReleasedDataset>(
          instance.query_ptr(), std::move(result->release.synthetic));
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan);
      break;
    }
    case MechanismKind::kHierarchical: {
      auto result =
          UniformizeHierarchical(instance, family, budget, options, rng);
      if (!result.ok()) return fail(result.status());
      accountant = result->release.accountant;
      auto dataset = std::make_shared<const ReleasedDataset>(
          instance.query_ptr(), std::move(result->release.synthetic));
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan);
      break;
    }
    case MechanismKind::kPmw: {
      DenseTensor synthetic;
      if (instance.num_relations() == 1) {
        // Degenerate join: a single relation's count moves by 1 between
        // neighbors, so PMW runs directly with Δ̃ = 1 (Theorem 1.3).
        PmwOptions pmw;
        pmw.params = budget;
        pmw.delta_tilde = 1.0;
        pmw.num_rounds = options.pmw_rounds;
        pmw.max_rounds = options.pmw_max_rounds;
        pmw.per_round_epsilon_override = options.pmw_epsilon_prime_override;
        auto result = PrivateMultiplicativeWeights(instance, family, pmw, rng);
        if (!result.ok()) return fail(result.status());
        accountant = result->accountant;
        synthetic = std::move(result->synthetic);
      } else {
        auto result = MultiTable(instance, family, budget, options, rng);
        if (!result.ok()) return fail(result.status());
        accountant = result->accountant;
        synthetic = std::move(result->synthetic);
      }
      auto dataset = std::make_shared<const ReleasedDataset>(
          instance.query_ptr(), std::move(synthetic));
      handle = std::make_shared<ServingHandle>(std::move(dataset), family,
                                               plan);
      break;
    }
    case MechanismKind::kAuto:
      return fail(Status::Internal("planner returned an unresolved plan"));
  }

  ledger_.Commit(ticket, accountant);
  cache_.Put(key, handle);

  EngineRelease release;
  release.handle = std::move(handle);
  release.plan = std::move(plan);
  release.from_cache = false;
  release.accountant = std::move(accountant);
  return release;
}

Result<EngineRelease> ReleaseEngine::RunFromFile(const ReleaseSpec& spec,
                                                 const std::string& base_dir,
                                                 Rng& rng) {
  if (spec.instance_path.empty()) {
    return Status::InvalidArgument("spec '" + spec.name +
                                   "' declares no instance file");
  }
  std::string path = spec.instance_path;
  if (path.front() != '/' && !base_dir.empty()) {
    path = base_dir + "/" + path;
  }
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open instance file '" + path + "'");
  }
  Result<JoinQuery> query = spec.BuildQuery();
  if (!query.ok()) return query.status();
  auto loaded = ReadInstanceCsv(
      std::make_shared<JoinQuery>(std::move(query).value()), file);
  if (!loaded.ok()) {
    return Status(loaded.status().code(), "instance file '" + path + "': " +
                                              loaded.status().message());
  }
  return Run(spec, *loaded, rng);
}

}  // namespace dpjoin
