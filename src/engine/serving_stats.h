// Serving-side observability: per-release query counters and a batch-size
// histogram that makes cross-client coalescing visible from the outside.
//
// Every engine-level answer call — whether it came from a single stdio
// request or from N coalesced TCP requests — records one histogram sample
// whose value is the number of client requests it satisfied. A server
// that never coalesces puts every sample in the "1" bucket; a busy
// micro-batching front-end shifts mass rightward, and the `stats` command
// exposes exactly that shift.

#ifndef DPJOIN_ENGINE_SERVING_STATS_H_
#define DPJOIN_ENGINE_SERVING_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dpjoin {

class ServingStats {
 public:
  /// Records one engine-level answer evaluation that satisfied `requests`
  /// client requests totalling `queries` individual query ids against
  /// `release_id`. `used_answer_all` distinguishes whole-workload
  /// evaluations from id-batch evaluations.
  void RecordBatch(uint64_t release_id, int64_t requests, int64_t queries,
                   bool used_answer_all) EXCLUDES(mu_);

  /// Records one `release` submission against the dataset it resolved to:
  /// a serving-cache hit (`from_cache`) or a fresh mechanism run. The
  /// engine-wide cache hit rate already exists in `stats.cache`; this is
  /// the per-dataset breakdown — the signal for WHICH datasets would
  /// churn under eviction (the ROADMAP's unbounded-dataset-churn item).
  void RecordRelease(const std::string& dataset, bool from_cache)
      EXCLUDES(mu_);

  /// Number of request-execution workers the front-end runs (0 = every
  /// request executes on the accepting thread). Set once at server start;
  /// surfaces in the `stats` response so a saturated box is diagnosable
  /// remotely.
  void SetWorkers(int64_t workers) EXCLUDES(mu_);

  /// Records how long one release's query group sat queued between being
  /// handed to the execution stage and actually starting to run — i.e. the
  /// delay before the group's first parallel block could begin. The inline
  /// path records 0 (it executes at hand-off), so `wait.count` always
  /// equals the number of executed groups for the release.
  void RecordGroupWait(uint64_t release_id, int64_t wait_us) EXCLUDES(mu_);

  int64_t query_requests() const EXCLUDES(mu_);
  int64_t engine_calls() const EXCLUDES(mu_);

  /// The `stats` response fragment: totals, the power-of-two batch-size
  /// histogram (only non-empty buckets, keyed by bucket upper bound), and
  /// per-release request/query counts keyed by 0x-hex release id (sorted —
  /// std::map keeps the wire format deterministic).
  JsonValue ToJson() const EXCLUDES(mu_);

 private:
  struct PerRelease {
    int64_t requests = 0;
    int64_t queries = 0;
    // Execution-stage queueing, from RecordGroupWait.
    int64_t wait_count = 0;
    int64_t wait_total_us = 0;
    int64_t wait_max_us = 0;
  };
  struct PerDataset {
    int64_t hits = 0;    // release requests answered from the serving cache
    int64_t misses = 0;  // release requests that ran the mechanism
  };

  // Bucket b counts batches of size in (2^(b-1), 2^b]; bucket 0 is size 1.
  // 2^20 requests in one batch is far beyond any configurable cap — the
  // last bucket absorbs the (unreachable) tail rather than dropping it.
  static constexpr size_t kNumBuckets = 21;
  static size_t BucketFor(int64_t batch_size);

  mutable Mutex mu_;
  int64_t workers_ GUARDED_BY(mu_) = 0;
  int64_t query_requests_ GUARDED_BY(mu_) = 0;
  int64_t engine_calls_ GUARDED_BY(mu_) = 0;
  int64_t answer_all_calls_ GUARDED_BY(mu_) = 0;
  std::array<int64_t, kNumBuckets> batch_hist_ GUARDED_BY(mu_) = {};
  std::map<uint64_t, PerRelease> per_release_ GUARDED_BY(mu_);
  // Keyed by catalog dataset name; std::map keeps the wire format sorted.
  std::map<std::string, PerDataset> per_dataset_ GUARDED_BY(mu_);
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_SERVING_STATS_H_
