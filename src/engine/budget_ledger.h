// BudgetLedger: thread-safe multi-release privacy accounting with a hard
// global (ε, δ) cap.
//
// PrivacyAccountant (dp/composition.h) records what ONE mechanism invocation
// spent; the ledger sits above it and answers the multi-release question —
// "may this next release run at all?" — under basic composition across
// releases. The protocol is reserve → run → commit:
//
//   1. Reserve(label, request) atomically checks the request against the
//      remaining budget (cap − committed − outstanding reservations) and
//      fails with FailedPrecondition when it would overshoot. Nothing runs
//      without a reservation.
//   2. The mechanism runs and fills its own PrivacyAccountant.
//   3. Commit(ticket, accountant) replaces the reservation with the
//      accountant's entries, so Total() is exactly the basic composition of
//      what the mechanisms REPORTED spending — never the nominal request.
//      (Hierarchical uniformize can report more than its nominal budget by
//      the measured group-privacy factor of Lemma 4.11; the ledger records
//      the measured truth.) Abandon(ticket) returns a failed run's budget.
//
// Entries serialize to JSON for audit.

#ifndef DPJOIN_ENGINE_BUDGET_LEDGER_H_
#define DPJOIN_ENGINE_BUDGET_LEDGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "dp/composition.h"
#include "dp/privacy_params.h"

namespace dpjoin {

class BudgetLedger {
 public:
  explicit BudgetLedger(PrivacyParams cap) : cap_(cap) {}

  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  PrivacyParams cap() const { return cap_; }

  /// Atomically reserves `request` against the remaining budget. Fails with
  /// FailedPrecondition (naming the overshoot) when committed + reserved +
  /// request would exceed the cap in ε or δ. Returns a ticket for
  /// Commit/Abandon.
  [[nodiscard]] Result<int64_t> Reserve(const std::string& label,
                                        const PrivacyParams& request);

  /// Converts the reservation into a committed entry recording the
  /// mechanism's own accountant: the entry total is accountant.Total() and
  /// the per-spend breakdown is kept for audit. CHECK-fails on an unknown
  /// or already-settled ticket.
  void Commit(int64_t ticket, const PrivacyAccountant& accountant);

  /// Drops the reservation (mechanism failed); its budget becomes available
  /// again. CHECK-fails on an unknown or already-settled ticket.
  void Abandon(int64_t ticket);

  /// Basic composition of every committed entry. CHECK-fails when nothing
  /// has been committed (mirrors PrivacyAccountant::Total); use
  /// SpentEpsilon() for the always-defined raw value.
  PrivacyParams Total() const;

  /// Committed spend as raw doubles (0 when nothing is committed).
  double SpentEpsilon() const;
  double SpentDelta() const;

  /// cap − committed − outstanding reservations, floored at 0.
  double RemainingEpsilon() const;
  double RemainingDelta() const;

  int64_t num_committed() const;
  int64_t num_outstanding() const;

  struct Entry {
    std::string label;
    PrivacyParams total;  ///< the mechanism accountant's Total()
    std::vector<PrivacyAccountant::Entry> breakdown;
  };
  /// Snapshot of the committed entries, in commit order.
  std::vector<Entry> Entries() const;

  /// Human-readable ledger (cap, per-release totals, remaining).
  std::string ToString() const;

  /// Audit serialization: {"cap": {...}, "entries": [...], "total": {...},
  /// "remaining": {...}} with the per-mechanism spend breakdown inlined.
  std::string SerializeJson() const;

  /// One-lock consistent snapshot of (spent ε, spent δ, remaining ε,
  /// remaining δ, committed count) — the values a serving response echoes.
  void Snapshot(double* spent_epsilon, double* spent_delta,
                double* remaining_epsilon, double* remaining_delta,
                int64_t* num_committed) const;

  /// Persists the committed entries (SerializeJson) to `path`, atomically
  /// enough for a single writer (write temp, rename). A restarted process
  /// LoadJson()s the file so its spent budget survives the restart.
  [[nodiscard]] Status SaveJson(const std::string& path) const;

  /// Restores committed entries from a SaveJson file into THIS ledger,
  /// which must be empty (no commits, no outstanding reservations).
  /// Refuses (FailedPrecondition) files whose total spend exceeds the
  /// configured cap — a restart must never resurrect more budget than the
  /// process is configured to allow. The file's own "cap" record is
  /// informational only.
  [[nodiscard]] Status LoadJson(const std::string& path);

 private:
  double RemainingEpsilonLocked() const REQUIRES(mu_);
  double RemainingDeltaLocked() const REQUIRES(mu_);

  struct Reservation {
    std::string label;
    PrivacyParams request;
  };

  mutable Mutex mu_;
  const PrivacyParams cap_;
  std::vector<Entry> committed_ GUARDED_BY(mu_);
  std::unordered_map<int64_t, Reservation> outstanding_ GUARDED_BY(mu_);
  double committed_epsilon_ GUARDED_BY(mu_) = 0.0;
  double committed_delta_ GUARDED_BY(mu_) = 0.0;
  double reserved_epsilon_ GUARDED_BY(mu_) = 0.0;
  double reserved_delta_ GUARDED_BY(mu_) = 0.0;
  int64_t next_ticket_ GUARDED_BY(mu_) = 1;
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_BUDGET_LEDGER_H_
