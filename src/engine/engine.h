// ReleaseEngine: the end-to-end "pay privacy once, serve forever" driver.
//
// Given a declarative ReleaseSpec and an instance, the engine
//   1. builds the workload family (deterministically from the spec),
//   2. consults the ReleaseCache — an identical spec is served from its
//      existing handle without touching the budget,
//   3. plans the mechanism (resolving `auto` with a rationale),
//   4. reserves the spec's nominal (ε, δ) against the global BudgetLedger —
//      refusing specs that would exceed the remaining cap,
//   5. runs the chosen mechanism under the spec's thread-count override,
//   6. commits the mechanism's OWN accountant totals to the ledger, and
//   7. wraps the release in an immutable ServingHandle and caches it.
//
// The engine object is safe to share across threads: the ledger and cache
// synchronize internally, handles are immutable, and concurrent Run calls
// for the SAME spec+instance are serialized so exactly one runs the
// mechanism — the rest are cache hits, never a duplicate budget spend.
// Each Run needs its own Rng (two concurrent calls must not share one).
//
// Cache identity is the spec hash combined with a fingerprint of the
// instance's actual tuples, so an identical spec over different data is a
// different release (never a stale cache hit), while re-submitting the same
// spec+data — even with a different thread count — re-runs free.

#ifndef DPJOIN_ENGINE_ENGINE_H_
#define DPJOIN_ENGINE_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "common/rng.h"
#include "engine/budget_ledger.h"
#include "engine/planner.h"
#include "engine/release_spec.h"
#include "engine/serving.h"
#include "relational/instance.h"

namespace dpjoin {

/// Outcome of one engine run.
struct EngineRelease {
  std::shared_ptr<const ServingHandle> handle;
  Plan plan;                     ///< the serving handle's plan (echoed)
  bool from_cache = false;       ///< true: no mechanism ran, no budget spent
  PrivacyAccountant accountant;  ///< the mechanism's ledger (empty on cache
                                 ///< hits — nothing was spent)
};

class ReleaseEngine {
 public:
  /// `global_budget` caps the basic composition of every release this
  /// engine ever commits; `cache_capacity` bounds the LRU serving cache.
  explicit ReleaseEngine(PrivacyParams global_budget,
                         size_t cache_capacity = 8);

  ReleaseEngine(const ReleaseEngine&) = delete;
  ReleaseEngine& operator=(const ReleaseEngine&) = delete;

  /// Runs the spec against `instance` (whose query must structurally match
  /// the spec's schema). `rng` drives every noise draw, so a fixed seed
  /// reproduces the release bit-for-bit at any thread count.
  Result<EngineRelease> Run(const ReleaseSpec& spec, const Instance& instance,
                            Rng& rng);

  /// Convenience: loads the instance from `spec.instance_path` (resolved
  /// against `base_dir` when relative) via ReadInstanceCsv, then runs.
  Result<EngineRelease> RunFromFile(const ReleaseSpec& spec,
                                    const std::string& base_dir, Rng& rng);

  const BudgetLedger& ledger() const { return ledger_; }
  const ReleaseCache& cache() const { return cache_; }

 private:
  // Marks `key` in flight for the duration of a mechanism run; a second Run
  // of the same key blocks until the first settles, then (on success) hits
  // the cache instead of double-spending the budget.
  class InFlightGuard;

  BudgetLedger ledger_;
  ReleaseCache cache_;
  std::mutex in_flight_mu_;
  std::condition_variable in_flight_cv_;
  std::unordered_set<uint64_t> in_flight_;
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_ENGINE_H_
