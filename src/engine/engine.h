// ReleaseEngine: the end-to-end "pay privacy once, serve forever" front
// door, structured as a request/response API over a dataset catalog.
//
// Data registration and release submission are separate steps so a
// long-lived process amortizes the per-dataset costs (one load, one
// O(n log n) fingerprint) across millions of submissions:
//
//   engine.catalog().Register("traffic", std::move(instance));
//   ReleaseRequest request;
//   request.spec = spec;            // schema, budget, mechanism, workload
//   request.dataset = "traffic";    // or csv:<path> / generated:zipf(...)
//   request.seed = 7;               // drives every noise draw
//   Result<ReleaseResponse> response = engine.Submit(request);
//
// Submit
//   1. validates the spec and resolves the dataset through the catalog
//      (csv:/generated: sources auto-register once; the fingerprint is
//      REUSED, never recomputed per submission),
//   2. builds the workload family (deterministically from the spec),
//   3. consults the ReleaseCache — the release id is spec hash ⊕ dataset
//      fingerprint, so an identical spec over the same data is served from
//      its existing handle without touching the budget, while the same spec
//      over different data is a different release (never a stale hit),
//   4. plans the mechanism (resolving `auto` with a rationale),
//   5. reserves the spec's nominal (ε, δ) against the global BudgetLedger —
//      refusing specs that would exceed the remaining cap,
//   6. runs the chosen mechanism under the spec's thread-count override,
//   7. commits the mechanism's OWN accountant totals to the ledger, and
//   8. wraps the release in an immutable ServingHandle, caches it, and
//      returns the handle + release id + plan rationale + ledger snapshot.
//
// The engine object is safe to share across threads: catalog, ledger, and
// cache synchronize internally, handles are immutable, and concurrent
// Submits of the SAME release are serialized so exactly one runs the
// mechanism — the rest are cache hits, never a duplicate budget spend.
//
// Run/RunFromFile are the pre-catalog API, kept as thin shims over Submit's
// internals; Run fingerprints the ad-hoc instance on every call, which is
// exactly the hot-path cost the catalog exists to avoid.

#ifndef DPJOIN_ENGINE_ENGINE_H_
#define DPJOIN_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/mutex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "engine/budget_ledger.h"
#include "engine/catalog.h"
#include "engine/planner.h"
#include "engine/release_spec.h"
#include "engine/serving.h"
#include "relational/instance.h"

namespace dpjoin {

/// One release submission: which spec, over which data, under which seed.
struct ReleaseRequest {
  ReleaseSpec spec;

  /// Dataset to release over, in DataSource syntax: a registered catalog
  /// name, `csv:<path>`, or `generated:...`. Empty falls back to
  /// `spec.dataset`; both empty is an error.
  std::string dataset;

  /// Seeds the release's Rng; a fixed seed reproduces the release
  /// bit-for-bit at any thread count.
  uint64_t seed = 1;

  /// Base directory for resolving relative `csv:` paths.
  std::string base_dir;
};

/// Ledger state echoed on every response (consistent snapshot).
struct LedgerSnapshot {
  double spent_epsilon = 0.0;
  double spent_delta = 0.0;
  double remaining_epsilon = 0.0;
  double remaining_delta = 0.0;
  int64_t num_committed = 0;
};

/// Outcome of one submission.
struct ReleaseResponse {
  std::shared_ptr<const ServingHandle> handle;

  /// Stable release identity: spec hash ⊕ dataset fingerprint. The serving
  /// cache key, and the id `query` protocol commands address handles by.
  uint64_t release_id = 0;

  std::string dataset_name;     ///< resolved catalog name
  uint64_t dataset_fingerprint = 0;

  Plan plan;                    ///< the serving handle's plan (echoed)
  bool from_cache = false;      ///< true: no mechanism ran, no budget spent
  PrivacyAccountant accountant; ///< the mechanism's ledger (empty on cache
                                ///< hits — nothing was spent)
  LedgerSnapshot ledger;        ///< global budget state after this request
};

/// Legacy outcome of Run/RunFromFile (pre-catalog API).
struct EngineRelease {
  std::shared_ptr<const ServingHandle> handle;
  Plan plan;
  bool from_cache = false;
  PrivacyAccountant accountant;
};

class ReleaseEngine {
 public:
  /// `global_budget` caps the basic composition of every release this
  /// engine ever commits; `cache_capacity` bounds the LRU serving cache.
  explicit ReleaseEngine(PrivacyParams global_budget,
                         size_t cache_capacity = 8);

  ReleaseEngine(const ReleaseEngine&) = delete;
  ReleaseEngine& operator=(const ReleaseEngine&) = delete;

  /// Submits one release request (see the file comment for the pipeline).
  Result<ReleaseResponse> Submit(const ReleaseRequest& request);

  /// The serving handle for a previously returned release id, or NotFound
  /// when it was never released here or has been evicted from the LRU cache.
  /// Eviction drops the synthetic data, not the spent budget — size the
  /// cache for the live working set, and re-Submit to rebuild (which
  /// re-runs the mechanism and re-spends).
  Result<std::shared_ptr<const ServingHandle>> FindRelease(
      uint64_t release_id);

  /// Dataset registry: register here once, then Submit by name forever.
  DataCatalog& catalog() { return catalog_; }
  const DataCatalog& catalog() const { return catalog_; }

  /// Pre-catalog API: runs the spec against an ad-hoc `instance` (whose
  /// query must structurally match the spec's schema), fingerprinting it on
  /// every call. `rng` drives every noise draw.
  Result<EngineRelease> Run(const ReleaseSpec& spec, const Instance& instance,
                            Rng& rng);

  /// Pre-catalog API: resolves `spec.dataset` (any DataSource form,
  /// relative csv: paths against `base_dir`) through the catalog, then
  /// submits.
  Result<EngineRelease> RunFromFile(const ReleaseSpec& spec,
                                    const std::string& base_dir, Rng& rng);

  const BudgetLedger& ledger() const { return ledger_; }
  BudgetLedger& mutable_ledger() { return ledger_; }
  const ReleaseCache& cache() const { return cache_; }

 private:
  // Marks `key` in flight for the duration of a mechanism run; a second
  // submission of the same key blocks until the first settles, then (on
  // success) hits the cache instead of double-spending the budget.
  class InFlightGuard;

  // The shared submission pipeline: cache → reserve → plan → run → commit.
  // `spec_query` is spec.BuildQuery(), built once by the caller so the
  // per-submission cost stays flat.
  Result<ReleaseResponse> SubmitResolved(const ReleaseSpec& spec,
                                         const JoinQuery& spec_query,
                                         const std::string& dataset_name,
                                         uint64_t dataset_fingerprint,
                                         const Instance& instance, Rng& rng);

  LedgerSnapshot SnapshotLedger() const;

  DataCatalog catalog_;
  BudgetLedger ledger_;
  ReleaseCache cache_;
  Mutex in_flight_mu_;
  CondVar in_flight_cv_;
  std::unordered_set<uint64_t> in_flight_ GUARDED_BY(in_flight_mu_);
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_ENGINE_H_
