// TCP front-end for ReleaseServer: one event-loop thread multiplexing many
// JSON-lines clients over src/net primitives, with cross-client
// micro-batching of `query` requests.
//
// Request routing per line:
//
//   * a well-formed `query` line is parsed once (ParseQueryCommand) and
//     parked in the QueryBatcher; the batch flushes when `batch_max`
//     requests are pending or `batch_window_us` has elapsed since the
//     first one — so concurrent clients querying the same release share
//     engine evaluations;
//   * everything else (register/release/ledger/stats/shutdown, and any
//     malformed query) takes the classic HandleLine path.
//
// Execution stage (`workers` option): with workers == 0 all request
// execution happens on the event-loop thread. With workers >= 1 the loop
// keeps doing ONLY I/O + framing + batching, and hands parsed work to a
// small pool of request-execution threads: each flushed query batch is
// split into per-release groups (QueryBatcher::TakeGroups) dispatched as
// independent tasks — so concurrent AnswerAlls against different releases
// genuinely overlap on the ThreadPool's concurrent regions — while
// HandleLine commands ride a per-connection ordered lane (at most one in
// flight per connection) so a pipelined register→release pair still
// executes in submission order. Workers marshal finished response lines
// back to the loop thread through the wake pipe; only the loop thread
// touches connections.
//
// Responses leave each connection in request order. Every connection owns
// a queue of ordered response slots: each request reserves a slot at parse
// time and fills it when its execution finishes — inline, at flush time,
// or on a worker — and only the filled prefix is ever written. So for any
// worker count, pipelined clients see exactly the byte stream the stdio
// loop would have produced.
//
// Shutdown (a client's `shutdown` command, or RequestShutdown() from any
// thread) is graceful: the listener closes, pending batches flush, queued
// responses drain (bounded by a few seconds for peers that stopped
// reading), then Run() returns.

#ifndef DPJOIN_ENGINE_NET_SERVER_H_
#define DPJOIN_ENGINE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/query_batcher.h"
#include "engine/server.h"
#include "net/line_channel.h"
#include "net/poller.h"
#include "net/socket.h"

namespace dpjoin {

struct NetServerOptions {
  /// 0 = kernel-assigned (read the real one from port() after Start()).
  uint16_t port = 0;

  /// How long the first parked query waits for company before the batch
  /// flushes anyway. 0 = flush as soon as the read burst that delivered
  /// the query is processed.
  int64_t batch_window_us = 1000;

  /// Flush once this many queries are pending. 1 disables coalescing
  /// (every query is its own engine call — the benchmark baseline).
  int64_t batch_max = 512;

  /// Connections beyond this are answered with one ok:false line and
  /// closed immediately.
  int64_t max_conns = 1024;

  /// Request-execution threads. 0 = execute on the event-loop thread
  /// (classic single-threaded behavior); N >= 1 dispatches parsed work to
  /// N workers so independent releases' evaluations overlap on the
  /// concurrent-region thread pool. Response bytes are identical for any
  /// value.
  int64_t workers = 0;

  /// Readiness backend (kAuto = epoll on Linux). kPoll keeps the portable
  /// path testable on Linux too.
  Poller::Backend backend = Poller::Backend::kAuto;
};

class NetServer {
 public:
  /// The ReleaseServer (and its engine) must outlive the NetServer.
  NetServer(ReleaseServer& server, NetServerOptions options);

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens on 127.0.0.1:options.port. After OK, port() is the
  /// actual listening port.
  Status Start();

  uint16_t port() const { return port_; }

  /// Runs the event loop until shutdown; returns the number of request
  /// lines handled. Call from exactly one thread, after Start().
  int64_t Run();

  /// Thread-safe: asks the loop to begin the graceful shutdown sequence.
  void RequestShutdown();

  int64_t connections_accepted() const { return accepted_.load(); }
  const QueryBatcher& batcher() const { return batcher_; }

 private:
  struct Conn {
    uint64_t id = 0;
    LineChannel channel;
    // slots[k] answers the request with sequence `flushed_seq + k`;
    // nullopt = still being computed. Only the filled prefix is written.
    std::deque<std::optional<std::string>> slots;
    uint64_t next_seq = 0;
    uint64_t flushed_seq = 0;
    bool peer_eof = false;
    // Socket error or protocol abuse — close without draining.
    bool broken = false;
    // Poller interest actually installed (avoid redundant syscalls).
    bool watch_read = true;
    bool watch_write = false;
    // Ordered execution lane for HandleLine commands when workers > 0: at
    // most one in flight per connection, the rest park here, so pipelined
    // state-changing commands (register → release) keep submission order.
    std::deque<std::pair<uint64_t, std::string>> lane;
    bool lane_busy = false;

    explicit Conn(Socket socket) : channel(std::move(socket)) {}
  };

  /// A finished piece of work, marshalled from a worker back to the loop
  /// thread (which alone may touch `conns_`).
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string line;
    bool advance_lane = false;  // a lane task: start the conn's next one
  };

  void AcceptNewConnections();
  void ProcessReadable(Conn& conn);
  void HandleRequestLine(Conn& conn, const std::string& line);
  void FillSlot(uint64_t conn_id, uint64_t seq, std::string line);
  void FlushBatch();
  void BeginShutdown();
  /// Pushes bytes, reconciles poller interest, closes finished conns.
  void SweepConnections();
  void CloseConn(uint64_t conn_id);

  // Request-execution stage (workers > 0).
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop() EXCLUDES(exec_mu_);
  void EnqueueTask(std::function<void()> task) EXCLUDES(exec_mu_);
  void PushCompletion(Completion completion) EXCLUDES(done_mu_);
  /// Loop thread: applies queued completions (FillSlot + lane advance).
  void DrainCompletions() EXCLUDES(done_mu_);
  /// Routes one HandleLine command: inline when workers == 0, else onto
  /// the connection's ordered lane.
  void DispatchHandleLine(Conn& conn, uint64_t seq, const std::string& line);
  void SubmitLaneTask(uint64_t conn_id, uint64_t seq, std::string line);

  ReleaseServer& server_;
  const NetServerOptions options_;
  QueryBatcher batcher_;
  Socket listener_;
  uint16_t port_ = 0;
  Poller poller_;
  WakePipe wake_;
  // conn_id (monotonic) -> connection. Keyed by id, not fd: a batched
  // responder outliving its connection must miss cleanly, never hit a
  // recycled fd.
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::map<int, uint64_t> fd_to_conn_;
  uint64_t next_conn_id_ = 1;
  int64_t handled_ = 0;
  // Wall-clock (microseconds, steady) when the open batch must flush;
  // unset when nothing is pending.
  std::optional<int64_t> batch_deadline_us_;
  bool shutting_down_ = false;
  std::optional<int64_t> drain_deadline_us_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int64_t> accepted_{0};

  // Execution-stage state. Tasks are closures over `this` + plain ids —
  // never over Conn pointers, so a vanished connection is a clean miss.
  Mutex exec_mu_;
  CondVar exec_cv_;
  std::deque<std::function<void()>> exec_queue_ GUARDED_BY(exec_mu_);
  bool exec_stop_ GUARDED_BY(exec_mu_) = false;
  // Not pool compute: these threads orchestrate request execution (the
  // parallel math still runs on ThreadPool inside AnswerAll/AnswerBatch).
  // dpjoin-lint: allow(raw-thread) — I/O-stage workers, not parallel compute
  std::vector<std::thread> exec_threads_;
  // exec_mu_ and done_mu_ are never held together (queue pops, task
  // execution, and completion swaps each run lock-free of the other), so
  // there is no lock order to document.
  Mutex done_mu_;
  std::vector<Completion> completions_ GUARDED_BY(done_mu_);
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_NET_SERVER_H_
