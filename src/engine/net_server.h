// TCP front-end for ReleaseServer: one event-loop thread multiplexing many
// JSON-lines clients over src/net primitives, with cross-client
// micro-batching of `query` requests.
//
// Request routing per line:
//
//   * a well-formed `query` line is parsed once (ParseQueryCommand) and
//     parked in the QueryBatcher; the batch flushes when `batch_max`
//     requests are pending or `batch_window_us` has elapsed since the
//     first one — so concurrent clients querying the same release share
//     engine evaluations;
//   * everything else (register/release/ledger/stats/shutdown, and any
//     malformed query) takes the classic inline HandleLine path.
//
// Responses leave each connection in request order. Every connection owns
// a queue of ordered response slots: inline commands fill their slot
// immediately, batched queries fill theirs at flush time, and only the
// filled prefix is ever written — so pipelined clients see exactly the
// byte stream the stdio loop would have produced.
//
// Shutdown (a client's `shutdown` command, or RequestShutdown() from any
// thread) is graceful: the listener closes, pending batches flush, queued
// responses drain (bounded by a few seconds for peers that stopped
// reading), then Run() returns.

#ifndef DPJOIN_ENGINE_NET_SERVER_H_
#define DPJOIN_ENGINE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_batcher.h"
#include "engine/server.h"
#include "net/line_channel.h"
#include "net/poller.h"
#include "net/socket.h"

namespace dpjoin {

struct NetServerOptions {
  /// 0 = kernel-assigned (read the real one from port() after Start()).
  uint16_t port = 0;

  /// How long the first parked query waits for company before the batch
  /// flushes anyway. 0 = flush as soon as the read burst that delivered
  /// the query is processed.
  int64_t batch_window_us = 1000;

  /// Flush once this many queries are pending. 1 disables coalescing
  /// (every query is its own engine call — the benchmark baseline).
  int64_t batch_max = 512;

  /// Connections beyond this are answered with one ok:false line and
  /// closed immediately.
  int64_t max_conns = 1024;

  /// Readiness backend (kAuto = epoll on Linux). kPoll keeps the portable
  /// path testable on Linux too.
  Poller::Backend backend = Poller::Backend::kAuto;
};

class NetServer {
 public:
  /// The ReleaseServer (and its engine) must outlive the NetServer.
  NetServer(ReleaseServer& server, NetServerOptions options);

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens on 127.0.0.1:options.port. After OK, port() is the
  /// actual listening port.
  Status Start();

  uint16_t port() const { return port_; }

  /// Runs the event loop until shutdown; returns the number of request
  /// lines handled. Call from exactly one thread, after Start().
  int64_t Run();

  /// Thread-safe: asks the loop to begin the graceful shutdown sequence.
  void RequestShutdown();

  int64_t connections_accepted() const { return accepted_.load(); }
  const QueryBatcher& batcher() const { return batcher_; }

 private:
  struct Conn {
    uint64_t id = 0;
    LineChannel channel;
    // slots[k] answers the request with sequence `flushed_seq + k`;
    // nullopt = still being computed. Only the filled prefix is written.
    std::deque<std::optional<std::string>> slots;
    uint64_t next_seq = 0;
    uint64_t flushed_seq = 0;
    bool peer_eof = false;
    // Socket error or protocol abuse — close without draining.
    bool broken = false;
    // Poller interest actually installed (avoid redundant syscalls).
    bool watch_read = true;
    bool watch_write = false;

    explicit Conn(Socket socket) : channel(std::move(socket)) {}
  };

  void AcceptNewConnections();
  void ProcessReadable(Conn& conn);
  void HandleRequestLine(Conn& conn, const std::string& line);
  void FillSlot(uint64_t conn_id, uint64_t seq, std::string line);
  void FlushBatch();
  void BeginShutdown();
  /// Pushes bytes, reconciles poller interest, closes finished conns.
  void SweepConnections();
  void CloseConn(uint64_t conn_id);

  ReleaseServer& server_;
  const NetServerOptions options_;
  QueryBatcher batcher_;
  Socket listener_;
  uint16_t port_ = 0;
  Poller poller_;
  WakePipe wake_;
  // conn_id (monotonic) -> connection. Keyed by id, not fd: a batched
  // responder outliving its connection must miss cleanly, never hit a
  // recycled fd.
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::map<int, uint64_t> fd_to_conn_;
  uint64_t next_conn_id_ = 1;
  int64_t handled_ = 0;
  // Wall-clock (microseconds, steady) when the open batch must flush;
  // unset when nothing is pending.
  std::optional<int64_t> batch_deadline_us_;
  bool shutting_down_ = false;
  std::optional<int64_t> drain_deadline_us_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int64_t> accepted_{0};
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_NET_SERVER_H_
