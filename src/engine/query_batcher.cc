#include "engine/query_batcher.h"

#include "engine/serving.h"

namespace dpjoin {

QueryBatcher::QueryBatcher(ReleaseServer& server, Options options)
    : server_(server), options_(options) {}

void QueryBatcher::Enqueue(QueryCommand cmd, Responder responder) {
  server_.RecordRequest();
  MutexLock lock(mu_);
  pending_.push_back({std::move(cmd), std::move(responder)});
}

int64_t QueryBatcher::pending_requests() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

std::vector<QueryBatcher::ReleaseGroup> QueryBatcher::TakeGroups() {
  std::vector<Pending> batch;
  {
    MutexLock lock(mu_);
    batch.swap(pending_);
  }
  // Group by release id, first-seen order (so responses come out in a
  // stable order for any given request sequence); members keep arrival
  // order within the group.
  std::vector<ReleaseGroup> groups;
  for (Pending& pending : batch) {
    const uint64_t id = pending.cmd.release_id;
    auto it = groups.begin();
    for (; it != groups.end(); ++it) {
      if (it->release_id == id) break;
    }
    if (it == groups.end()) {
      groups.push_back({id, {}});
      it = groups.end() - 1;
    }
    it->members.push_back(std::move(pending));
  }
  return groups;
}

void QueryBatcher::ExecuteGroup(ReleaseGroup& group, int64_t wait_us) {
  std::vector<Pending>& members = group.members;
  if (members.empty()) return;
  const uint64_t release_id = group.release_id;

  auto handle = server_.engine().FindRelease(release_id);
  if (!handle.ok()) {
    // Same bytes a lone request gets: FindRelease's status, serialized
    // by the shared error builder.
    const std::string line = QueryErrorResponse(handle.status()).Serialize();
    for (Pending& member : members) member.responder(line);
    return;
  }
  server_.serving_stats().RecordGroupWait(release_id, wait_us);
  const ServingHandle& serving = **handle;
  const int64_t num_queries = serving.NumQueries();

  std::vector<size_t> all_members;
  std::vector<size_t> id_members;   // ids pre-validated in range
  std::vector<size_t> bad_members;  // at least one id out of range
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].cmd.all) {
      all_members.push_back(i);
      continue;
    }
    bool in_range = true;
    for (const int64_t id : members[i].cmd.ids) {
      if (id < 0 || id >= num_queries) {
        in_range = false;
        break;
      }
    }
    (in_range ? id_members : bad_members).push_back(i);
  }

  // An out-of-range request is answered by its OWN AnswerBatch call:
  // validation rejects before any evaluation, and the error message
  // keeps its request-local index — identical to the inline path.
  for (const size_t i : bad_members) {
    auto answers = serving.AnswerBatch(members[i].cmd.ids);
    answer_batch_calls_.fetch_add(1, std::memory_order_relaxed);
    members[i].responder(QueryErrorResponse(answers.status()).Serialize());
  }

  if (!all_members.empty()) {
    const std::vector<double> answers = serving.AnswerAll();
    answer_all_calls_.fetch_add(1, std::memory_order_relaxed);
    // One evaluation, one serialization — every all-request against this
    // release shares the identical response line.
    const std::string line = QueryAnswersResponse(answers).Serialize();
    for (const size_t i : all_members) members[i].responder(line);
    server_.serving_stats().RecordBatch(
        release_id, static_cast<int64_t>(all_members.size()),
        static_cast<int64_t>(all_members.size()) *
            static_cast<int64_t>(answers.size()),
        /*used_answer_all=*/true);
  }

  if (!id_members.empty()) {
    std::vector<int64_t> merged;
    for (const size_t i : id_members) {
      merged.insert(merged.end(), members[i].cmd.ids.begin(),
                    members[i].cmd.ids.end());
    }
    auto answers = serving.AnswerBatch(merged);
    answer_batch_calls_.fetch_add(1, std::memory_order_relaxed);
    if (!answers.ok()) {
      // Unreachable given the pre-validation above, but an engine error
      // must still answer every member rather than drop connections.
      const std::string line = QueryErrorResponse(answers.status()).Serialize();
      for (const size_t i : id_members) members[i].responder(line);
    } else {
      // Slice the merged answers back out. AnswerBatch evaluates each
      // slot independently, so slice i is bit-identical to what request
      // i would have computed alone.
      size_t offset = 0;
      for (const size_t i : id_members) {
        const size_t n = members[i].cmd.ids.size();
        const std::vector<double> slice(answers->begin() + offset,
                                        answers->begin() + offset + n);
        offset += n;
        members[i].responder(QueryAnswersResponse(slice).Serialize());
      }
      server_.serving_stats().RecordBatch(
          release_id, static_cast<int64_t>(id_members.size()),
          static_cast<int64_t>(merged.size()),
          /*used_answer_all=*/false);
    }
  }
}

int64_t QueryBatcher::Flush() {
  std::vector<ReleaseGroup> groups = TakeGroups();
  int64_t answered = 0;
  for (ReleaseGroup& group : groups) {
    answered += static_cast<int64_t>(group.members.size());
    ExecuteGroup(group, /*wait_us=*/0);
  }
  return answered;
}

}  // namespace dpjoin
