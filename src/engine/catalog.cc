#include "engine/catalog.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "relational/generators.h"
#include "relational/io.h"

namespace dpjoin {

namespace {

std::atomic<int64_t> g_fingerprint_count{0};

Status SourceError(const std::string& text, const std::string& message) {
  return Status::InvalidArgument("bad data source '" + text + "': " + message);
}

}  // namespace

uint64_t InstanceFingerprint(const Instance& instance) {
  g_fingerprint_count.fetch_add(1, std::memory_order_relaxed);
  uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (int r = 0; r < instance.num_relations(); ++r) {
    std::vector<std::pair<int64_t, int64_t>> entries(
        instance.relation(r).entries().begin(),
        instance.relation(r).entries().end());
    std::sort(entries.begin(), entries.end());
    mix(static_cast<uint64_t>(r));
    for (const auto& [code, freq] : entries) {
      mix(static_cast<uint64_t>(code));
      mix(static_cast<uint64_t>(freq));
    }
  }
  return hash;
}

int64_t InstanceFingerprintCount() {
  return g_fingerprint_count.load(std::memory_order_relaxed);
}

std::string SchemaString(const JoinQuery& query) {
  std::ostringstream oss;
  for (int a = 0; a < query.num_attributes(); ++a) {
    if (a > 0) oss << ",";
    oss << query.attribute_name(a) << ":" << query.domain_size(a);
  }
  oss << "|" << query.ToString();
  return oss.str();
}

Result<DataSource> DataSource::Parse(const std::string& text) {
  const std::string trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return SourceError(text, "empty source");

  if (trimmed.compare(0, 4, "csv:") == 0) {
    DataSource source;
    source.kind = Kind::kCsv;
    source.csv_path = TrimWhitespace(trimmed.substr(4));
    if (source.csv_path.empty()) return SourceError(text, "empty csv path");
    return source;
  }

  if (trimmed.compare(0, 10, "generated:") == 0) {
    const std::string body = TrimWhitespace(trimmed.substr(10));
    const size_t open = body.find('(');
    if (open == std::string::npos || body.empty() || body.back() != ')') {
      return SourceError(text,
                         "generated wants GENERATOR(key=value,...) with "
                         "generator zipf|uniform");
    }
    const std::string generator = TrimWhitespace(body.substr(0, open));
    DataSource source;
    source.kind = Kind::kGenerated;
    if (generator == "zipf") {
      source.generator = Generator::kZipf;
    } else if (generator == "uniform") {
      source.generator = Generator::kUniform;
    } else {
      return SourceError(text, "unknown generator '" + generator +
                                   "' (expected zipf|uniform)");
    }
    bool saw_tuples = false;
    const std::string args = body.substr(open + 1, body.size() - open - 2);
    std::stringstream ss(args);
    std::string arg;
    while (std::getline(ss, arg, ',')) {
      arg = TrimWhitespace(arg);
      if (arg.empty()) return SourceError(text, "empty generator argument");
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        return SourceError(text, "generator argument '" + arg +
                                     "' wants key=value");
      }
      const std::string key = TrimWhitespace(arg.substr(0, eq));
      const std::string value = TrimWhitespace(arg.substr(eq + 1));
      try {
        size_t consumed = 0;
        if (key == "tuples") {
          source.tuples = std::stoll(value, &consumed);
          saw_tuples = true;
        } else if (key == "seed") {
          // stoull (not stoll): seeds are the full uint64 range, and a
          // negative seed must be an error, not a silent wraparound that
          // CanonicalString() could no longer parse back.
          if (!value.empty() && value[0] == '-') {
            return SourceError(text, "seed must be >= 0");
          }
          source.seed = std::stoull(value, &consumed);
        } else if (key == "s" && source.generator == Generator::kZipf) {
          source.zipf_s = std::stod(value, &consumed);
        } else {
          return SourceError(text, "unknown generator argument '" + key + "'");
        }
        if (consumed != value.size()) {
          return SourceError(text, "bad number '" + value + "'");
        }
      } catch (const std::exception&) {
        return SourceError(text, "bad number '" + value + "'");
      }
    }
    if (!saw_tuples || source.tuples < 0) {
      return SourceError(text, "generated sources need tuples=N with N >= 0");
    }
    if (source.generator == Generator::kZipf &&
        (!std::isfinite(source.zipf_s) || source.zipf_s < 0.0)) {
      return SourceError(text, "zipf skew s must be finite and >= 0");
    }
    return source;
  }

  // Bare catalog name. Reject names that LOOK like a source scheme typo.
  if (trimmed.find(':') != std::string::npos) {
    return SourceError(text,
                       "unknown scheme (expected csv:<path>, "
                       "generated:zipf(...), generated:uniform(...), or a "
                       "bare dataset name without ':')");
  }
  DataSource source;
  source.kind = Kind::kCatalogName;
  source.name = trimmed;
  return source;
}

std::string DataSource::CanonicalString() const {
  switch (kind) {
    case Kind::kCatalogName:
      return name;
    case Kind::kCsv:
      return "csv:" + csv_path;
    case Kind::kGenerated: {
      std::ostringstream oss;
      if (generator == Generator::kZipf) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", zipf_s);
        oss << "generated:zipf(tuples=" << tuples << ",s=" << buf
            << ",seed=" << seed << ")";
      } else {
        oss << "generated:uniform(tuples=" << tuples << ",seed=" << seed
            << ")";
      }
      return oss.str();
    }
  }
  return "";
}

std::string DataSource::ResolvedCanonicalString(
    const std::string& base_dir) const {
  if (kind == Kind::kCsv && csv_path.front() != '/' && !base_dir.empty()) {
    return "csv:" + base_dir + "/" + csv_path;
  }
  return CanonicalString();
}

Result<Instance> DataSource::Materialize(
    std::shared_ptr<const JoinQuery> query,
    const std::string& base_dir) const {
  DPJOIN_CHECK(query != nullptr, "Materialize needs a query");
  switch (kind) {
    case Kind::kCatalogName:
      return Status::InvalidArgument(
          "dataset name '" + name +
          "' is a catalog reference, not a loadable source");
    case Kind::kCsv: {
      std::string path = csv_path;
      if (path.front() != '/' && !base_dir.empty()) {
        path = base_dir + "/" + path;
      }
      std::ifstream file(path);
      if (!file) {
        return Status::NotFound("cannot open instance file '" + path + "'");
      }
      auto loaded = ReadInstanceCsv(query, file);
      if (!loaded.ok()) {
        return Status(loaded.status().code(),
                      "instance file '" + path +
                          "': " + loaded.status().message());
      }
      return loaded;
    }
    case Kind::kGenerated: {
      Rng rng(seed);
      if (generator == Generator::kZipf) {
        return MakeZipfInstance(*query, tuples, zipf_s, rng);
      }
      return MakeUniformInstance(*query, tuples, rng);
    }
  }
  return Status::Internal("unreachable data-source kind");
}

DatasetHandle::DatasetHandle(std::string name, std::string source,
                             Instance instance)
    : name_(std::move(name)),
      source_(std::move(source)),
      instance_(std::make_shared<const Instance>(std::move(instance))),
      fingerprint_(InstanceFingerprint(*instance_)),
      input_size_(instance_->InputSize()) {}

Result<std::shared_ptr<const DatasetHandle>> DataCatalog::Insert(
    const std::string& name, Instance instance,
    const std::string& source_desc) {
  // Fingerprint outside the lock: registration is the one place the
  // O(n log n) cost is paid, and it must not serialize concurrent lookups.
  auto handle = std::make_shared<const DatasetHandle>(name, source_desc,
                                                      std::move(instance));
  MutexLock lock(mu_);
  const auto [it, inserted] = datasets_.emplace(name, handle);
  if (!inserted) {
    return Status::AlreadyExists(
        "dataset '" + name +
        "' is already registered (datasets are immutable; Unregister first "
        "to replace it)");
  }
  return it->second;
}

namespace {

Status ValidateDatasetName(const std::string& name) {
  if (TrimWhitespace(name).empty() || TrimWhitespace(name) != name) {
    return Status::InvalidArgument(
        "dataset names must be non-empty without leading/trailing "
        "whitespace, got '" + name + "'");
  }
  // ':' is reserved for source schemes: DataSource::Parse could never
  // resolve such a name back to the registry, and it could collide with
  // Resolve's auto-registration keys ("csv:...@<hash>").
  if (name.find(':') != std::string::npos) {
    return Status::InvalidArgument(
        "dataset name '" + name +
        "' contains ':', which is reserved for source schemes "
        "(csv:, generated:)");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const DatasetHandle>> DataCatalog::Register(
    const std::string& name, Instance instance,
    const std::string& source_desc) {
  DPJOIN_RETURN_NOT_OK(ValidateDatasetName(name));
  return Insert(name, std::move(instance), source_desc);
}

Result<std::shared_ptr<const DatasetHandle>> DataCatalog::RegisterSource(
    const std::string& name, const std::string& source,
    std::shared_ptr<const JoinQuery> query, const std::string& base_dir) {
  DPJOIN_RETURN_NOT_OK(ValidateDatasetName(name));
  DataSource parsed;
  DPJOIN_ASSIGN_OR_RETURN(parsed, DataSource::Parse(source));
  if (parsed.kind == DataSource::Kind::kCatalogName) {
    return Status::InvalidArgument(
        "cannot register dataset '" + name + "' from '" + source +
        "': a bare name refers to an existing dataset (use csv:<path> or "
        "generated:...)");
  }
  auto materialized = parsed.Materialize(query, base_dir);
  if (!materialized.ok()) return materialized.status();
  return Insert(name, std::move(materialized).value(),
                parsed.CanonicalString());
}

Result<std::shared_ptr<const DatasetHandle>> DataCatalog::Resolve(
    const std::string& source, std::shared_ptr<const JoinQuery> query,
    const std::string& base_dir) {
  DataSource parsed;
  DPJOIN_ASSIGN_OR_RETURN(parsed, DataSource::Parse(source));
  if (parsed.kind == DataSource::Kind::kCatalogName) {
    return Get(parsed.name);
  }
  // Auto-registration name: base_dir-resolved canonical source + schema
  // hash, so neither the same source string under two different schemas (a
  // CSV read with different domains, say) nor the same relative path under
  // two different base dirs ever collides.
  DPJOIN_CHECK(query != nullptr, "Resolve needs a query for loadable sources");
  const std::string auto_name =
      parsed.ResolvedCanonicalString(base_dir) + "@" +
      std::to_string(Fnv1aHash(SchemaString(*query)));
  if (auto existing = Find(auto_name)) return existing;
  // Insert, not RegisterSource: auto-names deliberately carry the ':' that
  // user-facing registration rejects.
  auto materialized = parsed.Materialize(query, base_dir);
  if (!materialized.ok()) return materialized.status();
  auto registered = Insert(auto_name, std::move(materialized).value(),
                           parsed.CanonicalString());
  if (registered.ok()) return registered;
  // Lost a race: another thread registered the same source first — its
  // handle is identical (sources materialize deterministically), use it.
  if (registered.status().code() == StatusCode::kAlreadyExists) {
    if (auto existing = Find(auto_name)) return existing;
  }
  return registered;
}

Result<std::shared_ptr<const DatasetHandle>> DataCatalog::Get(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = datasets_.find(name);
  if (it != datasets_.end()) return it->second;
  // Deliberately does NOT enumerate the registered names: the message
  // travels verbatim to protocol clients, and the catalog's contents
  // (other tenants' names, auto-names embedding filesystem paths) are not
  // theirs to see.
  return Status::NotFound("unknown dataset '" + name + "' (" +
                          std::to_string(datasets_.size()) +
                          " dataset(s) registered)");
}

std::shared_ptr<const DatasetHandle> DataCatalog::Find(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

bool DataCatalog::Unregister(const std::string& name) {
  MutexLock lock(mu_);
  return datasets_.erase(name) > 0;
}

std::vector<std::string> DataCatalog::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, handle] : datasets_) names.push_back(name);
  return names;
}

size_t DataCatalog::size() const {
  MutexLock lock(mu_);
  return datasets_.size();
}

}  // namespace dpjoin
