// Dataset registration: pay the data-loading costs once, submit forever.
//
// PR 3's engine re-fingerprinted the instance (an O(n log n) sort over every
// tuple) on EVERY submission — fine for research scripts, wrong for a
// long-lived server. The catalog splits data registration from release
// submission:
//
//   * DataSource      — where data comes from, as a parseable string:
//                       `csv:<path>`, `generated:zipf(tuples=N,s=S,seed=K)`,
//                       `generated:uniform(tuples=N,seed=K)`, or a bare
//                       catalog dataset name.
//   * DatasetHandle   — an immutable registered dataset: the loaded
//                       Instance plus its fingerprint, computed exactly once
//                       at registration. Shareable across threads.
//   * DataCatalog     — a thread-safe name → DatasetHandle registry.
//
// The fingerprint (FNV-1a over the instance's sorted tuples) is half of the
// engine's release identity (spec hash ⊕ fingerprint), so an identical spec
// over different data is a different release while re-submitting the same
// spec + dataset is a free cache hit. InstanceFingerprintCount() exposes a
// process-wide computation counter so tests can assert the hot path never
// re-fingerprints.
//
// Sources resolved through DataCatalog::Resolve are auto-registered under a
// canonical name derived from the source and schema: resolving the same
// `csv:`/`generated:` source again reuses the first materialization (no
// re-read, no re-fingerprint). A CSV edited on disk is deliberately NOT
// picked up — re-register under a new name (or Unregister first) to load
// new data; a serving system must never silently swap the data under
// releases it already paid for.

#ifndef DPJOIN_ENGINE_CATALOG_H_
#define DPJOIN_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "relational/instance.h"

namespace dpjoin {

/// FNV-1a over the instance's sorted (relation, code, frequency) triples.
/// O(n log n); call once per dataset, never per submission. Every call bumps
/// the process-wide InstanceFingerprintCount().
uint64_t InstanceFingerprint(const Instance& instance);

/// How many times InstanceFingerprint ran in this process (monotone;
/// tests/stats use deltas to prove the submission hot path is
/// fingerprint-free).
int64_t InstanceFingerprintCount();

/// Domain-inclusive schema rendering ("A:8,B:6|R(A,B),R(B,C)"-style).
/// Unlike JoinQuery::ToString(), two queries agree here iff they have the
/// same attributes WITH the same domain sizes and the same hyperedges —
/// the identity the catalog and the engine's schema check key on.
std::string SchemaString(const JoinQuery& query);

/// A parsed dataset source description.
struct DataSource {
  enum class Kind {
    kCatalogName,  ///< bare name of an already-registered dataset
    kCsv,          ///< `csv:<path>` — ReadInstanceCsv file
    kGenerated,    ///< `generated:zipf(...)` / `generated:uniform(...)`
  };
  enum class Generator { kZipf, kUniform };

  Kind kind = Kind::kCatalogName;
  std::string name;      ///< kCatalogName: the dataset name
  std::string csv_path;  ///< kCsv: path, possibly relative to a base dir
  Generator generator = Generator::kUniform;  ///< kGenerated
  int64_t tuples = 0;    ///< kGenerated: ~tuples per relation
  double zipf_s = 1.0;   ///< kGenerated zipf: skew exponent
  uint64_t seed = 1;     ///< kGenerated: generation seed

  /// Parses `name`, `csv:<path>`, or
  /// `generated:{zipf|uniform}(key=value,...)` with keys tuples (required,
  /// >= 0), seed, and (zipf only) s.
  static Result<DataSource> Parse(const std::string& text);

  /// Stable rendering that parses back to an equal source; the catalog's
  /// auto-registration name is derived from it.
  std::string CanonicalString() const;

  /// CanonicalString with relative csv: paths resolved against `base_dir` —
  /// the identity Resolve keys on, so the same relative path under two
  /// different base dirs is two different datasets, never an alias.
  std::string ResolvedCanonicalString(const std::string& base_dir) const;

  /// Loads (kCsv, resolving relative paths against `base_dir`) or
  /// deterministically generates (kGenerated) the instance for `query`.
  /// kCatalogName sources cannot materialize — look them up instead.
  Result<Instance> Materialize(std::shared_ptr<const JoinQuery> query,
                               const std::string& base_dir) const;
};

/// An immutable registered dataset: instance + fingerprint, computed once.
class DatasetHandle {
 public:
  /// Takes ownership of `instance` and fingerprints it (the only
  /// InstanceFingerprint call this dataset will ever cause).
  DatasetHandle(std::string name, std::string source, Instance instance);

  const std::string& name() const { return name_; }
  /// Canonical source description ("in-memory" for direct registrations).
  const std::string& source() const { return source_; }
  const Instance& instance() const { return *instance_; }
  std::shared_ptr<const Instance> instance_ptr() const { return instance_; }
  uint64_t fingerprint() const { return fingerprint_; }
  int64_t input_size() const { return input_size_; }

 private:
  std::string name_;
  std::string source_;
  std::shared_ptr<const Instance> instance_;
  uint64_t fingerprint_;
  int64_t input_size_;
};

/// Thread-safe name → DatasetHandle registry.
class DataCatalog {
 public:
  DataCatalog() = default;
  DataCatalog(const DataCatalog&) = delete;
  DataCatalog& operator=(const DataCatalog&) = delete;

  /// Registers an in-memory instance under `name`. AlreadyExists when the
  /// name is taken (datasets are immutable; Unregister first to replace).
  /// Names may not contain ':' — it is reserved for source schemes, so
  /// every registered name stays addressable through DataSource syntax and
  /// can never collide with Resolve's auto-registration keys.
  Result<std::shared_ptr<const DatasetHandle>> Register(
      const std::string& name, Instance instance,
      const std::string& source_desc = "in-memory");

  /// Parses + materializes `source` for `query`, then registers it under
  /// `name`. kCatalogName sources are rejected (nothing to load).
  Result<std::shared_ptr<const DatasetHandle>> RegisterSource(
      const std::string& name, const std::string& source,
      std::shared_ptr<const JoinQuery> query, const std::string& base_dir = "");

  /// Resolves a source string for the engine: a bare name looks up the
  /// registry (NotFound when absent); `csv:`/`generated:` sources are
  /// materialized and auto-registered under a canonical source+schema name,
  /// so resolving the same source again reuses the existing handle —
  /// including its fingerprint.
  Result<std::shared_ptr<const DatasetHandle>> Resolve(
      const std::string& source, std::shared_ptr<const JoinQuery> query,
      const std::string& base_dir = "");

  /// The handle, or NotFound naming the known datasets.
  Result<std::shared_ptr<const DatasetHandle>> Get(
      const std::string& name) const;

  /// The handle, or nullptr when absent.
  std::shared_ptr<const DatasetHandle> Find(const std::string& name) const;

  /// Removes `name`; false when absent. Outstanding handles stay valid
  /// (shared ownership) — only the name is freed.
  bool Unregister(const std::string& name);

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  // Registration body without the reserved-name check (Resolve's
  // auto-names legitimately contain ':').
  Result<std::shared_ptr<const DatasetHandle>> Insert(
      const std::string& name, Instance instance,
      const std::string& source_desc);

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const DatasetHandle>> datasets_
      GUARDED_BY(mu_);
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_CATALOG_H_
