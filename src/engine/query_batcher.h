// Cross-client micro-batching for `query` requests.
//
// The net front-end parses each incoming query line (ParseQueryCommand)
// and hands it here instead of answering inline. When the owner decides
// the window is over — the request-count cap tripped, the batching window
// expired, or the server is draining for shutdown — Flush() answers every
// pending request with as few engine calls as possible:
//
//   * requests are grouped by release id (first-seen order);
//   * all `all:true` requests against one release share ONE AnswerAll
//     evaluation and ONE serialized response line;
//   * id-list requests against one release merge into ONE AnswerBatch
//     call, whose answers are sliced back per request.
//
// Byte-identity with the inline stdio path is a hard protocol guarantee,
// not an aspiration: responses go through the same
// QueryAnswersResponse/QueryErrorResponse serializers HandleQuery uses,
// AnswerBatch computes every slot independently (so merging id lists
// cannot change any answer), and a request whose ids fail validation is
// answered by its OWN AnswerBatch call — which rejects before evaluating —
// so its error message carries the request-local index, exactly as if it
// had arrived alone.
//
// Thread-safe: Enqueue and Flush may race from any threads. Engine
// evaluation and responder invocation happen OUTSIDE the lock, so a slow
// responder cannot stall concurrent enqueues.

#ifndef DPJOIN_ENGINE_QUERY_BATCHER_H_
#define DPJOIN_ENGINE_QUERY_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/server.h"

namespace dpjoin {

class QueryBatcher {
 public:
  struct Options {
    /// Flush trigger: the owner should Flush() once this many requests are
    /// pending (ShouldFlushOnCap turns true). The window trigger is the
    /// owner's clock, not ours — keeping the batcher clock-free keeps its
    /// unit tests deterministic.
    int64_t max_requests = 512;
  };

  /// Receives exactly one serialized response line per enqueued request,
  /// during some later Flush()/ExecuteGroup(), on the executing thread.
  using Responder = std::function<void(std::string line)>;

  struct Pending {
    QueryCommand cmd;
    Responder responder;
  };

  /// Every request pending against one release, arrival order preserved.
  /// TakeGroups() carves the pending set into these; groups against
  /// DISTINCT releases are independent — executing them on different
  /// threads overlaps their AnswerAll/AnswerBatch parallel regions on the
  /// pool without changing a single response byte.
  struct ReleaseGroup {
    uint64_t release_id = 0;
    std::vector<Pending> members;
  };

  /// The server must outlive the batcher. Its engine answers the queries;
  /// its request counter and serving stats absorb the batched traffic.
  QueryBatcher(ReleaseServer& server, Options options);

  /// Parks `cmd` until the next Flush(). Counts as a protocol request
  /// immediately (stats.requests covers waiting requests too).
  void Enqueue(QueryCommand cmd, Responder responder) EXCLUDES(mu_);

  int64_t pending_requests() const EXCLUDES(mu_);
  bool ShouldFlushOnCap() const EXCLUDES(mu_) {
    return pending_requests() >= options_.max_requests;
  }

  /// Takes every request pending at entry, grouped by release id in
  /// first-seen order. The caller owns execution: ExecuteGroup each group
  /// inline, or hand the groups to worker threads.
  std::vector<ReleaseGroup> TakeGroups() EXCLUDES(mu_);

  /// Answers every member of `group` (engine evaluation + responder
  /// invocation, no lock held). `wait_us` is how long the group sat queued
  /// between TakeGroups and execution — recorded per release as the
  /// execution-stage wait (0 on the inline path). Thread-safe: groups for
  /// distinct releases may execute concurrently.
  void ExecuteGroup(ReleaseGroup& group, int64_t wait_us) EXCLUDES(mu_);

  /// Answers every request pending at entry (TakeGroups + inline
  /// ExecuteGroup per group); returns how many. Safe to call with nothing
  /// pending (returns 0 without touching the engine).
  int64_t Flush() EXCLUDES(mu_);

  /// Engine-call counters — the coalescing ratio tests assert on these
  /// (e.g. 8 pending all-requests against one release must cost exactly
  /// one AnswerAll call).
  int64_t answer_all_calls() const { return answer_all_calls_.load(); }
  int64_t answer_batch_calls() const { return answer_batch_calls_.load(); }

 private:
  ReleaseServer& server_;
  const Options options_;
  mutable Mutex mu_;
  std::vector<Pending> pending_ GUARDED_BY(mu_);
  std::atomic<int64_t> answer_all_calls_{0};
  std::atomic<int64_t> answer_batch_calls_{0};
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_QUERY_BATCHER_H_
