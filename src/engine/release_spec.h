// ReleaseSpec: a declarative description of one DP release — join schema,
// privacy budget, mechanism choice, workload family, and tuning knobs — with
// a parser from a simple `key = value` config format.
//
// A spec is everything the release engine needs to run a mechanism once and
// then serve queries forever as post-processing; its canonical string (and
// hash) identify a release for the serving cache, so re-submitting an
// identical spec is answered without re-spending budget.
//
// Config format (`# dpjoin-release-spec v1` magic, then one `key = value`
// per line, `#` comments, repeated `attribute`/`relation` lines accumulate):
//
//   # dpjoin-release-spec v1
//   name      = movie_demo
//   attribute = A:8            # NAME:DOMAIN_SIZE
//   attribute = B:6
//   attribute = C:8
//   relation  = R1:A,B         # NAME:ATTR[,ATTR...]
//   relation  = R2:B,C
//   epsilon   = 1.0
//   delta     = 1e-5
//   mechanism = auto           # auto|laplace|two_table|hierarchical|pmw
//   workload  = prefix:4       # KIND[:PER_TABLE], KIND in counting|
//                              #   random_sign|random_uniform|prefix|point|
//                              #   marginal|marginal_all
//   workload_seed = 13
//   threads   = 2              # 0 = ExecutionContext default
//   pmw_rounds = 0             # 0 = theory-driven k
//   pmw_max_rounds = 24
//   pmw_epsilon_prime = 0.25   # EXPERIMENTAL override, 0 = paper formula
//   pmw_backing = auto         # auto|dense|factored synthetic-data backing
//   laplace_rule = advanced    # basic|advanced (mechanism = laplace only)
//   dataset   = csv:data/two_table.csv
//
// `dataset` names the data the release runs over, in engine/catalog.h
// DataSource syntax: a registered catalog name, `csv:<path>`, or
// `generated:zipf(tuples=N,s=S,seed=K)` / `generated:uniform(tuples=N,
// seed=K)` — so specs and benches need no checked-in CSVs. The pre-catalog
// key `instance = <path>` still parses as `dataset = csv:<path>` and
// records a deprecation note in ReleaseSpec::parse_notes.

#ifndef DPJOIN_ENGINE_RELEASE_SPEC_H_
#define DPJOIN_ENGINE_RELEASE_SPEC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/independent_laplace.h"
#include "core/release_result.h"
#include "query/query_family.h"
#include "query/workloads.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Which release algorithm the engine runs. kAuto defers to the planner.
enum class MechanismKind {
  kAuto,          ///< planner decides from schema + budget + workload
  kLaplace,       ///< per-query independent Laplace (baseline; no synthetic)
  kTwoTable,      ///< Uniformize: Partition-TwoTable + TwoTable (§4.1)
  kHierarchical,  ///< hierarchical Uniformize (§4.2)
  kPmw,           ///< PMW-backed synthetic data: Algorithm 2 (one relation)
                  ///< or MultiTable / Algorithm 3 (several)
};

/// "auto", "laplace", "two_table", "hierarchical", "pmw".
const char* MechanismName(MechanismKind kind);
Result<MechanismKind> ParseMechanism(const std::string& token);

/// Workload family of a spec: the counting singleton or one of the
/// query/workloads.h generators.
enum class WorkloadFamilyKind {
  kCounting,
  kRandomSign,
  kRandomUniform,
  kPrefix,
  kPoint,
  kMarginal,
  kMarginalAll,  ///< every one-way marginal of every attribute (+ counting)
};

const char* WorkloadFamilyName(WorkloadFamilyKind kind);
Result<WorkloadFamilyKind> ParseWorkloadFamily(const std::string& token);

/// Which synthetic-data backing PMW uses for a single-relation release.
enum class PmwBackingKind {
  kAuto,      ///< planner decides: dense within the envelope, else factored
  kDense,     ///< always the dense tensor (refused beyond the envelope)
  kFactored,  ///< always the product-form FactoredTensor (refused when the
              ///< workload does not factorize)
};

/// "auto", "dense", "factored".
const char* PmwBackingName(PmwBackingKind kind);
Result<PmwBackingKind> ParsePmwBacking(const std::string& token);

/// Declarative description of one release. Fields mirror the config keys;
/// `Validate()` / the parser enforce every invariant, so downstream engine
/// stages can trust a spec they are handed.
struct ReleaseSpec {
  std::string name = "release";

  // Schema: attribute declarations plus named hyperedges over them.
  std::vector<AttributeSpec> attributes;
  std::vector<std::string> relation_names;
  std::vector<std::vector<std::string>> relation_attrs;

  // Privacy budget this release may spend (nominal; the hierarchical
  // mechanism's measured group-privacy factor can exceed it — the ledger
  // records the measured spend).
  double epsilon = 1.0;
  double delta = 1e-6;

  MechanismKind mechanism = MechanismKind::kAuto;

  // Workload family Q the release is evaluated/served against.
  WorkloadFamilyKind workload = WorkloadFamilyKind::kRandomSign;
  int64_t workload_per_table = 3;  ///< ignored for kCounting / kMarginal
  uint64_t workload_seed = 1;      ///< seed for the randomized generators

  // Mechanism knobs (forwarded to ReleaseOptions / PmwOptions).
  int64_t pmw_rounds = 0;
  int64_t pmw_max_rounds = 64;
  double pmw_epsilon_prime = 0.0;
  /// Synthetic-data backing for single-relation PMW. kAuto lets the planner
  /// pick the dense tensor within the materialization envelope and the
  /// product-form FactoredTensor beyond it (when the workload factorizes).
  /// Emitted in CanonicalString() only when non-default, so existing spec
  /// hashes are unchanged.
  PmwBackingKind pmw_backing = PmwBackingKind::kAuto;
  CompositionRule laplace_rule = CompositionRule::kAdvanced;

  /// Worker threads for the mechanism's parallel hot paths; 0 = the
  /// ExecutionContext default. Applied as a thread-local ScopedThreads
  /// override, so concurrent engine calls don't race.
  int num_threads = 0;

  /// Data source in engine/catalog.h DataSource syntax (catalog name,
  /// `csv:<path>`, or `generated:...`). May be empty when the caller passes
  /// a dataset/Instance directly. NOT part of CanonicalString()/Hash():
  /// data identity lives in the catalog fingerprint, which the engine folds
  /// into the release id — re-pointing an identical spec at identical data
  /// under a different name must be a cache hit, not a second budget spend.
  std::string dataset;

  /// Non-semantic parser diagnostics (currently: deprecation notes for the
  /// pre-catalog `instance =` key). Never part of the canonical string.
  std::vector<std::string> parse_notes;

  PrivacyParams Budget() const { return PrivacyParams(epsilon, delta); }

  /// Checks every invariant the parser enforces (field ranges plus schema
  /// well-formedness via JoinQuery::Create).
  Status Validate() const;

  /// Validate() minus the JoinQuery::Create construction — for callers
  /// (the engine's submission path) that build the query themselves right
  /// after and must not pay for it twice.
  Status ValidateFields() const;

  /// The join-query hypergraph declared by the schema fields.
  Result<JoinQuery> BuildQuery() const;

  /// The workload family Q = ×_i Q_i. Deterministic: randomized generators
  /// draw from Rng(workload_seed), so equal specs build equal workloads —
  /// the property the serving cache relies on.
  Result<QueryFamily> BuildWorkload(const JoinQuery& query) const;

  /// ReleaseOptions carrying the spec's PMW knobs.
  ReleaseOptions BuildReleaseOptions() const;

  /// Stable canonical rendering of every semantic field (used for hashing
  /// and audit logs; comments/ordering/whitespace of the source config do
  /// not affect it).
  std::string CanonicalString() const;

  /// FNV-1a hash of CanonicalString() — the serving-cache key.
  uint64_t Hash() const;
};

/// Parses and validates a spec from config text (see the header comment for
/// the format). Unknown keys, repeated scalar keys, and malformed values are
/// InvalidArgument with the offending line number.
Result<ReleaseSpec> ParseReleaseSpec(std::istream& is);
Result<ReleaseSpec> ParseReleaseSpec(const std::string& text);

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_RELEASE_SPEC_H_
