#include "engine/serving_stats.h"

#include <string>
#include <utility>

namespace dpjoin {

size_t ServingStats::BucketFor(int64_t batch_size) {
  size_t bucket = 0;
  int64_t upper = 1;
  while (upper < batch_size && bucket + 1 < kNumBuckets) {
    upper *= 2;
    ++bucket;
  }
  return bucket;
}

void ServingStats::RecordBatch(uint64_t release_id, int64_t requests,
                               int64_t queries, bool used_answer_all) {
  if (requests <= 0) return;
  MutexLock lock(mu_);
  query_requests_ += requests;
  engine_calls_ += 1;
  if (used_answer_all) answer_all_calls_ += 1;
  batch_hist_[BucketFor(requests)] += 1;
  PerRelease& entry = per_release_[release_id];
  entry.requests += requests;
  entry.queries += queries;
}

int64_t ServingStats::query_requests() const {
  MutexLock lock(mu_);
  return query_requests_;
}

int64_t ServingStats::engine_calls() const {
  MutexLock lock(mu_);
  return engine_calls_;
}

JsonValue ServingStats::ToJson() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::Object();
  out.Set("query_requests",
          JsonValue::Number(static_cast<double>(query_requests_)));
  out.Set("engine_calls",
          JsonValue::Number(static_cast<double>(engine_calls_)));
  out.Set("answer_all_calls",
          JsonValue::Number(static_cast<double>(answer_all_calls_)));

  JsonValue hist = JsonValue::Object();
  int64_t upper = 1;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (batch_hist_[b] != 0) {
      hist.Set(std::to_string(upper),
               JsonValue::Number(static_cast<double>(batch_hist_[b])));
    }
    upper *= 2;
  }
  out.Set("batch_size_histogram", std::move(hist));

  JsonValue releases = JsonValue::Object();
  for (const auto& [id, entry] : per_release_) {
    JsonValue v = JsonValue::Object();
    v.Set("requests", JsonValue::Number(static_cast<double>(entry.requests)));
    v.Set("queries", JsonValue::Number(static_cast<double>(entry.queries)));
    releases.Set(JsonHexId(id), std::move(v));
  }
  out.Set("per_release", std::move(releases));
  return out;
}

}  // namespace dpjoin
