#include "engine/serving_stats.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dpjoin {

size_t ServingStats::BucketFor(int64_t batch_size) {
  size_t bucket = 0;
  int64_t upper = 1;
  while (upper < batch_size && bucket + 1 < kNumBuckets) {
    upper *= 2;
    ++bucket;
  }
  return bucket;
}

void ServingStats::RecordBatch(uint64_t release_id, int64_t requests,
                               int64_t queries, bool used_answer_all) {
  if (requests <= 0) return;
  MutexLock lock(mu_);
  query_requests_ += requests;
  engine_calls_ += 1;
  if (used_answer_all) answer_all_calls_ += 1;
  batch_hist_[BucketFor(requests)] += 1;
  PerRelease& entry = per_release_[release_id];
  entry.requests += requests;
  entry.queries += queries;
}

void ServingStats::SetWorkers(int64_t workers) {
  MutexLock lock(mu_);
  workers_ = workers;
}

void ServingStats::RecordGroupWait(uint64_t release_id, int64_t wait_us) {
  if (wait_us < 0) wait_us = 0;  // clock hiccups must not corrupt totals
  MutexLock lock(mu_);
  PerRelease& entry = per_release_[release_id];
  entry.wait_count += 1;
  entry.wait_total_us += wait_us;
  entry.wait_max_us = std::max(entry.wait_max_us, wait_us);
}

void ServingStats::RecordRelease(const std::string& dataset,
                                 bool from_cache) {
  MutexLock lock(mu_);
  PerDataset& entry = per_dataset_[dataset];
  if (from_cache) {
    ++entry.hits;
  } else {
    ++entry.misses;
  }
}

int64_t ServingStats::query_requests() const {
  MutexLock lock(mu_);
  return query_requests_;
}

int64_t ServingStats::engine_calls() const {
  MutexLock lock(mu_);
  return engine_calls_;
}

JsonValue ServingStats::ToJson() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::Object();
  out.Set("workers", JsonValue::Number(static_cast<double>(workers_)));
  out.Set("query_requests",
          JsonValue::Number(static_cast<double>(query_requests_)));
  out.Set("engine_calls",
          JsonValue::Number(static_cast<double>(engine_calls_)));
  out.Set("answer_all_calls",
          JsonValue::Number(static_cast<double>(answer_all_calls_)));

  JsonValue hist = JsonValue::Object();
  int64_t upper = 1;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (batch_hist_[b] != 0) {
      hist.Set(std::to_string(upper),
               JsonValue::Number(static_cast<double>(batch_hist_[b])));
    }
    upper *= 2;
  }
  out.Set("batch_size_histogram", std::move(hist));

  JsonValue releases = JsonValue::Object();
  for (const auto& [id, entry] : per_release_) {
    JsonValue v = JsonValue::Object();
    v.Set("requests", JsonValue::Number(static_cast<double>(entry.requests)));
    v.Set("queries", JsonValue::Number(static_cast<double>(entry.queries)));
    JsonValue wait = JsonValue::Object();
    wait.Set("count",
             JsonValue::Number(static_cast<double>(entry.wait_count)));
    wait.Set("total_us",
             JsonValue::Number(static_cast<double>(entry.wait_total_us)));
    wait.Set("max_us",
             JsonValue::Number(static_cast<double>(entry.wait_max_us)));
    v.Set("wait", std::move(wait));
    releases.Set(JsonHexId(id), std::move(v));
  }
  out.Set("per_release", std::move(releases));

  JsonValue datasets = JsonValue::Object();
  for (const auto& [name, entry] : per_dataset_) {
    const int64_t total = entry.hits + entry.misses;
    JsonValue v = JsonValue::Object();
    v.Set("hits", JsonValue::Number(static_cast<double>(entry.hits)));
    v.Set("misses", JsonValue::Number(static_cast<double>(entry.misses)));
    v.Set("hit_rate",
          JsonValue::Number(total == 0 ? 0.0
                                       : static_cast<double>(entry.hits) /
                                             static_cast<double>(total)));
    datasets.Set(name, std::move(v));
  }
  out.Set("per_dataset", std::move(datasets));
  return out;
}

}  // namespace dpjoin
