// Mechanism planner: resolves a ReleaseSpec's `auto` mechanism into a
// concrete algorithm and explains the choice.
//
// The DECISION inputs are deliberately data-independent — number of
// relations, hierarchical-decomposability of the query, domain sizes,
// budget, and workload size — so the planner's choice never leaks the
// instance (choosing a mechanism from raw data values would itself be a
// non-private channel). The Plan's predicted error, by contrast, is a
// DIAGNOSTIC: it plugs measured instance statistics (count, LS, RS) into
// the paper's closed-form bounds (core/theory_bounds) and is never
// released, exactly like the diagnostics fields of ReleaseResult.
//
// Selection table under `auto` (dense envelope = release domain |D| fits the
// PMW materialization cap):
//   |D| too large, m == 1, workload factors into groups that each fit the
//   envelope (and their total fits)  -> pmw on the product-form
//                                       FactoredTensor backing
//   |D| too large otherwise       -> laplace      (only mechanism that never
//                                                  materializes ×_i D_i)
//   |Q| == 1                      -> laplace      (one counting query: a
//                                                  single calibrated answer
//                                                  beats synthetic data)
//   m == 1                        -> pmw          (Theorem 1.3 single table)
//   m == 2                        -> two_table    (§4.1 partition + PMW,
//                                                  robust to degree skew)
//   m >= 3, hierarchical query    -> hierarchical (§4.2 uniformize)
//   m >= 3, otherwise             -> pmw          (Algorithm 3 MultiTable)

#ifndef DPJOIN_ENGINE_PLANNER_H_
#define DPJOIN_ENGINE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/release_spec.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Instance statistics backing the Plan's predicted error. All fields are
/// measured, non-privatized values — diagnostics, never released.
struct InstanceStats {
  int num_relations = 0;
  int64_t input_size = 0;          ///< n
  double join_count = 0.0;         ///< count(I)
  double local_sensitivity = 0.0;  ///< LS_count(I)
  double residual_sensitivity = 0.0;  ///< RS^β_count(I), β = 1/λ
  bool hierarchical = false;
  double release_domain_cells = 0.0;  ///< Π_i |D_i|
  int64_t query_count = 0;            ///< |Q|
};

/// Measures the planner statistics for an instance/workload pair.
InstanceStats ComputeInstanceStats(const Instance& instance,
                                   const QueryFamily& family,
                                   const PrivacyParams& params);

/// An explainable mechanism choice.
struct Plan {
  MechanismKind mechanism = MechanismKind::kPmw;  ///< resolved; never kAuto
  std::string rationale;       ///< why this mechanism, human-readable
  double predicted_error = 0.0;  ///< closed-form bound (diagnostic)
  InstanceStats stats;

  /// kPmw, single relation only: run PMW on the product-form
  /// FactoredTensor backing over `factor_groups` (disjoint attribute-digit
  /// subsets from the workload's co-occurrence components) instead of the
  /// dense tensor. Memory is then Σ factor_cells, not Π — the only way
  /// past the dense envelope with synthetic data. Selection is
  /// data-independent: a function of the schema and the workload's query
  /// structure alone.
  bool factored = false;
  std::vector<std::vector<size_t>> factor_groups;
  std::vector<int64_t> factor_cells;  ///< cells per group (diagnostic)
};

/// Closed-form error prediction for answering |Q| queries independently
/// with Δ̃-calibrated Laplace noise under the given composition rule
/// (the core/independent_laplace budget split: (ε/2, δ/2) for Δ̃, the rest
/// shared across queries).
double PredictedLaplaceError(double delta_tilde, int64_t query_count,
                             const PrivacyParams& params, CompositionRule rule);

/// The laplace-vs-pmw workload crossover: the largest |Q| for which `auto`
/// answers directly with Laplace noise instead of building synthetic data.
/// Multiplicative weights needs ~log₂|D| rounds before its convergence term
/// n̂·sqrt(log|D|/k) starts paying off, and each round costs one
/// WorkloadEvaluator pass plus budget — so a workload with no more queries
/// than that learning dimension is answered directly (cheaper per the
/// per-round cost model, and without PMW's additive Δ̃·sqrt(λ)·f_upper
/// noise floor). Data-independent: a function of |D| alone, never of the
/// instance. Always >= 1 (a single counting query is always direct).
int64_t PmwLaplaceCrossoverQueries(double release_domain_cells);

/// Resolves spec.mechanism (running the selection table when it is kAuto)
/// and predicts the chosen mechanism's error from the paper's bounds.
/// Explicit mechanism requests are validated against the query structure:
/// two_table needs exactly two relations, hierarchical needs a hierarchical
/// query, and every synthetic-data mechanism needs the release domain to
/// fit the dense envelope.
Result<Plan> PlanRelease(const ReleaseSpec& spec, const Instance& instance,
                         const QueryFamily& family);

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_PLANNER_H_
