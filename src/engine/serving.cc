#include "engine/serving.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "query/evaluation.h"

namespace dpjoin {

namespace {

// The mechanism's evaluator is reusable iff it was built for the same
// backing kind, the same release shape, and the same workload size. PMW
// hands over exactly such an evaluator; anything else falls back to a
// fresh build.
bool EvaluatorMatches(const WorkloadEvaluator& ev,
                      const ReleasedDataset& dataset,
                      const QueryFamily& family) {
  if (ev.TotalQueries() != family.TotalCount()) return false;
  if (const FactoredTensor* ft = dataset.factored()) {
    if (!ev.factored()) return false;
    if (ev.shape().radices() != ft->shape().radices()) return false;
    if (ev.num_factors() != ft->num_factors()) return false;
    for (size_t k = 0; k < ft->num_factors(); ++k) {
      if (ev.factor_modes(k) != ft->factor(k).modes) return false;
    }
    return true;
  }
  return !ev.factored() &&
         ev.shape().radices() == dataset.tensor().shape().radices();
}

}  // namespace

ServingHandle::ServingHandle(
    std::shared_ptr<const ReleasedDataset> dataset, QueryFamily family,
    Plan plan, std::shared_ptr<const WorkloadEvaluator> evaluator)
    : dataset_(std::move(dataset)),
      family_(std::move(family)),
      plan_(std::move(plan)) {
  DPJOIN_CHECK(dataset_ != nullptr, "serving handle needs a dataset");
  if (evaluator != nullptr && EvaluatorMatches(*evaluator, *dataset_,
                                               family_)) {
    // Shared with the mechanism that produced the release (PMW's round
    // loop) — the per-mode query matrices are built once per release.
    evaluator_ = std::move(evaluator);
    return;
  }
  // Built exactly once per release; every consumer of the (shared,
  // immutable) handle reuses the cached per-mode matrices.
  if (const FactoredTensor* ft = dataset_->factored()) {
    evaluator_ = std::make_shared<const WorkloadEvaluator>(
        WorkloadEvaluator::ForFactored(family_, *ft));
  } else {
    evaluator_ = std::make_shared<const WorkloadEvaluator>(
        family_, dataset_->tensor().shape());
  }
}

ServingHandle::ServingHandle(std::vector<double> answers, QueryFamily family,
                             Plan plan)
    : answers_(std::move(answers)),
      family_(std::move(family)),
      plan_(std::move(plan)) {
  DPJOIN_CHECK_EQ(static_cast<int64_t>(answers_.size()),
                  family_.TotalCount());
}

Result<std::vector<double>> ServingHandle::AnswerBatch(
    const std::vector<int64_t>& batch, int num_threads) const {
  const int64_t num_queries = NumQueries();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i] < 0 || batch[i] >= num_queries) {
      return Status::OutOfRange("batch[" + std::to_string(i) + "] = " +
                                std::to_string(batch[i]) +
                                " outside the workload's [0, " +
                                std::to_string(num_queries) + ")");
    }
  }
  std::vector<double> answers(batch.size(), 0.0);
  if (dataset_ == nullptr) {
    // Direct answers: a lookup per request.
    ParallelFor(
        0, static_cast<int64_t>(batch.size()), /*grain=*/4096,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            answers[static_cast<size_t>(i)] =
                answers_[static_cast<size_t>(batch[static_cast<size_t>(i)])];
          }
        },
        num_threads);
    return answers;
  }
  if (const FactoredTensor* ft = dataset_->factored()) {
    // Factored release: each request contracts only its touched factors
    // (O(Σ factor cells) worst case), via the handle's cached per-factor
    // query matrices. Serial per request, so bit-identical regardless of
    // thread count.
    ParallelFor(
        0, static_cast<int64_t>(batch.size()), /*grain=*/1,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            answers[static_cast<size_t>(i)] = evaluator_->EvaluateOneFactored(
                batch[static_cast<size_t>(i)], *ft);
          }
        },
        num_threads);
    return answers;
  }
  // Synthetic data: each request scans the tensor once. One request per
  // block; each block writes only its own slot, and the per-request tensor
  // reduction runs inline with its own fixed-grain grouping, so the batch
  // result is bit-identical for every thread count.
  ParallelFor(
      0, static_cast<int64_t>(batch.size()), /*grain=*/1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const std::vector<int64_t> parts =
              family_.Decompose(batch[static_cast<size_t>(i)]);
          answers[static_cast<size_t>(i)] =
              dataset_->Answer(family_, parts);
        }
      },
      num_threads);
  return answers;
}

std::vector<double> ServingHandle::AnswerAll(int num_threads) const {
  const ScopedThreads scoped(num_threads);
  if (dataset_ == nullptr) return answers_;
  // Dispatches on the backing: dense stays bit-identical to the
  // EvaluateAll(tensor) path; factored contracts per touched factor.
  return evaluator_->EvaluateAllOn(dataset_->distribution());
}

ReleaseCache::ReleaseCache(size_t capacity) : capacity_(capacity) {
  DPJOIN_CHECK(capacity > 0, "release cache needs capacity >= 1");
}

std::shared_ptr<const ServingHandle> ReleaseCache::Get(uint64_t key) {
  MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it == slots_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.handle;
}

std::shared_ptr<const ServingHandle> ReleaseCache::Touch(uint64_t key) {
  MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it == slots_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.handle;
}

void ReleaseCache::Put(uint64_t key,
                       std::shared_ptr<const ServingHandle> handle) {
  DPJOIN_CHECK(handle != nullptr, "cannot cache a null handle");
  MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.handle = std::move(handle);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  slots_.emplace(key, Slot{std::move(handle), lru_.begin()});
  if (slots_.size() > capacity_) {
    slots_.erase(lru_.back());
    lru_.pop_back();
  }
}

size_t ReleaseCache::size() const {
  MutexLock lock(mu_);
  return slots_.size();
}

int64_t ReleaseCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

int64_t ReleaseCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

void ReleaseCache::Clear() {
  MutexLock lock(mu_);
  slots_.clear();
  lru_.clear();
}

}  // namespace dpjoin
