// Serving layer: concurrent query answering over a finished release.
//
// ServingHandle is an immutable, shareable view of one release — a
// ReleasedDataset (synthetic-data mechanisms) or a precomputed answer
// vector (independent Laplace) — plus the workload family and the Plan that
// produced it. Every method is post-processing: no privacy budget is ever
// consumed after construction, so handles may be shared across any number
// of threads and queried forever.
//
// Batches are answered on the thread pool with one answer slot per request
// and the substrate's fixed block decomposition, so results are
// bit-identical for every thread count and every caller interleaving.
//
// ReleaseCache is a thread-safe LRU over key → handle (the engine keys it
// by spec hash ⊕ instance fingerprint): re-submitting an identical release
// is served from cache without re-running the mechanism (and therefore
// without re-spending budget), while the same spec over different data is
// a distinct key.

#ifndef DPJOIN_ENGINE_SERVING_H_
#define DPJOIN_ENGINE_SERVING_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/released_dataset.h"
#include "engine/planner.h"
#include "query/query_family.h"
#include "query/workload_evaluator.h"

namespace dpjoin {

/// Immutable handle answering workload queries from a finished release.
class ServingHandle {
 public:
  /// Synthetic-data release: queries are evaluated on the released
  /// distribution (dense or factored backing). When the mechanism already
  /// built a compatible WorkloadEvaluator (PMW's round loop evaluates the
  /// same family against the same distribution), pass it as `evaluator` and
  /// the handle shares it instead of re-flattening the per-mode query
  /// matrices; incompatible or null evaluators fall back to a fresh build.
  ServingHandle(std::shared_ptr<const ReleasedDataset> dataset,
                QueryFamily family, Plan plan,
                std::shared_ptr<const WorkloadEvaluator> evaluator = nullptr);

  /// Direct-answer release (independent Laplace): query q's answer is the
  /// q-th precomputed noisy value.
  ServingHandle(std::vector<double> answers, QueryFamily family, Plan plan);

  const Plan& plan() const { return plan_; }
  const QueryFamily& family() const { return family_; }
  int64_t NumQueries() const { return family_.TotalCount(); }

  /// Non-null for synthetic-data releases.
  const ReleasedDataset* dataset() const { return dataset_.get(); }

  /// Answers the flat query ids in `batch` (duplicates allowed), one slot
  /// per request, sharded over the thread pool. OutOfRange on any id
  /// outside [0, NumQueries()). Results are bit-identical for every
  /// `num_threads` (0 = the caller's ExecutionContext default).
  Result<std::vector<double>> AnswerBatch(const std::vector<int64_t>& batch,
                                          int num_threads = 0) const;

  /// Every query's answer, indexed by family.index(). Synthetic releases
  /// use the cached WorkloadEvaluator (per-mode query matrices built once
  /// at handle construction and shared by every consumer of the handle —
  /// cheaper than re-flattening the family per call, and bit-identical to
  /// the naive EvaluateAllOnTensor path).
  std::vector<double> AnswerAll(int num_threads = 0) const;

  /// The handle's cached evaluator (null for direct-answer releases).
  const WorkloadEvaluator* evaluator() const { return evaluator_.get(); }

 private:
  std::shared_ptr<const ReleasedDataset> dataset_;  // null for direct answers
  std::shared_ptr<const WorkloadEvaluator> evaluator_;  // synthetic only
  std::vector<double> answers_;                     // direct answers only
  QueryFamily family_;
  Plan plan_;
};

/// Thread-safe LRU cache of finished releases keyed by ReleaseSpec::Hash().
class ReleaseCache {
 public:
  explicit ReleaseCache(size_t capacity);

  /// The cached handle (bumped to most-recently-used), or null on miss.
  /// Counts toward hits()/misses() — call this from the SUBMISSION path,
  /// where the ratio measures how often repeated releases dedup.
  std::shared_ptr<const ServingHandle> Get(uint64_t key);

  /// Like Get (recency bump included: actively queried releases should
  /// stay cached) but does NOT touch the hit/miss counters — for
  /// query-path lookups, which would otherwise drown the submission-dedup
  /// ratio that stats and BENCH_ENGINE.json report.
  std::shared_ptr<const ServingHandle> Touch(uint64_t key);

  /// Inserts (or refreshes) a handle, evicting the least-recently-used
  /// entry when past capacity.
  void Put(uint64_t key, std::shared_ptr<const ServingHandle> handle);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;
  void Clear();

 private:
  struct Slot {
    std::shared_ptr<const ServingHandle> handle;
    std::list<uint64_t>::iterator lru_pos;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<uint64_t> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<uint64_t, Slot> slots_ GUARDED_BY(mu_);
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace dpjoin

#endif  // DPJOIN_ENGINE_SERVING_H_
