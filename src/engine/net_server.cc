#include "engine/net_server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/json.h"
#include "common/thread_pool.h"

namespace dpjoin {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Peers that stop reading cannot hold shutdown hostage forever.
constexpr int64_t kDrainBudgetUs = 5'000'000;

}  // namespace

NetServer::NetServer(ReleaseServer& server, NetServerOptions options)
    : server_(server),
      options_(options),
      batcher_(server,
               QueryBatcher::Options{std::max<int64_t>(1, options.batch_max)}),
      poller_(options.backend) {
  server_.serving_stats().SetWorkers(std::max<int64_t>(0, options_.workers));
}

Status NetServer::Start() {
  DPJOIN_ASSIGN_OR_RETURN(listener_, ListenTcp(options_.port));
  DPJOIN_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  DPJOIN_RETURN_NOT_OK(
      poller_.Add(listener_.fd(), /*want_read=*/true, /*want_write=*/false));
  DPJOIN_RETURN_NOT_OK(
      poller_.Add(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false));
  return Status::OK();
}

void NetServer::RequestShutdown() {
  shutdown_requested_.store(true);
  wake_.Notify();
}

int64_t NetServer::Run() {
  if (options_.workers > 0) StartWorkers();
  std::vector<Poller::Event> events;
  for (;;) {
    if (shutdown_requested_.load() && !shutting_down_) BeginShutdown();
    if (shutting_down_ &&
        (conns_.empty() || NowMicros() >= *drain_deadline_us_)) {
      break;
    }

    int timeout_ms = -1;
    if (shutting_down_) {
      timeout_ms = 50;
    } else if (batch_deadline_us_.has_value()) {
      const int64_t remaining_us = *batch_deadline_us_ - NowMicros();
      timeout_ms = remaining_us <= 0
                       ? 0
                       : static_cast<int>(
                             std::min<int64_t>((remaining_us + 999) / 1000,
                                               1000));
    }

    if (!poller_.Wait(timeout_ms, &events).ok()) break;

    for (const Poller::Event& event : events) {
      if (event.fd == listener_.fd() && listener_.valid()) {
        if (!shutting_down_) AcceptNewConnections();
        continue;
      }
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      const auto mapped = fd_to_conn_.find(event.fd);
      if (mapped == fd_to_conn_.end()) continue;
      Conn& conn = *conns_.at(mapped->second);
      if (event.error) {
        conn.broken = true;
        continue;
      }
      if (event.writable &&
          conn.channel.FlushWrites() == LineChannel::ReadState::kError) {
        conn.broken = true;
        continue;
      }
      if (event.readable && !shutting_down_) ProcessReadable(conn);
    }

    if (batch_deadline_us_.has_value() &&
        NowMicros() >= *batch_deadline_us_) {
      FlushBatch();
    }
    if (options_.workers > 0) DrainCompletions();
    SweepConnections();
  }

  if (options_.workers > 0) {
    // Workers drain their queue before exiting; any completions that
    // arrive for already-gone connections miss cleanly in FillSlot.
    StopWorkers();
    DrainCompletions();
  }
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
  if (listener_.valid()) {
    (void)poller_.Remove(listener_.fd());
    listener_.Close();
  }
  return handled_;
}

void NetServer::AcceptNewConnections() {
  for (;;) {
    auto socket = AcceptConnection(listener_);
    if (!socket.ok() || !socket->valid()) return;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int64_t>(conns_.size()) >= options_.max_conns) {
      JsonValue refusal = JsonValue::Object();
      refusal.Set("ok", JsonValue::Bool(false));
      refusal.Set("error",
                  JsonValue::String(
                      Status::FailedPrecondition(
                          "connection limit (" +
                          std::to_string(options_.max_conns) +
                          ") reached; retry later")
                          .ToString()));
      const std::string line = refusal.Serialize() + "\n";
      // Best effort: the refusal usually fits the fresh socket's buffer;
      // if not, the close alone tells the client everything it needs.
      (void)socket->Write(line.data(), line.size());
      continue;
    }
    const int fd = socket->fd();
    const uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(socket).value());
    conn->id = conn_id;
    if (!poller_.Add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      continue;  // conn destructs → fd closes; client sees a reset
    }
    fd_to_conn_[fd] = conn_id;
    conns_[conn_id] = std::move(conn);
  }
}

void NetServer::ProcessReadable(Conn& conn) {
  std::vector<std::string> lines;
  const LineChannel::ReadState state = conn.channel.ReadLines(&lines);
  for (const std::string& line : lines) {
    if (shutting_down_) break;  // drain answers what's in flight, no more
    if (line.empty()) continue;  // mirror the stdio loop: blank lines skip
    HandleRequestLine(conn, line);
  }
  if (state == LineChannel::ReadState::kEof) conn.peer_eof = true;
  if (state == LineChannel::ReadState::kError) conn.broken = true;
}

void NetServer::HandleRequestLine(Conn& conn, const std::string& line) {
  ++handled_;
  const uint64_t seq = conn.next_seq++;
  conn.slots.emplace_back(std::nullopt);

  auto request = JsonValue::Parse(line);
  if (request.ok() && request->is_object()) {
    const JsonValue* cmd = request->Find("cmd");
    if (cmd != nullptr && cmd->is_string()) {
      if (cmd->AsString() == "query") {
        auto parsed = ParseQueryCommand(*request);
        if (parsed.ok()) {
          const uint64_t conn_id = conn.id;
          QueryBatcher::Responder responder;
          if (options_.workers > 0) {
            // Executed on a worker: marshal the line back to the loop
            // thread, which alone touches connections. The task wrapper
            // in FlushBatch rings the wake pipe once per group.
            responder = [this, conn_id, seq](std::string response) {
              PushCompletion({conn_id, seq, std::move(response), false});
            };
          } else {
            responder = [this, conn_id, seq](std::string response) {
              FillSlot(conn_id, seq, std::move(response));
            };
          }
          batcher_.Enqueue(std::move(parsed).value(), std::move(responder));
          if (!batch_deadline_us_.has_value()) {
            batch_deadline_us_ = NowMicros() + options_.batch_window_us;
          }
          if (batcher_.ShouldFlushOnCap()) FlushBatch();
          return;
        }
        // Malformed query: fall through to HandleLine, which re-derives
        // the identical error bytes the stdio loop would emit.
      } else if (cmd->AsString() == "shutdown") {
        // Answer on the loop thread — the ack must be queued before the
        // drain starts, even when workers handle everything else.
        FillSlot(conn.id, seq, server_.HandleLine(line));
        BeginShutdown();
        return;
      }
    }
  }
  DispatchHandleLine(conn, seq, line);
}

void NetServer::DispatchHandleLine(Conn& conn, uint64_t seq,
                                   const std::string& line) {
  if (options_.workers <= 0) {
    FillSlot(conn.id, seq, server_.HandleLine(line));
    return;
  }
  if (conn.lane_busy) {
    conn.lane.emplace_back(seq, line);
    return;
  }
  conn.lane_busy = true;
  SubmitLaneTask(conn.id, seq, line);
}

void NetServer::SubmitLaneTask(uint64_t conn_id, uint64_t seq,
                               std::string line) {
  EnqueueTask([this, conn_id, seq, line = std::move(line)] {
    std::string response = server_.HandleLine(line);
    PushCompletion({conn_id, seq, std::move(response), /*advance_lane=*/true});
    wake_.Notify();
  });
}

void NetServer::FillSlot(uint64_t conn_id, uint64_t seq, std::string line) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client vanished before its answer
  Conn& conn = *it->second;
  conn.slots[seq - conn.flushed_seq] = std::move(line);
  // Emit the completed prefix — and only the prefix, so pipelined clients
  // read responses in exactly the order they sent requests.
  while (!conn.slots.empty() && conn.slots.front().has_value()) {
    conn.channel.QueueLine(*conn.slots.front());
    conn.slots.pop_front();
    ++conn.flushed_seq;
  }
}

void NetServer::FlushBatch() {
  batch_deadline_us_.reset();
  if (options_.workers <= 0) {
    batcher_.Flush();
    return;
  }
  // One task per release group: groups against distinct releases carry no
  // shared state, so their AnswerAll/AnswerBatch parallel regions overlap
  // on the concurrent-region thread pool.
  std::vector<QueryBatcher::ReleaseGroup> groups = batcher_.TakeGroups();
  for (QueryBatcher::ReleaseGroup& group : groups) {
    auto task_group = std::make_shared<QueryBatcher::ReleaseGroup>(
        std::move(group));
    const int64_t enqueued_us = NowMicros();
    EnqueueTask([this, task_group, enqueued_us] {
      batcher_.ExecuteGroup(*task_group, NowMicros() - enqueued_us);
      wake_.Notify();  // responders queued completions; wake the loop once
    });
  }
}

void NetServer::StartWorkers() {
  {
    MutexLock lock(exec_mu_);
    exec_stop_ = false;
  }
  const int64_t n =
      std::min<int64_t>(options_.workers, ThreadPool::kMaxThreads);
  for (int64_t i = 0; i < n; ++i) {
    exec_threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void NetServer::StopWorkers() {
  {
    MutexLock lock(exec_mu_);
    exec_stop_ = true;
  }
  exec_cv_.NotifyAll();
  // dpjoin-lint: allow(raw-thread) — joining the I/O-stage workers
  for (std::thread& worker : exec_threads_) worker.join();
  exec_threads_.clear();
}

void NetServer::WorkerLoop() {
  // Explicit Lock/Unlock: the loop drops the lock around task execution,
  // which MutexLock cannot express. Stop only wins once the queue is dry,
  // so shutdown never discards accepted work.
  exec_mu_.Lock();
  for (;;) {
    while (exec_queue_.empty() && !exec_stop_) {
      exec_cv_.Wait(exec_mu_);
    }
    if (exec_queue_.empty()) {
      exec_mu_.Unlock();
      return;
    }
    std::function<void()> task = std::move(exec_queue_.front());
    exec_queue_.pop_front();
    exec_mu_.Unlock();
    task();
    exec_mu_.Lock();
  }
}

void NetServer::EnqueueTask(std::function<void()> task) {
  {
    MutexLock lock(exec_mu_);
    exec_queue_.push_back(std::move(task));
  }
  exec_cv_.NotifyOne();
}

void NetServer::PushCompletion(Completion completion) {
  MutexLock lock(done_mu_);
  completions_.push_back(std::move(completion));
}

void NetServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(done_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    FillSlot(completion.conn_id, completion.seq, std::move(completion.line));
    if (!completion.advance_lane) continue;
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // client vanished; lane dies with it
    Conn& conn = *it->second;
    if (conn.lane.empty()) {
      conn.lane_busy = false;
      continue;
    }
    auto [seq, line] = std::move(conn.lane.front());
    conn.lane.pop_front();
    SubmitLaneTask(conn.id, seq, std::move(line));
  }
}

void NetServer::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  FlushBatch();  // in-flight queries get real answers, not resets
  if (listener_.valid()) {
    (void)poller_.Remove(listener_.fd());
    listener_.Close();
  }
  drain_deadline_us_ = NowMicros() + kDrainBudgetUs;
}

void NetServer::SweepConnections() {
  std::vector<uint64_t> to_close;
  for (auto& [conn_id, conn_ptr] : conns_) {
    Conn& conn = *conn_ptr;
    if (conn.broken) {
      to_close.push_back(conn_id);
      continue;
    }
    if (conn.channel.wants_write() &&
        conn.channel.FlushWrites() == LineChannel::ReadState::kError) {
      to_close.push_back(conn_id);
      continue;
    }
    const bool finished = conn.slots.empty() && !conn.channel.wants_write();
    if (finished && (conn.peer_eof || shutting_down_)) {
      to_close.push_back(conn_id);
      continue;
    }
    const bool want_read = !conn.peer_eof && !shutting_down_;
    const bool want_write = conn.channel.wants_write();
    if (want_read != conn.watch_read || want_write != conn.watch_write) {
      (void)poller_.Update(conn.channel.fd(), want_read, want_write);
      conn.watch_read = want_read;
      conn.watch_write = want_write;
    }
  }
  for (const uint64_t conn_id : to_close) CloseConn(conn_id);
}

void NetServer::CloseConn(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const int fd = it->second->channel.fd();
  (void)poller_.Remove(fd);
  fd_to_conn_.erase(fd);
  conns_.erase(it);  // Conn → LineChannel → Socket closes the fd
}

}  // namespace dpjoin
