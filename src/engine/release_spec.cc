#include "engine/release_spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>
#include <unordered_set>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"

namespace dpjoin {

namespace {

constexpr char kMagic[] = "# dpjoin-release-spec v1";

Status LineError(int64_t line, const std::string& message) {
  return Status::InvalidArgument("spec line " + std::to_string(line) + ": " +
                                 message);
}

Result<double> ParseDouble(const std::string& token) {
  try {
    size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) {
      return Status::InvalidArgument("bad number '" + token + "'");
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad number '" + token + "'");
  }
}

Result<int64_t> ParseInt(const std::string& token) {
  try {
    size_t consumed = 0;
    const int64_t v = std::stoll(token, &consumed);
    if (consumed != token.size()) {
      return Status::InvalidArgument("bad integer '" + token + "'");
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad integer '" + token + "'");
  }
}

}  // namespace

const char* MechanismName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kAuto:
      return "auto";
    case MechanismKind::kLaplace:
      return "laplace";
    case MechanismKind::kTwoTable:
      return "two_table";
    case MechanismKind::kHierarchical:
      return "hierarchical";
    case MechanismKind::kPmw:
      return "pmw";
  }
  return "unknown";
}

Result<MechanismKind> ParseMechanism(const std::string& token) {
  if (token == "auto") return MechanismKind::kAuto;
  if (token == "laplace") return MechanismKind::kLaplace;
  if (token == "two_table") return MechanismKind::kTwoTable;
  if (token == "hierarchical") return MechanismKind::kHierarchical;
  if (token == "pmw") return MechanismKind::kPmw;
  return Status::InvalidArgument(
      "unknown mechanism '" + token +
      "' (expected auto|laplace|two_table|hierarchical|pmw)");
}

const char* WorkloadFamilyName(WorkloadFamilyKind kind) {
  switch (kind) {
    case WorkloadFamilyKind::kCounting:
      return "counting";
    case WorkloadFamilyKind::kRandomSign:
      return "random_sign";
    case WorkloadFamilyKind::kRandomUniform:
      return "random_uniform";
    case WorkloadFamilyKind::kPrefix:
      return "prefix";
    case WorkloadFamilyKind::kPoint:
      return "point";
    case WorkloadFamilyKind::kMarginal:
      return "marginal";
    case WorkloadFamilyKind::kMarginalAll:
      return "marginal_all";
  }
  return "unknown";
}

Result<WorkloadFamilyKind> ParseWorkloadFamily(const std::string& token) {
  if (token == "counting") return WorkloadFamilyKind::kCounting;
  if (token == "random_sign") return WorkloadFamilyKind::kRandomSign;
  if (token == "random_uniform") return WorkloadFamilyKind::kRandomUniform;
  if (token == "prefix") return WorkloadFamilyKind::kPrefix;
  if (token == "point") return WorkloadFamilyKind::kPoint;
  if (token == "marginal") return WorkloadFamilyKind::kMarginal;
  if (token == "marginal_all") return WorkloadFamilyKind::kMarginalAll;
  return Status::InvalidArgument(
      "unknown workload '" + token +
      "' (expected counting|random_sign|random_uniform|prefix|point|"
      "marginal|marginal_all)");
}

const char* PmwBackingName(PmwBackingKind kind) {
  switch (kind) {
    case PmwBackingKind::kAuto:
      return "auto";
    case PmwBackingKind::kDense:
      return "dense";
    case PmwBackingKind::kFactored:
      return "factored";
  }
  return "unknown";
}

Result<PmwBackingKind> ParsePmwBacking(const std::string& token) {
  if (token == "auto") return PmwBackingKind::kAuto;
  if (token == "dense") return PmwBackingKind::kDense;
  if (token == "factored") return PmwBackingKind::kFactored;
  return Status::InvalidArgument("unknown pmw_backing '" + token +
                                 "' (expected auto|dense|factored)");
}

Status ReleaseSpec::Validate() const {
  DPJOIN_RETURN_NOT_OK(ValidateFields());
  // Deep schema validation (attribute uniqueness, positive domains, edge
  // well-formedness) is JoinQuery::Create's job.
  return BuildQuery().status();
}

Status ReleaseSpec::ValidateFields() const {
  if (name.empty()) return Status::InvalidArgument("spec needs a name");
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(delta > 0.0) || delta > 0.5) {
    return Status::InvalidArgument(
        "delta must lie in (0, 1/2] (lambda = ln(1/delta)/epsilon needs "
        "delta > 0)");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("spec declares no attributes");
  }
  if (relation_attrs.empty()) {
    return Status::InvalidArgument("spec declares no relations");
  }
  if (relation_names.size() != relation_attrs.size()) {
    return Status::InvalidArgument(
        "spec has " + std::to_string(relation_names.size()) +
        " relation names for " + std::to_string(relation_attrs.size()) +
        " relation attribute lists (hand-built specs must fill both)");
  }
  std::unordered_set<std::string> rel_names;
  for (const std::string& rel : relation_names) {
    if (!rel_names.insert(rel).second) {
      return Status::InvalidArgument("duplicate relation name '" + rel + "'");
    }
  }
  if (workload != WorkloadFamilyKind::kCounting &&
      workload != WorkloadFamilyKind::kMarginal &&
      workload != WorkloadFamilyKind::kMarginalAll && workload_per_table < 1) {
    return Status::InvalidArgument("workload per-table count must be >= 1");
  }
  if (pmw_rounds < 0) {
    return Status::InvalidArgument("pmw_rounds must be >= 0 (0 = theory k)");
  }
  if (pmw_max_rounds < 1) {
    return Status::InvalidArgument("pmw_max_rounds must be >= 1");
  }
  if (pmw_epsilon_prime < 0.0 || !std::isfinite(pmw_epsilon_prime)) {
    return Status::InvalidArgument("pmw_epsilon_prime must be >= 0 and finite");
  }
  if (num_threads < 0 || num_threads > ThreadPool::kMaxThreads) {
    return Status::InvalidArgument(
        "threads must lie in [0, " +
        std::to_string(ThreadPool::kMaxThreads) + "] (0 = default)");
  }
  if (!dataset.empty()) {
    // Any catalog name is legal here; csv:/generated: sources must parse.
    DPJOIN_RETURN_NOT_OK(DataSource::Parse(dataset).status());
  }
  return Status::OK();
}

Result<JoinQuery> ReleaseSpec::BuildQuery() const {
  return JoinQuery::Create(attributes, relation_attrs);
}

Result<QueryFamily> ReleaseSpec::BuildWorkload(const JoinQuery& query) const {
  if (workload == WorkloadFamilyKind::kCounting) {
    return MakeCountingFamily(query);
  }
  WorkloadKind kind = WorkloadKind::kRandomSign;
  bool needs_dense_values = false;
  switch (workload) {
    case WorkloadFamilyKind::kRandomSign:
      kind = WorkloadKind::kRandomSign;
      needs_dense_values = true;
      break;
    case WorkloadFamilyKind::kRandomUniform:
      kind = WorkloadKind::kRandomUniform;
      needs_dense_values = true;
      break;
    case WorkloadFamilyKind::kPrefix:
      kind = WorkloadKind::kPrefix;
      needs_dense_values = true;
      break;
    case WorkloadFamilyKind::kPoint:
      kind = WorkloadKind::kPoint;
      break;
    case WorkloadFamilyKind::kMarginal:
      kind = WorkloadKind::kMarginal;
      break;
    case WorkloadFamilyKind::kMarginalAll:
      kind = WorkloadKind::kMarginalAll;
      break;
    case WorkloadFamilyKind::kCounting:
      break;  // handled above
  }
  if (needs_dense_values) {
    // These generators draw one dense value per cell of a relation's tuple
    // space (arbitrary per-cell values have no product form); beyond the
    // dense cap only the product-form families are representable.
    for (int r = 0; r < query.num_relations(); ++r) {
      if (query.relation_domain_size(r) > kDenseQueryValueCap) {
        return Status::InvalidArgument(
            "workload " + std::string(WorkloadFamilyName(workload)) +
            " materializes " + std::to_string(query.relation_domain_size(r)) +
            " dense values per query over relation " + std::to_string(r) +
            ", beyond the " + std::to_string(kDenseQueryValueCap) +
            "-cell cap; use a product-form workload "
            "(counting|point|marginal|marginal_all)");
      }
    }
  }
  Rng rng(workload_seed);
  return MakeWorkload(query, kind, workload_per_table, rng);
}

ReleaseOptions ReleaseSpec::BuildReleaseOptions() const {
  ReleaseOptions options;
  options.pmw_rounds = pmw_rounds;
  options.pmw_max_rounds = pmw_max_rounds;
  options.pmw_epsilon_prime_override = pmw_epsilon_prime;
  return options;
}

std::string ReleaseSpec::CanonicalString() const {
  // Every semantic field in a fixed order with %.17g numbers, so two specs
  // hash equal iff the engine would treat them identically. Two fields are
  // deliberately NOT semantic: num_threads (the substrate's determinism
  // contract makes the released output bit-identical at every thread count,
  // so a thread-count-only re-submission must hit the serving cache) and
  // dataset (the engine keys releases by spec hash ⊕ catalog fingerprint —
  // the DATA is identity, not the string naming where it came from).
  std::ostringstream oss;
  oss << kMagic << "\n";
  oss << "name=" << name << "\n";
  for (const AttributeSpec& attr : attributes) {
    oss << "attribute=" << attr.name << ":" << attr.domain_size << "\n";
  }
  for (size_t r = 0; r < relation_attrs.size(); ++r) {
    oss << "relation=" << relation_names[r] << ":";
    for (size_t a = 0; a < relation_attrs[r].size(); ++a) {
      if (a > 0) oss << ",";
      oss << relation_attrs[r][a];
    }
    oss << "\n";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", epsilon);
  oss << "epsilon=" << buffer << "\n";
  std::snprintf(buffer, sizeof(buffer), "%.17g", delta);
  oss << "delta=" << buffer << "\n";
  oss << "mechanism=" << MechanismName(mechanism) << "\n";
  oss << "workload=" << WorkloadFamilyName(workload) << ":"
      << workload_per_table << "\n";
  oss << "workload_seed=" << workload_seed << "\n";
  oss << "pmw_rounds=" << pmw_rounds << "\n";
  oss << "pmw_max_rounds=" << pmw_max_rounds << "\n";
  std::snprintf(buffer, sizeof(buffer), "%.17g", pmw_epsilon_prime);
  oss << "pmw_epsilon_prime=" << buffer << "\n";
  if (pmw_backing != PmwBackingKind::kAuto) {
    // Emitted only when non-default so pre-existing spec hashes (and the
    // releases cached under them) are unchanged.
    oss << "pmw_backing=" << PmwBackingName(pmw_backing) << "\n";
  }
  oss << "laplace_rule="
      << (laplace_rule == CompositionRule::kBasic ? "basic" : "advanced")
      << "\n";
  return oss.str();
}

uint64_t ReleaseSpec::Hash() const {
  return Fnv1aHash(CanonicalString());
}

Result<ReleaseSpec> ParseReleaseSpec(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || TrimWhitespace(line) != kMagic) {
    return Status::InvalidArgument(
        "missing dpjoin-release-spec header; not a release-spec config");
  }
  ReleaseSpec spec;
  std::unordered_set<std::string> seen_scalars;
  int64_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = TrimWhitespace(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return LineError(line_number, "expected 'key = value', got '" + line +
                                        "'");
    }
    const std::string key = TrimWhitespace(line.substr(0, eq));
    const std::string value = TrimWhitespace(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return LineError(line_number, "empty key or value");
    }
    // Repeatable keys.
    if (key == "attribute") {
      const std::vector<std::string> parts = SplitAndTrim(value, ':');
      if (parts.size() != 2 || parts[0].empty()) {
        return LineError(line_number,
                         "attribute wants NAME:DOMAIN_SIZE, got '" + value +
                             "'");
      }
      auto size = ParseInt(parts[1]);
      if (!size.ok()) return LineError(line_number, size.status().message());
      spec.attributes.push_back({parts[0], *size});
      continue;
    }
    if (key == "relation") {
      const size_t colon = value.find(':');
      if (colon == std::string::npos || colon == 0) {
        return LineError(line_number,
                         "relation wants NAME:ATTR[,ATTR...], got '" + value +
                             "'");
      }
      const std::vector<std::string> attrs =
          SplitAndTrim(value.substr(colon + 1), ',');
      for (const std::string& attr : attrs) {
        if (attr.empty()) {
          return LineError(line_number, "empty attribute in relation '" +
                                            value + "'");
        }
      }
      spec.relation_names.push_back(TrimWhitespace(value.substr(0, colon)));
      spec.relation_attrs.push_back(attrs);
      continue;
    }
    // Scalar keys, each allowed once. `instance` is a deprecated alias of
    // `dataset`: both write the same field, so both count as one key.
    if (!seen_scalars.insert(key).second) {
      return LineError(line_number, "duplicate key '" + key + "'");
    }
    if ((key == "dataset" && seen_scalars.count("instance")) ||
        (key == "instance" && seen_scalars.count("dataset"))) {
      return LineError(line_number,
                       "'instance' is a deprecated alias of 'dataset'; give "
                       "only one of them");
    }
    if (key == "name") {
      spec.name = value;
    } else if (key == "epsilon") {
      DPJOIN_ASSIGN_OR_RETURN(spec.epsilon, ParseDouble(value));
    } else if (key == "delta") {
      DPJOIN_ASSIGN_OR_RETURN(spec.delta, ParseDouble(value));
    } else if (key == "mechanism") {
      DPJOIN_ASSIGN_OR_RETURN(spec.mechanism, ParseMechanism(value));
    } else if (key == "workload") {
      const std::vector<std::string> parts = SplitAndTrim(value, ':');
      if (parts.empty() || parts.size() > 2) {
        return LineError(line_number,
                         "workload wants KIND[:PER_TABLE], got '" + value +
                             "'");
      }
      auto kind = ParseWorkloadFamily(parts[0]);
      if (!kind.ok()) return LineError(line_number, kind.status().message());
      spec.workload = *kind;
      if (parts.size() == 2) {
        auto per_table = ParseInt(parts[1]);
        if (!per_table.ok()) {
          return LineError(line_number, per_table.status().message());
        }
        spec.workload_per_table = *per_table;
      }
    } else if (key == "workload_seed") {
      int64_t seed = 0;
      DPJOIN_ASSIGN_OR_RETURN(seed, ParseInt(value));
      spec.workload_seed = static_cast<uint64_t>(seed);
    } else if (key == "pmw_rounds") {
      DPJOIN_ASSIGN_OR_RETURN(spec.pmw_rounds, ParseInt(value));
    } else if (key == "pmw_max_rounds") {
      DPJOIN_ASSIGN_OR_RETURN(spec.pmw_max_rounds, ParseInt(value));
    } else if (key == "pmw_epsilon_prime") {
      DPJOIN_ASSIGN_OR_RETURN(spec.pmw_epsilon_prime, ParseDouble(value));
    } else if (key == "pmw_backing") {
      DPJOIN_ASSIGN_OR_RETURN(spec.pmw_backing, ParsePmwBacking(value));
    } else if (key == "laplace_rule") {
      if (value == "basic") {
        spec.laplace_rule = CompositionRule::kBasic;
      } else if (value == "advanced") {
        spec.laplace_rule = CompositionRule::kAdvanced;
      } else {
        return LineError(line_number, "laplace_rule wants basic|advanced");
      }
    } else if (key == "threads") {
      int64_t threads = 0;
      DPJOIN_ASSIGN_OR_RETURN(threads, ParseInt(value));
      spec.num_threads = static_cast<int>(threads);
    } else if (key == "dataset") {
      spec.dataset = value;
    } else if (key == "instance") {
      // Pre-catalog alias for `dataset = csv:<path>`.
      spec.dataset = "csv:" + value;
      spec.parse_notes.push_back(
          "line " + std::to_string(line_number) +
          ": 'instance' is deprecated; use 'dataset = csv:" + value + "'");
    } else {
      return LineError(line_number, "unknown key '" + key + "'");
    }
  }
  const Status valid = spec.Validate();
  if (!valid.ok()) {
    return Status(valid.code(), "invalid release spec: " + valid.message());
  }
  return spec;
}

Result<ReleaseSpec> ParseReleaseSpec(const std::string& text) {
  std::istringstream is(text);
  return ParseReleaseSpec(is);
}

}  // namespace dpjoin
