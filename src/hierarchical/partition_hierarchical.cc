#include "hierarchical/partition_hierarchical.h"

#include <unordered_map>

#include "hierarchical/decompose.h"

namespace dpjoin {

Result<HierarchicalPartition> PartitionHierarchical(
    const Instance& instance, const AttributeTree& tree,
    const PrivacyParams& params, double lambda, Rng& rng,
    int64_t max_sub_instances) {
  if (lambda <= 0.0) lambda = params.Lambda();

  HierarchicalPartition partition;
  DegreeConfiguration empty_config;
  empty_config.buckets.assign(
      static_cast<size_t>(instance.query().num_attributes()), 0);
  partition.sub_instances.push_back({instance, empty_config});

  // Algorithm 6 main loop: bottom-up (post-order) over the attribute tree;
  // each visited attribute refines every current sub-instance.
  for (int attr : tree.PostOrder()) {
    std::vector<ConfiguredSubInstance> next;
    for (ConfiguredSubInstance& entry : partition.sub_instances) {
      DPJOIN_ASSIGN_OR_RETURN(
          std::vector<DecomposeBucket> buckets,
          Decompose(entry.sub_instance, tree, attr, params, lambda, rng));
      for (DecomposeBucket& bucket : buckets) {
        DegreeConfiguration config = entry.config;
        config.buckets[static_cast<size_t>(attr)] = bucket.bucket_index;
        next.push_back({std::move(bucket.sub_instance), std::move(config)});
      }
      if (static_cast<int64_t>(next.size()) > max_sub_instances) {
        return Status::FailedPrecondition(
            "hierarchical partition exceeded the sub-instance cap");
      }
    }
    partition.sub_instances = std::move(next);
  }

  // Measured participation bound (Lemma 4.10, second property).
  for (int rel = 0; rel < instance.num_relations(); ++rel) {
    std::unordered_map<int64_t, int64_t> appearances;
    for (const ConfiguredSubInstance& entry : partition.sub_instances) {
      // dpjoin-audit: allow(determinism) — commutative integer counting
      // keyed by tuple code; no draws, order-insensitive.
      for (const auto& [code, freq] : entry.sub_instance.relation(rel).entries()) {
        (void)freq;
        ++appearances[code];
      }
    }
    // dpjoin-audit: allow(determinism) — integer max; order-insensitive.
    for (const auto& [code, count] : appearances) {
      (void)code;
      partition.max_participation =
          std::max(partition.max_participation, count);
    }
  }
  return partition;
}

}  // namespace dpjoin
