// Decompose — Algorithm 7 (paper §4.2.2).
//
// Given an attribute x, buckets the values t ∈ dom(y) (y = proper ancestors
// of x, E = atom(x)) by NOISY degree
//   g̃deg_{E,y}(t) = deg_{E,y}(t) + TLap^{τ(ε,δ,1)}_{1/ε}
// into geometric buckets i = max{1, ⌈log2(g̃deg/λ)⌉}, and splits the
// relations of E accordingly (relations outside E are shared, NOT split —
// which is why hierarchical uniformization pays the group-privacy factor of
// Lemma 4.11).

#ifndef DPJOIN_HIERARCHICAL_DECOMPOSE_H_
#define DPJOIN_HIERARCHICAL_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/privacy_params.h"
#include "hierarchical/attribute_tree.h"
#include "relational/instance.h"

namespace dpjoin {

/// One output bucket of a Decompose step.
struct DecomposeBucket {
  int bucket_index = 0;  ///< i, degrees in (λ·2^{i−1}, λ·2^i] after noise.
  Instance sub_instance;
};

/// Runs Algorithm 7 on attribute x. `lambda` is the bucket scale (the
/// overall algorithm's λ). Every realized y-value (appearing in any R_j,
/// j ∈ atom(x)) is bucketed; values with no tuples contribute nothing.
Result<std::vector<DecomposeBucket>> Decompose(const Instance& instance,
                                               const AttributeTree& tree,
                                               int attribute,
                                               const PrivacyParams& params,
                                               double lambda, Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_DECOMPOSE_H_
