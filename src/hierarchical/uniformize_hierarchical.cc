#include "hierarchical/uniformize_hierarchical.h"

#include <algorithm>

#include "core/multi_table.h"
#include "hierarchical/partition_hierarchical.h"
#include "query/evaluation.h"
#include "relational/join.h"

namespace dpjoin {

Result<HierUniformizeResult> UniformizeHierarchical(
    const Instance& instance, const QueryFamily& family,
    const PrivacyParams& params, const ReleaseOptions& options, Rng& rng,
    int64_t max_sub_instances) {
  DPJOIN_ASSIGN_OR_RETURN(AttributeTree tree,
                          AttributeTree::Build(instance.query()));
  const PrivacyParams half = params.Half();
  const double lambda = params.Lambda();
  const double beta = 1.0 / lambda;

  HierUniformizeResult result;

  // Line 1: partition (Algorithm 6) with the (ε/2, δ/2) share.
  DPJOIN_ASSIGN_OR_RETURN(
      HierarchicalPartition partition,
      PartitionHierarchical(instance, tree, half, lambda, rng,
                            max_sub_instances));
  result.max_participation = partition.max_participation;

  // Each tuple's degrees feed ≤ max_i |x_i| Decompose steps (Lemma 4.11's
  // c′ factor); the ledger reports that scaling explicitly.
  int max_arity = 0;
  for (int r = 0; r < instance.query().num_relations(); ++r) {
    max_arity = std::max(max_arity,
                         instance.query().attributes_of(r).Count());
  }
  result.release.accountant.SpendSequential(
      "hier-uniformize/partition (×max-arity group factor)",
      half.Scaled(static_cast<double>(std::max(1, max_arity))));

  // Lines 2–3: MultiTable per sub-instance at (ε/2, δ/2). Sub-instances are
  // NOT tuple-disjoint; group privacy over the measured participation count
  // applies (Lemma 4.11).
  DenseTensor combined(ReleaseShape(instance.query()));
  for (ConfiguredSubInstance& entry : partition.sub_instances) {
    if (entry.sub_instance.InputSize() == 0) continue;
    DPJOIN_ASSIGN_OR_RETURN(
        ReleaseResult sub,
        MultiTable(entry.sub_instance, family, half, options, rng));
    combined.AddTensor(sub.synthetic);

    HierBucketInfo info;
    info.config = entry.config;
    info.count = JoinCount(entry.sub_instance);
    info.delta_tilde = sub.delta_tilde;
    info.input_size = entry.sub_instance.InputSize();
    auto rs_bound = ConfigResidualSensitivity(instance.query(), tree,
                                              entry.config, lambda, beta);
    info.config_rs_bound = rs_bound.ok() ? *rs_bound : 0.0;
    result.bucket_info.push_back(std::move(info));

    result.release.delta_tilde =
        std::max(result.release.delta_tilde, sub.delta_tilde);
    result.release.noisy_total += sub.noisy_total;
    result.release.pmw_rounds += sub.pmw_rounds;
  }
  result.release.accountant.SpendSequential(
      "hier-uniformize/releases (×participation group factor)",
      half.Scaled(static_cast<double>(
          std::max<int64_t>(1, partition.max_participation))));

  result.release.synthetic = std::move(combined);
  return result;
}

}  // namespace dpjoin
