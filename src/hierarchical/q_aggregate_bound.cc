#include "hierarchical/q_aggregate_bound.h"

#include "common/check.h"
#include "hierarchical/max_degree.h"

namespace dpjoin {

namespace {

int MatchFactorAttribute(const JoinQuery& query, const AttributeTree& tree,
                         RelationSet rels, AttributeSet y) {
  for (int a = 0; a < query.num_attributes(); ++a) {
    if (query.Atom(a) == rels && tree.ProperAncestors(a) == y) return a;
  }
  return -1;
}

Status Recurse(const JoinQuery& query, const AttributeTree& tree,
               RelationSet rels, AttributeSet y,
               QAggregateBoundStructure* out, int depth) {
  if (depth > 2 * query.num_attributes() + 2 * query.num_relations()) {
    return Status::Internal("q-aggregate recursion failed to terminate");
  }
  if (rels.Empty()) return Status::OK();  // T_∅ = 1, no factors

  // Case (1).
  if (rels.Count() == 1) {
    out->factors.push_back(
        {rels, y, MatchFactorAttribute(query, tree, rels, y)});
    return Status::OK();
  }

  const std::vector<RelationSet> components =
      query.ConnectedComponents(rels, y);
  if (components.size() > 1) {
    // Case (2.1): T_{E,y} ≤ Π_{E'} T_{E', y∩(∨E')}.
    for (RelationSet component : components) {
      const AttributeSet y_sub =
          y.Intersect(query.UnionAttributes(component));
      DPJOIN_RETURN_NOT_OK(Recurse(query, tree, component, y_sub, out,
                                   depth + 1));
    }
    return Status::OK();
  }

  // Case (2.2): connected residual, so y ⊊ ∧E and
  // T_{E,y} ≤ mdeg_E(y) · T_{E,∧E}.
  const AttributeSet cap = query.IntersectAttributes(rels);
  if (y == cap) {
    return Status::InvalidArgument(
        "H_{E,∧E} is connected with |E| ≥ 2 — query is not hierarchical");
  }
  DPJOIN_CHECK(y.IsSubsetOf(cap), "case 2.2 requires y ⊆ ∧E");
  out->factors.push_back({rels, y, MatchFactorAttribute(query, tree, rels, y)});
  return Recurse(query, tree, rels, cap, out, depth + 1);
}

}  // namespace

Result<QAggregateBoundStructure> QAggregateBoundFactors(
    const JoinQuery& query, const AttributeTree& tree, RelationSet rels,
    AttributeSet y) {
  QAggregateBoundStructure structure;
  DPJOIN_RETURN_NOT_OK(Recurse(query, tree, rels, y, &structure, 0));
  return structure;
}

Result<QAggregateBoundStructure> BoundaryBoundFactors(
    const JoinQuery& query, const AttributeTree& tree, RelationSet rels) {
  return QAggregateBoundFactors(query, tree, rels, query.Boundary(rels));
}

double EvaluateQAggregateBound(const Instance& instance,
                               const QAggregateBoundStructure& structure) {
  double bound = 1.0;
  for (const DegreeFactor& factor : structure.factors) {
    bound *= static_cast<double>(
        MaxHierDegree(instance, factor.rels, factor.y));
  }
  return bound;
}

}  // namespace dpjoin
