#include "hierarchical/decompose.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "dp/truncated_laplace.h"
#include "hierarchical/max_degree.h"

namespace dpjoin {

Result<std::vector<DecomposeBucket>> Decompose(const Instance& instance,
                                               const AttributeTree& tree,
                                               int attribute,
                                               const PrivacyParams& params,
                                               double lambda, Rng& rng) {
  const JoinQuery& query = instance.query();
  if (attribute < 0 || attribute >= query.num_attributes()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (lambda <= 0.0) lambda = params.Lambda();

  // Line 1: y = proper ancestors, E = atom(x).
  const AttributeSet y = tree.ProperAncestors(attribute);
  const RelationSet rels = query.Atom(attribute);

  // Lines 3–6: noisy-degree bucketing of realized y-values. Join-supported
  // degrees from Definition 4.7, zero degrees for y-values that appear in
  // some R_j but never join.
  const std::unordered_map<int64_t, int64_t> degrees =
      HierDegreeMap(instance, rels, y);
  const TruncatedLaplace tlap =
      TruncatedLaplace::ForSensitivity(params.epsilon, params.delta, 1.0);

  // Materialize the realized y-codes first, then draw noise in sorted
  // y-code order: one truncated-Laplace draw per distinct y-value, in an
  // order independent of hash-map layout, so releases stay bit-identical
  // across stdlib versions and rehashes.
  std::vector<int64_t> y_codes;
  for (int rel : rels.Elements()) {
    const Relation& r = instance.relation(rel);
    // dpjoin-audit: allow(determinism) — key collection only; the codes
    // are sorted below before any noise is drawn.
    for (const auto& [code, freq] : r.entries()) {
      (void)freq;
      y_codes.push_back(r.ProjectCode(code, y));
    }
  }
  std::sort(y_codes.begin(), y_codes.end());
  y_codes.erase(std::unique(y_codes.begin(), y_codes.end()), y_codes.end());

  std::unordered_map<int64_t, int> bucket_of;
  for (const int64_t y_code : y_codes) {
    const auto it = degrees.find(y_code);
    const double deg = it == degrees.end() ? 0.0
                                           : static_cast<double>(it->second);
    const double noisy = deg + tlap.Sample(rng);
    const int bucket =
        (noisy <= lambda)
            ? 1
            : std::max(1, static_cast<int>(std::ceil(std::log2(noisy / lambda))));
    bucket_of.emplace(y_code, bucket);
  }

  // Lines 7–10: split relations of E by bucket; relations outside E shared.
  std::map<int, Instance> outputs;
  // dpjoin-audit: allow(determinism) — creates one (keyed) output Instance
  // per distinct bucket id; idempotent per bucket, so order-insensitive.
  for (const auto& [y_code, bucket] : bucket_of) {
    (void)y_code;
    if (outputs.find(bucket) == outputs.end()) {
      Instance sub(instance.query_ptr());
      for (int rel = 0; rel < instance.num_relations(); ++rel) {
        if (!rels.Contains(rel)) {
          sub.mutable_relation(rel) = instance.relation(rel);
        }
      }
      outputs.emplace(bucket, std::move(sub));
    }
  }
  for (int rel : rels.Elements()) {
    const Relation& source = instance.relation(rel);
    // dpjoin-audit: allow(determinism) — each tuple lands in the bucket
    // keyed by its own code (SetFrequencyByCode); no draws, no
    // accumulation, so iteration order cannot affect the result.
    for (const auto& [code, freq] : source.entries()) {
      const int bucket = bucket_of.at(source.ProjectCode(code, y));
      outputs.at(bucket).mutable_relation(rel).SetFrequencyByCode(code, freq);
    }
  }

  std::vector<DecomposeBucket> result;
  for (auto& [bucket, sub] : outputs) {
    result.push_back({bucket, std::move(sub)});
  }
  return result;
}

}  // namespace dpjoin
