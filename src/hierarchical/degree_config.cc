#include "hierarchical/degree_config.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "hierarchical/q_aggregate_bound.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {

std::string DegreeConfiguration::ToString(const JoinQuery& query) const {
  std::ostringstream oss;
  oss << "σ{";
  bool first = true;
  for (size_t a = 0; a < buckets.size(); ++a) {
    if (buckets[a] <= 0) continue;
    if (!first) oss << ", ";
    oss << query.attribute_name(static_cast<int>(a)) << "→" << buckets[a];
    first = false;
  }
  oss << "}";
  return oss.str();
}

Result<std::unordered_map<uint64_t, double>> ConfigBoundaryBounds(
    const JoinQuery& query, const AttributeTree& tree,
    const DegreeConfiguration& config, double lambda) {
  DPJOIN_CHECK_GT(lambda, 0.0);
  DPJOIN_CHECK_EQ(static_cast<int>(config.buckets.size()),
                  query.num_attributes());
  const int m = query.num_relations();
  std::unordered_map<uint64_t, double> bounds;
  for (uint64_t bits = 0; bits < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    if (set.Empty()) {
      bounds[bits] = 1.0;
      continue;
    }
    DPJOIN_ASSIGN_OR_RETURN(QAggregateBoundStructure structure,
                            BoundaryBoundFactors(query, tree, set));
    double bound = 1.0;
    for (const DegreeFactor& factor : structure.factors) {
      if (factor.attribute < 0) {
        return Status::Internal(
            "q-aggregate factor matches no attribute; query should be "
            "hierarchical with per-attribute factors (Lemma 4.8)");
      }
      const int bucket =
          config.buckets[static_cast<size_t>(factor.attribute)];
      if (bucket <= 0) {
        return Status::FailedPrecondition(
            "degree configuration does not cover attribute " +
            query.attribute_name(factor.attribute));
      }
      bound *= lambda * std::pow(2.0, static_cast<double>(bucket));
    }
    bounds[bits] = bound;
  }
  return bounds;
}

Result<double> ConfigResidualSensitivity(const JoinQuery& query,
                                         const AttributeTree& tree,
                                         const DegreeConfiguration& config,
                                         double lambda, double beta) {
  DPJOIN_ASSIGN_OR_RETURN(auto bounds,
                          ConfigBoundaryBounds(query, tree, config, lambda));
  return ResidualSensitivityFromBoundaries(query, bounds, beta).value;
}

}  // namespace dpjoin
