// Degree configurations σ (Definition 4.9) and the sensitivities they
// induce (paper §4.2.2, Theorem C.2).
//
// σ assigns each attribute x (equivalently, each admissible pair
// (E, y) = (atom(x), ancestors(x))) a bucket index; a sub-instance conforms
// to σ when every realized degree deg_{E,y}(·) lies in (λ·2^{σ−1}, λ·2^σ].
// Under σ, every boundary query T_E is upper bounded by the product of its
// Lemma-4.8 factors' bucket ceilings, giving the configuration residual
// sensitivity RS^σ.

#ifndef DPJOIN_HIERARCHICAL_DEGREE_CONFIG_H_
#define DPJOIN_HIERARCHICAL_DEGREE_CONFIG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "hierarchical/attribute_tree.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Bucket index per attribute (σ(atom(x), ancestors(x)) = buckets[x]);
/// 0 = unassigned (⊥).
struct DegreeConfiguration {
  std::vector<int> buckets;

  std::string ToString(const JoinQuery& query) const;
};

/// Upper bounds on every boundary query T_F under σ: maps relation-set bits
/// to Π_{factors of T_F} λ·2^{σ(x')} (and 1 for F = ∅). Factors come from
/// BoundaryBoundFactors; unmatched factors (no corresponding attribute)
/// make the computation fail — they cannot occur for hierarchical queries
/// (Lemma 4.8).
Result<std::unordered_map<uint64_t, double>> ConfigBoundaryBounds(
    const JoinQuery& query, const AttributeTree& tree,
    const DegreeConfiguration& config, double lambda);

/// RS^σ: residual sensitivity computed from the σ-induced boundary bounds
/// (Theorem C.2's per-configuration sensitivity).
Result<double> ConfigResidualSensitivity(const JoinQuery& query,
                                         const AttributeTree& tree,
                                         const DegreeConfiguration& config,
                                         double lambda, double beta);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_DEGREE_CONFIG_H_
