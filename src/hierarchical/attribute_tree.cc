#include "hierarchical/attribute_tree.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"

namespace dpjoin {

Result<AttributeTree> AttributeTree::Build(const JoinQuery& query) {
  if (!query.IsHierarchical()) {
    return Status::InvalidArgument(
        "query is not hierarchical: atoms are not laminar");
  }
  const int na = query.num_attributes();
  AttributeTree tree;
  tree.parents_.assign(static_cast<size_t>(na), -1);
  tree.children_.assign(static_cast<size_t>(na), {});
  tree.proper_ancestors_.assign(static_cast<size_t>(na), AttributeSet());

  // Group attributes by identical atoms; groups are chained by index.
  std::map<uint64_t, std::vector<int>> groups;
  for (int a = 0; a < na; ++a) {
    groups[query.Atom(a).bits()].push_back(a);
    for (int b = 0; b < na; ++b) {
      if (b != a && query.Atom(a).IsSubsetOf(query.Atom(b)) &&
          query.Atom(a) != query.Atom(b)) {
        tree.proper_ancestors_[static_cast<size_t>(a)].Insert(b);
      }
    }
  }

  for (const auto& [atom_bits, members] : groups) {
    const RelationSet atom =
        RelationSet::FromElements({});  // reconstruct below
    (void)atom;
    // Parent group: the minimal strict superset atom (laminarity makes the
    // strict supersets a chain, so "minimal" is well defined).
    const RelationSet this_atom = query.Atom(members.front());
    bool has_parent = false;
    RelationSet best;
    for (const auto& [other_bits, other_members] : groups) {
      (void)other_members;
      if (other_bits == atom_bits) continue;
      const RelationSet other = query.Atom(groups.at(other_bits).front());
      if (this_atom.IsSubsetOf(other)) {
        if (!has_parent || other.IsSubsetOf(best)) {
          best = other;
          has_parent = true;
        }
      }
    }
    // Chain members of the group; the head hangs off the parent group's tail.
    if (has_parent) {
      tree.parents_[static_cast<size_t>(members.front())] =
          groups.at(best.bits()).back();
    }
    for (size_t i = 1; i < members.size(); ++i) {
      tree.parents_[static_cast<size_t>(members[i])] = members[i - 1];
    }
  }

  for (int a = 0; a < na; ++a) {
    const int p = tree.parents_[static_cast<size_t>(a)];
    if (p < 0) {
      tree.roots_.push_back(a);
    } else {
      tree.children_[static_cast<size_t>(p)].push_back(a);
    }
  }
  for (auto& kids : tree.children_) std::sort(kids.begin(), kids.end());
  std::sort(tree.roots_.begin(), tree.roots_.end());

  // Post-order (children before parents).
  auto visit = [&](auto&& self, int node) -> void {
    for (int child : tree.children_[static_cast<size_t>(node)]) {
      self(self, child);
    }
    tree.post_order_.push_back(node);
  };
  for (int root : tree.roots_) visit(visit, root);
  DPJOIN_CHECK_EQ(static_cast<int>(tree.post_order_.size()), na);
  return tree;
}

AttributeSet AttributeTree::TreeAncestors(int attr) const {
  AttributeSet out;
  int cur = Parent(attr);
  while (cur >= 0) {
    out.Insert(cur);
    cur = Parent(cur);
  }
  return out;
}

std::string AttributeTree::ToString(const JoinQuery& query) const {
  std::ostringstream oss;
  auto render = [&](auto&& self, int node, int depth) -> void {
    for (int i = 0; i < depth; ++i) oss << "  ";
    oss << query.attribute_name(node) << "  (atom="
        << query.Atom(node).ToString() << ")\n";
    for (int child : Children(node)) self(self, child, depth + 1);
  };
  for (int root : roots_) render(render, root, 0);
  return oss.str();
}

}  // namespace dpjoin
