// Degrees and maximum degrees for hierarchical joins (Definition 4.7).
//
//   deg_{E,y}(t) = Σ_{t'∈dom(x_i): π_y t' = t} R_i(t')           if E = {i}
//   deg_{E,y}(t) = |{t' ∈ Ψ_E(I) : π_y t' = t}|                  otherwise,
// where Ψ_E(I) = {π_{∧E} t' : t' ∈ dom(∨E), Π_{i∈E} R_i(π_{x_i} t') > 0} is
// the set of distinct ∧E-projections of joining combinations of E.
//
//   mdeg_E(y) = max_t deg_{E,y}(t).

#ifndef DPJOIN_HIERARCHICAL_MAX_DEGREE_H_
#define DPJOIN_HIERARCHICAL_MAX_DEGREE_H_

#include <cstdint>
#include <unordered_map>

#include "common/bitset.h"
#include "relational/instance.h"

namespace dpjoin {

/// deg_{E,y}(·) for every realized y-value; keys are mixed-radix codes of
/// the y attributes (ascending order, domain sizes as radices). Requires
/// y ⊆ x_i for |E| = 1 and y ⊆ ∧E otherwise.
std::unordered_map<int64_t, int64_t> HierDegreeMap(const Instance& instance,
                                                   RelationSet rels,
                                                   AttributeSet y);

/// mdeg_E(y) (0 on empty data).
int64_t MaxHierDegree(const Instance& instance, RelationSet rels,
                      AttributeSet y);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_MAX_DEGREE_H_
