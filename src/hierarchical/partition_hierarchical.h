// Partition-Hierarchical — Algorithm 6 (paper §4.2.2).
//
// Bottom-up over the attribute tree (post-order), every current
// sub-instance is further split by Decompose on the visited attribute. The
// output sub-instances have pairwise-disjoint join results whose union is
// JoinI, each tuple participates in O(log^c n) of them, and each
// sub-instance carries a distinct degree configuration σ (Lemma 4.10).

#ifndef DPJOIN_HIERARCHICAL_PARTITION_HIERARCHICAL_H_
#define DPJOIN_HIERARCHICAL_PARTITION_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/privacy_params.h"
#include "hierarchical/attribute_tree.h"
#include "hierarchical/degree_config.h"
#include "relational/instance.h"

namespace dpjoin {

/// A sub-instance with its degree configuration.
struct ConfiguredSubInstance {
  Instance sub_instance;
  DegreeConfiguration config;
};

struct HierarchicalPartition {
  std::vector<ConfiguredSubInstance> sub_instances;
  /// Max number of sub-instances any single input tuple appears in
  /// (the log^c n participation bound of Lemma 4.10, measured).
  int64_t max_participation = 0;
};

/// Runs Algorithm 6 with per-Decompose budget (ε, δ). `max_sub_instances`
/// bounds the blow-up (FailedPrecondition beyond it).
Result<HierarchicalPartition> PartitionHierarchical(
    const Instance& instance, const AttributeTree& tree,
    const PrivacyParams& params, double lambda, Rng& rng,
    int64_t max_sub_instances = 4096);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_PARTITION_HIERARCHICAL_H_
