// Attribute tree of a hierarchical join query (paper §4.2, Figure 4).
//
// A query is hierarchical when the atoms atom(x) = {i : x ∈ x_i} form a
// laminar family; attributes then organize into a forest where each relation
// is a root-to-node path. Attributes with strictly larger atoms are
// ancestors; attributes with identical atoms are chained by index.

#ifndef DPJOIN_HIERARCHICAL_ATTRIBUTE_TREE_H_
#define DPJOIN_HIERARCHICAL_ATTRIBUTE_TREE_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "relational/join_query.h"

namespace dpjoin {

/// Immutable attribute forest over a hierarchical query.
class AttributeTree {
 public:
  /// Builds the tree; fails with InvalidArgument when the query is not
  /// hierarchical.
  static Result<AttributeTree> Build(const JoinQuery& query);

  /// Parent attribute in the tree (-1 for roots).
  int Parent(int attr) const { return parents_[static_cast<size_t>(attr)]; }

  /// Children in ascending attribute order.
  const std::vector<int>& Children(int attr) const {
    return children_[static_cast<size_t>(attr)];
  }

  /// Root attributes (one per tree of the forest).
  const std::vector<int>& Roots() const { return roots_; }

  /// Tree ancestors of `attr` (strict: excludes `attr` itself).
  AttributeSet TreeAncestors(int attr) const;

  /// The "proper ancestors" used by Algorithm 7 line 1:
  /// {y : atom(attr) ⊊ atom(y)} — attributes whose atom strictly contains
  /// atom(attr). Coincides with TreeAncestors when all atoms are distinct.
  AttributeSet ProperAncestors(int attr) const {
    return proper_ancestors_[static_cast<size_t>(attr)];
  }

  /// Attributes in post-order (every node after all its descendants) — the
  /// visit order of Algorithm 6.
  const std::vector<int>& PostOrder() const { return post_order_; }

  /// ASCII rendering of the forest (for docs/examples).
  std::string ToString(const JoinQuery& query) const;

 private:
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<int> roots_;
  std::vector<AttributeSet> proper_ancestors_;
  std::vector<int> post_order_;
};

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_ATTRIBUTE_TREE_H_
