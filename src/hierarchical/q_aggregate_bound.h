// Upper bound on q-aggregate queries T_{E,y} via products of maximum
// degrees (paper §4.2.1, cases (1), (2.1), (2.2); Lemma 4.8).
//
// The recursion:
//   (1)   |E| = 1:            T_{E,y} = mdeg_E(y)                  [factor]
//   (2.1) H_{E,y} disconnected: T_{E,y} ≤ Π_{E'∈C_E} T_{E', y∩∨E'}
//   (2.2) H_{E,y} connected:   T_{E,y} ≤ mdeg_E(y) · T_{E,∧E}      [factor]
//
// Every factor mdeg_{E'}(y') corresponds to a distinct attribute x with
// E' = atom(x) and y' = the (proper) ancestors of x (Lemma 4.8), which is
// what makes degree configurations well defined.

#ifndef DPJOIN_HIERARCHICAL_Q_AGGREGATE_BOUND_H_
#define DPJOIN_HIERARCHICAL_Q_AGGREGATE_BOUND_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "hierarchical/attribute_tree.h"
#include "relational/instance.h"

namespace dpjoin {

/// One mdeg factor of the bound.
struct DegreeFactor {
  RelationSet rels;    ///< E' = atom(x) for the matched attribute.
  AttributeSet y;      ///< y' = proper ancestors of x.
  int attribute = -1;  ///< the attribute x of Lemma 4.8 (-1 if unmatched).
};

/// The factor structure of the T_{E,y} upper bound. Data-independent: it
/// depends only on the query and (E, y).
struct QAggregateBoundStructure {
  std::vector<DegreeFactor> factors;
};

/// Computes the factor structure for T_{E,y}. Fails when the query is not
/// hierarchical (the recursion needs case 2.2 → 2.1 termination, which the
/// paper proves for hierarchical queries).
Result<QAggregateBoundStructure> QAggregateBoundFactors(
    const JoinQuery& query, const AttributeTree& tree, RelationSet rels,
    AttributeSet y);

/// Factor structure for the boundary query T_E = T_{E,∂E}.
Result<QAggregateBoundStructure> BoundaryBoundFactors(const JoinQuery& query,
                                                      const AttributeTree& tree,
                                                      RelationSet rels);

/// Evaluates the bound numerically on an instance: Π_factors mdeg_{E'}(y').
double EvaluateQAggregateBound(const Instance& instance,
                               const QAggregateBoundStructure& structure);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_Q_AGGREGATE_BOUND_H_
