#include "hierarchical/max_degree.h"

#include <unordered_set>

#include "common/check.h"
#include "relational/join.h"

namespace dpjoin {

std::unordered_map<int64_t, int64_t> HierDegreeMap(const Instance& instance,
                                                   RelationSet rels,
                                                   AttributeSet y) {
  const JoinQuery& query = instance.query();
  DPJOIN_CHECK(!rels.Empty(), "degree of an empty relation set");

  if (rels.Count() == 1) {
    const Relation& rel = instance.relation(rels.First());
    DPJOIN_CHECK(y.IsSubsetOf(rel.attributes()),
                 "y must be within the relation's attributes");
    return rel.DegreeMap(y);
  }

  const AttributeSet cap = query.IntersectAttributes(rels);
  DPJOIN_CHECK(y.IsSubsetOf(cap), "y must be within ∧E");
  const std::vector<int> cap_attrs = cap.Elements();
  const std::vector<int> y_attrs = y.Elements();

  // Distinct ∧E-projections of joining combinations, keyed per y-value.
  std::unordered_set<int64_t> seen;  // codes over ∧E
  std::unordered_map<int64_t, int64_t> degrees;
  EnumerateSubJoin(
      instance, rels,
      [&](const std::vector<int64_t>&, const std::vector<int64_t>& assignment,
          int64_t) {
        int64_t cap_code = 0;
        for (int attr : cap_attrs) {
          cap_code = cap_code * query.domain_size(attr) + assignment[attr];
        }
        if (!seen.insert(cap_code).second) return;
        int64_t y_code = 0;
        for (int attr : y_attrs) {
          y_code = y_code * query.domain_size(attr) + assignment[attr];
        }
        ++degrees[y_code];
      });
  return degrees;
}

int64_t MaxHierDegree(const Instance& instance, RelationSet rels,
                      AttributeSet y) {
  int64_t best = 0;
  for (const auto& [key, deg] : HierDegreeMap(instance, rels, y)) {
    (void)key;
    best = std::max(best, deg);
  }
  return best;
}

}  // namespace dpjoin
