// Uniformize for hierarchical joins — Algorithm 4 instantiated with
// Partition-Hierarchical (Algorithm 6) and MultiTable (Algorithm 3) as the
// per-sub-instance primitive (paper §4.2, Theorem C.2).
//
// Privacy (Lemma 4.11): (O(log^c n)·ε, O(log^c n)·δ)-DP — unlike the
// two-table case, sub-instances share the tuples of relations outside the
// decomposed atoms, so group privacy over the measured participation bound
// applies. The accountant reports the ledger with the measured factor.

#ifndef DPJOIN_HIERARCHICAL_UNIFORMIZE_HIERARCHICAL_H_
#define DPJOIN_HIERARCHICAL_UNIFORMIZE_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/release_result.h"
#include "dp/privacy_params.h"
#include "hierarchical/attribute_tree.h"
#include "hierarchical/degree_config.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Per-sub-instance diagnostics.
struct HierBucketInfo {
  DegreeConfiguration config;
  double count = 0.0;            ///< count of the sub-instance.
  double delta_tilde = 0.0;      ///< Δ̃ its MultiTable used.
  double config_rs_bound = 0.0;  ///< RS^σ upper bound (Theorem C.2 quantity).
  int64_t input_size = 0;
};

struct HierUniformizeResult {
  ReleaseResult release;
  std::vector<HierBucketInfo> bucket_info;
  int64_t max_participation = 0;  ///< measured group-privacy factor.
};

/// Runs hierarchical Uniformize. Fails when the query is not hierarchical
/// or the partition exceeds `max_sub_instances`.
Result<HierUniformizeResult> UniformizeHierarchical(
    const Instance& instance, const QueryFamily& family,
    const PrivacyParams& params, const ReleaseOptions& options, Rng& rng,
    int64_t max_sub_instances = 4096);

}  // namespace dpjoin

#endif  // DPJOIN_HIERARCHICAL_UNIFORMIZE_HIERARCHICAL_H_
