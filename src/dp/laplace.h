// Laplace mechanism primitives.

#ifndef DPJOIN_DP_LAPLACE_H_
#define DPJOIN_DP_LAPLACE_H_

#include "common/rng.h"

namespace dpjoin {

/// Zero-mean Laplace distribution with scale b: pdf(x) ∝ exp(-|x|/b).
class Laplace {
 public:
  explicit Laplace(double scale);

  double scale() const { return scale_; }

  /// Draws one variate.
  double Sample(Rng& rng) const;

  /// Probability density at x.
  double Pdf(double x) const;

  /// Cumulative distribution at x.
  double Cdf(double x) const;

  /// Pr[|X| > t] for t >= 0 (tail bound used in utility analyses).
  double TailProbability(double t) const;

 private:
  double scale_;
};

/// Laplace-mechanism helper: value + Lap(sensitivity/epsilon).
/// This is the (ε, 0)-DP mechanism for a `sensitivity`-sensitive statistic.
double AddLaplaceNoise(double value, double sensitivity, double epsilon,
                       Rng& rng);

}  // namespace dpjoin

#endif  // DPJOIN_DP_LAPLACE_H_
