#include "dp/truncated_laplace.h"

#include <cmath>

#include "common/check.h"

namespace dpjoin {

double TruncatedLaplaceTau(double epsilon, double delta, double sensitivity) {
  DPJOIN_CHECK_GT(epsilon, 0.0);
  DPJOIN_CHECK_GT(delta, 0.0);
  DPJOIN_CHECK_GT(sensitivity, 0.0);
  return (sensitivity / epsilon) *
         std::log(1.0 + (std::exp(epsilon) - 1.0) / delta);
}

TruncatedLaplace::TruncatedLaplace(double scale, double tau)
    : scale_(scale), tau_(tau) {
  DPJOIN_CHECK_GT(scale, 0.0);
  DPJOIN_CHECK_GT(tau, 0.0);
  // ∫_0^{2τ} exp(-|x-τ|/b) dx = 2b(1 - e^{-τ/b}).
  normalizer_ = 2.0 * scale_ * (1.0 - std::exp(-tau_ / scale_));
}

TruncatedLaplace TruncatedLaplace::ForSensitivity(double epsilon, double delta,
                                                  double sensitivity) {
  // Section 2: u + TLap^{τ(ε,δ,Δ)}_{Δ/ε} ≈_{(ε,δ)} v + TLap^{τ(ε,δ,Δ)}_{Δ/ε}
  // whenever |u − v| ≤ Δ. Callers pass the (ε, δ) SHARE they spend — e.g.
  // Algorithm 1 writes TLap^{τ(ε/2,δ/2,1)}_{2/ε}, which is exactly
  // ForSensitivity(ε/2, δ/2, 1) since 2/ε = 1/(ε/2).
  const double tau = TruncatedLaplaceTau(epsilon, delta, sensitivity);
  return TruncatedLaplace(sensitivity / epsilon, tau);
}

double TruncatedLaplace::Sample(Rng& rng) const {
  const double b = scale_;
  const double half = b * (1.0 - std::exp(-tau_ / b));  // mass of [0, τ]
  double u = rng.UniformDouble();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double target = u * normalizer_;
  double x;
  if (target <= half) {
    // Left branch: unnormalized CDF(x) = b(e^{(x-τ)/b} - e^{-τ/b}).
    x = tau_ + b * std::log(target / b + std::exp(-tau_ / b));
  } else {
    // Right branch: CDF(x) = half + b(1 - e^{-(x-τ)/b}).
    const double v = target - half;
    x = tau_ - b * std::log(1.0 - v / b);
  }
  // Clamp away floating-point spill outside the support.
  if (x < 0.0) x = 0.0;
  if (x > 2.0 * tau_) x = 2.0 * tau_;
  return x;
}

double TruncatedLaplace::Pdf(double x) const {
  if (x < 0.0 || x > 2.0 * tau_) return 0.0;
  return std::exp(-std::abs(x - tau_) / scale_) / normalizer_;
}

double TruncatedLaplace::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 2.0 * tau_) return 1.0;
  const double b = scale_;
  double mass;
  if (x <= tau_) {
    mass = b * (std::exp((x - tau_) / b) - std::exp(-tau_ / b));
  } else {
    mass = b * (1.0 - std::exp(-tau_ / b)) +
           b * (1.0 - std::exp(-(x - tau_) / b));
  }
  return mass / normalizer_;
}

}  // namespace dpjoin
