#include "dp/laplace.h"

#include <cmath>

#include "common/check.h"

namespace dpjoin {

Laplace::Laplace(double scale) : scale_(scale) {
  DPJOIN_CHECK_GT(scale, 0.0);
}

double Laplace::Sample(Rng& rng) const {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
  // x = -b * sgn(u) * ln(1 - 2|u|).
  double u = rng.UniformDouble() - 0.5;
  // Guard the measure-zero endpoint that would give log(0).
  if (u == 0.5) u = 0.49999999999999994;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale_ * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Laplace::Pdf(double x) const {
  return std::exp(-std::abs(x) / scale_) / (2.0 * scale_);
}

double Laplace::Cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / scale_);
  return 1.0 - 0.5 * std::exp(-x / scale_);
}

double Laplace::TailProbability(double t) const {
  DPJOIN_CHECK_GE(t, 0.0);
  return std::exp(-t / scale_);
}

double AddLaplaceNoise(double value, double sensitivity, double epsilon,
                       Rng& rng) {
  DPJOIN_CHECK_GT(sensitivity, 0.0);
  DPJOIN_CHECK_GT(epsilon, 0.0);
  return value + Laplace(sensitivity / epsilon).Sample(rng);
}

}  // namespace dpjoin
