// Privacy parameters (ε, δ) and the paper's derived quantities.
//
// Conventions from the paper (Section 1.1, "Notation"):
//   * 0 < ε ≤ O(1), 0 ≤ δ ≤ 1/2;
//   * λ = (1/ε)·ln(1/δ), the recurring bucket-width / noise-scale parameter;
//   * f_lower(D, Q, ε)    = sqrt(1/ε) · sqrt(log |D|);
//   * f_upper(D, Q, ε, δ) = f_lower · sqrt(log |Q| · log(1/δ)).

#ifndef DPJOIN_DP_PRIVACY_PARAMS_H_
#define DPJOIN_DP_PRIVACY_PARAMS_H_

#include <cmath>

#include "common/check.h"

namespace dpjoin {

/// An (ε, δ) differential-privacy budget.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 1e-6;

  PrivacyParams() = default;
  PrivacyParams(double eps, double del) : epsilon(eps), delta(del) {
    DPJOIN_CHECK_GT(epsilon, 0.0);
    DPJOIN_CHECK(delta >= 0.0 && delta <= 0.5, "delta outside [0, 1/2]");
  }

  /// Budget with both parameters scaled by `f` (basic composition shares).
  PrivacyParams Scaled(double f) const {
    DPJOIN_CHECK_GT(f, 0.0);
    return PrivacyParams(epsilon * f, delta * f);
  }

  /// Half of this budget — the ubiquitous (ε/2, δ/2) split in Algorithms 1–3.
  PrivacyParams Half() const { return Scaled(0.5); }

  /// λ = (1/ε)·ln(1/δ). Requires δ > 0.
  double Lambda() const {
    DPJOIN_CHECK_GT(delta, 0.0);
    return std::log(1.0 / delta) / epsilon;
  }
};

/// f_lower(D, Q, ε) = sqrt(log|D| / ε). `domain_size` is |D|.
inline double FLower(double domain_size, double epsilon) {
  DPJOIN_CHECK_GT(domain_size, 1.0);
  DPJOIN_CHECK_GT(epsilon, 0.0);
  return std::sqrt(std::log(domain_size) / epsilon);
}

/// f_upper(D, Q, ε, δ) = f_lower(D, Q, ε) · sqrt(log|Q| · log(1/δ)).
inline double FUpper(double domain_size, double query_count, double epsilon,
                     double delta) {
  DPJOIN_CHECK_GT(query_count, 1.0);
  DPJOIN_CHECK_GT(delta, 0.0);
  return FLower(domain_size, epsilon) *
         std::sqrt(std::log(query_count) * std::log(1.0 / delta));
}

}  // namespace dpjoin

#endif  // DPJOIN_DP_PRIVACY_PARAMS_H_
