// Shifted, truncated Laplace distribution TLap_b^τ (paper, Section 2).
//
// TLap_b^τ is supported on [0, 2τ] with density ∝ exp(-|x - τ|/b) on the
// support. Its key property: for |u - v| ≤ Δ and
//   τ = τ(ε, δ, Δ) = (Δ/ε)·ln(1 + (e^ε − 1)/δ),
// it holds that u + TLap^τ_{Δ/ε} ≈_{(ε,δ)} v + TLap^τ_{Δ/ε}, and the noise
// is always non-negative — so `value + TLap` is a private UPPER bound on
// `value`, which is exactly how Algorithms 1, 3, 5 and 7 use it.

#ifndef DPJOIN_DP_TRUNCATED_LAPLACE_H_
#define DPJOIN_DP_TRUNCATED_LAPLACE_H_

#include "common/rng.h"

namespace dpjoin {

/// τ(ε, δ, Δ) = (Δ/ε)·ln(1 + (e^ε − 1)/δ). Satisfies τ ≤ O(Δ·λ) for ε = O(1).
double TruncatedLaplaceTau(double epsilon, double delta, double sensitivity);

/// The TLap_b^τ distribution: Laplace centred at τ with scale b, conditioned
/// on [0, 2τ].
class TruncatedLaplace {
 public:
  /// Direct construction from (b, τ).
  TruncatedLaplace(double scale, double tau);

  /// The calibrated mechanism noise TLap^{τ(ε,δ,Δ)}_{Δ/ε} for a Δ-sensitive
  /// statistic under an (ε, δ) budget share. The paper's listings write the
  /// scale in terms of the full budget (e.g. 2Δ/ε for an ε/2 share); pass
  /// the share actually spent and the parameterization matches verbatim.
  static TruncatedLaplace ForSensitivity(double epsilon, double delta,
                                         double sensitivity);

  double scale() const { return scale_; }
  double tau() const { return tau_; }

  /// Draws one variate in [0, 2τ] by inverse-CDF sampling.
  double Sample(Rng& rng) const;

  /// Density at x (0 outside [0, 2τ]).
  double Pdf(double x) const;

  /// CDF at x.
  double Cdf(double x) const;

  /// Mean of the distribution (= τ by symmetry).
  double Mean() const { return tau_; }

 private:
  double scale_;
  double tau_;
  double normalizer_;  // total unnormalized mass over [0, 2τ]
};

}  // namespace dpjoin

#endif  // DPJOIN_DP_TRUNCATED_LAPLACE_H_
