#include "dp/exponential_mechanism.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace dpjoin {

size_t ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                            Rng& rng) {
  DPJOIN_CHECK(!scores.empty(), "EM over empty candidate set");
  DPJOIN_CHECK_GT(epsilon, 0.0);
  size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < scores.size(); ++i) {
    // Standard Gumbel variate: -log(Exp(1)).
    const double gumbel = -std::log(rng.Exponential());
    const double value = 0.5 * epsilon * scores[i] + gumbel;
    if (value > best_value) {
      best_value = value;
      best = i;
    }
  }
  return best;
}

std::vector<double> ExponentialMechanismProbabilities(
    const std::vector<double>& scores, double epsilon) {
  DPJOIN_CHECK(!scores.empty(), "EM over empty candidate set");
  std::vector<double> logits(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) logits[i] = 0.5 * epsilon * scores[i];
  const double lse = LogSumExp(logits);
  std::vector<double> probs(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    probs[i] = std::exp(logits[i] - lse);
  }
  return probs;
}

}  // namespace dpjoin
