#include "dp/composition.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dpjoin {

PrivacyParams AdvancedComposition(double epsilon0, double delta0, int64_t k,
                                  double delta_slack) {
  DPJOIN_CHECK_GT(epsilon0, 0.0);
  DPJOIN_CHECK_GE(delta0, 0.0);
  DPJOIN_CHECK_GT(k, 0);
  DPJOIN_CHECK_GT(delta_slack, 0.0);
  const double kd = static_cast<double>(k);
  const double eps = epsilon0 * std::sqrt(2.0 * kd * std::log(1.0 / delta_slack)) +
                     kd * epsilon0 * (std::exp(epsilon0) - 1.0);
  const double del = kd * delta0 + delta_slack;
  return PrivacyParams(eps, std::min(del, 0.5));
}

double PmwPerRoundEpsilon(double epsilon, double delta, int64_t k) {
  DPJOIN_CHECK_GT(epsilon, 0.0);
  DPJOIN_CHECK_GT(delta, 0.0);
  DPJOIN_CHECK_GT(k, 0);
  // Algorithm 2, line 3: ε' = ε / (16·sqrt(k·log(1/δ))).
  return epsilon /
         (16.0 * std::sqrt(static_cast<double>(k) * std::log(1.0 / delta)));
}

void PrivacyAccountant::SpendSequential(const std::string& label,
                                        PrivacyParams params) {
  entries_.push_back({label, params});
}

void PrivacyAccountant::SpendParallel(
    const std::string& label, const std::vector<PrivacyParams>& branches) {
  DPJOIN_CHECK(!branches.empty(), "parallel spend with no branches");
  double max_eps = 0.0, max_del = 0.0;
  for (const auto& b : branches) {
    max_eps = std::max(max_eps, b.epsilon);
    max_del = std::max(max_del, b.delta);
  }
  entries_.push_back({label, PrivacyParams(max_eps, max_del)});
}

PrivacyParams PrivacyAccountant::Total() const {
  double eps = 0.0, del = 0.0;
  for (const auto& e : entries_) {
    eps += e.params.epsilon;
    del += e.params.delta;
  }
  DPJOIN_CHECK_GT(eps, 0.0);
  return PrivacyParams(eps, std::min(del, 0.5));
}

std::string PrivacyAccountant::ToString() const {
  std::ostringstream oss;
  for (const auto& e : entries_) {
    oss << e.label << ": (" << e.params.epsilon << ", " << e.params.delta
        << ")\n";
  }
  if (!entries_.empty()) {
    const PrivacyParams total = Total();
    oss << "total: (" << total.epsilon << ", " << total.delta << ")\n";
  }
  return oss.str();
}

}  // namespace dpjoin
