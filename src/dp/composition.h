// Differential-privacy composition accounting.
//
// The release algorithms in this library record every budget spend into a
// PrivacyAccountant; tests assert that the totals match the guarantees the
// paper proves (Lemmas 3.2, 3.7, 4.1, 4.11). The accountant supports the
// three rules used by the paper:
//   * basic (sequential) composition: (Σε_i, Σδ_i);
//   * parallel composition: max over branches operating on disjoint data;
//   * advanced composition (the form used in Theorem A.1's PMW analysis).

#ifndef DPJOIN_DP_COMPOSITION_H_
#define DPJOIN_DP_COMPOSITION_H_

#include <string>
#include <vector>

#include "dp/privacy_params.h"

namespace dpjoin {

/// Total (ε, δ) of running k adaptive (ε0, δ0)-DP mechanisms under advanced
/// composition with slack δ′:  ε = ε0·sqrt(2k·ln(1/δ′)) + k·ε0·(e^{ε0}−1),
/// δ = k·δ0 + δ′.
PrivacyParams AdvancedComposition(double epsilon0, double delta0, int64_t k,
                                  double delta_slack);

/// Inverse used by PMW: the per-round ε′ that makes k rounds compose to ε
/// overall. The paper (Algorithm 2, line 3) uses ε′ = ε / (16·sqrt(k·ln(1/δ))).
double PmwPerRoundEpsilon(double epsilon, double delta, int64_t k);

/// A ledger of named budget spends with basic/parallel aggregation.
class PrivacyAccountant {
 public:
  /// Records a sequential spend (basic composition with everything else).
  void SpendSequential(const std::string& label, PrivacyParams params);

  /// Records a group of spends on DISJOINT data partitions (parallel
  /// composition): contributes the max ε and max δ of the group.
  void SpendParallel(const std::string& label,
                     const std::vector<PrivacyParams>& branches);

  /// Total consumed budget under basic composition of all recorded entries.
  PrivacyParams Total() const;

  struct Entry {
    std::string label;
    PrivacyParams params;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Human-readable ledger.
  std::string ToString() const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace dpjoin

#endif  // DPJOIN_DP_COMPOSITION_H_
