// Exponential mechanism (McSherry–Talwar), used by PMW to select the
// worst-approximated query each round.
//
// Given scores s(I, c) with sensitivity at most 1, samples candidate c with
// probability ∝ exp(0.5·ε·s(I, c)); this is (ε, 0)-DP. (The paper's listing
// writes exp(-0.5·ε·s) with s a *quality* score to be maximized; we follow
// the standard maximization convention — callers pass higher-is-better
// scores.)

#ifndef DPJOIN_DP_EXPONENTIAL_MECHANISM_H_
#define DPJOIN_DP_EXPONENTIAL_MECHANISM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace dpjoin {

/// Samples an index from `scores` with Pr[i] ∝ exp(0.5·ε·scores[i]).
///
/// Implemented via the Gumbel-max trick (argmax_i 0.5·ε·s_i + G_i with G_i
/// i.i.d. standard Gumbel), which is numerically stable for widely spread
/// scores and exactly equivalent to softmax sampling.
size_t ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                            Rng& rng);

/// Exact selection probabilities (softmax of 0.5·ε·scores); used by tests to
/// validate the sampler and by diagnostics.
std::vector<double> ExponentialMechanismProbabilities(
    const std::vector<double>& scores, double epsilon);

}  // namespace dpjoin

#endif  // DPJOIN_DP_EXPONENTIAL_MECHANISM_H_
