#include "relational/join.h"

#include <algorithm>

#include "common/check.h"
#include "common/mixed_radix.h"

namespace dpjoin {

namespace {

// Per-depth state for the backtracking join.
struct LevelIndex {
  const Relation* relation = nullptr;
  AttributeSet bound;               // attrs of this relation already assigned
  std::vector<int> new_attrs;       // attrs this level binds (ascending)
  // projected-code on `bound` → tuples (code, freq) matching it.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> index;
};

// Encodes the current assignment restricted to `rel`'s attributes ∩ bound,
// using the same digit order/radices as Relation::ProjectCode.
int64_t KeyFromAssignment(const Relation& rel, AttributeSet bound,
                          const std::vector<int64_t>& assignment) {
  int64_t key = 0;
  const auto& order = rel.attribute_order();
  for (size_t i = 0; i < order.size(); ++i) {
    if (bound.Contains(order[i])) {
      key = key * rel.tuple_space().radix(i) + assignment[order[i]];
    }
  }
  return key;
}

void Recurse(const std::vector<LevelIndex>& levels, size_t depth,
             std::vector<int64_t>& rel_codes, std::vector<int64_t>& assignment,
             int64_t weight, const JoinVisitor& visit) {
  if (depth == levels.size()) {
    visit(rel_codes, assignment, weight);
    return;
  }
  const LevelIndex& level = levels[depth];
  const Relation& rel = *level.relation;
  const int64_t key = KeyFromAssignment(rel, level.bound, assignment);
  auto it = level.index.find(key);
  if (it == level.index.end()) return;
  for (const auto& [code, freq] : it->second) {
    rel_codes[depth] = code;
    for (int attr : level.new_attrs) {
      const int digit = rel.DigitOf(attr);
      assignment[attr] = rel.tuple_space().Digit(code, static_cast<size_t>(digit));
    }
    Recurse(levels, depth + 1, rel_codes, assignment, weight * freq, visit);
    for (int attr : level.new_attrs) assignment[attr] = -1;
  }
}

}  // namespace

void EnumerateSubJoin(const Instance& instance, RelationSet rels,
                      const JoinVisitor& visit) {
  const JoinQuery& query = instance.query();
  std::vector<int64_t> assignment(static_cast<size_t>(query.num_attributes()),
                                  -1);
  const std::vector<int> members = rels.Elements();
  if (members.empty()) {
    std::vector<int64_t> no_codes;
    visit(no_codes, assignment, 1);
    return;
  }

  // Order relations to maximize shared attributes with the prefix (greedy
  // connectivity), which keeps intermediate branching small.
  std::vector<int> order;
  {
    std::vector<int> remaining = members;
    AttributeSet covered;
    while (!remaining.empty()) {
      size_t best = 0;
      int best_overlap = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const int overlap =
            query.attributes_of(remaining[i]).Intersect(covered).Count();
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best = i;
        }
      }
      order.push_back(remaining[best]);
      covered = covered.Union(query.attributes_of(remaining[best]));
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
    }
  }

  std::vector<LevelIndex> levels(order.size());
  AttributeSet bound_so_far;
  for (size_t d = 0; d < order.size(); ++d) {
    const Relation& rel = instance.relation(order[d]);
    LevelIndex& level = levels[d];
    level.relation = &rel;
    level.bound = rel.attributes().Intersect(bound_so_far);
    for (int attr : rel.attributes().Minus(level.bound).Elements()) {
      level.new_attrs.push_back(attr);
    }
    for (const auto& [code, freq] : rel.entries()) {
      level.index[rel.ProjectCode(code, level.bound)].emplace_back(code, freq);
    }
    bound_so_far = bound_so_far.Union(rel.attributes());
  }

  // Visitor contract: rel_codes in ascending relation-index order, so remap
  // from the greedy evaluation order.
  std::vector<size_t> slot_of(order.size());
  for (size_t d = 0; d < order.size(); ++d) {
    const auto pos = std::find(members.begin(), members.end(), order[d]);
    slot_of[d] = static_cast<size_t>(pos - members.begin());
  }
  std::vector<int64_t> codes_by_depth(order.size());
  std::vector<int64_t> codes_by_member(order.size());
  JoinVisitor remap = [&](const std::vector<int64_t>& by_depth,
                          const std::vector<int64_t>& assign, int64_t weight) {
    for (size_t d = 0; d < by_depth.size(); ++d) {
      codes_by_member[slot_of[d]] = by_depth[d];
    }
    visit(codes_by_member, assign, weight);
  };
  Recurse(levels, 0, codes_by_depth, assignment, 1, remap);
}

double SubJoinCount(const Instance& instance, RelationSet rels) {
  double total = 0.0;
  EnumerateSubJoin(instance, rels,
                   [&](const std::vector<int64_t>&, const std::vector<int64_t>&,
                       int64_t weight) { total += static_cast<double>(weight); });
  return total;
}

double JoinCount(const Instance& instance) {
  return SubJoinCount(instance, instance.query().all_relations());
}

std::unordered_map<int64_t, double> GroupedJoinSizes(const Instance& instance,
                                                     RelationSet rels,
                                                     AttributeSet group_by) {
  const JoinQuery& query = instance.query();
  DPJOIN_CHECK(group_by.IsSubsetOf(query.UnionAttributes(rels)),
               "group-by attributes outside the sub-join");
  const std::vector<int> group_attrs = group_by.Elements();
  std::unordered_map<int64_t, double> groups;
  EnumerateSubJoin(
      instance, rels,
      [&](const std::vector<int64_t>&, const std::vector<int64_t>& assignment,
          int64_t weight) {
        int64_t key = 0;
        for (int attr : group_attrs) {
          key = key * query.domain_size(attr) + assignment[attr];
        }
        groups[key] += static_cast<double>(weight);
      });
  return groups;
}

double QAggregate(const Instance& instance, RelationSet rels, AttributeSet y) {
  if (rels.Empty()) return 1.0;  // empty product over the empty tuple
  double best = 0.0;
  for (const auto& [key, size] : GroupedJoinSizes(instance, rels, y)) {
    (void)key;
    best = std::max(best, size);
  }
  return best;
}

double BoundaryQuery(const Instance& instance, RelationSet rels) {
  return QAggregate(instance, rels, instance.query().Boundary(rels));
}

}  // namespace dpjoin
