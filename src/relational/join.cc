#include "relational/join.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/mixed_radix.h"
#include "common/thread_pool.h"

namespace dpjoin {

namespace {

// Per-depth state for the backtracking join.
struct LevelIndex {
  const Relation* relation = nullptr;
  AttributeSet bound;               // attrs of this relation already assigned
  std::vector<int> new_attrs;       // attrs this level binds (ascending)
  // projected-code on `bound` → tuples (code, freq) matching it.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> index;
};

// Encodes the current assignment restricted to `rel`'s attributes ∩ bound,
// using the same digit order/radices as Relation::ProjectCode.
int64_t KeyFromAssignment(const Relation& rel, AttributeSet bound,
                          const std::vector<int64_t>& assignment) {
  int64_t key = 0;
  const auto& order = rel.attribute_order();
  for (size_t i = 0; i < order.size(); ++i) {
    if (bound.Contains(order[i])) {
      key = key * rel.tuple_space().radix(i) + assignment[order[i]];
    }
  }
  return key;
}

void Recurse(const std::vector<LevelIndex>& levels, size_t depth,
             std::vector<int64_t>& rel_codes, std::vector<int64_t>& assignment,
             int64_t weight, const JoinVisitor& visit) {
  if (depth == levels.size()) {
    visit(rel_codes, assignment, weight);
    return;
  }
  const LevelIndex& level = levels[depth];
  const Relation& rel = *level.relation;
  const int64_t key = KeyFromAssignment(rel, level.bound, assignment);
  auto it = level.index.find(key);
  if (it == level.index.end()) return;
  for (const auto& [code, freq] : it->second) {
    rel_codes[depth] = code;
    for (int attr : level.new_attrs) {
      const int digit = rel.DigitOf(attr);
      assignment[attr] = rel.tuple_space().Digit(code, static_cast<size_t>(digit));
    }
    Recurse(levels, depth + 1, rel_codes, assignment, weight * freq, visit);
    for (int attr : level.new_attrs) assignment[attr] = -1;
  }
}

// Evaluation plan shared by the serial and parallel entry points: the greedy
// relation order, per-depth hash indexes, and the depth→visitor-slot remap.
struct JoinPlan {
  std::vector<int> members;        // enumerated relations, ascending
  std::vector<int> order;          // evaluation order (greedy connectivity)
  std::vector<LevelIndex> levels;  // one per evaluation depth
  std::vector<size_t> slot_of;     // depth → position within `members`
  size_t num_attributes = 0;
};

JoinPlan BuildJoinPlan(const Instance& instance, RelationSet rels) {
  const JoinQuery& query = instance.query();
  JoinPlan plan;
  plan.num_attributes = static_cast<size_t>(query.num_attributes());
  plan.members = rels.Elements();
  if (plan.members.empty()) return plan;

  // Order relations to maximize shared attributes with the prefix (greedy
  // connectivity), which keeps intermediate branching small.
  {
    std::vector<int> remaining = plan.members;
    AttributeSet covered;
    while (!remaining.empty()) {
      size_t best = 0;
      int best_overlap = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const int overlap =
            query.attributes_of(remaining[i]).Intersect(covered).Count();
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best = i;
        }
      }
      plan.order.push_back(remaining[best]);
      covered = covered.Union(query.attributes_of(remaining[best]));
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
    }
  }

  plan.levels.resize(plan.order.size());
  AttributeSet bound_so_far;
  for (size_t d = 0; d < plan.order.size(); ++d) {
    const Relation& rel = instance.relation(plan.order[d]);
    LevelIndex& level = plan.levels[d];
    level.relation = &rel;
    level.bound = rel.attributes().Intersect(bound_so_far);
    for (int attr : rel.attributes().Minus(level.bound).Elements()) {
      level.new_attrs.push_back(attr);
    }
    // dpjoin-audit: allow(determinism) — bucket collection only; every
    // bucket is sorted right below, so the plan (and the enumeration and
    // floating-point accumulation order it induces) is independent of
    // hash-map layout.
    for (const auto& [code, freq] : rel.entries()) {
      level.index[rel.ProjectCode(code, level.bound)].emplace_back(code, freq);
    }
    for (auto& [key, bucket] : level.index) {
      (void)key;
      std::sort(bucket.begin(), bucket.end());
    }
    bound_so_far = bound_so_far.Union(rel.attributes());
  }

  // Visitor contract: rel_codes in ascending relation-index order, so remap
  // from the greedy evaluation order.
  plan.slot_of.resize(plan.order.size());
  for (size_t d = 0; d < plan.order.size(); ++d) {
    const auto pos =
        std::find(plan.members.begin(), plan.members.end(), plan.order[d]);
    plan.slot_of[d] = static_cast<size_t>(pos - plan.members.begin());
  }
  return plan;
}

// The depth-0 level is unconstrained (its `bound` is empty), so its index
// has a single bucket holding every tuple of the first relation. Returns
// those tuples sorted by code — a deterministic shard order for the
// parallel entry points, independent of hash-map iteration order.
std::vector<std::pair<int64_t, int64_t>> SortedRootEntries(
    const JoinPlan& plan) {
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (const auto& [key, bucket] : plan.levels[0].index) {
    DPJOIN_CHECK_EQ(key, 0);  // bound is empty at depth 0
    entries.insert(entries.end(), bucket.begin(), bucket.end());
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

// Enumerates the sub-joins rooted at root entries [lo, hi) (indices into
// `roots`), with this block's own scratch state.
void EnumerateFromRoots(const JoinPlan& plan,
                        const std::vector<std::pair<int64_t, int64_t>>& roots,
                        int64_t lo, int64_t hi, const JoinVisitor& visit) {
  const Relation& root_rel = *plan.levels[0].relation;
  std::vector<int64_t> assignment(plan.num_attributes, -1);
  std::vector<int64_t> codes_by_depth(plan.order.size());
  std::vector<int64_t> codes_by_member(plan.order.size());
  const JoinVisitor remap = [&](const std::vector<int64_t>& by_depth,
                                const std::vector<int64_t>& assign,
                                int64_t weight) {
    for (size_t d = 0; d < by_depth.size(); ++d) {
      codes_by_member[plan.slot_of[d]] = by_depth[d];
    }
    visit(codes_by_member, assign, weight);
  };
  for (int64_t r = lo; r < hi; ++r) {
    const auto& [code, freq] = roots[static_cast<size_t>(r)];
    codes_by_depth[0] = code;
    for (int attr : plan.levels[0].new_attrs) {
      const int digit = root_rel.DigitOf(attr);
      assignment[attr] =
          root_rel.tuple_space().Digit(code, static_cast<size_t>(digit));
    }
    Recurse(plan.levels, 1, codes_by_depth, assignment, freq, remap);
    for (int attr : plan.levels[0].new_attrs) assignment[attr] = -1;
  }
}

// Root entries per parallel block. Each root can expand into a large
// sub-tree, so blocks are small by default; determinism never depends on
// the grain (join weights are integers, summed exactly in double). The
// grain is runtime-tunable: ExecutionContext::SetJoinRootGrain /
// DPJOIN_GRAIN_JOIN_ROOT.
int64_t RootGrain() { return ExecutionContext::JoinRootGrain(); }

// Appends `value` as the next mixed-radix digit of a group key. CHECKs
// against int64 wraparound, which would silently alias distinct groups on
// wide group-by sets.
int64_t AppendGroupDigit(int64_t key, int64_t domain_size, int64_t value) {
  DPJOIN_CHECK(key <= (INT64_MAX - value) / domain_size,
               "group-by key space overflows int64; use fewer or narrower "
               "group-by attributes");
  return key * domain_size + value;
}

}  // namespace

void EnumerateSubJoin(const Instance& instance, RelationSet rels,
                      const JoinVisitor& visit) {
  const JoinPlan plan = BuildJoinPlan(instance, rels);
  if (plan.members.empty()) {
    std::vector<int64_t> no_codes;
    std::vector<int64_t> assignment(plan.num_attributes, -1);
    visit(no_codes, assignment, 1);
    return;
  }
  std::vector<int64_t> assignment(plan.num_attributes, -1);
  std::vector<int64_t> codes_by_depth(plan.order.size());
  std::vector<int64_t> codes_by_member(plan.order.size());
  JoinVisitor remap = [&](const std::vector<int64_t>& by_depth,
                          const std::vector<int64_t>& assign, int64_t weight) {
    for (size_t d = 0; d < by_depth.size(); ++d) {
      codes_by_member[plan.slot_of[d]] = by_depth[d];
    }
    visit(codes_by_member, assign, weight);
  };
  Recurse(plan.levels, 0, codes_by_depth, assignment, 1, remap);
}

void EnumerateSubJoinSharded(const Instance& instance, RelationSet rels,
                             const std::function<void(int64_t)>& prepare,
                             const ShardedJoinVisitor& visit,
                             int num_threads) {
  const JoinPlan plan = BuildJoinPlan(instance, rels);
  if (plan.members.empty()) {
    prepare(1);
    std::vector<int64_t> no_codes;
    std::vector<int64_t> assignment(plan.num_attributes, -1);
    visit(0, no_codes, assignment, 1);
    return;
  }
  const std::vector<std::pair<int64_t, int64_t>> roots =
      SortedRootEntries(plan);
  // Callers keep O(num_blocks) state (e.g. a per-block answer vector), so
  // the block count is capped: the grain grows on instances with many root
  // tuples. Still a function of the instance alone — never the thread
  // count — so the determinism contract holds.
  constexpr int64_t kMaxShardBlocks = 4096;
  const int64_t num_roots = static_cast<int64_t>(roots.size());
  const int64_t grain =
      std::max(RootGrain(), (num_roots + kMaxShardBlocks - 1) / kMaxShardBlocks);
  prepare(NumBlocks(0, num_roots, grain));
  ParallelForBlocks(
      0, num_roots, grain,
      [&](int64_t block, int64_t lo, int64_t hi) {
        EnumerateFromRoots(plan, roots, lo, hi,
                           [&](const std::vector<int64_t>& rel_codes,
                               const std::vector<int64_t>& assignment,
                               int64_t weight) {
                             visit(block, rel_codes, assignment, weight);
                           });
      },
      num_threads);
}

double SubJoinCount(const Instance& instance, RelationSet rels) {
  double total = 0.0;
  EnumerateSubJoin(instance, rels,
                   [&](const std::vector<int64_t>&, const std::vector<int64_t>&,
                       int64_t weight) { total += static_cast<double>(weight); });
  return total;
}

double JoinCount(const Instance& instance) {
  return SubJoinCount(instance, instance.query().all_relations());
}

double ParallelSubJoinCount(const Instance& instance, RelationSet rels,
                            int num_threads) {
  if (num_threads <= 0) num_threads = ExecutionContext::threads();
  // One thread: skip the root sort and per-block accumulators entirely —
  // the serial path produces the identical (exact integer) sum.
  if (num_threads == 1) return SubJoinCount(instance, rels);
  const JoinPlan plan = BuildJoinPlan(instance, rels);
  if (plan.members.empty()) return 1.0;  // empty join: one empty combination
  const std::vector<std::pair<int64_t, int64_t>> roots =
      SortedRootEntries(plan);
  // Join weights are products/sums of int64 frequencies accumulated in
  // double (exact below 2^53), so any block merge order is bit-identical to
  // the serial sum.
  return ParallelSum(
      0, static_cast<int64_t>(roots.size()), RootGrain(),
      [&](int64_t lo, int64_t hi) {
        double block_total = 0.0;
        EnumerateFromRoots(plan, roots, lo, hi,
                           [&](const std::vector<int64_t>&,
                               const std::vector<int64_t>&, int64_t weight) {
                             block_total += static_cast<double>(weight);
                           });
        return block_total;
      },
      num_threads);
}

double ParallelJoinCount(const Instance& instance, int num_threads) {
  return ParallelSubJoinCount(instance, instance.query().all_relations(),
                              num_threads);
}

std::unordered_map<int64_t, double> GroupedJoinSizes(const Instance& instance,
                                                     RelationSet rels,
                                                     AttributeSet group_by) {
  const JoinQuery& query = instance.query();
  DPJOIN_CHECK(group_by.IsSubsetOf(query.UnionAttributes(rels)),
               "group-by attributes outside the sub-join");
  const std::vector<int> group_attrs = group_by.Elements();
  std::unordered_map<int64_t, double> groups;
  EnumerateSubJoin(
      instance, rels,
      [&](const std::vector<int64_t>&, const std::vector<int64_t>& assignment,
          int64_t weight) {
        int64_t key = 0;
        for (int attr : group_attrs) {
          key = AppendGroupDigit(key, query.domain_size(attr),
                                 assignment[attr]);
        }
        groups[key] += static_cast<double>(weight);
      });
  return groups;
}

std::unordered_map<int64_t, double> ParallelGroupedJoinSizes(
    const Instance& instance, RelationSet rels, AttributeSet group_by,
    int num_threads) {
  if (num_threads <= 0) num_threads = ExecutionContext::threads();
  // One thread: the serial path builds the same groups (exact integer
  // masses) without the root sort, per-block maps, or merge pass.
  if (num_threads == 1) return GroupedJoinSizes(instance, rels, group_by);
  const JoinQuery& query = instance.query();
  DPJOIN_CHECK(group_by.IsSubsetOf(query.UnionAttributes(rels)),
               "group-by attributes outside the sub-join");
  const JoinPlan plan = BuildJoinPlan(instance, rels);
  if (plan.members.empty()) return {{0, 1.0}};  // the single empty combination
  const std::vector<int> group_attrs = group_by.Elements();
  const std::vector<std::pair<int64_t, int64_t>> roots =
      SortedRootEntries(plan);
  // Read once: a concurrent SetJoinRootGrain must not desync the accumulator
  // sizing from the block decomposition.
  const int64_t grain = RootGrain();
  const int64_t blocks =
      NumBlocks(0, static_cast<int64_t>(roots.size()), grain);
  std::vector<std::unordered_map<int64_t, double>> per_block(
      static_cast<size_t>(blocks));
  ParallelForBlocks(
      0, static_cast<int64_t>(roots.size()), grain,
      [&](int64_t block, int64_t lo, int64_t hi) {
        std::unordered_map<int64_t, double>& groups =
            per_block[static_cast<size_t>(block)];
        EnumerateFromRoots(
            plan, roots, lo, hi,
            [&](const std::vector<int64_t>&,
                const std::vector<int64_t>& assignment, int64_t weight) {
              int64_t key = 0;
              for (int attr : group_attrs) {
                key = AppendGroupDigit(key, query.domain_size(attr),
                                       assignment[attr]);
              }
              groups[key] += static_cast<double>(weight);
            });
      },
      num_threads);
  // Merge in block order. Group masses are integer-valued sums, exact in
  // double, so the merged map matches the serial result bit-for-bit.
  std::unordered_map<int64_t, double> groups;
  for (const auto& block_groups : per_block) {
    for (const auto& [key, mass] : block_groups) groups[key] += mass;
  }
  return groups;
}

double QAggregate(const Instance& instance, RelationSet rels, AttributeSet y) {
  if (rels.Empty()) return 1.0;  // empty product over the empty tuple
  double best = 0.0;
  // dpjoin-audit: allow(determinism) — max over the group sizes; max is
  // commutative and draws nothing, so iteration order is irrelevant.
  for (const auto& [key, size] : ParallelGroupedJoinSizes(instance, rels, y)) {
    (void)key;
    best = std::max(best, size);
  }
  return best;
}

double BoundaryQuery(const Instance& instance, RelationSet rels) {
  return QAggregate(instance, rels, instance.query().Boundary(rels));
}

}  // namespace dpjoin
