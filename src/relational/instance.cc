#include "relational/instance.h"

namespace dpjoin {

Instance::Instance(std::shared_ptr<const JoinQuery> query)
    : query_(std::move(query)) {
  DPJOIN_CHECK(query_ != nullptr, "Instance needs a query");
  relations_.reserve(static_cast<size_t>(query_->num_relations()));
  for (int r = 0; r < query_->num_relations(); ++r) {
    relations_.emplace_back(*query_, r);
  }
}

int64_t Instance::InputSize() const {
  int64_t n = 0;
  for (const auto& rel : relations_) n += rel.TotalFrequency();
  return n;
}

Status Instance::AddTuple(int rel, const std::vector<int64_t>& tuple,
                          int64_t delta) {
  if (rel < 0 || rel >= num_relations()) {
    return Status::OutOfRange("relation index out of range");
  }
  return relations_[static_cast<size_t>(rel)].AddFrequency(tuple, delta);
}

Result<Instance> Instance::Neighbor(int rel, const std::vector<int64_t>& tuple,
                                    int64_t delta) const {
  if (delta != 1 && delta != -1) {
    return Status::InvalidArgument("neighbors differ by exactly one tuple");
  }
  Instance copy = *this;
  DPJOIN_RETURN_NOT_OK(copy.AddTuple(rel, tuple, delta));
  return copy;
}

Instance Instance::RandomNeighbor(Rng& rng) const {
  Instance copy = *this;
  const int rel = static_cast<int>(rng.UniformIndex(
      static_cast<size_t>(num_relations())));
  Relation& r = copy.mutable_relation(rel);
  const bool remove = !r.entries().empty() && rng.Bernoulli(0.5);
  if (remove) {
    // Remove one unit from a random existing tuple.
    size_t target = rng.UniformIndex(r.entries().size());
    for (const auto& [code, f] : r.entries()) {
      (void)f;
      if (target-- == 0) {
        r.AddFrequencyByCode(code, -1);
        break;
      }
    }
  } else {
    const int64_t code = static_cast<int64_t>(
        rng.UniformIndex(static_cast<size_t>(r.tuple_space().size())));
    r.AddFrequencyByCode(code, +1);
  }
  return copy;
}

}  // namespace dpjoin
