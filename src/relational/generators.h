// Synthetic instance generators for tests, examples, and benches.
//
// Paper-specific hard-instance constructions (Figures 1–3, the Theorem 3.5 /
// 1.6 reductions) live in src/lowerbound; these are the generic workload
// families.

#ifndef DPJOIN_RELATIONAL_GENERATORS_H_
#define DPJOIN_RELATIONAL_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "relational/instance.h"

namespace dpjoin {

/// Adds `num_tuples` units of frequency at uniformly random domain tuples of
/// every relation (with replacement, so frequencies > 1 occur).
Instance MakeUniformInstance(const JoinQuery& query, int64_t tuples_per_relation,
                             Rng& rng);

/// Two-table instance (query must be R1(A,B) ⋈ R2(B,C)) whose join-value
/// degrees follow a Zipf(s) law: join value b has degree ∝ 1/(b+1)^s in both
/// relations, scaled so each relation holds ~`tuples_per_relation` tuples.
/// Neighbor tuples (A / C partners) are chosen uniformly at random.
Instance MakeZipfTwoTableInstance(const JoinQuery& query,
                                  int64_t tuples_per_relation, double zipf_s,
                                  Rng& rng);

/// Instance where every relation R_i is the all-ones function over its
/// domain (used by worst-case bound experiments; Appendix B.3 case (1)).
Instance MakeAllOnesInstance(const JoinQuery& query);

/// Path-join instance (query from MakePathQuery) where each shared attribute
/// value's degree is Zipf-distributed, producing skewed multi-table joins.
Instance MakeZipfPathInstance(const JoinQuery& query,
                              int64_t tuples_per_relation, double zipf_s,
                              Rng& rng);

/// Zipf(s)-skewed instance over ANY join query: in each relation, the value
/// of its first attribute (ascending attribute order) gets degree ∝
/// 1/(v+1)^s via ZipfCounts (totaling ~tuples_per_relation), and every
/// remaining coordinate is drawn uniformly. Generation is strictly serial
/// and consumes `rng` in a fixed order, so a fixed seed reproduces the
/// instance bit-for-bit regardless of thread count — the property the
/// engine's `generated:zipf(...)` data sources rely on.
Instance MakeZipfInstance(const JoinQuery& query, int64_t tuples_per_relation,
                          double zipf_s, Rng& rng);

/// Samples Zipf weights w_v ∝ 1/(v+1)^s over [0, support), normalized to sum
/// ~total (each weight ≥ 0, rounded; at least 1 for v = 0 when total > 0).
std::vector<int64_t> ZipfCounts(int64_t support, int64_t total, double s);

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_GENERATORS_H_
