// CSV import/export for instances.
//
// Format: one file per instance; rows are `relation_index,v_1,...,v_k,freq`
// where values follow the relation's ascending attribute order. A leading
// header row `# dpjoin-instance v1` guards against loading foreign files.

#ifndef DPJOIN_RELATIONAL_IO_H_
#define DPJOIN_RELATIONAL_IO_H_

#include <iosfwd>

#include "common/result.h"
#include "relational/instance.h"

namespace dpjoin {

/// Writes the instance's non-zero tuples as CSV rows.
Status WriteInstanceCsv(const Instance& instance, std::ostream& os);

/// Reads an instance for `query` from CSV produced by WriteInstanceCsv.
/// Validates the magic header, per-row arity, domain ranges, and frequency
/// non-negativity; duplicate rows accumulate.
Result<Instance> ReadInstanceCsv(std::shared_ptr<const JoinQuery> query,
                                 std::istream& is);

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_IO_H_
