#include "relational/join_query.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dpjoin {

Result<JoinQuery> JoinQuery::Create(
    std::vector<AttributeSpec> attributes,
    std::vector<std::vector<std::string>> edges) {
  if (attributes.empty()) {
    return Status::InvalidArgument("join query needs at least one attribute");
  }
  if (edges.empty()) {
    return Status::InvalidArgument("join query needs at least one relation");
  }
  if (attributes.size() > AttributeSet::kCapacity) {
    return Status::InvalidArgument("too many attributes (max 64)");
  }
  if (edges.size() > RelationSet::kCapacity) {
    return Status::InvalidArgument("too many relations (max 64)");
  }

  std::unordered_map<std::string, int> index_of;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (attributes[i].domain_size <= 0) {
      return Status::InvalidArgument("attribute '" + attributes[i].name +
                                     "' needs a positive domain size");
    }
    if (!index_of.emplace(attributes[i].name, static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attributes[i].name + "'");
    }
  }

  JoinQuery q;
  q.attributes_ = std::move(attributes);

  std::unordered_set<uint64_t> seen_edges;
  for (const auto& edge : edges) {
    if (edge.empty()) {
      return Status::InvalidArgument("relation with empty attribute list");
    }
    AttributeSet attrs;
    for (const auto& name : edge) {
      auto it = index_of.find(name);
      if (it == index_of.end()) {
        return Status::InvalidArgument("relation references unknown attribute '" +
                                       name + "'");
      }
      if (attrs.Contains(it->second)) {
        return Status::InvalidArgument("relation lists attribute '" + name +
                                       "' twice");
      }
      attrs.Insert(it->second);
    }
    if (!seen_edges.insert(attrs.bits()).second) {
      return Status::InvalidArgument(
          "duplicate hyperedge " + attrs.ToString() +
          " (identical relation schemas are not supported)");
    }
    q.edges_.push_back(attrs);
  }

  // Every attribute must appear in some relation.
  AttributeSet used;
  for (AttributeSet e : q.edges_) used = used.Union(e);
  if (used != AttributeSet::FirstN(q.num_attributes())) {
    return Status::InvalidArgument("some attribute is used by no relation");
  }

  for (AttributeSet e : q.edges_) {
    std::vector<int> order = e.Elements();
    std::vector<int64_t> radices;
    radices.reserve(order.size());
    for (int a : order) radices.push_back(q.attributes_[a].domain_size);
    q.edge_orders_.push_back(std::move(order));
    q.tuple_spaces_.emplace_back(std::move(radices));
  }

  q.atoms_.resize(q.attributes_.size());
  for (int a = 0; a < q.num_attributes(); ++a) {
    RelationSet atom;
    for (int r = 0; r < q.num_relations(); ++r) {
      if (q.edges_[r].Contains(a)) atom.Insert(r);
    }
    q.atoms_[a] = atom;
  }
  return q;
}

Result<int> JoinQuery::AttributeIndex(const std::string& name) const {
  for (int a = 0; a < num_attributes(); ++a) {
    if (attributes_[a].name == name) return a;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

double JoinQuery::ReleaseDomainSize() const {
  double size = 1.0;
  for (int r = 0; r < num_relations(); ++r) {
    size *= static_cast<double>(relation_domain_size(r));
  }
  return size;
}

AttributeSet JoinQuery::UnionAttributes(RelationSet rels) const {
  AttributeSet out;
  for (int r : rels.Elements()) out = out.Union(edges_[r]);
  return out;
}

AttributeSet JoinQuery::IntersectAttributes(RelationSet rels) const {
  if (rels.Empty()) return all_attributes();
  AttributeSet out = all_attributes();
  for (int r : rels.Elements()) out = out.Intersect(edges_[r]);
  return out;
}

AttributeSet JoinQuery::Boundary(RelationSet rels) const {
  const AttributeSet inside = UnionAttributes(rels);
  const AttributeSet outside = UnionAttributes(all_relations().Minus(rels));
  return inside.Intersect(outside);
}

std::vector<RelationSet> JoinQuery::ConnectedComponents(
    RelationSet rels, AttributeSet removed) const {
  std::vector<int> members = rels.Elements();
  std::vector<RelationSet> components;
  RelationSet visited;
  for (int seed : members) {
    if (visited.Contains(seed)) continue;
    // BFS from seed over the "shares a surviving attribute" adjacency.
    RelationSet component = RelationSet::Of(seed);
    std::vector<int> frontier = {seed};
    visited.Insert(seed);
    while (!frontier.empty()) {
      const int cur = frontier.back();
      frontier.pop_back();
      const AttributeSet cur_attrs = edges_[cur].Minus(removed);
      for (int other : members) {
        if (visited.Contains(other)) continue;
        if (cur_attrs.Intersects(edges_[other].Minus(removed))) {
          visited.Insert(other);
          component.Insert(other);
          frontier.push_back(other);
        }
      }
    }
    components.push_back(component);
  }
  return components;
}

bool JoinQuery::IsConnected(RelationSet rels, AttributeSet removed) const {
  if (rels.Count() <= 1) return true;
  return ConnectedComponents(rels, removed).size() == 1;
}

bool JoinQuery::IsHierarchical() const {
  for (int x = 0; x < num_attributes(); ++x) {
    for (int y = x + 1; y < num_attributes(); ++y) {
      const RelationSet ax = atoms_[x];
      const RelationSet ay = atoms_[y];
      if (ax.IsSubsetOf(ay) || ay.IsSubsetOf(ax) || !ax.Intersects(ay)) {
        continue;
      }
      return false;
    }
  }
  return true;
}

namespace {

// Solves the k×k system M·w = rhs by Gaussian elimination with partial
// pivoting. Returns false when (numerically) singular.
bool SolveLinearSystem(std::vector<std::vector<double>> m,
                       std::vector<double> rhs, std::vector<double>* out) {
  const size_t k = rhs.size();
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < k; ++row) {
      if (std::abs(m[row][col]) > std::abs(m[pivot][col])) pivot = row;
    }
    if (std::abs(m[pivot][col]) < 1e-12) return false;
    std::swap(m[col], m[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    for (size_t row = 0; row < k; ++row) {
      if (row == col) continue;
      const double f = m[row][col] / m[col][col];
      if (f == 0.0) continue;
      for (size_t c2 = col; c2 < k; ++c2) m[row][c2] -= f * m[col][c2];
      rhs[row] -= f * rhs[col];
    }
  }
  out->resize(k);
  for (size_t i = 0; i < k; ++i) (*out)[i] = rhs[i] / m[i][i];
  return true;
}

}  // namespace

double JoinQuery::FractionalEdgeCoverNumber() const {
  // LP: minimize Σ W_i  s.t.  Σ_{i : x ∈ x_i} W_i ≥ 1 ∀x,  0 ≤ W_i ≤ 1.
  // The optimum is attained at a vertex of the feasible polytope; with m
  // variables, a vertex is the solution of m linearly independent tight
  // constraints drawn from {cover rows, W_i = 0, W_i = 1}. Queries are
  // constant-size, so enumerating all m-subsets of constraints is cheap.
  const int m = num_relations();
  const int na = num_attributes();
  // Constraint rows: [0, na) cover rows (≥ 1); [na, na+m) lower bounds
  // (W_i ≥ 0); [na+m, na+2m) upper bounds (W_i ≤ 1, i.e. -W_i ≥ -1).
  const int total = na + 2 * m;
  auto row_of = [&](int c, std::vector<double>* row, double* rhs) {
    row->assign(m, 0.0);
    if (c < na) {
      for (int r = 0; r < m; ++r) {
        if (edges_[r].Contains(c)) (*row)[r] = 1.0;
      }
      *rhs = 1.0;
    } else if (c < na + m) {
      (*row)[c - na] = 1.0;
      *rhs = 0.0;
    } else {
      (*row)[c - na - m] = 1.0;
      *rhs = 1.0;
    }
  };
  auto feasible = [&](const std::vector<double>& w) {
    for (int r = 0; r < m; ++r) {
      if (w[r] < -1e-9 || w[r] > 1.0 + 1e-9) return false;
    }
    for (int a = 0; a < na; ++a) {
      double cover = 0.0;
      for (int r = 0; r < m; ++r) {
        if (edges_[r].Contains(a)) cover += w[r];
      }
      if (cover < 1.0 - 1e-9) return false;
    }
    return true;
  };

  double best = static_cast<double>(m);  // W ≡ 1 is always feasible.
  std::vector<int> combo(m);
  // Enumerate m-subsets of constraint indices via a simple odometer.
  std::vector<int> idx(m);
  for (int i = 0; i < m; ++i) idx[i] = i;
  while (true) {
    std::vector<std::vector<double>> mat(m);
    std::vector<double> rhs(m);
    for (int i = 0; i < m; ++i) {
      double r = 0.0;
      row_of(idx[i], &mat[i], &r);
      rhs[i] = r;
    }
    std::vector<double> w;
    if (SolveLinearSystem(mat, rhs, &w) && feasible(w)) {
      double obj = 0.0;
      for (double v : w) obj += v;
      best = std::min(best, obj);
    }
    // Next combination.
    int pos = m - 1;
    while (pos >= 0 && idx[pos] == total - m + pos) --pos;
    if (pos < 0) break;
    ++idx[pos];
    for (int i = pos + 1; i < m; ++i) idx[i] = idx[i - 1] + 1;
  }
  return best;
}

std::string JoinQuery::ToString() const {
  std::ostringstream oss;
  oss << "H(";
  for (int r = 0; r < num_relations(); ++r) {
    if (r > 0) oss << " ⋈ ";
    oss << "R" << (r + 1) << "(";
    const auto& order = edge_orders_[r];
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0) oss << ",";
      oss << attributes_[order[i]].name;
    }
    oss << ")";
  }
  oss << ")";
  return oss.str();
}

JoinQuery MakeTwoTableQuery(int64_t dom_a, int64_t dom_b, int64_t dom_c) {
  auto q = JoinQuery::Create(
      {{"A", dom_a}, {"B", dom_b}, {"C", dom_c}},
      {{"A", "B"}, {"B", "C"}});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

JoinQuery MakePathQuery(int num_relations, int64_t domain_size) {
  DPJOIN_CHECK_GE(num_relations, 1);
  std::vector<AttributeSpec> attrs;
  std::vector<std::vector<std::string>> edges;
  for (int i = 0; i <= num_relations; ++i) {
    attrs.push_back({"X" + std::to_string(i), domain_size});
  }
  for (int i = 0; i < num_relations; ++i) {
    edges.push_back({"X" + std::to_string(i), "X" + std::to_string(i + 1)});
  }
  auto q = JoinQuery::Create(std::move(attrs), std::move(edges));
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

JoinQuery MakeStarQuery(int num_relations, int64_t domain_size) {
  DPJOIN_CHECK_GE(num_relations, 1);
  std::vector<AttributeSpec> attrs = {{"H", domain_size}};
  std::vector<std::vector<std::string>> edges;
  for (int i = 0; i < num_relations; ++i) {
    attrs.push_back({"S" + std::to_string(i), domain_size});
    edges.push_back({"H", "S" + std::to_string(i)});
  }
  auto q = JoinQuery::Create(std::move(attrs), std::move(edges));
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

}  // namespace dpjoin
