// Instance I = (R_1, ..., R_m) over a join query (paper §1.1), plus the
// neighboring-instance relation of Definition 1.1.

#ifndef DPJOIN_RELATIONAL_INSTANCE_H_
#define DPJOIN_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relational/join_query.h"
#include "relational/relation.h"

namespace dpjoin {

/// A database instance: one Relation per hyperedge of the query. The query
/// is shared (immutable) so instances are cheap to copy for neighbor
/// experiments.
class Instance {
 public:
  explicit Instance(std::shared_ptr<const JoinQuery> query);

  /// Convenience: copies the query into a shared holder.
  static Instance Make(const JoinQuery& query) {
    return Instance(std::make_shared<JoinQuery>(query));
  }

  const JoinQuery& query() const { return *query_; }
  std::shared_ptr<const JoinQuery> query_ptr() const { return query_; }

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const Relation& relation(int i) const { return relations_[i]; }
  Relation& mutable_relation(int i) { return relations_[i]; }

  /// Input size n = Σ_i Σ_t R_i(t).
  int64_t InputSize() const;

  /// Adds `delta` (±) to R_rel(tuple); Status on arity/domain errors.
  Status AddTuple(int rel, const std::vector<int64_t>& tuple, int64_t delta);

  /// Returns a copy of this instance with R_rel(tuple) changed by ±1 — a
  /// neighboring instance per Definition 1.1.
  Result<Instance> Neighbor(int rel, const std::vector<int64_t>& tuple,
                            int64_t delta) const;

  /// Returns a uniformly random neighbor: picks a relation, then either
  /// removes one unit of frequency from a random existing tuple or adds one
  /// unit to a random domain tuple.
  Instance RandomNeighbor(Rng& rng) const;

 private:
  std::shared_ptr<const JoinQuery> query_;
  std::vector<Relation> relations_;
};

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_INSTANCE_H_
