#include "relational/generators.h"

#include <cmath>

#include "common/check.h"

namespace dpjoin {

std::vector<int64_t> ZipfCounts(int64_t support, int64_t total, double s) {
  DPJOIN_CHECK_GT(support, 0);
  DPJOIN_CHECK_GE(total, 0);
  std::vector<double> weights(static_cast<size_t>(support));
  double z = 0.0;
  for (int64_t v = 0; v < support; ++v) {
    weights[static_cast<size_t>(v)] =
        1.0 / std::pow(static_cast<double>(v + 1), s);
    z += weights[static_cast<size_t>(v)];
  }
  std::vector<int64_t> counts(static_cast<size_t>(support));
  int64_t assigned = 0;
  for (int64_t v = 0; v < support; ++v) {
    counts[static_cast<size_t>(v)] = static_cast<int64_t>(
        std::floor(static_cast<double>(total) * weights[static_cast<size_t>(v)] / z));
    assigned += counts[static_cast<size_t>(v)];
  }
  // Distribute the rounding remainder to the head (largest weights first).
  int64_t v = 0;
  while (assigned < total) {
    ++counts[static_cast<size_t>(v % support)];
    ++assigned;
    ++v;
  }
  return counts;
}

Instance MakeUniformInstance(const JoinQuery& query,
                             int64_t tuples_per_relation, Rng& rng) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    for (int64_t t = 0; t < tuples_per_relation; ++t) {
      const int64_t code = static_cast<int64_t>(
          rng.UniformIndex(static_cast<size_t>(rel.tuple_space().size())));
      rel.AddFrequencyByCode(code, 1);
    }
  }
  return instance;
}

Instance MakeZipfTwoTableInstance(const JoinQuery& query,
                                  int64_t tuples_per_relation, double zipf_s,
                                  Rng& rng) {
  DPJOIN_CHECK_EQ(query.num_relations(), 2);
  Instance instance = Instance::Make(query);
  const int attr_b = query.attributes_of(0).Intersect(query.attributes_of(1))
                         .First();
  const int64_t dom_b = query.domain_size(attr_b);
  const std::vector<int64_t> degrees =
      ZipfCounts(dom_b, tuples_per_relation, zipf_s);
  for (int side = 0; side < 2; ++side) {
    Relation& rel = instance.mutable_relation(side);
    const int b_digit = rel.DigitOf(attr_b);
    const int other_attr = rel.attributes().Minus(AttributeSet::Of(attr_b))
                               .First();
    const int other_digit = rel.DigitOf(other_attr);
    const int64_t dom_other = query.domain_size(other_attr);
    std::vector<int64_t> tuple(2);
    for (int64_t b = 0; b < dom_b; ++b) {
      for (int64_t d = 0; d < degrees[static_cast<size_t>(b)]; ++d) {
        tuple[static_cast<size_t>(b_digit)] = b;
        tuple[static_cast<size_t>(other_digit)] = rng.UniformInt(0, dom_other - 1);
        DPJOIN_CHECK(rel.AddFrequency(tuple, 1).ok());
      }
    }
  }
  return instance;
}

Instance MakeAllOnesInstance(const JoinQuery& query) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    for (int64_t code = 0; code < rel.tuple_space().size(); ++code) {
      rel.SetFrequencyByCode(code, 1);
    }
  }
  return instance;
}

Instance MakeZipfPathInstance(const JoinQuery& query,
                              int64_t tuples_per_relation, double zipf_s,
                              Rng& rng) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    DPJOIN_CHECK_EQ(rel.attribute_order().size(), 2u);
    const int left = rel.attribute_order()[0];
    const int right = rel.attribute_order()[1];
    const int64_t dom_left = query.domain_size(left);
    const int64_t dom_right = query.domain_size(right);
    // Zipf degrees on the left endpoint; right endpoints uniform.
    const std::vector<int64_t> degrees =
        ZipfCounts(dom_left, tuples_per_relation, zipf_s);
    std::vector<int64_t> tuple(2);
    for (int64_t v = 0; v < dom_left; ++v) {
      for (int64_t d = 0; d < degrees[static_cast<size_t>(v)]; ++d) {
        tuple[0] = v;
        tuple[1] = rng.UniformInt(0, dom_right - 1);
        DPJOIN_CHECK(rel.AddFrequency(tuple, 1).ok());
      }
    }
  }
  return instance;
}

Instance MakeZipfInstance(const JoinQuery& query, int64_t tuples_per_relation,
                          double zipf_s, Rng& rng) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    const std::vector<int>& order = rel.attribute_order();
    DPJOIN_CHECK(!order.empty(), "relation with no attributes");
    const int head = order[0];
    const std::vector<int64_t> degrees =
        ZipfCounts(query.domain_size(head), tuples_per_relation, zipf_s);
    std::vector<int64_t> tuple(order.size());
    for (int64_t v = 0; v < query.domain_size(head); ++v) {
      for (int64_t d = 0; d < degrees[static_cast<size_t>(v)]; ++d) {
        tuple[0] = v;
        for (size_t a = 1; a < order.size(); ++a) {
          tuple[a] = rng.UniformInt(0, query.domain_size(order[a]) - 1);
        }
        DPJOIN_CHECK(rel.AddFrequency(tuple, 1).ok());
      }
    }
  }
  return instance;
}

}  // namespace dpjoin
