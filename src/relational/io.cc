#include "relational/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace dpjoin {

namespace {
constexpr char kMagic[] = "# dpjoin-instance v1";
}  // namespace

Status WriteInstanceCsv(const Instance& instance, std::ostream& os) {
  os << kMagic << "\n";
  for (int r = 0; r < instance.num_relations(); ++r) {
    const Relation& rel = instance.relation(r);
    const MixedRadix& coder = rel.tuple_space();
    std::vector<int64_t> digits(coder.num_digits());
    for (const auto& [code, freq] : rel.entries()) {
      coder.DecodeInto(code, &digits);
      os << r;
      for (int64_t d : digits) os << "," << d;
      os << "," << freq << "\n";
    }
  }
  if (!os.good()) return Status::Internal("CSV stream write failed");
  return Status::OK();
}

Result<Instance> ReadInstanceCsv(std::shared_ptr<const JoinQuery> query,
                                 std::istream& is) {
  if (query == nullptr) {
    return Status::InvalidArgument("need a query to read an instance");
  }
  std::string line;
  // Tolerate CRLF files: strip one trailing '\r' per line (here and below)
  // so a Windows-written CSV loads instead of failing on "bad number".
  const auto chomp = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  if (!std::getline(is, line)) {
    return Status::InvalidArgument(
        "missing dpjoin-instance header; not an instance CSV");
  }
  chomp(line);
  if (line != kMagic) {
    return Status::InvalidArgument(
        "missing dpjoin-instance header; not an instance CSV");
  }
  Instance instance(query);
  int64_t row_number = 1;
  while (std::getline(is, line)) {
    ++row_number;
    chomp(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<int64_t> fields;
    while (std::getline(row, cell, ',')) {
      try {
        size_t consumed = 0;
        fields.push_back(std::stoll(cell, &consumed));
        if (consumed != cell.size()) {
          return Status::InvalidArgument(
              "row " + std::to_string(row_number) + ": bad number '" + cell +
              "'");
        }
      } catch (const std::exception&) {
        return Status::InvalidArgument("row " + std::to_string(row_number) +
                                       ": bad number '" + cell + "'");
      }
    }
    if (fields.size() < 3) {
      return Status::InvalidArgument("row " + std::to_string(row_number) +
                                     ": too few fields");
    }
    const int rel = static_cast<int>(fields.front());
    if (rel < 0 || rel >= query->num_relations()) {
      return Status::OutOfRange("row " + std::to_string(row_number) +
                                ": relation index out of range");
    }
    const int64_t freq = fields.back();
    const std::vector<int64_t> tuple(fields.begin() + 1, fields.end() - 1);
    const Status added = instance.AddTuple(rel, tuple, freq);
    if (!added.ok()) {
      return Status(added.code(), "row " + std::to_string(row_number) + ": " +
                                      added.message());
    }
  }
  return instance;
}

}  // namespace dpjoin
