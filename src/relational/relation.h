// Annotated relation R_i : D_i → Z≥0  (paper §1.1).
//
// A relation maps each tuple of its domain to a non-negative frequency
// (annotated-relation semantics; a multiset when frequencies are counts).
// Tuples are stored sparsely, keyed by their mixed-radix code within the
// relation's tuple space.

#ifndef DPJOIN_RELATIONAL_RELATION_H_
#define DPJOIN_RELATIONAL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/mixed_radix.h"
#include "common/status.h"
#include "relational/join_query.h"

namespace dpjoin {

/// One table of an instance. Owns its (sparse) frequency function and knows
/// its position in the join query (attribute order + tuple coder).
class Relation {
 public:
  /// Builds an empty relation for position `rel_index` of `query`.
  Relation(const JoinQuery& query, int rel_index);

  int rel_index() const { return rel_index_; }
  AttributeSet attributes() const { return attributes_; }
  const std::vector<int>& attribute_order() const { return attribute_order_; }
  const MixedRadix& tuple_space() const { return coder_; }

  /// Number of distinct tuples with non-zero frequency.
  size_t NumDistinctTuples() const { return freq_.size(); }

  /// Σ_t R(t), the relation's contribution to the input size n.
  int64_t TotalFrequency() const { return total_; }

  /// Frequency of the tuple with the given code (0 when absent).
  int64_t Frequency(int64_t code) const {
    auto it = freq_.find(code);
    return it == freq_.end() ? 0 : it->second;
  }

  /// Frequency of a tuple given as digits in attribute order.
  int64_t FrequencyOf(const std::vector<int64_t>& tuple) const {
    return Frequency(coder_.Encode(tuple));
  }

  /// Sets R(t) = freq (freq ≥ 0; 0 removes the entry).
  Status SetFrequency(const std::vector<int64_t>& tuple, int64_t freq);

  /// Adds `delta` to R(t); the result must stay non-negative.
  Status AddFrequency(const std::vector<int64_t>& tuple, int64_t delta);

  /// Internal code-addressed mutators (range-checked by the coder; negative
  /// results are programmer errors).
  void SetFrequencyByCode(int64_t code, int64_t freq);
  void AddFrequencyByCode(int64_t code, int64_t delta);

  /// Sparse contents: tuple code → frequency (> 0).
  const std::unordered_map<int64_t, int64_t>& entries() const { return freq_; }

  /// Position (digit slot) of attribute `attr` within this relation's tuple
  /// order, or -1 when the relation does not contain it.
  int DigitOf(int attr) const;

  /// Projects a tuple code onto the attribute subset `subset` (must be a
  /// subset of this relation's attributes), producing a code within
  /// `SubsetCoder(subset)`.
  int64_t ProjectCode(int64_t code, AttributeSet subset) const;

  /// Mixed-radix coder for a subset of this relation's attributes (ascending
  /// attribute order).
  MixedRadix SubsetCoder(AttributeSet subset) const;

  /// Degree map over attribute subset y ⊆ x_i:
  /// deg(t_y) = Σ_{t : π_y t = t_y} R(t)   (paper §3.1 / Def. 4.7 case |E|=1).
  /// Keys are codes within SubsetCoder(y).
  std::unordered_map<int64_t, int64_t> DegreeMap(AttributeSet y) const;

  /// Maximum degree over y (0 for an empty relation).
  int64_t MaxDegree(AttributeSet y) const;

 private:
  int rel_index_;
  AttributeSet attributes_;
  std::vector<int> attribute_order_;
  MixedRadix coder_;
  std::unordered_map<int64_t, int64_t> freq_;
  int64_t total_ = 0;
};

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_RELATION_H_
