#include "relational/relation.h"

#include <algorithm>

namespace dpjoin {

Relation::Relation(const JoinQuery& query, int rel_index)
    : rel_index_(rel_index),
      attributes_(query.attributes_of(rel_index)),
      attribute_order_(query.attribute_order_of(rel_index)),
      coder_(query.tuple_space(rel_index)) {}

Status Relation::SetFrequency(const std::vector<int64_t>& tuple,
                              int64_t freq) {
  if (freq < 0) {
    return Status::InvalidArgument("frequency must be non-negative");
  }
  if (tuple.size() != attribute_order_.size()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] < 0 || tuple[i] >= coder_.radix(i)) {
      return Status::OutOfRange("tuple value outside attribute domain");
    }
  }
  SetFrequencyByCode(coder_.Encode(tuple), freq);
  return Status::OK();
}

Status Relation::AddFrequency(const std::vector<int64_t>& tuple,
                              int64_t delta) {
  if (tuple.size() != attribute_order_.size()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] < 0 || tuple[i] >= coder_.radix(i)) {
      return Status::OutOfRange("tuple value outside attribute domain");
    }
  }
  const int64_t code = coder_.Encode(tuple);
  const int64_t next = Frequency(code) + delta;
  if (next < 0) {
    return Status::InvalidArgument("frequency would become negative");
  }
  SetFrequencyByCode(code, next);
  return Status::OK();
}

void Relation::SetFrequencyByCode(int64_t code, int64_t freq) {
  DPJOIN_CHECK(code >= 0 && code < coder_.size(), "tuple code out of range");
  DPJOIN_CHECK_GE(freq, 0);
  auto it = freq_.find(code);
  const int64_t old = (it == freq_.end()) ? 0 : it->second;
  total_ += freq - old;
  if (freq == 0) {
    if (it != freq_.end()) freq_.erase(it);
  } else if (it == freq_.end()) {
    freq_.emplace(code, freq);
  } else {
    it->second = freq;
  }
}

void Relation::AddFrequencyByCode(int64_t code, int64_t delta) {
  SetFrequencyByCode(code, Frequency(code) + delta);
}

int Relation::DigitOf(int attr) const {
  for (size_t i = 0; i < attribute_order_.size(); ++i) {
    if (attribute_order_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

MixedRadix Relation::SubsetCoder(AttributeSet subset) const {
  DPJOIN_CHECK(subset.IsSubsetOf(attributes_),
               "subset not within relation attributes");
  std::vector<int64_t> radices;
  for (size_t i = 0; i < attribute_order_.size(); ++i) {
    if (subset.Contains(attribute_order_[i])) {
      radices.push_back(coder_.radix(i));
    }
  }
  return MixedRadix(std::move(radices));
}

int64_t Relation::ProjectCode(int64_t code, AttributeSet subset) const {
  DPJOIN_CHECK(subset.IsSubsetOf(attributes_),
               "subset not within relation attributes");
  // Both the relation order and the subset order are ascending by attribute
  // index, so digits can be re-encoded in a single pass.
  int64_t projected = 0;
  for (size_t i = 0; i < attribute_order_.size(); ++i) {
    if (subset.Contains(attribute_order_[i])) {
      projected = projected * coder_.radix(i) + coder_.Digit(code, i);
    }
  }
  return projected;
}

std::unordered_map<int64_t, int64_t> Relation::DegreeMap(
    AttributeSet y) const {
  std::unordered_map<int64_t, int64_t> degrees;
  for (const auto& [code, f] : freq_) {
    degrees[ProjectCode(code, y)] += f;
  }
  return degrees;
}

int64_t Relation::MaxDegree(AttributeSet y) const {
  int64_t best = 0;
  // dpjoin-audit: allow(determinism) — integer max over the degree map;
  // commutative, no draws, so iteration order is irrelevant.
  for (const auto& [key, deg] : DegreeMap(y)) {
    (void)key;
    best = std::max(best, deg);
  }
  return best;
}

}  // namespace dpjoin
