// Multi-way natural join evaluation over annotated relations.
//
// Everything here is exact, exhaustive evaluation (the paper studies data
// complexity with constant-size queries): a backtracking join with hash
// indexes built per call. Provides
//   * count(I)                       (paper §1.1),
//   * enumeration of joining combinations with multiplicities,
//   * grouped join sizes and the maximum boundary query T_E(I) (Eq. 1),
//   * the generalized q-aggregate T_{E,y}(I) (Definition 4.6).

#ifndef DPJOIN_RELATIONAL_JOIN_H_
#define DPJOIN_RELATIONAL_JOIN_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "relational/instance.h"

namespace dpjoin {

/// Visitor for join enumeration. `rel_codes[j]` is the tuple code of the
/// j-th relation of the enumerated set (in ascending relation-index order);
/// `assignment[attr]` is the attribute value (-1 for attributes outside the
/// enumerated relations); `weight` = Π_i R_i(t_i) > 0.
using JoinVisitor = std::function<void(const std::vector<int64_t>& rel_codes,
                                       const std::vector<int64_t>& assignment,
                                       int64_t weight)>;

/// Enumerates the natural join of the relations in `rels` (all relations
/// when `rels` is the full set). Calls `visit` once per joining combination.
/// For an empty `rels`, visits once with weight 1 (empty join).
void EnumerateSubJoin(const Instance& instance, RelationSet rels,
                      const JoinVisitor& visit);

/// Visitor for sharded join enumeration: a JoinVisitor tagged with the
/// parallel block the combination belongs to.
using ShardedJoinVisitor = std::function<void(
    int64_t block, const std::vector<int64_t>& rel_codes,
    const std::vector<int64_t>& assignment, int64_t weight)>;

/// EnumerateSubJoin with the depth-0 root tuples (in sorted-code order)
/// split into fixed-grain blocks that run on the thread pool. Calls
/// prepare(num_blocks) once, then visits every joining combination tagged
/// with its block index; combinations of different blocks may be visited
/// concurrently (the visitor must only touch per-block state), while within
/// a block visits are sequential in root order. The decomposition depends
/// only on the instance — never the thread count — so per-block accumulators
/// merged in block order are bit-identical for any `num_threads`
/// (0 = ExecutionContext default). An empty `rels` yields prepare(1) and a
/// single block-0 visit with weight 1.
void EnumerateSubJoinSharded(const Instance& instance, RelationSet rels,
                             const std::function<void(int64_t)>& prepare,
                             const ShardedJoinVisitor& visit,
                             int num_threads = 0);

/// count(I) restricted to the relations in `rels`; count of the full join
/// when `rels` is everything. Accumulated in double to avoid overflow on
/// adversarial instances (exact for values below 2^53).
double SubJoinCount(const Instance& instance, RelationSet rels);

/// count(I) = Σ_{t⃗} JoinI(t⃗)   (paper §1.1).
double JoinCount(const Instance& instance);

/// SubJoinCount with the depth-0 index buckets sharded across the thread
/// pool (num_threads == 0 uses the ExecutionContext default). Per-worker
/// accumulators are merged in bucket order; weights are integer-valued, so
/// the result is bit-identical to the serial SubJoinCount for any thread
/// count.
double ParallelSubJoinCount(const Instance& instance, RelationSet rels,
                            int num_threads = 0);

/// JoinCount over the full relation set, parallelized like
/// ParallelSubJoinCount.
double ParallelJoinCount(const Instance& instance, int num_threads = 0);

/// Join sizes of ⋈_{i∈rels} R_i grouped by the attribute set `group_by`
/// (which must be ⊆ ∪_{i∈rels} x_i). Keys are mixed-radix codes of the
/// group-by values, in ascending-attribute order with the attributes'
/// domain sizes as radices.
std::unordered_map<int64_t, double> GroupedJoinSizes(const Instance& instance,
                                                     RelationSet rels,
                                                     AttributeSet group_by);

/// GroupedJoinSizes with the depth-0 index buckets sharded across the
/// thread pool; per-worker group maps are merged in bucket order, so the
/// result equals the serial GroupedJoinSizes bit-for-bit for any thread
/// count. Backs QAggregate/BoundaryQuery.
std::unordered_map<int64_t, double> ParallelGroupedJoinSizes(
    const Instance& instance, RelationSet rels, AttributeSet group_by,
    int num_threads = 0);

/// T_{E,y}(I) = max_t Σ_{t' : π_y t' = t} Π_{i∈E} R_i(π_{x_i} t')
/// (Definition 4.6; equals Eq. 1's T_E when y = ∂E). Returns 1 when E = ∅
/// (empty product over the single empty tuple) and 0 when the sub-join is
/// empty but E isn't.
double QAggregate(const Instance& instance, RelationSet rels, AttributeSet y);

/// Maximum boundary query T_E(I) (Eq. 1): QAggregate with y = ∂E.
double BoundaryQuery(const Instance& instance, RelationSet rels);

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_JOIN_H_
