// Join query hypergraph H = (x, {x_1, ..., x_m})  (paper §1.1).
//
// Attributes are indexed 0..num_attributes-1 and carry a name and a finite
// domain size |dom(x)|. Relations (hyperedges) are attribute sets. The class
// provides the structural operations the paper's machinery needs:
// boundaries ∂E (§3.3), residual-query connectivity (§4.2.1 footnote 5),
// atom(x) (§4.2), and the hierarchical-query test.

#ifndef DPJOIN_RELATIONAL_JOIN_QUERY_H_
#define DPJOIN_RELATIONAL_JOIN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/mixed_radix.h"
#include "common/result.h"
#include "common/status.h"

namespace dpjoin {

/// Declaration of one attribute: a name and its finite domain size.
struct AttributeSpec {
  std::string name;
  int64_t domain_size = 0;
};

/// Immutable join-query hypergraph with per-attribute finite domains.
class JoinQuery {
 public:
  /// Validates and builds a query. Requirements: non-empty attribute and
  /// relation lists, unique attribute names, positive domain sizes, every
  /// attribute used by some relation, no empty or duplicate hyperedges,
  /// and at most 64 attributes / 64 relations.
  static Result<JoinQuery> Create(std::vector<AttributeSpec> attributes,
                                  std::vector<std::vector<std::string>> edges);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  int num_relations() const { return static_cast<int>(edges_.size()); }

  const std::string& attribute_name(int attr) const {
    return attributes_[attr].name;
  }
  int64_t domain_size(int attr) const { return attributes_[attr].domain_size; }

  /// Index of the attribute with the given name, or NotFound.
  Result<int> AttributeIndex(const std::string& name) const;

  /// x_i, the attribute set of relation i.
  AttributeSet attributes_of(int rel) const { return edges_[rel]; }

  /// Attributes of relation i in ascending index order (tuple digit order).
  const std::vector<int>& attribute_order_of(int rel) const {
    return edge_orders_[rel];
  }

  /// Tuple coder for relation i's domain D_i = Π_{x ∈ x_i} dom(x).
  const MixedRadix& tuple_space(int rel) const { return tuple_spaces_[rel]; }

  /// |D_i| = Π_{x ∈ x_i} |dom(x)|.
  int64_t relation_domain_size(int rel) const {
    return tuple_spaces_[rel].size();
  }

  /// |D| = Π_i |D_i|, the size of the release domain (frequencies over the
  /// product of per-relation tuple domains).
  double ReleaseDomainSize() const;

  AttributeSet all_attributes() const {
    return AttributeSet::FirstN(num_attributes());
  }
  RelationSet all_relations() const {
    return RelationSet::FirstN(num_relations());
  }

  /// atom(x): the set of relations whose hyperedge contains attribute x.
  RelationSet Atom(int attr) const { return atoms_[attr]; }

  /// ∪_{i∈E} x_i.
  AttributeSet UnionAttributes(RelationSet rels) const;

  /// ∩_{i∈E} x_i (all attributes when E is empty).
  AttributeSet IntersectAttributes(RelationSet rels) const;

  /// Boundary ∂E: attributes shared between a relation in E and one outside.
  AttributeSet Boundary(RelationSet rels) const;

  /// Connected components of the residual query H_{E,removed} =
  /// (∪_E x_i − removed, {x_i − removed : i ∈ E}): two relations are
  /// adjacent when they share a surviving attribute. Relations whose edge is
  /// fully removed become singleton components.
  std::vector<RelationSet> ConnectedComponents(RelationSet rels,
                                               AttributeSet removed) const;

  /// Whether H_{E,removed} is connected (true for |E| <= 1).
  bool IsConnected(RelationSet rels, AttributeSet removed) const;

  /// Whether the query is hierarchical: for every attribute pair (x, y),
  /// atom(x) ⊆ atom(y), atom(y) ⊆ atom(x), or atom(x) ∩ atom(y) = ∅ (§4.2).
  bool IsHierarchical() const;

  /// Fractional edge covering number ρ(H) via brute-force LP on the vertex
  /// set (used for the AGM worst-case bounds of Appendix B.3). Exact for the
  /// small queries this library targets.
  double FractionalEdgeCoverNumber() const;

  std::string ToString() const;

 private:
  JoinQuery() = default;

  std::vector<AttributeSpec> attributes_;
  std::vector<AttributeSet> edges_;
  std::vector<std::vector<int>> edge_orders_;
  std::vector<MixedRadix> tuple_spaces_;
  std::vector<RelationSet> atoms_;
};

/// Convenience: the two-table query R1(A,B) ⋈ R2(B,C) used throughout §3.1
/// and §4.1, with the given per-attribute domain sizes.
JoinQuery MakeTwoTableQuery(int64_t dom_a, int64_t dom_b, int64_t dom_c);

/// Convenience: a path join R1(X0,X1) ⋈ R2(X1,X2) ⋈ ... ⋈ Rm(X_{m-1},X_m).
JoinQuery MakePathQuery(int num_relations, int64_t domain_size);

/// Convenience: a star join R1(H,S1) ⋈ R2(H,S2) ⋈ ... ⋈ Rm(H,Sm) — a
/// hierarchical query whose attribute tree has the hub H as root.
JoinQuery MakeStarQuery(int num_relations, int64_t domain_size);

}  // namespace dpjoin

#endif  // DPJOIN_RELATIONAL_JOIN_QUERY_H_
