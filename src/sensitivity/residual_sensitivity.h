// Residual sensitivity RS^β_count (Definition 3.6; Dong & Yi, SIGMOD'21).
//
//   RS^β_count(I) = max_{k≥0} e^{−βk} · LŜ^k_count(I),
//   LŜ^k_count(I) = max_{s∈S_k} max_i Σ_{E ⊆ [m]∖{i}}
//                       T_{[m]∖{i}∖E}(I) · Π_{j∈E} s_j,
//
// where S_k are the non-negative integer vectors summing to k and T_F is the
// maximum boundary query (Eq. 1). RS is a β-smooth upper bound on LS_count,
// computable in polynomial time, and is what Algorithm 3 perturbs
// (multiplicatively, since ln RS^β has global sensitivity ≤ β).

#ifndef DPJOIN_SENSITIVITY_RESIDUAL_SENSITIVITY_H_
#define DPJOIN_SENSITIVITY_RESIDUAL_SENSITIVITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "relational/instance.h"

namespace dpjoin {

/// All maximum boundary queries of an instance: T_F(I) for every F ⊊ [m]
/// (and F = [m] included for completeness), keyed by the relation-set bits.
/// T_∅ = 1 by convention (empty product over the empty tuple).
std::unordered_map<uint64_t, double> AllBoundaryQueries(
    const Instance& instance);

/// Result of a residual-sensitivity computation, with the diagnostics the
/// benches report.
struct ResidualSensitivityResult {
  double value = 0.0;     // RS^β_count(I)
  int64_t argmax_k = 0;   // the k = Σ_j s_j attaining the max
  int64_t k_searched = 0; // lattice points examined by the exact search
  double ls_hat_0 = 0.0;  // LŜ^0 = LS_count(I)
};

/// LŜ^k_count(I) given precomputed boundary queries.
double LsHatK(const JoinQuery& query,
              const std::unordered_map<uint64_t, double>& boundary, int64_t k);

/// RS^β_count(I), exact. Fuses the max over k with the max over s ∈ S_k:
/// along each coordinate the objective (A + B·s_j)e^{−β·s_j} peaks at
/// s_j ≤ 1/β, so the exact integer maximizer lies in the box
/// [0, ⌈1/β⌉]^{m−1} and the search costs O((1/β)^{m−1}·2^m) per removed
/// relation — polynomial, as Dong–Yi promise for residual sensitivity.
/// The box search runs on the thread pool (one slab per value of the first
/// coordinate, per removed relation) with an ordered strictly-greater
/// merge, so value/argmax_k/k_searched are bit-identical to the serial
/// sweep for any thread count.
ResidualSensitivityResult ResidualSensitivity(const Instance& instance,
                                              double beta);

/// Same computation from a precomputed (or upper-bounded) boundary map
/// T_F for every F ⊆ [m]. Feeding UPPER bounds on each T_F yields an upper
/// bound on RS^β — this is how the §4.2 degree-configuration sensitivities
/// RS^σ are evaluated (boundary values replaced by Π λ·2^{σ(·)} products).
ResidualSensitivityResult ResidualSensitivityFromBoundaries(
    const JoinQuery& query, const std::unordered_map<uint64_t, double>& boundary,
    double beta);

/// Convenience returning just the value.
double ResidualSensitivityValue(const Instance& instance, double beta);

/// Closed form for two-table joins: RS^β = max_k e^{−βk}(Δ + k) with
/// Δ = LS_count(I). Used as a test oracle against the general computation.
double TwoTableResidualSensitivityClosedForm(double delta, double beta);

}  // namespace dpjoin

#endif  // DPJOIN_SENSITIVITY_RESIDUAL_SENSITIVITY_H_
