// Local sensitivity of the counting join-size query (paper §1.2).
//
//   LS_count(I) = max_{I' neighbor of I} |count(I) − count(I')|.
//
// For natural joins this equals max_i T_{[m]∖{i}}(I): the largest number of
// join combinations a single new tuple of some relation can complete (Eq. 1
// with E = [m]∖{i}; removal can never beat insertion of the same tuple).

#ifndef DPJOIN_SENSITIVITY_LOCAL_SENSITIVITY_H_
#define DPJOIN_SENSITIVITY_LOCAL_SENSITIVITY_H_

#include <cstdint>

#include "relational/instance.h"

namespace dpjoin {

/// LS_count(I), exact.
double LocalSensitivity(const Instance& instance);

/// LS restricted to insertions/deletions in relation `rel`
/// (= T_{[m]∖{rel}}(I)); LocalSensitivity is the max over relations.
double LocalSensitivityForRelation(const Instance& instance, int rel);

/// Two-table special case (paper §3.1): Δ = max_b max{deg_1(b), deg_2(b)}
/// over the shared attribute. Equals LocalSensitivity on two-table queries;
/// kept separate because Algorithm 1 and the §4.1 partition are defined in
/// terms of these degrees.
double TwoTableDelta(const Instance& instance);

}  // namespace dpjoin

#endif  // DPJOIN_SENSITIVITY_LOCAL_SENSITIVITY_H_
