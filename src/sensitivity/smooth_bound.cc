#include "sensitivity/smooth_bound.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {

SmoothnessAuditResult AuditSmoothUpperBound(
    const Instance& start, const SensitivityFn& bound,
    const SensitivityFn& local_sensitivity, double beta, int num_chains,
    int chain_length, Rng& rng) {
  SmoothnessAuditResult result;
  const double budget = std::exp(beta) * (1.0 + 1e-9);  // numeric slack
  for (int c = 0; c < num_chains; ++c) {
    Instance current = start;
    double current_bound = bound(current);
    for (int step = 0; step < chain_length; ++step) {
      if (current_bound + 1e-9 < local_sensitivity(current)) {
        result.upper_bound_held = false;
        if (result.failure.empty()) {
          std::ostringstream oss;
          oss << "bound " << current_bound << " < LS "
              << local_sensitivity(current) << " at chain " << c << " step "
              << step;
          result.failure = oss.str();
        }
      }
      Instance next = current.RandomNeighbor(rng);
      const double next_bound = bound(next);
      ++result.pairs_checked;
      if (current_bound > 0.0 && next_bound > 0.0) {
        const double ratio =
            std::max(next_bound / current_bound, current_bound / next_bound);
        result.worst_ratio = std::max(result.worst_ratio, ratio);
        if (ratio > budget) {
          result.smoothness_held = false;
          if (result.failure.empty()) {
            std::ostringstream oss;
            oss << "smoothness ratio " << ratio << " > e^beta " << budget
                << " at chain " << c << " step " << step;
            result.failure = oss.str();
          }
        }
      }
      current = std::move(next);
      current_bound = next_bound;
    }
  }
  return result;
}

namespace {

std::string InstanceKey(const Instance& instance) {
  std::vector<std::tuple<int, int64_t, int64_t>> entries;
  for (int r = 0; r < instance.num_relations(); ++r) {
    for (const auto& [code, f] : instance.relation(r).entries()) {
      entries.emplace_back(r, code, f);
    }
  }
  std::sort(entries.begin(), entries.end());
  std::ostringstream oss;
  for (const auto& [r, code, f] : entries) {
    oss << r << ":" << code << "=" << f << ";";
  }
  return oss.str();
}

}  // namespace

double BruteForceSmoothSensitivity(const Instance& instance, double beta,
                                   int max_depth) {
  DPJOIN_CHECK_GE(max_depth, 0);
  // BFS over the neighbor graph, layer by layer.
  std::vector<Instance> frontier = {instance};
  std::unordered_set<std::string> visited = {InstanceKey(instance)};
  double best = LocalSensitivity(instance);  // k = 0 term
  for (int depth = 1; depth <= max_depth; ++depth) {
    std::vector<Instance> next_frontier;
    double layer_max_ls = 0.0;
    for (const Instance& cur : frontier) {
      for (int r = 0; r < cur.num_relations(); ++r) {
        const int64_t dom = cur.relation(r).tuple_space().size();
        for (int64_t code = 0; code < dom; ++code) {
          for (int64_t delta : {int64_t{1}, int64_t{-1}}) {
            if (delta < 0 && cur.relation(r).Frequency(code) == 0) continue;
            Instance neighbor = cur;
            neighbor.mutable_relation(r).AddFrequencyByCode(code, delta);
            std::string key = InstanceKey(neighbor);
            if (!visited.insert(std::move(key)).second) continue;
            layer_max_ls = std::max(layer_max_ls, LocalSensitivity(neighbor));
            next_frontier.push_back(std::move(neighbor));
          }
        }
      }
    }
    best = std::max(best,
                    std::exp(-beta * static_cast<double>(depth)) * layer_max_ls);
    frontier = std::move(next_frontier);
    if (frontier.empty()) break;
  }
  return best;
}

}  // namespace dpjoin
