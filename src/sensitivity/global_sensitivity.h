// Global-sensitivity facts used by the algorithms and benches.

#ifndef DPJOIN_SENSITIVITY_GLOBAL_SENSITIVITY_H_
#define DPJOIN_SENSITIVITY_GLOBAL_SENSITIVITY_H_

#include <cstdint>

#include "relational/join_query.h"

namespace dpjoin {

/// Worst-case GS_count over instances of input size ≤ n: one new tuple can
/// complete up to n^{m−1} join combinations (Appendix B.3 case (2) shape).
double GlobalSensitivityCountUpperBound(const JoinQuery& query, int64_t n);

/// Global sensitivity of I ↦ LS_count(I). For two-table joins this is 1
/// (Lemma 3.2's premise: LS = max degree, and one tuple moves any degree by
/// at most 1); Algorithm 1 relies on it. For m ≥ 3 it is NOT O(1) (paper
/// §3.3, first paragraph), which is exactly why Algorithm 3 switches to
/// residual sensitivity; callers must not use this for m ≥ 3 and we
/// CHECK-fail there.
double LocalSensitivityGlobalSensitivityTwoTable(const JoinQuery& query);

/// Global sensitivity of I ↦ ln(RS^β_count(I)): at most β (paper §3.3,
/// proof of Lemma 3.7). Returned for self-documentation at call sites.
double LogResidualSensitivityGlobalSensitivity(double beta);

}  // namespace dpjoin

#endif  // DPJOIN_SENSITIVITY_GLOBAL_SENSITIVITY_H_
