#include "sensitivity/local_sensitivity.h"

#include <algorithm>

#include "common/check.h"
#include "relational/join.h"

namespace dpjoin {

double LocalSensitivityForRelation(const Instance& instance, int rel) {
  const RelationSet rest =
      instance.query().all_relations().Minus(RelationSet::Of(rel));
  return BoundaryQuery(instance, rest);
}

double LocalSensitivity(const Instance& instance) {
  double worst = 0.0;
  for (int r = 0; r < instance.num_relations(); ++r) {
    worst = std::max(worst, LocalSensitivityForRelation(instance, r));
  }
  return worst;
}

double TwoTableDelta(const Instance& instance) {
  const JoinQuery& query = instance.query();
  DPJOIN_CHECK_EQ(query.num_relations(), 2);
  const AttributeSet shared =
      query.attributes_of(0).Intersect(query.attributes_of(1));
  DPJOIN_CHECK(!shared.Empty(), "two-table query must share an attribute");
  const int64_t d1 = instance.relation(0).MaxDegree(shared);
  const int64_t d2 = instance.relation(1).MaxDegree(shared);
  return static_cast<double>(std::max(d1, d2));
}

}  // namespace dpjoin
