// β-smooth upper bounds on local sensitivity (Nissim–Raskhodnikova–Smith).
//
// S^β is a β-smooth upper bound on LS_count when
//   (1) S^β(I) ≥ LS_count(I) for every I, and
//   (2) S^β(I') ≤ e^β · S^β(I) for every pair of neighbors (I, I').
// Residual sensitivity satisfies both (paper §3.3). This header provides the
// interface plus verification utilities used by property tests and the
// sensitivity-explorer example.

#ifndef DPJOIN_SENSITIVITY_SMOOTH_BOUND_H_
#define DPJOIN_SENSITIVITY_SMOOTH_BOUND_H_

#include <functional>
#include <string>

#include "common/rng.h"
#include "relational/instance.h"

namespace dpjoin {

/// A sensitivity functional I ↦ value.
using SensitivityFn = std::function<double(const Instance&)>;

/// Outcome of a randomized smoothness audit.
struct SmoothnessAuditResult {
  bool upper_bound_held = true;   // condition (1) on every sampled instance
  bool smoothness_held = true;    // condition (2) on every sampled neighbor
  double worst_ratio = 0.0;       // max over pairs of S(I')/S(I)
  int64_t pairs_checked = 0;
  std::string failure;            // description of first violation, if any
};

/// Samples `num_chains` random neighbor chains of length `chain_length`
/// starting from `start`, and checks conditions (1) and (2) of a β-smooth
/// upper bound for `bound` against `local_sensitivity` on every step.
SmoothnessAuditResult AuditSmoothUpperBound(const Instance& start,
                                            const SensitivityFn& bound,
                                            const SensitivityFn& local_sensitivity,
                                            double beta, int num_chains,
                                            int chain_length, Rng& rng);

/// Brute-force smooth sensitivity on tiny instances:
///   SS^β_K(I) = max_{0≤k≤K} e^{−βk} · max_{I': d(I,I')≤k} LS_count(I'),
/// exploring the neighbor graph breadth-first to depth K. Exponential in K —
/// a test oracle only (the paper notes exact smooth sensitivity takes
/// n^{O(log n)} time, which is why the algorithms use RS instead).
double BruteForceSmoothSensitivity(const Instance& instance, double beta,
                                   int max_depth);

}  // namespace dpjoin

#endif  // DPJOIN_SENSITIVITY_SMOOTH_BOUND_H_
