#include "sensitivity/global_sensitivity.h"

#include <cmath>

#include "common/check.h"

namespace dpjoin {

double GlobalSensitivityCountUpperBound(const JoinQuery& query, int64_t n) {
  DPJOIN_CHECK_GE(n, 0);
  return std::pow(static_cast<double>(n),
                  static_cast<double>(query.num_relations() - 1));
}

double LocalSensitivityGlobalSensitivityTwoTable(const JoinQuery& query) {
  DPJOIN_CHECK_EQ(query.num_relations(), 2);
  return 1.0;
}

double LogResidualSensitivityGlobalSensitivity(double beta) {
  DPJOIN_CHECK_GT(beta, 0.0);
  return beta;
}

}  // namespace dpjoin
