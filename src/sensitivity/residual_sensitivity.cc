#include "sensitivity/residual_sensitivity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "relational/join.h"

namespace dpjoin {

std::unordered_map<uint64_t, double> AllBoundaryQueries(
    const Instance& instance) {
  const JoinQuery& query = instance.query();
  const int m = query.num_relations();
  std::unordered_map<uint64_t, double> boundary;
  for (uint64_t bits = 0; bits < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    if (set.Empty()) {
      boundary[bits] = 1.0;  // empty product over the empty tuple
    } else {
      boundary[bits] = BoundaryQuery(instance, set);
    }
  }
  return boundary;
}

namespace {

// Coefficients of the inner polynomial for a fixed removed relation i:
// g_i(s) = Σ_{E ⊆ rest} T(rest∖E) · Π_{j∈E} s_j.
struct InnerPolynomial {
  std::vector<int> coords;            // rest = [m]∖{i}, ascending
  std::vector<double> coefficients;   // indexed by subset-of-rest bitmask
};

InnerPolynomial BuildInnerPolynomial(
    const JoinQuery& query, int removed,
    const std::unordered_map<uint64_t, double>& boundary) {
  InnerPolynomial poly;
  for (int r = 0; r < query.num_relations(); ++r) {
    if (r != removed) poly.coords.push_back(r);
  }
  const size_t p = poly.coords.size();
  poly.coefficients.resize(size_t{1} << p);
  uint64_t rest_bits = 0;
  for (int r : poly.coords) rest_bits |= (uint64_t{1} << r);
  for (uint64_t e = 0; e < (uint64_t{1} << p); ++e) {
    // Map the local subset mask e (over `coords`) to global relation bits.
    uint64_t e_bits = 0;
    for (size_t j = 0; j < p; ++j) {
      if ((e >> j) & 1) e_bits |= (uint64_t{1} << poly.coords[j]);
    }
    poly.coefficients[e] = boundary.at(rest_bits & ~e_bits);
  }
  return poly;
}

// Maximizes g(s) over non-negative integer s with Σ s_j = k, by exhaustive
// composition enumeration with incremental subset products. Queries are
// constant-size (p = m−1 ≤ 5 in practice), and the k range is bounded by
// the smoothness cutoff, so this is affordable; see header notes.
double MaximizeOverCompositions(const InnerPolynomial& poly, int64_t k) {
  const size_t p = poly.coords.size();
  if (p == 0) return poly.coefficients[0];
  double best = 0.0;
  // products[e] = Π_{j∈e, j already assigned} s_j for subsets e of the
  // assigned prefix; maintained functionally through the recursion.
  std::vector<int64_t> s(p, 0);
  auto recurse = [&](auto&& self, size_t coord, int64_t remaining) -> void {
    if (coord + 1 == p) {
      s[coord] = remaining;
      double total = 0.0;
      for (uint64_t e = 0; e < (uint64_t{1} << p); ++e) {
        double term = poly.coefficients[e];
        if (term == 0.0) continue;
        for (size_t j = 0; j < p && term != 0.0; ++j) {
          if ((e >> j) & 1) term *= static_cast<double>(s[j]);
        }
        total += term;
      }
      best = std::max(best, total);
      return;
    }
    for (int64_t v = 0; v <= remaining; ++v) {
      s[coord] = v;
      self(self, coord + 1, remaining - v);
    }
  };
  recurse(recurse, 0, k);
  return best;
}

}  // namespace

double LsHatK(const JoinQuery& query,
              const std::unordered_map<uint64_t, double>& boundary,
              int64_t k) {
  DPJOIN_CHECK_GE(k, 0);
  double best = 0.0;
  for (int i = 0; i < query.num_relations(); ++i) {
    const InnerPolynomial poly = BuildInnerPolynomial(query, i, boundary);
    best = std::max(best, MaximizeOverCompositions(poly, k));
  }
  return best;
}

ResidualSensitivityResult ResidualSensitivity(const Instance& instance,
                                              double beta) {
  return ResidualSensitivityFromBoundaries(instance.query(),
                                           AllBoundaryQueries(instance), beta);
}

ResidualSensitivityResult ResidualSensitivityFromBoundaries(
    const JoinQuery& query,
    const std::unordered_map<uint64_t, double>& boundary, double beta) {
  DPJOIN_CHECK_GT(beta, 0.0);
  const int m = query.num_relations();

  // RS^β = max_k e^{−βk}·LŜ^k = max over ALL s ∈ Z^m≥0 of
  //   e^{−β·Σ_j s_j} · max_i Σ_{E⊆[m]∖{i}} T_{[m]∖{i}∖E}·Π_{j∈E} s_j
  // (k is determined by s, so the per-k maximization fuses into one search).
  // Along any single coordinate the objective is (A + B·s_j)·e^{−β·s_j}
  // with A, B ≥ 0, which peaks at s_j ≤ 1/β — so the exact integer
  // maximizer lies in the box [0, ⌈1/β⌉]^{m−1} and the search is
  // O((1/β)^{m−1}·2^m) rather than a per-k composition enumeration.
  const int64_t box = static_cast<int64_t>(std::ceil(1.0 / beta)) + 1;

  ResidualSensitivityResult result;
  result.ls_hat_0 = LsHatK(query, boundary, 0);
  for (int i = 0; i < m; ++i) {
    const InnerPolynomial poly = BuildInnerPolynomial(query, i, boundary);
    const size_t p = poly.coords.size();

    // One leaf evaluation of g(s)·e^{−βk} at the fixed assignment `s`.
    auto evaluate = [&](const std::vector<int64_t>& s, double* best_value,
                        int64_t* best_k, int64_t* searched) {
      double g = 0.0;
      int64_t k = 0;
      for (size_t j = 0; j < p; ++j) k += s[j];
      for (uint64_t e = 0; e < (uint64_t{1} << p); ++e) {
        double term = poly.coefficients[e];
        if (term == 0.0) continue;
        for (size_t j = 0; j < p && term != 0.0; ++j) {
          if ((e >> j) & 1) term *= static_cast<double>(s[j]);
        }
        g += term;
      }
      const double value = std::exp(-beta * static_cast<double>(k)) * g;
      if (value > *best_value) {
        *best_value = value;
        *best_k = k;
      }
      ++*searched;
    };

    if (p == 0) {
      std::vector<int64_t> s;
      double value = result.value;
      int64_t k = result.argmax_k;
      evaluate(s, &value, &k, &result.k_searched);
      result.value = value;
      result.argmax_k = k;
      continue;
    }

    // Coordinate slabs: one task per value of s_0, each sweeping the
    // remaining [0, box]^{p−1} sub-box serially. Slab results merge in slab
    // order with the same strictly-greater update the serial sweep uses, so
    // value/argmax (first maximizer in lexicographic order) and k_searched
    // are identical for any thread count.
    struct SlabBest {
      double value = 0.0;
      int64_t argmax_k = 0;
      int64_t searched = 0;
    };
    std::vector<SlabBest> slabs(static_cast<size_t>(box + 1));
    ParallelForBlocks(
        0, box + 1, /*grain=*/1, [&](int64_t, int64_t lo, int64_t hi) {
          for (int64_t v = lo; v < hi; ++v) {
            SlabBest& slab = slabs[static_cast<size_t>(v)];
            slab.value = -1.0;  // any leaf (g >= 0) replaces the sentinel
            std::vector<int64_t> s(p, 0);
            s[0] = v;
            auto recurse = [&](auto&& self, size_t coord) -> void {
              if (coord == p) {
                evaluate(s, &slab.value, &slab.argmax_k, &slab.searched);
                return;
              }
              for (int64_t w = 0; w <= box; ++w) {
                s[coord] = w;
                self(self, coord + 1);
              }
            };
            recurse(recurse, 1);
          }
        });
    for (const SlabBest& slab : slabs) {
      if (slab.value > result.value) {
        result.value = slab.value;
        result.argmax_k = slab.argmax_k;
      }
      result.k_searched += slab.searched;
    }
  }
  return result;
}

double ResidualSensitivityValue(const Instance& instance, double beta) {
  return ResidualSensitivity(instance, beta).value;
}

double TwoTableResidualSensitivityClosedForm(double delta, double beta) {
  DPJOIN_CHECK_GT(beta, 0.0);
  DPJOIN_CHECK_GE(delta, 0.0);
  // Maximize e^{−βk}(Δ + k) over integers k ≥ 0; the continuous maximizer
  // is k* = 1/β − Δ.
  const double k_star = 1.0 / beta - delta;
  double best = 0.0;
  for (int64_t k :
       {int64_t{0}, static_cast<int64_t>(std::floor(k_star)),
        static_cast<int64_t>(std::ceil(k_star))}) {
    if (k < 0) continue;
    best = std::max(best, std::exp(-beta * static_cast<double>(k)) *
                              (delta + static_cast<double>(k)));
  }
  return best;
}

}  // namespace dpjoin
