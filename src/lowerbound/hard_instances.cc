#include "lowerbound/hard_instances.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "query/evaluation.h"

namespace dpjoin {

Figure1Pair MakeFigure1Pair(int64_t n, int64_t domain) {
  DPJOIN_CHECK_GE(n, 1);
  const int64_t dom = std::max(n, domain);
  const JoinQuery query = MakeTwoTableQuery(dom, dom, dom);
  Instance instance = Instance::Make(query);
  for (int64_t i = 0; i < n; ++i) {
    DPJOIN_CHECK(instance.AddTuple(0, {i, 0}, 1).ok());
  }
  DPJOIN_CHECK(instance.AddTuple(1, {0, 0}, 1).ok());
  Instance neighbor = instance;
  DPJOIN_CHECK(neighbor.AddTuple(1, {0, 0}, -1).ok());
  return {std::move(instance), std::move(neighbor)};
}

double Figure1RegionMass(const Instance& instance,
                         const DenseTensor& synthetic) {
  const JoinQuery& query = instance.query();
  const Relation& r1 = instance.relation(0);
  const int b_attr = query.attributes_of(0)
                         .Intersect(query.attributes_of(1))
                         .First();
  const int b_digit = r1.DigitOf(b_attr);
  const MixedRadix& shape = synthetic.shape();
  double mass = 0.0;
  // D′: R1 tuple displays B = 0, R2 tuple is exactly (0, 0) (code 0).
  for (int64_t flat = 0; flat < shape.size(); ++flat) {
    const int64_t code2 = shape.Digit(flat, 1);
    if (code2 != 0) continue;
    const int64_t code1 = shape.Digit(flat, 0);
    if (r1.tuple_space().Digit(code1, static_cast<size_t>(b_digit)) != 0) {
      continue;
    }
    mass += synthetic.At(flat);
  }
  return mass;
}

Result<Theorem35Instance> MakeTheorem35Instance(
    const std::vector<int64_t>& single_table, int64_t rows, int64_t delta) {
  if (single_table.empty() || rows <= 0 || delta <= 0) {
    return Status::InvalidArgument(
        "need a non-empty table, positive rows and delta");
  }
  const int64_t d = static_cast<int64_t>(single_table.size());
  for (int64_t count : single_table) {
    if (count < 0 || count > rows) {
      return Status::OutOfRange("table count outside [0, rows]");
    }
  }
  auto query = JoinQuery::Create(
      {{"A", d}, {"B", d * rows}, {"C", delta}}, {{"A", "B"}, {"B", "C"}});
  DPJOIN_RETURN_NOT_OK(query.status());

  Theorem35Instance out{Instance::Make(*query), d, rows, delta};
  // R1(a, (b1, b2)) = 1[a = b1 ∧ b2 < T(a)]; B encodes (b1, b2) = b1·rows+b2.
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b2 = 0; b2 < single_table[static_cast<size_t>(a)]; ++b2) {
      DPJOIN_RETURN_NOT_OK(out.instance.AddTuple(0, {a, a * rows + b2}, 1));
    }
  }
  // R2 ≡ 1.
  for (int64_t b = 0; b < d * rows; ++b) {
    for (int64_t c = 0; c < delta; ++c) {
      DPJOIN_RETURN_NOT_OK(out.instance.AddTuple(1, {b, c}, 1));
    }
  }
  return out;
}

Result<QueryFamily> LiftSingleTableQueries(
    const Theorem35Instance& construction,
    const std::vector<std::vector<double>>& single_table_queries) {
  if (single_table_queries.empty()) {
    return Status::InvalidArgument("need at least one single-table query");
  }
  const JoinQuery& query = construction.instance.query();
  const int64_t dom1 = query.relation_domain_size(0);
  const int64_t dom_b = query.domain_size(1);
  std::vector<TableQuery> q1;
  for (size_t j = 0; j < single_table_queries.size(); ++j) {
    const auto& q = single_table_queries[j];
    if (static_cast<int64_t>(q.size()) != construction.d) {
      return Status::InvalidArgument("query arity != single-table domain");
    }
    TableQuery tq;
    tq.label = "lift" + std::to_string(j);
    tq.values.resize(static_cast<size_t>(dom1));
    // Relation 0 tuple code = a·|dom(B)| + b (attributes ascending: A then B).
    for (int64_t a = 0; a < construction.d; ++a) {
      for (int64_t b = 0; b < dom_b; ++b) {
        tq.values[static_cast<size_t>(a * dom_b + b)] =
            q[static_cast<size_t>(a)];
      }
    }
    q1.push_back(std::move(tq));
  }
  TableQuery ones;
  ones.label = "ones";
  ones.values.assign(static_cast<size_t>(query.relation_domain_size(1)), 1.0);
  return QueryFamily::Create(query, {std::move(q1), {std::move(ones)}});
}

double SingleTableAnswer(const std::vector<int64_t>& single_table,
                         const std::vector<double>& query) {
  DPJOIN_CHECK_EQ(single_table.size(), query.size());
  double total = 0.0;
  for (size_t a = 0; a < single_table.size(); ++a) {
    total += query[a] * static_cast<double>(single_table[a]);
  }
  return total;
}

Instance MakeFigure3Instance(int64_t k) {
  DPJOIN_CHECK_GE(k, 1);
  const JoinQuery query = MakeTwoTableQuery(k, k, k);
  Instance instance = Instance::Make(query);
  for (int64_t i = 1; i <= k; ++i) {
    const int64_t b = i - 1;
    for (int64_t j = 0; j < i; ++j) {
      DPJOIN_CHECK(instance.AddTuple(0, {j, b}, 1).ok());
      DPJOIN_CHECK(instance.AddTuple(1, {b, j}, 1).ok());
    }
  }
  return instance;
}

Example42Instance MakeExample42Instance(int64_t k) {
  DPJOIN_CHECK_GE(k, 2);
  const int64_t levels = static_cast<int64_t>(
      std::floor(2.0 / 3.0 * std::log2(static_cast<double>(k))));
  std::vector<int64_t> level_values;
  std::vector<int64_t> level_degrees;
  int64_t total_values = 0;
  for (int64_t i = 0; i <= levels; ++i) {
    const int64_t values = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(
               static_cast<double>(k * k) /
               std::pow(8.0, static_cast<double>(i)))));
    level_values.push_back(values);
    level_degrees.push_back(int64_t{1} << i);
    total_values += values;
  }
  const int64_t max_degree = level_degrees.back();
  const JoinQuery query =
      MakeTwoTableQuery(max_degree, total_values, max_degree);
  Example42Instance out{Instance::Make(query), std::move(level_values),
                        std::move(level_degrees)};
  int64_t b = 0;
  for (size_t level = 0; level < out.level_values.size(); ++level) {
    for (int64_t v = 0; v < out.level_values[level]; ++v, ++b) {
      for (int64_t j = 0; j < out.level_degrees[level]; ++j) {
        DPJOIN_CHECK(out.instance.AddTuple(0, {j, b}, 1).ok());
        DPJOIN_CHECK(out.instance.AddTuple(1, {b, j}, 1).ok());
      }
    }
  }
  return out;
}

Result<Theorem16PathInstance> MakeTheorem16PathInstance(
    const std::vector<int64_t>& single_table, int64_t rows, int64_t side) {
  if (single_table.empty() || rows <= 0 || side <= 0) {
    return Status::InvalidArgument(
        "need a non-empty table, positive rows and side");
  }
  const int64_t d = static_cast<int64_t>(single_table.size());
  for (int64_t count : single_table) {
    if (count < 0 || count > rows) {
      return Status::OutOfRange("table count outside [0, rows]");
    }
  }
  const int64_t diag = d * rows;
  auto query = JoinQuery::Create(
      {{"X0", diag}, {"X1", diag}, {"X2", side}, {"X3", side}},
      {{"X0", "X1"}, {"X1", "X2"}, {"X2", "X3"}});
  DPJOIN_RETURN_NOT_OK(query.status());

  Theorem16PathInstance out{Instance::Make(*query), d, rows, side};
  // R1 diagonal encoding of T.
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b2 = 0; b2 < single_table[static_cast<size_t>(a)]; ++b2) {
      const int64_t v = a * rows + b2;
      DPJOIN_RETURN_NOT_OK(out.instance.AddTuple(0, {v, v}, 1));
    }
  }
  // R2, R3 ≡ 1 — each amplifies by `side`, total Δ = side².
  for (int64_t x1 = 0; x1 < diag; ++x1) {
    for (int64_t x2 = 0; x2 < side; ++x2) {
      DPJOIN_RETURN_NOT_OK(out.instance.AddTuple(1, {x1, x2}, 1));
    }
  }
  for (int64_t x2 = 0; x2 < side; ++x2) {
    for (int64_t x3 = 0; x3 < side; ++x3) {
      DPJOIN_RETURN_NOT_OK(out.instance.AddTuple(2, {x2, x3}, 1));
    }
  }
  return out;
}

}  // namespace dpjoin
