// Hard-instance constructions from the paper's lower-bound arguments and
// worked examples (Figures 1–3, Example 4.2, Theorems 3.5 / 1.6).
//
// Domain-size note: the paper's constructions use domains polynomial in n;
// we expose the construction parameters so benches can run them at
// PMW-materializable scale (DESIGN.md "Substitutions") — the constructions
// themselves are verbatim.

#ifndef DPJOIN_LOWERBOUND_HARD_INSTANCES_H_
#define DPJOIN_LOWERBOUND_HARD_INSTANCES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "query/dense_tensor.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {

/// Figure 1: the neighboring pair with join sizes n and 0.
///   I:  R1 = {(a_i, b_0) : i ∈ [n]},  R2 = {(b_0, c_0)}
///   I′: same but R2 empty (one tuple removed).
/// dom(A) = dom(B) = dom(C) = max(n, domain) — the paper uses domain = n;
/// Example 3.1's analysis wants the domain polynomially LARGER than n so
/// that padding mass rarely hits the distinguishing region, hence the knob.
struct Figure1Pair {
  Instance instance;        ///< I  (count = n, Δ = n)
  Instance neighbor;        ///< I′ (count = 0)
};
Figure1Pair MakeFigure1Pair(int64_t n, int64_t domain = 0);

/// The Example 3.1 distinguishing region D′ for a Figure-1 pair: joint
/// cells whose R1 tuple displays B = b_0 and whose R2 tuple is (b_0, c_0).
/// Returns the synthetic-dataset mass inside D′.
double Figure1RegionMass(const Instance& instance, const DenseTensor& synthetic);

/// Theorem 3.5 / Figure 2: the two-table instance encoding a single table
/// T : [d] → Z≥0 with amplification Δ.
///   dom(A) = [d], dom(B) = [d]×[rows], dom(C) = [Δ];
///   R1(a, (b1, b2)) = 1[a = b1 ∧ b2 < T(a)],  R2 ≡ 1.
/// Join size = Δ·Σ_a T(a); local sensitivity = Δ.
struct Theorem35Instance {
  Instance instance;
  int64_t d = 0;      ///< |D| of the single-table problem
  int64_t rows = 0;   ///< per-value row capacity
  int64_t delta = 0;  ///< amplification Δ
};
Result<Theorem35Instance> MakeTheorem35Instance(
    const std::vector<int64_t>& single_table, int64_t rows, int64_t delta);

/// Lifts single-table queries q : [d] → [-1,1] to the Theorem 3.5 two-table
/// family: Q1 = {q ∘ π_A}, Q2 = {all-ones}. The reduction identity is
/// q′(I) = Δ·q(T).
Result<QueryFamily> LiftSingleTableQueries(
    const Theorem35Instance& construction,
    const std::vector<std::vector<double>>& single_table_queries);

/// Single-table answer Σ_a q(a)·T(a).
double SingleTableAnswer(const std::vector<int64_t>& single_table,
                         const std::vector<double>& query);

/// Figure 3: the non-uniform two-table instance — k join values, the i-th
/// with degree i in both relations (i ∈ [k]). Input size k(k+1), join size
/// Σ i², local sensitivity k. (k plays √n in the paper's description.)
Instance MakeFigure3Instance(int64_t k);

/// Example 4.2: degree staircase — for level i ∈ {0..⌊(2/3)log2 k⌋},
/// ⌈k²/8^i⌉ join values of degree 2^i in both relations. Δ = 2^{i_max},
/// count = Θ(k² log k).
struct Example42Instance {
  Instance instance;
  std::vector<int64_t> level_values;   ///< join values per level
  std::vector<int64_t> level_degrees;  ///< degree per level (2^i)
};
Example42Instance MakeExample42Instance(int64_t k);

/// Theorem 1.6 instantiated on the 3-relation path query
/// R1(X0,X1) ⋈ R2(X1,X2) ⋈ R3(X2,X3): R1 encodes T diagonally on
/// dom = [d]×[rows]; R2, R3 are all-ones with side domains of size
/// ⌈sqrt(Δ)⌉ (so the amplification is side²). Join size = side²·Σ T.
struct Theorem16PathInstance {
  Instance instance;
  int64_t d = 0;
  int64_t rows = 0;
  int64_t side = 0;  ///< Δ = side²
};
Result<Theorem16PathInstance> MakeTheorem16PathInstance(
    const std::vector<int64_t>& single_table, int64_t rows, int64_t side);

}  // namespace dpjoin

#endif  // DPJOIN_LOWERBOUND_HARD_INSTANCES_H_
