// Empirical differential-privacy distinguisher (Example 3.1 methodology).
//
// Estimates Pr[statistic(A(I)) ∈ S] and Pr[statistic(A(I′)) ∈ S] on a pair
// of neighboring instances by repeated runs, and converts the gap into a
// lower bound on the ε any (ε, δ)-DP algorithm must spend to produce that
// behaviour: DP requires p ≤ e^ε·p′ + δ, so ε ≥ ln((p − δ)/p′).

#ifndef DPJOIN_LOWERBOUND_DISTINGUISHER_H_
#define DPJOIN_LOWERBOUND_DISTINGUISHER_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "relational/instance.h"

namespace dpjoin {

/// One mechanism run → a real-valued statistic of its output.
using MechanismStatistic =
    std::function<double(const Instance& instance, Rng& rng)>;

/// Result of an empirical distinguishing experiment.
struct DistinguisherResult {
  double p_event = 0.0;        ///< \hat{Pr}[stat(A(I)) ≥ threshold]
  double p_event_prime = 0.0;  ///< \hat{Pr}[stat(A(I′)) ≥ threshold]
  int64_t trials = 0;
  /// Empirical lower bound on ε (−inf-free; 0 when no violation is visible,
  /// +large when p′ estimates to 0 while p does not — capped at `cap`).
  double empirical_epsilon = 0.0;
};

/// Runs `trials` independent executions on each instance and thresholds the
/// statistic.
DistinguisherResult DistinguishByThreshold(const MechanismStatistic& statistic,
                                           const Instance& instance,
                                           const Instance& neighbor,
                                           double threshold, int64_t trials,
                                           double delta, Rng& rng,
                                           double cap = 20.0);

/// ε lower bound implied by event probabilities under (ε, δ)-DP:
/// max over both directions of ln((p − δ)/p′), clamped to [0, cap].
double EmpiricalEpsilonLowerBound(double p, double p_prime, double delta,
                                  int64_t trials, double cap = 20.0);

}  // namespace dpjoin

#endif  // DPJOIN_LOWERBOUND_DISTINGUISHER_H_
