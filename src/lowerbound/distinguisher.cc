#include "lowerbound/distinguisher.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dpjoin {

double EmpiricalEpsilonLowerBound(double p, double p_prime, double delta,
                                  int64_t trials, double cap) {
  DPJOIN_CHECK_GT(trials, 0);
  // Smooth zero-probability estimates with the rule-of-three style floor
  // 1/(trials+1) so a 0-count gives a finite (but large) bound.
  const double floor = 1.0 / static_cast<double>(trials + 1);
  auto one_direction = [&](double a, double b) {
    const double numer = a - delta;
    if (numer <= 0.0) return 0.0;
    return std::log(numer / std::max(b, floor));
  };
  const double bound =
      std::max(one_direction(p, p_prime), one_direction(p_prime, p));
  return std::clamp(bound, 0.0, cap);
}

DistinguisherResult DistinguishByThreshold(const MechanismStatistic& statistic,
                                           const Instance& instance,
                                           const Instance& neighbor,
                                           double threshold, int64_t trials,
                                           double delta, Rng& rng,
                                           double cap) {
  DPJOIN_CHECK_GT(trials, 0);
  DistinguisherResult result;
  result.trials = trials;
  int64_t hits = 0, hits_prime = 0;
  for (int64_t t = 0; t < trials; ++t) {
    Rng child = rng.Fork();
    if (statistic(instance, child) >= threshold) ++hits;
    Rng child_prime = rng.Fork();
    if (statistic(neighbor, child_prime) >= threshold) ++hits_prime;
  }
  result.p_event = static_cast<double>(hits) / static_cast<double>(trials);
  result.p_event_prime =
      static_cast<double>(hits_prime) / static_cast<double>(trials);
  result.empirical_epsilon = EmpiricalEpsilonLowerBound(
      result.p_event, result.p_event_prime, delta, trials, cap);
  return result;
}

}  // namespace dpjoin
