// Mixed-radix coding between tuples of small integers and flat indices.
//
// Used to address (a) tuples within a per-table domain D_i = Π_x dom(x) and
// (b) joint tuples within the release domain D = Π_i D_i. The last digit is
// the fastest-varying one (row-major), so iterating flat indices in order
// enumerates tuples lexicographically.

#ifndef DPJOIN_COMMON_MIXED_RADIX_H_
#define DPJOIN_COMMON_MIXED_RADIX_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dpjoin {

/// A fixed shape (r_0, ..., r_{k-1}) of positive radices with helpers to
/// encode digit vectors into flat indices and back.
class MixedRadix {
 public:
  MixedRadix() = default;

  explicit MixedRadix(std::vector<int64_t> radices)
      : radices_(std::move(radices)) {
    strides_.resize(radices_.size());
    int64_t stride = 1;
    for (size_t i = radices_.size(); i-- > 0;) {
      DPJOIN_CHECK_GT(radices_[i], 0);
      strides_[i] = stride;
      // Guard against overflow of the total size.
      DPJOIN_CHECK(stride <= (INT64_MAX / radices_[i]),
                   "mixed-radix space overflows int64");
      stride *= radices_[i];
    }
    size_ = stride;
  }

  size_t num_digits() const { return radices_.size(); }
  int64_t radix(size_t i) const { return radices_[i]; }
  const std::vector<int64_t>& radices() const { return radices_; }

  /// Total number of codable tuples (product of radices; 1 when empty).
  int64_t size() const { return size_; }

  /// Flat index of a digit vector.
  int64_t Encode(const std::vector<int64_t>& digits) const {
    DPJOIN_CHECK_EQ(digits.size(), radices_.size());
    int64_t index = 0;
    for (size_t i = 0; i < digits.size(); ++i) {
      DPJOIN_CHECK(digits[i] >= 0 && digits[i] < radices_[i],
                   "digit out of range");
      index += digits[i] * strides_[i];
    }
    return index;
  }

  /// Digit vector of a flat index.
  std::vector<int64_t> Decode(int64_t index) const {
    DPJOIN_CHECK(index >= 0 && index < size_, "index out of range");
    std::vector<int64_t> digits(radices_.size());
    DecodeInto(index, &digits);
    return digits;
  }

  /// Decode into a pre-sized buffer (avoids allocation in hot loops).
  void DecodeInto(int64_t index, std::vector<int64_t>* digits) const {
    DPJOIN_CHECK_EQ(digits->size(), radices_.size());
    for (size_t i = 0; i < radices_.size(); ++i) {
      (*digits)[i] = (index / strides_[i]) % radices_[i];
    }
  }

  /// Extracts digit i of a flat index without full decoding.
  int64_t Digit(int64_t index, size_t i) const {
    return (index / strides_[i]) % radices_[i];
  }

  int64_t stride(size_t i) const { return strides_[i]; }

 private:
  std::vector<int64_t> radices_;
  std::vector<int64_t> strides_;
  int64_t size_ = 1;
};

/// Row-major digit odometer over a MixedRadix shape, seekable to any flat
/// index. Walking flat indices with Advance() enumerates tuples
/// lexicographically (last digit fastest); SeekTo lets a parallel worker
/// start its block [lo, hi) mid-sequence without replaying [0, lo).
///
/// Advance() reports the most-significant digit position that changed, so
/// callers maintaining prefix products over the digits (PMW's multiplicative
/// update, all-query tensor evaluation) can refresh only the suffix.
class Odometer {
 public:
  explicit Odometer(const MixedRadix& shape)
      : shape_(&shape), digits_(shape.num_digits(), 0) {}

  Odometer(const MixedRadix& shape, int64_t start) : Odometer(shape) {
    SeekTo(start);
  }

  /// Positions the odometer at `flat` (must be in [0, shape.size())).
  void SeekTo(int64_t flat) { shape_->DecodeInto(flat, &digits_); }

  const std::vector<int64_t>& digits() const { return digits_; }
  int64_t digit(size_t i) const { return digits_[i]; }

  /// Advances to the next tuple. Returns the most-significant digit position
  /// that changed — digits [pos, num_digits) are new, digits below pos are
  /// unchanged. Advancing past the last tuple wraps to all-zeros and
  /// returns 0.
  size_t Advance() {
    size_t i = digits_.size();
    while (i-- > 0) {
      if (++digits_[i] < shape_->radix(i)) return i;
      digits_[i] = 0;
      if (i == 0) break;
    }
    return 0;
  }

 private:
  const MixedRadix* shape_;
  std::vector<int64_t> digits_;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_MIXED_RADIX_H_
