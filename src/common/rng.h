// Deterministic pseudo-random number generation.
//
// Every randomized component in dpjoin takes an explicit Rng&, so that tests
// and benchmarks are reproducible from a single seed. The Rng is NOT a
// cryptographically secure source; this library is a research reproduction,
// and the DP guarantees proved in the paper assume ideal randomness.

#ifndef DPJOIN_COMMON_RNG_H_
#define DPJOIN_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/check.h"

namespace dpjoin {

/// Seeded random generator used throughout the library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    DPJOIN_CHECK(lo < hi, "empty interval");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DPJOIN_CHECK(lo <= hi, "empty range");
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  size_t UniformIndex(size_t n) {
    DPJOIN_CHECK(n > 0, "empty index range");
    return static_cast<size_t>(
        std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_));
  }

  /// Standard normal variate.
  double Gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard exponential variate (rate 1).
  double Exponential() {
    return std::exponential_distribution<double>(1.0)(engine_);
  }

  /// Spawns an independent child generator; used to give each repetition of
  /// an experiment its own stream without coupling to the parent's state.
  ///
  /// The single parent draw is expanded through a SplitMix64 stream into a
  /// full std::seed_seq before seeding the child. Seeding mt19937_64
  /// directly from one 64-bit value leaves the remaining 19968 bits of
  /// state derived by a weak linear recurrence, which produces measurably
  /// correlated parent/child streams; the SplitMix64 + seed_seq expansion
  /// decorrelates them while keeping forks fully deterministic.
  Rng Fork() {
    uint64_t state = engine_();
    const uint64_t a = SplitMix64Next(state);
    const uint64_t b = SplitMix64Next(state);
    const uint64_t c = SplitMix64Next(state);
    const uint64_t d = SplitMix64Next(state);
    std::seed_seq seq{
        static_cast<uint32_t>(a), static_cast<uint32_t>(a >> 32),
        static_cast<uint32_t>(b), static_cast<uint32_t>(b >> 32),
        static_cast<uint32_t>(c), static_cast<uint32_t>(c >> 32),
        static_cast<uint32_t>(d), static_cast<uint32_t>(d >> 32)};
    Rng child;
    child.engine_.seed(seq);
    return child;
  }

  /// Underlying engine, for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// One step of the SplitMix64 sequence (Steele, Lea & Flood 2014).
  static uint64_t SplitMix64Next(uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_RNG_H_
