// Deterministic pseudo-random number generation.
//
// Every randomized component in dpjoin takes an explicit Rng&, so that tests
// and benchmarks are reproducible from a single seed. The Rng is NOT a
// cryptographically secure source; this library is a research reproduction,
// and the DP guarantees proved in the paper assume ideal randomness.

#ifndef DPJOIN_COMMON_RNG_H_
#define DPJOIN_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/check.h"

namespace dpjoin {

/// Seeded random generator used throughout the library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    DPJOIN_CHECK(lo < hi, "empty interval");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DPJOIN_CHECK(lo <= hi, "empty range");
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  size_t UniformIndex(size_t n) {
    DPJOIN_CHECK(n > 0, "empty index range");
    return static_cast<size_t>(
        std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_));
  }

  /// Standard normal variate.
  double Gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard exponential variate (rate 1).
  double Exponential() {
    return std::exponential_distribution<double>(1.0)(engine_);
  }

  /// Spawns an independent child generator; used to give each repetition of
  /// an experiment its own stream without coupling to the parent's state.
  Rng Fork() { return Rng(engine_()); }

  /// Underlying engine, for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_RNG_H_
