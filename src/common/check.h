// DPJOIN_CHECK: invariant assertions for programmer errors.
//
// Unlike Status (recoverable, caller-visible errors), a failed CHECK means
// the library itself is in a state it promised could not happen; it prints
// the failure and aborts. Checks stay on in release builds (database-engine
// practice: a wrong answer is worse than a crash).

#ifndef DPJOIN_COMMON_CHECK_H_
#define DPJOIN_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dpjoin {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::cerr << "DPJOIN_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace dpjoin

#define DPJOIN_CHECK(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #cond,       \
                                      ::std::string{__VA_ARGS__});     \
    }                                                                  \
  } while (false)

#define DPJOIN_CHECK_EQ(a, b)                                               \
  do {                                                                      \
    if (!((a) == (b))) {                                                    \
      ::std::ostringstream _oss;                                            \
      _oss << "expected " << (a) << " == " << (b);                          \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #a " == " #b,     \
                                      _oss.str());                          \
    }                                                                       \
  } while (false)

#define DPJOIN_CHECK_LT(a, b)                                               \
  do {                                                                      \
    if (!((a) < (b))) {                                                     \
      ::std::ostringstream _oss;                                            \
      _oss << "expected " << (a) << " < " << (b);                           \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #a " < " #b,      \
                                      _oss.str());                          \
    }                                                                       \
  } while (false)

#define DPJOIN_CHECK_LE(a, b)                                               \
  do {                                                                      \
    if (!((a) <= (b))) {                                                    \
      ::std::ostringstream _oss;                                            \
      _oss << "expected " << (a) << " <= " << (b);                          \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #a " <= " #b,     \
                                      _oss.str());                          \
    }                                                                       \
  } while (false)

#define DPJOIN_CHECK_GT(a, b)                                               \
  do {                                                                      \
    if (!((a) > (b))) {                                                     \
      ::std::ostringstream _oss;                                            \
      _oss << "expected " << (a) << " > " << (b);                           \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #a " > " #b,      \
                                      _oss.str());                          \
    }                                                                       \
  } while (false)

#define DPJOIN_CHECK_GE(a, b)                                               \
  do {                                                                      \
    if (!((a) >= (b))) {                                                    \
      ::std::ostringstream _oss;                                            \
      _oss << "expected " << (a) << " >= " << (b);                          \
      ::dpjoin::internal::CheckFailed(__FILE__, __LINE__, #a " >= " #b,     \
                                      _oss.str());                          \
    }                                                                       \
  } while (false)

#endif  // DPJOIN_COMMON_CHECK_H_
