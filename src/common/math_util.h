// Small numeric helpers shared across modules.

#ifndef DPJOIN_COMMON_MATH_UTIL_H_
#define DPJOIN_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dpjoin {

/// log2 ceiling of a positive value; Log2Ceil(1) == 0.
inline int64_t Log2Ceil(double x) {
  DPJOIN_CHECK_GT(x, 0.0);
  return static_cast<int64_t>(std::ceil(std::log2(x)));
}

/// Integer power with overflow checks (base >= 0, exp >= 0).
inline int64_t IPow(int64_t base, int64_t exp) {
  DPJOIN_CHECK_GE(base, 0);
  DPJOIN_CHECK_GE(exp, 0);
  int64_t result = 1;
  for (int64_t i = 0; i < exp; ++i) {
    DPJOIN_CHECK(base == 0 || result <= INT64_MAX / std::max<int64_t>(base, 1),
                 "IPow overflow");
    result *= base;
  }
  return result;
}

/// Numerically stable log-sum-exp.
inline double LogSumExp(const std::vector<double>& xs) {
  DPJOIN_CHECK(!xs.empty(), "LogSumExp of empty vector");
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;  // all -inf (or a +inf dominates)
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  DPJOIN_CHECK_LE(lo, hi);
  return std::min(hi, std::max(lo, x));
}

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
inline bool NearlyEqual(double a, double b, double rtol = 1e-9,
                        double atol = 1e-12) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_MATH_UTIL_H_
