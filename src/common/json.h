// Minimal JSON document model: parse, build, serialize.
//
// The serving protocol (engine/server.h) speaks JSON-lines and the budget
// ledger persists itself as JSON; this is the small dependency-free value
// type backing both. It is NOT a general-purpose JSON library: numbers are
// doubles (64-bit ids travel as hex strings in the protocol for exactly
// this reason), object keys keep insertion order (so serialized output is
// deterministic and golden-testable), and duplicate keys are rejected at
// parse time.

#ifndef DPJOIN_COMMON_JSON_H_
#define DPJOIN_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dpjoin {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructs null.
  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; DPJOIN_CHECK on kind mismatch (programmer error).
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array elements (CHECK: array).
  const std::vector<JsonValue>& items() const;
  void Append(JsonValue v);

  /// Object members in insertion order (CHECK: object).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// Pointer to the member's value, or nullptr when absent (CHECK: object).
  const JsonValue* Find(const std::string& key) const;
  /// Appends the member, or replaces an existing one in place.
  JsonValue& Set(const std::string& key, JsonValue v);

  /// Compact single-line serialization (object keys in insertion order,
  /// numbers via %.17g so round-trips are value-exact).
  std::string Serialize() const;

  /// Parses one JSON document; trailing non-whitespace, duplicate object
  /// keys, and nesting deeper than 64 levels are InvalidArgument.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Formats `v` as a lowercase 0x-prefixed hex literal — the protocol's
/// encoding for 64-bit ids (JSON numbers are doubles and lose bits ≥ 2^53).
std::string JsonHexId(uint64_t v);

/// Parses a JsonHexId string back to the id.
Result<uint64_t> ParseJsonHexId(const std::string& text);

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_JSON_H_
