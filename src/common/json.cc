#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace dpjoin {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  DPJOIN_CHECK(is_bool(), "JsonValue::AsBool on a non-bool");
  return bool_;
}

double JsonValue::AsDouble() const {
  DPJOIN_CHECK(is_number(), "JsonValue::AsDouble on a non-number");
  return number_;
}

const std::string& JsonValue::AsString() const {
  DPJOIN_CHECK(is_string(), "JsonValue::AsString on a non-string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  DPJOIN_CHECK(is_array(), "JsonValue::items on a non-array");
  return items_;
}

void JsonValue::Append(JsonValue v) {
  DPJOIN_CHECK(is_array(), "JsonValue::Append on a non-array");
  items_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  DPJOIN_CHECK(is_object(), "JsonValue::members on a non-object");
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  DPJOIN_CHECK(is_object(), "JsonValue::Find on a non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  DPJOIN_CHECK(is_object(), "JsonValue::Set on a non-object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

namespace {

void SerializeString(const std::string& s, std::ostringstream& oss) {
  oss << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\r':
        oss << "\\r";
        break;
      case '\t':
        oss << "\\t";
        break;
      case '\b':
        oss << "\\b";
        break;
      case '\f':
        oss << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

void SerializeValue(const JsonValue& v, std::ostringstream& oss) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      oss << "null";
      return;
    case JsonValue::Kind::kBool:
      oss << (v.AsBool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: {
      const double d = v.AsDouble();
      // JSON has no NaN/Inf literals; encode as null (never produced by the
      // library's own writers, but keeps Serialize total).
      if (!std::isfinite(d)) {
        oss << "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      oss << buf;
      return;
    }
    case JsonValue::Kind::kString:
      SerializeString(v.AsString(), oss);
      return;
    case JsonValue::Kind::kArray: {
      oss << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) oss << ", ";
        first = false;
        SerializeValue(item, oss);
      }
      oss << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      oss << '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) oss << ", ";
        first = false;
        SerializeString(key, oss);
        oss << ": ";
        SerializeValue(value, oss);
      }
      oss << '}';
      return;
    }
  }
}

// Recursive-descent parser over [pos, text.size()).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    DPJOIN_ASSIGN_OR_RETURN(root, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > 64) return Error("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      std::string s;
      DPJOIN_ASSIGN_OR_RETURN(s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseKeyword() {
    static constexpr struct {
      const char* token;
      size_t len;
    } kKeywords[] = {{"true", 4}, {"false", 5}, {"null", 4}};
    for (const auto& kw : kKeywords) {
      if (text_.compare(pos_, kw.len, kw.token) == 0) {
        pos_ += kw.len;
        if (kw.token[0] == 't') return JsonValue::Bool(true);
        if (kw.token[0] == 'f') return JsonValue::Bool(false);
        return JsonValue::Null();
      }
    }
    return Error("unrecognized token");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    // JSON numbers start with '-' or a digit (no '+', no leading '.').
    if (text_[pos_] != '-' &&
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected a value");
    }
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      size_t consumed = 0;
      const double v = std::stod(token, &consumed);
      if (consumed != token.size()) return Error("bad number '" + token + "'");
      return JsonValue::Number(v);
    } catch (const std::exception&) {
      return Error("bad number '" + token + "'");
    }
  }

  // Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendCodePoint(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          uint32_t cp = 0;
          DPJOIN_ASSIGN_OR_RETURN(cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Error("high surrogate without a low surrogate");
            }
            uint32_t low = 0;
            DPJOIN_ASSIGN_OR_RETURN(low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendCodePoint(cp, out);
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    DPJOIN_CHECK(Consume('['), "ParseArray without '['");
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      JsonValue item;
      DPJOIN_ASSIGN_OR_RETURN(item, ParseValue(depth + 1));
      array.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    DPJOIN_CHECK(Consume('{'), "ParseObject without '{'");
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      std::string key;
      DPJOIN_ASSIGN_OR_RETURN(key, ParseString());
      if (object.Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      DPJOIN_ASSIGN_OR_RETURN(value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Serialize() const {
  std::ostringstream oss;
  SerializeValue(*this, oss);
  return oss.str();
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonHexId(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Result<uint64_t> ParseJsonHexId(const std::string& text) {
  if (text.size() < 3 || text.compare(0, 2, "0x") != 0 || text.size() > 18) {
    return Status::InvalidArgument("bad hex id '" + text +
                                   "' (want 0x<up to 16 hex digits>)");
  }
  uint64_t value = 0;
  for (size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("bad hex id '" + text + "'");
    }
  }
  return value;
}

}  // namespace dpjoin
