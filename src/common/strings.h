// Small shared string helpers (header-only).

#ifndef DPJOIN_COMMON_STRINGS_H_
#define DPJOIN_COMMON_STRINGS_H_

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace dpjoin {

/// `s` without leading/trailing whitespace.
inline std::string TrimWhitespace(const std::string& s) {
  size_t lo = 0, hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

/// Splits on `sep` and trims each part — the tokenization both schema
/// front doors (spec-file parser and server protocol) share, so
/// "R1:A, B" means the same thing everywhere.
inline std::vector<std::string> SplitAndTrim(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::stringstream ss(s);
  while (std::getline(ss, part, sep)) parts.push_back(TrimWhitespace(part));
  return parts;
}

/// 64-bit FNV-1a over the bytes of `s` — the library's string-hash
/// convention (spec hashes, catalog schema keys).
inline uint64_t Fnv1aHash(const std::string& s) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_STRINGS_H_
