// Result<T>: value-or-Status, the library's StatusOr.

#ifndef DPJOIN_COMMON_RESULT_H_
#define DPJOIN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace dpjoin {

/// Holds either a value of type T or a non-OK Status.
///
/// Access to the value when the Result holds an error is a programmer error
/// and aborts (DPJOIN_CHECK), mirroring arrow::Result semantics.
///
/// [[nodiscard]]: ignoring a returned Result drops an error path on the
/// floor — in this library that can mean a privacy-accounting step silently
/// failed, so every discard is a compile error under -Werror. A genuinely
/// intentional discard must be spelled `(void)expr;` with a comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    DPJOIN_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    DPJOIN_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    DPJOIN_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    DPJOIN_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dpjoin

/// Evaluates `expr` (a Result<T>), propagating errors; on success assigns
/// the unwrapped value to `lhs`.
#define DPJOIN_ASSIGN_OR_RETURN(lhs, expr)                     \
  DPJOIN_ASSIGN_OR_RETURN_IMPL_(                               \
      DPJOIN_CONCAT_(_dpjoin_result_, __LINE__), lhs, expr)

#define DPJOIN_CONCAT_INNER_(a, b) a##b
#define DPJOIN_CONCAT_(a, b) DPJOIN_CONCAT_INNER_(a, b)

#define DPJOIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // DPJOIN_COMMON_RESULT_H_
