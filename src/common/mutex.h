// Annotated mutex primitives: the lock types the thread-safety analysis
// understands.
//
// std::mutex from libstdc++ carries no capability attributes, so Clang's
// `-Wthread-safety` cannot reason about it. These thin wrappers add the
// annotations (and nothing else — each is exactly a std::mutex /
// std::lock_guard / std::condition_variable_any under the hood):
//
//   Mutex      — a CAPABILITY("mutex"); fields it protects are declared
//                `T field GUARDED_BY(mu_);`.
//   MutexLock  — SCOPED_CAPABILITY std::lock_guard equivalent.
//   CondVar    — condition variable waiting directly on a Mutex; Wait()
//                REQUIRES the mutex (it is released while blocked and
//                reacquired before returning, like std::condition_variable).
//
// Explicit Lock()/Unlock() (annotated ACQUIRE/RELEASE) exist for the rare
// code shape a scoped guard cannot express — e.g. a worker loop that
// unlocks around a work phase (see common/thread_pool.cc). Prefer
// MutexLock everywhere else.

#ifndef DPJOIN_COMMON_MUTEX_H_
#define DPJOIN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dpjoin {

/// An annotated std::mutex. Non-recursive, non-copyable.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling, so CondVar (condition_variable_any) can park
  /// on the Mutex directly. Library code should use Lock()/Unlock().
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over a Mutex, visible to the analysis: holding a
/// MutexLock satisfies GUARDED_BY/REQUIRES on everything `mu` protects for
/// the lexical scope of the guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable parking directly on a Mutex. Semantics match
/// std::condition_variable: Wait atomically releases the mutex while
/// blocked and holds it again when it returns; spurious wakeups are
/// possible, so callers re-test their predicate in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wakeup-to-wakeup wait; `mu` must be held.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_MUTEX_H_
