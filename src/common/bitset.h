// Small fixed-capacity bitsets for attribute sets and relation sets.
//
// Join queries have constant size (data complexity — paper §1.1), so both
// the attribute universe and the relation universe fit in one 64-bit word.

#ifndef DPJOIN_COMMON_BITSET_H_
#define DPJOIN_COMMON_BITSET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace dpjoin {

/// A set of small non-negative integers (capacity 64) with value semantics.
/// Tag is a phantom type so AttributeSet and RelationSet don't mix.
template <typename Tag>
class SmallBitset {
 public:
  static constexpr int kCapacity = 64;

  constexpr SmallBitset() = default;

  /// Singleton set {i}.
  static SmallBitset Of(int i) {
    SmallBitset s;
    s.Insert(i);
    return s;
  }

  /// {0, 1, ..., n-1}.
  static SmallBitset FirstN(int n) {
    DPJOIN_CHECK(n >= 0 && n <= kCapacity, "bitset capacity exceeded");
    SmallBitset s;
    s.bits_ = (n == kCapacity) ? ~0ULL : ((1ULL << n) - 1);
    return s;
  }

  static SmallBitset FromElements(const std::vector<int>& elements) {
    SmallBitset s;
    for (int e : elements) s.Insert(e);
    return s;
  }

  void Insert(int i) {
    DPJOIN_CHECK(i >= 0 && i < kCapacity, "bitset element out of range");
    bits_ |= (1ULL << i);
  }

  void Erase(int i) {
    DPJOIN_CHECK(i >= 0 && i < kCapacity, "bitset element out of range");
    bits_ &= ~(1ULL << i);
  }

  bool Contains(int i) const {
    DPJOIN_CHECK(i >= 0 && i < kCapacity, "bitset element out of range");
    return (bits_ >> i) & 1ULL;
  }

  int Count() const { return std::popcount(bits_); }
  bool Empty() const { return bits_ == 0; }

  bool IsSubsetOf(SmallBitset other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  bool Intersects(SmallBitset other) const {
    return (bits_ & other.bits_) != 0;
  }

  SmallBitset Union(SmallBitset other) const {
    SmallBitset s;
    s.bits_ = bits_ | other.bits_;
    return s;
  }
  SmallBitset Intersect(SmallBitset other) const {
    SmallBitset s;
    s.bits_ = bits_ & other.bits_;
    return s;
  }
  SmallBitset Minus(SmallBitset other) const {
    SmallBitset s;
    s.bits_ = bits_ & ~other.bits_;
    return s;
  }

  /// Elements in ascending order.
  std::vector<int> Elements() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(Count()));
    uint64_t b = bits_;
    while (b != 0) {
      const int i = std::countr_zero(b);
      out.push_back(i);
      b &= b - 1;
    }
    return out;
  }

  /// Smallest element; set must be non-empty.
  int First() const {
    DPJOIN_CHECK(bits_ != 0, "First() of empty set");
    return std::countr_zero(bits_);
  }

  uint64_t bits() const { return bits_; }

  friend bool operator==(SmallBitset a, SmallBitset b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(SmallBitset a, SmallBitset b) {
    return a.bits_ != b.bits_;
  }
  friend bool operator<(SmallBitset a, SmallBitset b) {
    return a.bits_ < b.bits_;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int e : Elements()) {
      if (!first) out += ",";
      out += std::to_string(e);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_ = 0;
};

struct AttributeTag {};
struct RelationTag {};

/// A set of attribute indices of a JoinQuery.
using AttributeSet = SmallBitset<AttributeTag>;
/// A set of relation indices of a JoinQuery.
using RelationSet = SmallBitset<RelationTag>;

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_BITSET_H_
