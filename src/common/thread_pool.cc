#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dpjoin {

namespace {

// Set while the current thread executes blocks of an active parallel region;
// nested regions run inline (a worker waiting for the pool would deadlock).
thread_local bool t_in_parallel_region = false;

}  // namespace

struct ThreadPool::Impl {
  Mutex region_mu ACQUIRED_BEFORE(mu);  // serializes parallel regions

  Mutex mu;  // guards everything below
  CondVar work_cv;
  CondVar done_cv;
  std::vector<std::thread> workers GUARDED_BY(mu);
  bool shutdown GUARDED_BY(mu) = false;

  // Active job, published under `mu` with a fresh generation number.
  uint64_t gen GUARDED_BY(mu) = 0;
  const std::function<void(int64_t)>* job GUARDED_BY(mu) = nullptr;
  int64_t num_blocks GUARDED_BY(mu) = 0;
  int max_participants GUARDED_BY(mu) = 0;
  std::atomic<int64_t> next_block{0};
  int64_t blocks_done GUARDED_BY(mu) = 0;
  int participants GUARDED_BY(mu) = 0;  // workers inside the claim loop

  // Explicit Lock/Unlock rather than a scoped guard: the loop drops `mu`
  // around the block-claiming work phase, a shape MutexLock cannot express.
  // The lock is held at the top and bottom of every iteration, which is
  // exactly what the thread-safety analysis verifies.
  void WorkerLoop() EXCLUDES(mu) {
    uint64_t seen_gen = 0;
    mu.Lock();
    for (;;) {
      while (!shutdown && !(job != nullptr && gen != seen_gen)) {
        work_cv.Wait(mu);
      }
      if (shutdown) {
        mu.Unlock();
        return;
      }
      seen_gen = gen;
      if (participants >= max_participants) continue;  // job fully staffed
      ++participants;
      const std::function<void(int64_t)>* my_job = job;
      const int64_t my_blocks = num_blocks;
      mu.Unlock();
      t_in_parallel_region = true;
      int64_t done = 0;
      for (;;) {
        const int64_t block = next_block.fetch_add(1);
        if (block >= my_blocks) break;
        (*my_job)(block);
        ++done;
      }
      t_in_parallel_region = false;
      mu.Lock();
      --participants;
      blocks_done += done;
      done_cv.NotifyAll();
    }
  }

  void EnsureWorkers(size_t n) REQUIRES(mu) {
    // Caller holds `mu`; safe because workers only read shared state under
    // `mu` or via the atomic block counter.
    while (workers.size() < n) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock (no Run can be concurrent
  // with destruction), then join without holding `mu` — a parked worker
  // needs the lock to observe `shutdown` and exit.
  std::vector<std::thread> workers;
  {
    MutexLock lock(impl_->mu);
    impl_->shutdown = true;
    workers = std::move(impl_->workers);
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& worker : workers) worker.join();
  delete impl_;
}

void ThreadPool::Run(int64_t num_blocks, int max_threads,
                     const std::function<void(int64_t)>& job) {
  if (num_blocks <= 0) return;
  max_threads = std::clamp(max_threads, 1, kMaxThreads);
  if (max_threads == 1 || num_blocks == 1 || t_in_parallel_region) {
    const bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    for (int64_t block = 0; block < num_blocks; ++block) job(block);
    t_in_parallel_region = was_nested;
    return;
  }

  Impl& impl = *impl_;
  MutexLock region(impl.region_mu);
  {
    MutexLock lock(impl.mu);
    impl.EnsureWorkers(static_cast<size_t>(max_threads - 1));
    impl.job = &job;
    impl.num_blocks = num_blocks;
    impl.max_participants = max_threads - 1;
    impl.next_block.store(0);
    impl.blocks_done = 0;
    ++impl.gen;
  }
  impl.work_cv.NotifyAll();

  // The calling thread is a participant too.
  t_in_parallel_region = true;
  int64_t done = 0;
  for (;;) {
    const int64_t block = impl.next_block.fetch_add(1);
    if (block >= num_blocks) break;
    job(block);
    ++done;
  }
  t_in_parallel_region = false;

  // Wait until every block finished AND no worker is still inside the claim
  // loop — a late worker must not survive into the next region, where the
  // reset block counter would hand it stale work.
  MutexLock lock(impl.mu);
  impl.blocks_done += done;
  while (!(impl.blocks_done == num_blocks && impl.participants == 0)) {
    impl.done_cv.Wait(impl.mu);
  }
  impl.job = nullptr;
}

namespace {

std::atomic<int> g_thread_override{0};  // 0 = unset, use DefaultThreads()

// Per-thread override installed by ScopedThreads; 0 = defer to the
// process-wide setting. Wins over g_thread_override so concurrent user
// threads can hold different counts without racing on the global.
thread_local int t_thread_override = 0;

}  // namespace

int ExecutionContext::DefaultThreads() {
  static const int threads = [] {
    if (const char* env = std::getenv("DPJOIN_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return std::min(n, ThreadPool::kMaxThreads);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return 1;
    return std::min(static_cast<int>(hw), ThreadPool::kMaxThreads);
  }();
  return threads;
}

int ExecutionContext::threads() {
  if (t_thread_override > 0) return t_thread_override;
  const int n = g_thread_override.load(std::memory_order_relaxed);
  return n > 0 ? n : DefaultThreads();
}

void ExecutionContext::SetThreads(int n) {
  g_thread_override.store(n > 0 ? std::min(n, ThreadPool::kMaxThreads) : 0,
                          std::memory_order_relaxed);
}

namespace {

std::atomic<int64_t> g_tensor_grain_override{0};     // 0 = env/default
std::atomic<int64_t> g_join_root_grain_override{0};  // 0 = env/default

int64_t GrainFromEnv(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long g = std::atoll(env);
    if (g > 0) return static_cast<int64_t>(g);
  }
  return fallback;
}

}  // namespace

int64_t ExecutionContext::TensorGrain() {
  const int64_t g = g_tensor_grain_override.load(std::memory_order_relaxed);
  if (g > 0) return g;
  static const int64_t env_default =
      GrainFromEnv("DPJOIN_GRAIN_TENSOR", kDefaultTensorGrain);
  return env_default;
}

void ExecutionContext::SetTensorGrain(int64_t g) {
  g_tensor_grain_override.store(g > 0 ? g : 0, std::memory_order_relaxed);
}

int64_t ExecutionContext::JoinRootGrain() {
  const int64_t g = g_join_root_grain_override.load(std::memory_order_relaxed);
  if (g > 0) return g;
  static const int64_t env_default =
      GrainFromEnv("DPJOIN_GRAIN_JOIN_ROOT", kDefaultJoinRootGrain);
  return env_default;
}

void ExecutionContext::SetJoinRootGrain(int64_t g) {
  g_join_root_grain_override.store(g > 0 ? g : 0, std::memory_order_relaxed);
}

ScopedThreads::ScopedThreads(int n) : engaged_(n > 0), saved_(0) {
  if (engaged_) {
    saved_ = t_thread_override;
    t_thread_override = std::min(n, ThreadPool::kMaxThreads);
  }
}

ScopedThreads::~ScopedThreads() {
  if (engaged_) t_thread_override = saved_;
}

int64_t NumBlocks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  grain = std::max<int64_t>(grain, 1);
  return (end - begin + grain - 1) / grain;
}

void ParallelForBlocks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& body,
    int num_threads) {
  const int64_t blocks = NumBlocks(begin, end, grain);
  if (blocks == 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int threads =
      num_threads > 0 ? num_threads : ExecutionContext::threads();
  ThreadPool::Global().Run(blocks, threads, [&](int64_t block) {
    const int64_t lo = begin + block * grain;
    const int64_t hi = std::min(end, lo + grain);
    body(block, lo, hi);
  });
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 int num_threads) {
  ParallelForBlocks(
      begin, end, grain,
      [&](int64_t, int64_t lo, int64_t hi) { body(lo, hi); }, num_threads);
}

double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t, int64_t)>& block_sum,
                   int num_threads) {
  const int64_t blocks = NumBlocks(begin, end, grain);
  if (blocks == 0) return 0.0;
  std::vector<double> partial(static_cast<size_t>(blocks), 0.0);
  ParallelForBlocks(
      begin, end, grain,
      [&](int64_t block, int64_t lo, int64_t hi) {
        partial[static_cast<size_t>(block)] = block_sum(lo, hi);
      },
      num_threads);
  double total = 0.0;
  for (double p : partial) total += p;  // block order: deterministic grouping
  return total;
}

}  // namespace dpjoin
