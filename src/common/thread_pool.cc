#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dpjoin {

// Concurrent-region design. Every Run() publishes a Region — the job, the
// block count, and a region-local atomic block cursor — onto a FIFO list.
// Pool workers interleave across ALL active regions: each picks the oldest
// region that still has unclaimed blocks and spare helper slots, claims
// blocks from that region's cursor until it runs dry, then goes back to the
// list. The caller always participates in its own region and, once its
// cursor is exhausted, waits on the region's own CondVar until every claimed
// block has retired. Two consequences fall out of callers draining their own
// regions:
//   * no deadlock for nested regions: a region submitted from inside a
//     worker's block makes progress on the submitting thread even if every
//     pool worker is busy elsewhere, so waits only ever follow the acyclic
//     caller→nested-region tree;
//   * no cross-region starvation: a region completes even if the pool never
//     donates a helper to it.
// Bit-identity is untouched by any of this: the block decomposition is fixed
// by (range, grain) before the region is published, and reductions merge
// per-block results in block order, so which thread (or how many, or what
// else is in flight) runs a block never reaches the output.
struct ThreadPool::Impl {
  Mutex mu;  // the pool's only lock; guards the region list and worker set
  CondVar work_cv;
  std::vector<std::thread> workers GUARDED_BY(mu);
  bool shutdown GUARDED_BY(mu) = false;

  // One active parallel region. Lives on the stack of the Run() call that
  // published it; Run() unlinks it from `regions` only after blocks_done ==
  // num_blocks and active_helpers == 0, so no worker can hold a dangling
  // pointer. All fields except the lock-free block cursor are guarded by the
  // pool's `mu` (not expressible with GUARDED_BY across the nesting).
  struct Region {
    const std::function<void(int64_t)>* job = nullptr;
    int64_t num_blocks = 0;
    std::atomic<int64_t> next_block{0};  // lock-free claim cursor
    int64_t blocks_done = 0;     // guarded by Impl::mu
    int active_helpers = 0;      // workers currently claiming, guarded by mu
    int max_helpers = 0;         // caller's max_threads - 1, guarded by mu
    CondVar done_cv;             // signalled when the region may be complete
  };

  // Publish order; workers scan front-to-back so older regions finish first.
  std::vector<Region*> regions GUARDED_BY(mu);

  // Oldest region that still has unclaimed blocks and a free helper slot,
  // or nullptr. The relaxed cursor read is a heuristic — a stale value only
  // costs a worker one futile claim attempt, never a missed wakeup (the
  // caller of an exhausted region is responsible for its remaining blocks).
  Region* PickRegion() REQUIRES(mu) {
    for (Region* region : regions) {
      if (region->active_helpers < region->max_helpers &&
          region->next_block.load(std::memory_order_relaxed) <
              region->num_blocks) {
        return region;
      }
    }
    return nullptr;
  }

  // Claims blocks from `region` until its cursor runs dry; returns how many
  // this thread ran. Called without `mu`: the cursor is the only shared
  // state touched.
  static int64_t DrainBlocks(Region& region) {
    int64_t done = 0;
    for (;;) {
      const int64_t block = region.next_block.fetch_add(1);
      if (block >= region.num_blocks) break;
      (*region.job)(block);
      ++done;
    }
    return done;
  }

  // Explicit Lock/Unlock rather than a scoped guard: the loop drops `mu`
  // around the block-draining work phase, a shape MutexLock cannot express.
  // The lock is held at the top and bottom of every iteration, which is
  // exactly what the thread-safety analysis verifies.
  void WorkerLoop() EXCLUDES(mu) {
    mu.Lock();
    for (;;) {
      Region* region = nullptr;
      while (!shutdown && (region = PickRegion()) == nullptr) {
        work_cv.Wait(mu);
      }
      if (shutdown) {
        mu.Unlock();
        return;
      }
      ++region->active_helpers;
      mu.Unlock();
      const int64_t done = DrainBlocks(*region);
      mu.Lock();
      --region->active_helpers;
      region->blocks_done += done;
      if (region->blocks_done == region->num_blocks &&
          region->active_helpers == 0) {
        region->done_cv.NotifyAll();
      }
    }
  }

  // Grows the worker set to cover the summed helper demand of every active
  // region (bounded by kMaxThreads). Workers are persistent: a burst of
  // concurrent regions ratchets the pool up once, after which it parks.
  void EnsureWorkers() REQUIRES(mu) {
    int64_t demand = 0;
    for (const Region* region : regions) demand += region->max_helpers;
    demand = std::min<int64_t>(demand, kMaxThreads);
    while (static_cast<int64_t>(workers.size()) < demand) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock (no Run can be concurrent
  // with destruction), then join without holding `mu` — a parked worker
  // needs the lock to observe `shutdown` and exit.
  std::vector<std::thread> workers;
  {
    MutexLock lock(impl_->mu);
    impl_->shutdown = true;
    workers = std::move(impl_->workers);
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& worker : workers) worker.join();
  delete impl_;
}

void ThreadPool::Run(int64_t num_blocks, int max_threads,
                     const std::function<void(int64_t)>& job) {
  if (num_blocks <= 0) return;
  max_threads = std::clamp(max_threads, 1, kMaxThreads);
  if (max_threads == 1 || num_blocks == 1) {
    for (int64_t block = 0; block < num_blocks; ++block) job(block);
    return;
  }

  Impl& impl = *impl_;
  Impl::Region region;
  region.job = &job;
  region.num_blocks = num_blocks;
  {
    MutexLock lock(impl.mu);
    region.max_helpers = max_threads - 1;
    impl.regions.push_back(&region);
    impl.EnsureWorkers();
  }
  impl.work_cv.NotifyAll();

  // The calling thread drains its own region first — this is what makes a
  // region submitted from inside a worker's block deadlock-free: progress
  // never depends on the pool donating a helper.
  const int64_t done = Impl::DrainBlocks(region);

  // Wait until every block retired AND no helper is still inside the claim
  // loop — `region` lives on this stack frame, so a late helper must not
  // survive past the unlink below.
  MutexLock lock(impl.mu);
  region.blocks_done += done;
  while (
      !(region.blocks_done == num_blocks && region.active_helpers == 0)) {
    region.done_cv.Wait(impl.mu);
  }
  impl.regions.erase(
      std::find(impl.regions.begin(), impl.regions.end(), &region));
}

namespace {

std::atomic<int> g_thread_override{0};  // 0 = unset, use DefaultThreads()

// Per-thread override installed by ScopedThreads; 0 = defer to the
// process-wide setting. Wins over g_thread_override so concurrent user
// threads can hold different counts without racing on the global.
thread_local int t_thread_override = 0;

}  // namespace

int ExecutionContext::DefaultThreads() {
  static const int threads = [] {
    if (const char* env = std::getenv("DPJOIN_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return std::min(n, ThreadPool::kMaxThreads);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return 1;
    return std::min(static_cast<int>(hw), ThreadPool::kMaxThreads);
  }();
  return threads;
}

int ExecutionContext::threads() {
  if (t_thread_override > 0) return t_thread_override;
  const int n = g_thread_override.load(std::memory_order_relaxed);
  return n > 0 ? n : DefaultThreads();
}

void ExecutionContext::SetThreads(int n) {
  g_thread_override.store(n > 0 ? std::min(n, ThreadPool::kMaxThreads) : 0,
                          std::memory_order_relaxed);
}

namespace {

std::atomic<int64_t> g_tensor_grain_override{0};     // 0 = env/default
std::atomic<int64_t> g_join_root_grain_override{0};  // 0 = env/default

int64_t GrainFromEnv(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long g = std::atoll(env);
    if (g > 0) return static_cast<int64_t>(g);
  }
  return fallback;
}

}  // namespace

int64_t ExecutionContext::TensorGrain() {
  const int64_t g = g_tensor_grain_override.load(std::memory_order_relaxed);
  if (g > 0) return g;
  static const int64_t env_default =
      GrainFromEnv("DPJOIN_GRAIN_TENSOR", kDefaultTensorGrain);
  return env_default;
}

void ExecutionContext::SetTensorGrain(int64_t g) {
  g_tensor_grain_override.store(g > 0 ? g : 0, std::memory_order_relaxed);
}

int64_t ExecutionContext::JoinRootGrain() {
  const int64_t g = g_join_root_grain_override.load(std::memory_order_relaxed);
  if (g > 0) return g;
  static const int64_t env_default =
      GrainFromEnv("DPJOIN_GRAIN_JOIN_ROOT", kDefaultJoinRootGrain);
  return env_default;
}

void ExecutionContext::SetJoinRootGrain(int64_t g) {
  g_join_root_grain_override.store(g > 0 ? g : 0, std::memory_order_relaxed);
}

ScopedThreads::ScopedThreads(int n) : engaged_(n > 0), saved_(0) {
  if (engaged_) {
    saved_ = t_thread_override;
    t_thread_override = std::min(n, ThreadPool::kMaxThreads);
  }
}

ScopedThreads::~ScopedThreads() {
  if (engaged_) t_thread_override = saved_;
}

int64_t NumBlocks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  grain = std::max<int64_t>(grain, 1);
  return (end - begin + grain - 1) / grain;
}

void ParallelForBlocks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& body,
    int num_threads) {
  const int64_t blocks = NumBlocks(begin, end, grain);
  if (blocks == 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int threads =
      num_threads > 0 ? num_threads : ExecutionContext::threads();
  ThreadPool::Global().Run(blocks, threads, [&](int64_t block) {
    const int64_t lo = begin + block * grain;
    const int64_t hi = std::min(end, lo + grain);
    body(block, lo, hi);
  });
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 int num_threads) {
  ParallelForBlocks(
      begin, end, grain,
      [&](int64_t, int64_t lo, int64_t hi) { body(lo, hi); }, num_threads);
}

double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t, int64_t)>& block_sum,
                   int num_threads) {
  const int64_t blocks = NumBlocks(begin, end, grain);
  if (blocks == 0) return 0.0;
  std::vector<double> partial(static_cast<size_t>(blocks), 0.0);
  ParallelForBlocks(
      begin, end, grain,
      [&](int64_t block, int64_t lo, int64_t hi) {
        partial[static_cast<size_t>(block)] = block_sum(lo, hi);
      },
      num_threads);
  double total = 0.0;
  for (double p : partial) total += p;  // block order: deterministic grouping
  return total;
}

}  // namespace dpjoin
