// Streaming summary statistics used by benches and tests.

#ifndef DPJOIN_COMMON_STATS_H_
#define DPJOIN_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dpjoin {

/// Accumulates samples and reports mean / stddev / stderr / min / max /
/// quantiles. Stores samples (bench repetition counts are small).
class SampleStats {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Sample standard deviation (n-1 denominator); 0 for a single sample.
  double StdDev() const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double ss = 0.0;
    for (double x : samples_) ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
  }

  double StdError() const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    return StdDev() / std::sqrt(static_cast<double>(samples_.size()));
  }

  double Min() const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Empirical q-quantile via nearest-rank on the sorted samples.
  double Quantile(double q) const {
    DPJOIN_CHECK(!samples_.empty(), "no samples");
    DPJOIN_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    EnsureSorted();
    const size_t n = samples_.size();
    size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
    if (rank > 0) --rank;
    return sorted_samples_[std::min(rank, n - 1)];
  }

  double Median() const { return Quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_STATS_H_
