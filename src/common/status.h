// Status: lightweight error propagation for dpjoin.
//
// The library follows the Arrow/RocksDB convention: recoverable errors are
// returned as Status (or Result<T>, see result.h), never thrown. Programmer
// errors abort via DPJOIN_CHECK (see check.h).

#ifndef DPJOIN_COMMON_STATUS_H_
#define DPJOIN_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dpjoin {

/// Error taxonomy for the library. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns a short human-readable name for a code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: either OK, or a code plus message.
///
/// Status is cheap to copy in the OK case (a null pointer); error state is
/// heap-allocated since errors are rare.
///
/// [[nodiscard]]: a Status that is never looked at is an error silently
/// swallowed; the compiler rejects the discard under -Werror. Spell an
/// intentional best-effort call `(void)expr;` with a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dpjoin

/// Propagates a non-OK Status to the caller.
#define DPJOIN_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::dpjoin::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // DPJOIN_COMMON_STATUS_H_
