// Fixed-width ASCII table output for benchmark harnesses.
//
// Every bench binary prints its series as a table so EXPERIMENTS.md can be
// assembled directly from bench output.

#ifndef DPJOIN_COMMON_TABLE_PRINTER_H_
#define DPJOIN_COMMON_TABLE_PRINTER_H_

#include <iostream>
#include <string>
#include <vector>

namespace dpjoin {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row);

  /// Formats a double with `precision` significant-ish digits (%.*g).
  static std::string Num(double v, int precision = 5);

  /// Prints header + separator + rows to `os`. The std::cout default is
  /// this class's purpose — it IS the bench harness's terminal sink; the
  /// caller picks another stream to print elsewhere.
  // dpjoin-lint: allow(stdout)
  void Print(std::ostream& os = std::cout) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_TABLE_PRINTER_H_
