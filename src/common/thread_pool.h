// Parallel execution substrate: a fixed worker pool with deterministic
// ordered block decomposition.
//
// Determinism contract: the block decomposition of a ParallelFor/ParallelSum
// call depends only on (begin, end, grain) — never on the thread count — and
// reductions merge per-block results in block order. A caller whose blocks
// touch disjoint state therefore produces bit-identical output for ANY
// thread count, including the serial fallback. This is what lets the release
// algorithms parallelize their hot loops while keeping DP noise draws on the
// caller's single Rng.
//
// Thread count resolution (first match wins):
//   1. an explicit `num_threads > 0` argument,
//   2. the current ExecutionContext setting (ScopedThreads / SetThreads),
//   3. the DPJOIN_THREADS environment variable,
//   4. std::thread::hardware_concurrency().

#ifndef DPJOIN_COMMON_THREAD_POOL_H_
#define DPJOIN_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace dpjoin {

/// Process-wide pool of persistent worker threads. Workers are spawned
/// lazily (up to the summed helper demand of the regions in flight, bounded
/// by kMaxThreads) and parked on a condition variable when idle. Multiple
/// top-level parallel regions execute CONCURRENTLY: each Run publishes its
/// own region (job + block cursor) onto a FIFO list and workers interleave
/// across every active region, oldest first. The calling thread always
/// drains its own region's blocks before waiting, so a region submitted
/// from inside a worker makes progress on the submitting thread and never
/// deadlocks, and a region completes even when the pool donates no helpers.
/// Concurrency never reaches the results: block decomposition depends only
/// on (range, grain), so outputs are bit-identical across thread counts AND
/// across whatever mix of regions happens to be in flight.
class ThreadPool {
 public:
  static constexpr int kMaxThreads = 64;

  /// The process-wide pool.
  static ThreadPool& Global();

  /// Runs job(block) for every block in [0, num_blocks), using up to
  /// max_threads - 1 workers plus the calling thread. Blocks until every
  /// block has finished. Blocks are claimed dynamically, so `job` must not
  /// depend on which thread runs a block.
  void Run(int64_t num_blocks, int max_threads,
           const std::function<void(int64_t)>& job);

  ~ThreadPool();

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
};

/// Default block size (in cells) for parallel loops over dense-tensor
/// cells; override at runtime with ExecutionContext::SetTensorGrain or the
/// DPJOIN_GRAIN_TENSOR environment variable.
inline constexpr int64_t kDefaultTensorGrain = 4096;

/// Default number of depth-0 root tuples per block in the sharded join
/// entry points; override with ExecutionContext::SetJoinRootGrain or
/// DPJOIN_GRAIN_JOIN_ROOT.
inline constexpr int64_t kDefaultJoinRootGrain = 8;

/// Thread-count settings consulted by the Parallel* helpers. Two layers:
/// a PROCESS-WIDE default (SetThreads / DPJOIN_THREADS) and a THREAD-LOCAL
/// override (ScopedThreads), so concurrent user threads — e.g. several
/// ServingHandle callers or mechanism invocations — can each carry their own
/// count without racing on a global.
///
/// Also owns the parallel-loop GRAINS (block sizes). Grains are process-wide
/// and consulted at the start of each parallel region; results stay
/// bit-identical across THREAD counts for any fixed grain, but changing a
/// grain changes the blocked floating-point grouping, so outputs are only
/// comparable between runs that use the same grain settings (the NUMA/grain
/// sweep in bench_micro_substrate measures the perf side of this knob).
class ExecutionContext {
 public:
  /// DPJOIN_THREADS when set to a positive integer, else hardware
  /// concurrency; always >= 1. Read once per process.
  static int DefaultThreads();

  /// The count effective on the CALLING thread: its thread-local override
  /// when set, else the process-wide setting, else DefaultThreads().
  static int threads();

  /// Sets the process-wide default (clamped to [1, kMaxThreads]); n <= 0
  /// resets to DefaultThreads(). Does not touch thread-local overrides.
  static void SetThreads(int n);

  /// Block size for parallel loops over dense-tensor cells. Resolution:
  /// SetTensorGrain when set, else DPJOIN_GRAIN_TENSOR (read once), else
  /// kDefaultTensorGrain.
  static int64_t TensorGrain();

  /// Sets the process-wide tensor grain; g <= 0 resets to the
  /// DPJOIN_GRAIN_TENSOR / kDefaultTensorGrain default.
  static void SetTensorGrain(int64_t g);

  /// Depth-0 root tuples per block for the sharded join entry points.
  /// Resolution: SetJoinRootGrain when set, else DPJOIN_GRAIN_JOIN_ROOT
  /// (read once), else kDefaultJoinRootGrain.
  static int64_t JoinRootGrain();

  /// Sets the process-wide join root grain; g <= 0 resets to the
  /// DPJOIN_GRAIN_JOIN_ROOT / kDefaultJoinRootGrain default.
  static void SetJoinRootGrain(int64_t g);
};

/// RAII THREAD-LOCAL thread-count override; n <= 0 leaves the setting
/// untouched. The override only affects parallel regions entered from the
/// constructing thread (worker threads resolve counts before a region
/// starts, so nothing leaks into the pool), and nests: destruction restores
/// the previous thread-local value. Distinct user threads can hold distinct
/// ScopedThreads concurrently; the process-wide default (SetThreads /
/// DPJOIN_THREADS) is untouched.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  bool engaged_;
  int saved_;
};

/// Number of grain-sized blocks covering [begin, end); 0 for an empty range.
int64_t NumBlocks(int64_t begin, int64_t end, int64_t grain);

/// Runs body(block, lo, hi) for every grain-sized block [lo, hi) of
/// [begin, end). Block boundaries depend only on (begin, end, grain);
/// num_threads == 0 uses ExecutionContext::threads(). With one effective
/// thread the blocks run inline in ascending order.
void ParallelForBlocks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t block, int64_t lo, int64_t hi)>& body,
    int num_threads = 0);

/// Runs body(lo, hi) over grain-sized blocks of [begin, end). The body must
/// only write state disjoint across blocks (e.g. the [lo, hi) slice of an
/// output array); results are then identical for any thread count.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t lo, int64_t hi)>& body,
                 int num_threads = 0);

/// Σ over blocks of block_sum(lo, hi), merged in block order — the
/// floating-point grouping is fixed by `grain` alone, so the sum is
/// identical for any thread count.
double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t lo, int64_t hi)>& block_sum,
                   int num_threads = 0);

}  // namespace dpjoin

#endif  // DPJOIN_COMMON_THREAD_POOL_H_
