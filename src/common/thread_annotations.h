// Clang thread-safety annotation macros.
//
// These expand to Clang's `-Wthread-safety` attributes so the compiler can
// prove, at compile time, that every access to a `GUARDED_BY(mu)` field
// happens with `mu` held and that lock/unlock calls balance on every path.
// On compilers without the attributes (GCC) they expand to nothing — the
// code still builds everywhere, and a Clang `tidy` build (see the `tidy`
// CMake preset and scripts/ci.sh) turns violations into hard errors.
//
// Usage, together with the annotated wrappers in common/mutex.h:
//
//   class Account {
//    public:
//     void Deposit(double amount) {
//       MutexLock lock(mu_);
//       balance_ += amount;            // OK: mu_ is held
//     }
//    private:
//     Mutex mu_;
//     double balance_ GUARDED_BY(mu_) = 0.0;  // unguarded access = error
//   };
//
// Private helpers that assume the lock is already held are annotated with
// REQUIRES(mu_); RAII guards are SCOPED_CAPABILITY classes. The repo
// convention (see CONTRIBUTING.md) is that every new mutex-guarded field
// carries a GUARDED_BY annotation.
//
// Names follow the Clang documentation (and Chromium/LLVM practice); every
// macro is #ifndef-guarded so an embedding project that already defines
// them wins.

#ifndef DPJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define DPJOIN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define DPJOIN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DPJOIN_THREAD_ANNOTATION_(x)  // no-op: GCC has no -Wthread-safety
#endif

/// Marks a class as a lockable capability ("mutex"), usable in the
/// annotations below.
#ifndef CAPABILITY
#define CAPABILITY(x) DPJOIN_THREAD_ANNOTATION_(capability(x))
#endif

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (std::lock_guard-style).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY DPJOIN_THREAD_ANNOTATION_(scoped_lockable)
#endif

/// Declares that the annotated field/variable may only be read or written
/// while holding `x`.
#ifndef GUARDED_BY
#define GUARDED_BY(x) DPJOIN_THREAD_ANNOTATION_(guarded_by(x))
#endif

/// Like GUARDED_BY, but guards the data POINTED TO by the annotated pointer
/// (the pointer itself is unguarded).
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) DPJOIN_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

/// Declares that callers must hold the given capabilities before calling
/// the annotated function (which does not acquire them itself).
#ifndef REQUIRES
#define REQUIRES(...) \
  DPJOIN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

/// Declares that callers must NOT hold the given capabilities (the function
/// acquires them itself; calling with them held would deadlock).
#ifndef EXCLUDES
#define EXCLUDES(...) DPJOIN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

/// The annotated function acquires the given capabilities and returns with
/// them held.
#ifndef ACQUIRE
#define ACQUIRE(...) \
  DPJOIN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

/// The annotated function releases the given capabilities (held on entry).
#ifndef RELEASE
#define RELEASE(...) \
  DPJOIN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

/// The annotated function acquires the capabilities iff it returns `value`.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(value, ...) \
  DPJOIN_THREAD_ANNOTATION_(try_acquire_capability(value, __VA_ARGS__))
#endif

/// Lock-ordering declarations (deadlock prevention).
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  DPJOIN_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  DPJOIN_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#endif

/// The annotated function returns a reference to the given capability.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) DPJOIN_THREAD_ANNOTATION_(lock_returned(x))
#endif

/// Escape hatch: disables analysis inside the annotated function. Use only
/// with a comment explaining why the analysis cannot see the invariant.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  DPJOIN_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

/// Runtime assertion that the capability is held (informs the analysis).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) DPJOIN_THREAD_ANNOTATION_(assert_capability(x))
#endif

#endif  // DPJOIN_COMMON_THREAD_ANNOTATIONS_H_
