// Experiment E8 — Figure 4 / §4.2 / Theorem C.2: hierarchical joins.
//
// (a) Builds the Figure 4 query's attribute tree and prints it.
// (b) For every E ⊊ [m], compares the exact boundary query T_E(I) with the
//     §4.2.1 product-of-max-degrees upper bound (cases 1 / 2.1 / 2.2) and
//     reports the Lemma 4.8 factor structure.
// (c) Runs Partition-Hierarchical and compares each sub-instance's exact
//     residual sensitivity with its degree-configuration bound RS^σ.
// (d) End-to-end: plain MultiTable vs hierarchical Uniformize errors.

#include <iostream>

#include "bench_util.h"
#include "core/multi_table.h"
#include "hierarchical/attribute_tree.h"
#include "hierarchical/partition_hierarchical.h"
#include "hierarchical/q_aggregate_bound.h"
#include "hierarchical/uniformize_hierarchical.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {
namespace {

JoinQuery MakeFigure4Query(int64_t dom) {
  auto q = JoinQuery::Create({{"A", dom},
                              {"B", dom},
                              {"C", dom},
                              {"D", dom},
                              {"F", dom},
                              {"G", dom},
                              {"K", dom},
                              {"L", dom}},
                             {{"A", "B", "D"},
                              {"A", "B", "F"},
                              {"A", "B", "G", "K"},
                              {"A", "B", "G", "L"},
                              {"A", "C"}});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

// Skewed instance: hub value (A=0, B=0) carries most tuples.
Instance MakeSkewedFigure4Instance(const JoinQuery& query, Rng& rng) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    const int64_t dom = rel.tuple_space().size();
    for (int t = 0; t < 24; ++t) {
      // 2/3 of tuples land in the low quarter of the code space (skew).
      int64_t code = rng.Bernoulli(0.66)
                         ? rng.UniformInt(0, std::max<int64_t>(1, dom / 4) - 1)
                         : rng.UniformInt(0, dom - 1);
      rel.AddFrequencyByCode(code, 1);
    }
  }
  return instance;
}

int Run() {
  bench::PrintHeader(
      "E8", "Figure 4 / §4.2 hierarchical joins (Theorem C.2)",
      "T_E <= product of mdeg factors (one per attribute, Lemma 4.8); "
      "degree configurations bound per-sub-instance residual sensitivity");

  const PrivacyParams params(1.0, 1e-2);
  const JoinQuery query = MakeFigure4Query(2);
  auto tree = AttributeTree::Build(query);
  DPJOIN_CHECK(tree.ok(), tree.status().ToString());

  std::cout << "Figure 4 attribute tree:\n" << tree->ToString(query) << "\n";

  Rng data_rng(99);
  const Instance instance = MakeSkewedFigure4Instance(query, data_rng);

  // (b) Boundary-query bound tightness.
  TablePrinter table_b({"E", "boundary dE", "T_E exact", "mdeg bound",
                        "bound/exact", "factors"});
  bool bound_dominates = true;
  int rows = 0;
  const int m = query.num_relations();
  for (uint64_t bits = 1; bits + 1 < (uint64_t{1} << m) && rows < 12; ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    auto structure = BoundaryBoundFactors(query, *tree, set);
    DPJOIN_CHECK(structure.ok(), structure.status().ToString());
    const double exact = BoundaryQuery(instance, set);
    const double bound = EvaluateQAggregateBound(instance, *structure);
    bound_dominates &= bound >= exact - 1e-9;
    std::string factors;
    for (const auto& f : structure->factors) {
      if (!factors.empty()) factors += "·";
      factors += "mdeg_" + f.rels.ToString() + "(" +
                 (f.attribute >= 0 ? query.attribute_name(f.attribute)
                                   : std::string("?")) +
                 ")";
    }
    if (set.Count() >= 2 || rows < 6) {  // keep the table readable
      table_b.AddRow({set.ToString(), query.Boundary(set).ToString(),
                      TablePrinter::Num(exact), TablePrinter::Num(bound),
                      TablePrinter::Num(exact > 0 ? bound / exact : 0.0),
                      factors});
      ++rows;
    }
  }
  bench::Emit(table_b, "boundary");
  bench::Verdict(bound_dominates,
                 "mdeg product dominates T_E for every E (cases 1/2.1/2.2)");

  // (c) Degree configurations vs exact residual sensitivity.
  const double beta = 1.0 / params.Lambda();
  Rng part_rng(7);
  auto partition = PartitionHierarchical(instance, *tree, params.Half(),
                                         params.Lambda(), part_rng);
  DPJOIN_CHECK(partition.ok(), partition.status().ToString());
  TablePrinter table_c({"config", "sub n", "sub count", "RS exact",
                        "RS^sigma bound"});
  int shown = 0;
  for (const auto& entry : partition->sub_instances) {
    if (entry.sub_instance.InputSize() == 0 || shown >= 8) continue;
    const double rs_exact =
        ResidualSensitivityValue(entry.sub_instance, beta);
    auto rs_sigma = ConfigResidualSensitivity(query, *tree, entry.config,
                                              params.Lambda(), beta);
    table_c.AddRow({entry.config.ToString(query),
                    std::to_string(entry.sub_instance.InputSize()),
                    TablePrinter::Num(JoinCount(entry.sub_instance)),
                    TablePrinter::Num(rs_exact),
                    // "nan" serializes as JSON null for just this entry; a
                    // -1 sentinel would be recorded as a real measurement.
                    rs_sigma.ok() ? TablePrinter::Num(*rs_sigma)
                                  : std::string("nan")});
    ++shown;
  }
  bench::Emit(table_c, "subinstance");
  std::cout << "sub-instances: " << partition->sub_instances.size()
            << ", max tuple participation: " << partition->max_participation
            << " (Lemma 4.10's O(log^c n))\n";
  // Lemma 4.10's bound is ℓ^{c} with c up to |x| = 8 here; ℓ ≈ 2 buckets
  // per attribute gives ≤ 2^8.
  bench::Verdict(partition->max_participation <= 256,
                 "tuple participation within the ℓ^c envelope (ℓ≈2, c≤8)");

  // (d) End-to-end comparison — on a compact hierarchical star (3
  // attributes), where the ℓ^c sub-instance blow-up stays small; the
  // Figure-4 query's 8 attributes would multiply one TLap mask per
  // sub-instance into the error at this scale.
  auto star_or = JoinQuery::Create(
      {{"A", 8}, {"B", 24}, {"C", 8}}, {{"A", "B"}, {"A", "C"}});
  DPJOIN_CHECK(star_or.ok(), star_or.status().ToString());
  const JoinQuery star = *star_or;
  Instance star_instance = Instance::Make(star);
  for (int64_t b = 0; b < 20; ++b) {
    DPJOIN_CHECK(star_instance.AddTuple(0, {0, b}, 1).ok());
  }
  for (int64_t a = 1; a < 8; ++a) {
    DPJOIN_CHECK(star_instance.AddTuple(0, {a, 20 + a % 4}, 1).ok());
  }
  for (int64_t a = 0; a < 8; ++a) {
    DPJOIN_CHECK(star_instance.AddTuple(1, {a, a}, 1).ok());
  }
  const int seeds = bench::QuickMode() ? 2 : 3;
  ReleaseOptions options;
  options.pmw_max_rounds = 8;
  SampleStats plain_errs, unif_errs;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng wl_rng(500 + static_cast<uint64_t>(seed));
    const QueryFamily family =
        MakeWorkload(star, WorkloadKind::kRandomSign, 2, wl_rng);
    Rng rng1(510 + static_cast<uint64_t>(seed));
    Rng rng2(520 + static_cast<uint64_t>(seed));
    auto plain = MultiTable(star_instance, family, params, options, rng1);
    auto unif = UniformizeHierarchical(star_instance, family, params,
                                       options, rng2);
    DPJOIN_CHECK(plain.ok(), plain.status().ToString());
    DPJOIN_CHECK(unif.ok(), unif.status().ToString());
    plain_errs.Add(WorkloadError(family, star_instance, plain->synthetic));
    unif_errs.Add(
        WorkloadError(family, star_instance, unif->release.synthetic));
  }
  TablePrinter table_d({"algorithm", "median err", "min", "max"});
  table_d.AddRow({"MultiTable (Alg 3)", TablePrinter::Num(plain_errs.Median()),
                  TablePrinter::Num(plain_errs.Min()),
                  TablePrinter::Num(plain_errs.Max())});
  table_d.AddRow({"Uniformize-Hier (Alg 4+6+7)",
                  TablePrinter::Num(unif_errs.Median()),
                  TablePrinter::Num(unif_errs.Min()),
                  TablePrinter::Num(unif_errs.Max())});
  bench::Emit(table_d, "err");
  bench::Verdict(unif_errs.Median() < 6.0 * plain_errs.Median(),
                 "hierarchical uniformize runs end-to-end with bounded "
                 "overhead at laptop scale (star query)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
