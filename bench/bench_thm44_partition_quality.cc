// Experiment E7 — Theorem 4.4 / Algorithm 5: the noisy-degree partition is
// close to the uniform (true-degree) partition of Definition 4.3.
//
// On large Zipf instances, compare the bucket assigned by the noisy
// partition with the true-degree bucket for every join value: Theorem 4.4's
// proof needs B^i_{π*} ⊆ B^i_π ∪ B^{i+1}_π (values shift at most one level
// up, since TLap noise is non-negative and ≤ 2τ). Also reports per-bucket
// join sizes, whose sum is exactly count(I) in both partitions.

#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/partition_two_table.h"
#include "relational/generators.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

std::map<int64_t, int> BucketMap(const TwoTablePartition& partition,
                                 int attr_b) {
  std::map<int64_t, int> map;
  for (const auto& bucket : partition.buckets) {
    for (int rel = 0; rel < 2; ++rel) {
      for (const auto& [value, deg] :
           bucket.sub_instance.relation(rel).DegreeMap(
               AttributeSet::Of(attr_b))) {
        (void)deg;
        map[value] = bucket.bucket_index;
      }
    }
  }
  return map;
}

int Run() {
  bench::PrintHeader(
      "E7", "Theorem 4.4 / Algorithm 5 (partition quality)",
      "noisy buckets match true-degree buckets up to +O(1) levels "
      "(B^i_1 ⊆ B^i_2 ∪ B^{i+1}_2), so the noisy partition's error is "
      "bounded by the uniform partition's");

  const PrivacyParams params(1.0, 1e-2);  // λ ≈ 4.6, τ ≈ 9.7 at test scale
  const double lambda = params.Lambda();
  const int64_t dom_b = 2048;
  const int64_t tuples = bench::QuickMode() ? 20000 : 50000;

  TablePrinter table({"zipf s", "#values", "max deg", "#buckets noisy",
                      "#buckets true", "same bucket %", "+1 level %",
                      ">+2 levels %", "count check"});
  bool shift_bounded = true;
  bool counts_match = true;
  for (double s : {0.6, 1.0, 1.4}) {
    const JoinQuery query = MakeTwoTableQuery(64, dom_b, 64);
    Rng data_rng(static_cast<uint64_t>(s * 10));
    const Instance instance =
        MakeZipfTwoTableInstance(query, tuples, s, data_rng);
    const int attr_b = query.AttributeIndex("B").value();

    Rng rng(77 + static_cast<uint64_t>(s * 100));
    auto noisy = PartitionTwoTable(instance, params, lambda, rng);
    auto uniform = UniformPartitionTwoTable(instance, lambda);
    DPJOIN_CHECK(noisy.ok(), noisy.status().ToString());
    DPJOIN_CHECK(uniform.ok(), uniform.status().ToString());

    const auto noisy_map = BucketMap(*noisy, attr_b);
    const auto true_map = BucketMap(*uniform, attr_b);
    int64_t same = 0, plus_one = 0, beyond = 0;
    int64_t max_deg = 0;
    for (const auto& [value, true_bucket] : true_map) {
      const int noisy_bucket = noisy_map.at(value);
      if (noisy_bucket == true_bucket) {
        ++same;
      } else if (noisy_bucket == true_bucket + 1) {
        ++plus_one;
      } else {
        ++beyond;
      }
    }
    for (int rel = 0; rel < 2; ++rel) {
      max_deg = std::max(max_deg, instance.relation(rel).MaxDegree(
                                      AttributeSet::Of(attr_b)));
    }
    const double total = static_cast<double>(true_map.size());
    // Per-bucket join sizes sum to count(I) in both partitions.
    double noisy_count = 0.0, true_count = 0.0;
    for (const auto& b : noisy->buckets) noisy_count += JoinCount(b.sub_instance);
    for (const auto& b : uniform->buckets) true_count += JoinCount(b.sub_instance);
    const double count = JoinCount(instance);
    counts_match &= std::abs(noisy_count - count) < 1e-6 &&
                    std::abs(true_count - count) < 1e-6;
    // Theorem 4.4's proof permits a bounded level shift; with τ(ε/2,δ/2,1)
    // ≈ 2λ here, an extra level beyond +1 can only happen for degrees ≤ 2τ.
    shift_bounded &= (static_cast<double>(beyond) / total) < 0.35;

    table.AddRow({TablePrinter::Num(s), std::to_string(true_map.size()),
                  std::to_string(max_deg),
                  std::to_string(noisy->buckets.size()),
                  std::to_string(uniform->buckets.size()),
                  TablePrinter::Num(100.0 * static_cast<double>(same) / total, 3),
                  TablePrinter::Num(100.0 * static_cast<double>(plus_one) / total, 3),
                  TablePrinter::Num(100.0 * static_cast<double>(beyond) / total, 3),
                  counts_match ? "exact" : "MISMATCH"});
  }
  bench::Emit(table);

  bench::Verdict(counts_match,
                 "both partitions' per-bucket join sizes sum to count(I)");
  bench::Verdict(shift_bounded,
                 "noisy buckets = true buckets shifted by O(1) levels "
                 "(Theorem 4.4 proof structure)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
