// Structured bench reporting: alongside the human-readable tables every
// experiment binary prints, a BenchReport accumulates the same data in
// machine-readable form and serializes it as BENCH_<experiment>.json so the
// repo's perf trajectory can be tracked across commits.
//
// JSON schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "experiment": "E1",
//     "artifact": "Figure 1 / §3.1 flawed join-as-one",
//     "claim": "...",
//     "quick_mode": false,
//     "series": [ {"name": "n", "values": [8,16,32], "median": 16} ],
//     "verdicts": [ {"pass": true, "message": "..."} ],
//     "failures": 0,
//     "all_passed": true
//   }
//
// Non-finite doubles serialize as null (JSON has no NaN/Inf).

#ifndef DPJOIN_BENCH_BENCH_REPORT_H_
#define DPJOIN_BENCH_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "common/table_printer.h"

namespace dpjoin {
namespace bench {

struct ReportSeries {
  std::string name;
  std::vector<double> values;
};

struct ReportVerdict {
  bool pass = false;
  std::string message;
};

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through verbatim,
/// which is valid JSON as long as the input is UTF-8).
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON value: round-trip-precise %.17g for finite
/// values (not shortest form — 0.1 prints as 0.10000000000000001), "null"
/// for NaN/Inf.
std::string JsonNumber(double v);

/// Accumulates one experiment's metadata, numeric series, and PASS/FAIL
/// verdicts, and serializes them as JSON.
class BenchReport {
 public:
  void SetExperiment(const std::string& id, const std::string& artifact,
                     const std::string& claim);
  void SetQuickMode(bool quick) { quick_mode_ = quick; }

  /// Records a named numeric series.
  void AddSeries(const std::string& name, std::vector<double> values);

  /// Records every fully-numeric column of `table` as a series named after
  /// its header (prefixed "<label>." when `label` is non-empty). Columns with
  /// any non-numeric cell (e.g. algorithm names) are skipped.
  void AddTable(const TablePrinter& table, const std::string& label = "");

  void AddVerdict(bool pass, const std::string& message);

  const std::string& experiment_id() const { return experiment_id_; }
  bool quick_mode() const { return quick_mode_; }
  const std::vector<ReportSeries>& series() const { return series_; }
  const std::vector<ReportVerdict>& verdicts() const { return verdicts_; }
  int failures() const { return failures_; }

  std::string ToJson() const;

  /// File name this report serializes to: "BENCH_<id>.json" with every
  /// non-alphanumeric id character replaced by '_'; "BENCH_unnamed.json"
  /// when no experiment id was set.
  std::string FileName() const;

  /// Writes ToJson() to `<dir>/FileName()`. Returns the path written, or an
  /// empty string on I/O failure.
  std::string WriteJsonFile(const std::string& dir) const;

 private:
  std::string experiment_id_;
  std::string artifact_;
  std::string claim_;
  bool quick_mode_ = false;
  std::vector<ReportSeries> series_;
  std::vector<ReportVerdict> verdicts_;
  int failures_ = 0;
};

/// The process-wide report the bench_util.h helpers feed.
BenchReport& GlobalReport();

}  // namespace bench
}  // namespace dpjoin

#endif  // DPJOIN_BENCH_BENCH_REPORT_H_
