// Experiment THM15 — Theorem 1.5 (Algorithm 3): multi-table release on the
// 3-relation path join, across a degree-skew sweep.
//
// Reported per skew level: count(I), LS, RS^β, the privatized Δ̃, the
// measured ℓ∞ error, and the Theorem 1.5 bound. Checks: RS ≥ LS always;
// the measured error stays within a constant multiple of the bound; the
// RS/LS gap (the price of smoothness) grows with skew.
//
// A serial-vs-parallel `threading.*` series (mirroring E9's sweep for
// single-table PMW) records MultiTable's speedup and asserts the release is
// bit-identical for threads in {1, 2, 8}; all of it lands in
// BENCH_THM15.json.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "core/multi_table.h"
#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {
namespace {

// MultiTable at threads {1, 2, 8} on a path join whose release domain is
// large enough for the parallel substrate to matter. The RS sweep, the Δ̃
// draw, and the PMW round loop all run under the thread-local override; the
// released tensor must be bit-identical at every count (noise draws stay on
// the single Rng, block decompositions are grain-fixed).
void ThreadingSweep() {
  const int64_t dom = bench::QuickMode() ? 5 : 8;
  const int64_t rounds = bench::QuickMode() ? 4 : 12;
  const JoinQuery query = MakePathQuery(3, dom);
  Rng data_rng(81);
  const Instance instance = MakeZipfPathInstance(query, 300, 1.0, data_rng);
  Rng wl_rng(82);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 3, wl_rng);
  const PrivacyParams params(1.0, 1e-5);
  ReleaseOptions options;
  options.pmw_rounds = rounds;
  options.pmw_max_rounds = rounds;
  options.pmw_epsilon_prime_override = 0.25;

  auto run_once = [&](int threads) {
    const ScopedThreads scoped(threads);
    Rng rng(83);  // identical noise stream for every thread count
    auto result = MultiTable(instance, family, params, options, rng);
    DPJOIN_CHECK(result.ok(), result.status().ToString());
    return std::move(result).value();
  };

  TablePrinter table({"threads", "seconds", "speedup vs serial"});
  std::vector<double> speedup_series;
  std::vector<double> serial_values;
  bool bit_identical = true;
  double serial_seconds = 0.0;
  for (int threads : {1, 2, 8}) {
    double best = 1e100;
    ReleaseResult result;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result = run_once(threads);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_values = result.synthetic.values();
    } else {
      const auto& values = result.synthetic.values();
      bit_identical &= values.size() == serial_values.size();
      for (size_t i = 0; bit_identical && i < values.size(); ++i) {
        bit_identical &= values[i] == serial_values[i];
      }
    }
    const double speedup = serial_seconds / best;
    table.AddRow({std::to_string(threads), TablePrinter::Num(best),
                  TablePrinter::Num(speedup)});
    speedup_series.push_back(speedup);
  }
  bench::Emit(table, "threading");  // records threading.{threads,seconds,...}

  bench::Verdict(bit_identical,
                 "MultiTable release bit-identical for threads in {1, 2, 8} "
                 "(determinism contract of the parallel substrate)");
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores >= 4) {
    bench::Verdict(speedup_series.back() >= 1.5,
                   "parallel MultiTable >= 1.5x serial at 8 threads on " +
                       std::to_string(cores) + " available cores (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  } else {
    bench::Verdict(true,
                   "speedup not asserted: only " + std::to_string(cores) +
                       " core(s) available (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  }
}

double MedianUs(std::vector<double> v) {
  SampleStats stats;
  for (double x : v) stats.Add(x);
  return stats.Median();
}

// Factored vs oracle PMW round loop inside MultiTable, on a marginal
// (indicator) workload over the 3-relation path join. Emits the per-round
// round.{eval_us,update_us,normalize_us} breakdown for both loops and the
// >= 3x speedup verdict (the loops must also agree within fp tolerance).
void FactoredSweep() {
  const int64_t dom = bench::QuickMode() ? 8 : 12;
  const int64_t rounds = bench::QuickMode() ? 8 : 16;
  const JoinQuery query = MakePathQuery(3, dom);
  Rng data_rng(91);
  const Instance instance = MakeZipfPathInstance(query, 300, 1.0, data_rng);
  Rng wl_rng(92);
  // Marginal indicators: one query per value of each relation's first
  // attribute — the workload family whose per-mode supports are small.
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginal, 0, wl_rng);
  const PrivacyParams params(1.0, 1e-5);
  ReleaseOptions options;
  options.pmw_rounds = rounds;
  options.pmw_max_rounds = rounds;
  options.pmw_epsilon_prime_override = 0.25;

  auto run_once = [&](bool factored) {
    options.pmw_use_factored = factored;
    Rng rng(93);  // identical noise stream for both loop flavors
    auto result = MultiTable(instance, family, params, options, rng);
    DPJOIN_CHECK(result.ok(), result.status().ToString());
    return std::move(result).value();
  };

  TablePrinter table({"loop", "round eval us", "round update us",
                      "round normalize us", "round total us"});
  double totals[2] = {0.0, 0.0};
  ReleaseResult results[2];
  for (int flavor = 0; flavor < 2; ++flavor) {
    const bool factored = flavor == 1;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      ReleaseResult result = run_once(factored);
      const double total = MedianUs(result.pmw_perf.eval_us) +
                           MedianUs(result.pmw_perf.update_us) +
                           MedianUs(result.pmw_perf.normalize_us);
      if (total < best) {
        best = total;
        results[flavor] = std::move(result);
      }
    }
    totals[flavor] = best;
    const ReleaseResult& r = results[flavor];
    table.AddRow({factored ? "factored" : "oracle",
                  TablePrinter::Num(MedianUs(r.pmw_perf.eval_us)),
                  TablePrinter::Num(MedianUs(r.pmw_perf.update_us)),
                  TablePrinter::Num(MedianUs(r.pmw_perf.normalize_us)),
                  TablePrinter::Num(best)});
  }
  bench::Emit(table, "round");
  const double speedup = totals[0] / totals[1];
  bench::RecordSeries("round.speedup", {speedup});

  const auto& oracle_vals = results[0].synthetic.values();
  const auto& factored_vals = results[1].synthetic.values();
  double max_rel = 0.0;
  const double scale = std::max(1.0, std::abs(results[0].noisy_total));
  for (size_t i = 0; i < oracle_vals.size(); ++i) {
    max_rel = std::max(max_rel,
                       std::abs(oracle_vals[i] - factored_vals[i]) / scale);
  }
  bench::Verdict(max_rel <= 1e-9,
                 "factored MultiTable release matches the oracle loop within "
                 "1e-9 relative (measured " + TablePrinter::Num(max_rel) +
                     ")");
  bench::Verdict(
      speedup >= 3.0,
      "factored round loop >= 3x faster than the oracle loop on the "
      "marginal-indicator workload (measured " + TablePrinter::Num(speedup) +
          "x per-round median; " +
          std::to_string(results[1].pmw_perf.sparse_rounds) + "/" +
          std::to_string(results[1].pmw_rounds) + " rounds sparse)");
}

int Run() {
  bench::PrintHeader(
      "THM15", "Theorem 1.5 / Algorithm 3 (MultiTable)",
      "alpha = O~((sqrt(count*RS_beta) + RS_beta*sqrt(lambda))*f_upper) with "
      "beta = 1/lambda; RS is a smooth upper bound on LS");

  const PrivacyParams params(1.0, 1e-4);
  const double beta = 1.0 / params.Lambda();
  const int seeds = bench::QuickMode() ? 2 : 4;
  const JoinQuery query = MakePathQuery(3, 6);
  ReleaseOptions options;
  options.pmw_max_rounds = 24;

  TablePrinter table({"zipf s", "count", "LS", "RS^beta", "median Dtilde",
                      "median err", "Thm 1.5 bound", "err/bound"});
  bool rs_dominates = true;
  bool within_bound = true;
  std::vector<double> skews, rs_over_ls;
  for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng data_rng(static_cast<uint64_t>(s * 10) + 5);
    const Instance instance = MakeZipfPathInstance(query, 60, s, data_rng);
    const double count = JoinCount(instance);
    const double ls = LocalSensitivity(instance);
    const double rs = ResidualSensitivityValue(instance, beta);
    rs_dominates &= rs >= ls - 1e-9;

    SampleStats errs, dtildes;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(4000 + static_cast<uint64_t>(seed) * 7 +
              static_cast<uint64_t>(s * 100));
      const QueryFamily family =
          MakeWorkload(query, WorkloadKind::kRandomSign, 3, rng);
      auto result = MultiTable(instance, family, params, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      errs.Add(WorkloadError(family, instance, result->synthetic));
      dtildes.Add(result->delta_tilde);
    }
    const double bound = MultiTableUpperBound(
        count, dtildes.Median(), query.ReleaseDomainSize(), 64.0, params);
    within_bound &= errs.Median() <= 3.0 * bound;
    table.AddRow({TablePrinter::Num(s), TablePrinter::Num(count),
                  TablePrinter::Num(ls), TablePrinter::Num(rs),
                  TablePrinter::Num(dtildes.Median()),
                  TablePrinter::Num(errs.Median()), TablePrinter::Num(bound),
                  TablePrinter::Num(errs.Median() / bound)});
    skews.push_back(s);
    rs_over_ls.push_back(rs / std::max(ls, 1.0));
  }
  bench::Emit(table);

  bench::Verdict(rs_dominates, "RS^beta >= LS on every instance (Def 3.6)");
  bench::Verdict(within_bound,
                 "measured error <= 3x the Theorem 1.5 bound (with the "
                 "algorithm's actual Dtilde) at every skew");
  bench::Verdict(
      rs_over_ls.front() >= 1.0 && rs_over_ls.back() >= 1.0,
      "RS/LS >= 1 across the sweep (price of smoothness; ratio at s=0: " +
          TablePrinter::Num(rs_over_ls.front()) + ", at s=2: " +
          TablePrinter::Num(rs_over_ls.back()) + ")");

  ThreadingSweep();
  FactoredSweep();
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
