// Shared scaffolding for the experiment harness binaries.
//
// Every bench prints: a header naming the paper artifact it reproduces, a
// table of measured-vs-predicted series, and PASS/FAIL shape verdicts that
// EXPERIMENTS.md records. Benches honor DPJOIN_BENCH_QUICK=1 (fewer seeds /
// smaller grids) for smoke runs.
//
// Alongside the human-readable output, the same data flows into the global
// BenchReport (bench_report.h), and Finish() serializes it as
// BENCH_<experiment>.json — into $DPJOIN_BENCH_JSON_DIR, or the working
// directory when unset — so perf series accumulate machine-readably.

#ifndef DPJOIN_BENCH_BENCH_UTIL_H_
#define DPJOIN_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace dpjoin {
namespace bench {

inline bool QuickMode() {
  const char* env = std::getenv("DPJOIN_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

/// Parses harness-wide flags and applies them. Currently:
///   --threads=N   worker threads for the parallelized hot paths
///                 (overrides DPJOIN_THREADS; N <= 0 resets to the default).
/// Unknown arguments are ignored so individual benches can add their own.
inline void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      ExecutionContext::SetThreads(std::atoi(arg.c_str() + prefix.size()));
    }
  }
}

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& artifact,
                        const std::string& claim) {
  std::cout << "==============================================================="
               "=\n";
  std::cout << "Experiment " << experiment_id << " — " << artifact << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "==============================================================="
               "=\n";
  GlobalReport().SetExperiment(experiment_id, artifact, claim);
  GlobalReport().SetQuickMode(QuickMode());
}

/// Prints `table` and records its numeric columns as report series
/// (optionally prefixed "<label>.").
inline void Emit(const TablePrinter& table, const std::string& label = "") {
  table.Print();
  GlobalReport().AddTable(table, label);
}

/// Records a named numeric series without printing anything.
inline void RecordSeries(const std::string& name, std::vector<double> values) {
  GlobalReport().AddSeries(name, std::move(values));
}

inline void Verdict(bool ok, const std::string& message) {
  std::cout << (ok ? "[SHAPE PASS] " : "[SHAPE FAIL] ") << message << "\n";
  GlobalReport().AddVerdict(ok, message);
}

inline int Finish() {
  const int failures = GlobalReport().failures();
  if (failures > 0) {
    std::cout << failures << " shape check(s) failed\n";
  } else {
    std::cout << "all shape checks passed\n";
  }
  const char* dir_env = std::getenv("DPJOIN_BENCH_JSON_DIR");
  const std::string path =
      GlobalReport().WriteJsonFile(dir_env != nullptr ? dir_env : ".");
  if (path.empty()) {
    std::cout << "warning: could not write " << GlobalReport().FileName()
              << "\n";
  } else {
    std::cout << "wrote " << path << "\n";
  }
  std::cout.flush();
  // Benches report shape failures in text but exit 0: a reproduction on a
  // different substrate may legitimately land outside a band, and the
  // harness loop ("for b in build/bench/*") should keep going.
  return 0;
}

/// Least-squares slope of log(y) against log(x) — scaling-exponent fits.
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace bench
}  // namespace dpjoin

#endif  // DPJOIN_BENCH_BENCH_UTIL_H_
