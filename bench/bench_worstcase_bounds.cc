// Experiment E10 — Appendix B.3: worst-case error closed forms.
//
// Case (1), 0/1 relations: count(I) ≤ n^{ρ(H)} (AGM bound) and
// T_E ≤ n^{ρ(H_{E,∂E})}, giving α = O(√(n^{ρ} · max_E n^{ρ_E})). We print
// the LP exponents per query shape, then fit the empirical growth of
// count(I) and RS^β(I) on all-ones instances against the predictions.
//
// Case (2), Z≥0 relations: a single heavy tuple per relation gives
// count = n^m-ish and α = O(n^{m − 1/2}).

#include <iostream>

#include "bench_util.h"
#include "core/theory_bounds.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {
namespace {

struct Shape {
  const char* name;
  JoinQuery query;
};

int Run() {
  bench::PrintHeader(
      "E10", "Appendix B.3 worst-case bounds",
      "0/1 relations: alpha = O(sqrt(n^rho(H) · max_E n^rho(H_E,dE)})); "
      "Z>=0 relations: alpha = O(n^{m-1/2})");

  auto triangle = JoinQuery::Create(
      {{"A", 4}, {"B", 4}, {"C", 4}},
      {{"A", "B"}, {"B", "C"}, {"A", "C"}});
  DPJOIN_CHECK(triangle.ok(), triangle.status().ToString());
  std::vector<Shape> shapes;
  shapes.push_back({"two-table", MakeTwoTableQuery(4, 4, 4)});
  shapes.push_back({"path-3", MakePathQuery(3, 4)});
  shapes.push_back({"star-3", MakeStarQuery(3, 4)});
  shapes.push_back({"triangle", std::move(*triangle)});

  // ---- LP exponents per shape --------------------------------------------
  TablePrinter table_lp({"query", "rho(H)", "0/1 error exponent",
                         "weighted error exponent (m-1/2)"});
  for (const Shape& shape : shapes) {
    table_lp.AddRow({shape.name,
                     TablePrinter::Num(shape.query.FractionalEdgeCoverNumber()),
                     TablePrinter::Num(WorstCaseErrorExponent01(shape.query)),
                     TablePrinter::Num(
                         WorstCaseErrorExponentWeighted(shape.query))});
  }
  bench::Emit(table_lp, "lp");

  // ---- AGM upper bound count(I) <= n^rho on 0/1 instances ------------------
  // (All-ones instances are not AGM-extremal — the bound is what must hold
  // universally; tightness is demonstrated below on the extremal two-table
  // family.)
  const PrivacyParams params(1.0, 1e-4);
  const double beta = 1.0 / params.Lambda();
  TablePrinter table_agm({"query", "n", "count", "n^rho", "count/n^rho",
                          "RS^beta", "RS <= n^(rho-?)"});
  bool agm_holds = true;
  for (const Shape& shape : shapes) {
    for (int64_t d : {2, 4}) {
      // Rebuild the same query shape with domain d.
      std::vector<AttributeSpec> attrs;
      for (int a = 0; a < shape.query.num_attributes(); ++a) {
        attrs.push_back({shape.query.attribute_name(a), d});
      }
      std::vector<std::vector<std::string>> edges;
      for (int r = 0; r < shape.query.num_relations(); ++r) {
        std::vector<std::string> edge;
        for (int a : shape.query.attribute_order_of(r)) {
          edge.push_back(shape.query.attribute_name(a));
        }
        edges.push_back(std::move(edge));
      }
      auto scaled = JoinQuery::Create(std::move(attrs), std::move(edges));
      DPJOIN_CHECK(scaled.ok(), scaled.status().ToString());
      const Instance instance = MakeAllOnesInstance(*scaled);
      const double n = static_cast<double>(instance.InputSize());
      const double count = JoinCount(instance);
      const double rho = scaled->FractionalEdgeCoverNumber();
      const double agm = std::pow(n, rho);
      const double rs = ResidualSensitivityValue(instance, beta);
      agm_holds &= count <= agm * (1.0 + 1e-9);
      table_agm.AddRow({shape.name, TablePrinter::Num(n),
                        TablePrinter::Num(count), TablePrinter::Num(agm),
                        TablePrinter::Num(count / agm),
                        TablePrinter::Num(rs),
                        rs <= agm ? "yes" : "NO"});
    }
  }
  bench::Emit(table_agm, "agm");
  bench::Verdict(agm_holds,
                 "AGM bound count <= n^rho holds on every 0/1 instance");

  // ---- AGM tightness on the extremal two-table family ----------------------
  // R1 = {(a_i, b0)}, R2 = {(b0, c_j)} (0/1): count = (n/2)², slope 2 = rho.
  {
    std::vector<double> ns, counts;
    TablePrinter table_tight({"n", "count", "slope target rho=2"});
    for (int64_t half : {8, 32, 128}) {
      const JoinQuery q = MakeTwoTableQuery(half, 2, half);
      Instance instance = Instance::Make(q);
      for (int64_t i = 0; i < half; ++i) {
        DPJOIN_CHECK(instance.AddTuple(0, {i, 0}, 1).ok());
        DPJOIN_CHECK(instance.AddTuple(1, {0, i}, 1).ok());
      }
      ns.push_back(static_cast<double>(instance.InputSize()));
      counts.push_back(JoinCount(instance));
      table_tight.AddRow({TablePrinter::Num(ns.back()),
                          TablePrinter::Num(counts.back()), ""});
    }
    bench::Emit(table_tight, "tight");
    const double slope = bench::LogLogSlope(ns, counts);
    bench::Verdict(std::abs(slope - 2.0) < 0.1,
                   "extremal 0/1 two-table family realizes count = "
                   "Theta(n^rho) (fitted exponent " +
                       TablePrinter::Num(slope) + ", rho = 2)");
  }

  // ---- Weighted case: heavy single tuples --------------------------------
  TablePrinter table_w({"n per relation", "count (2-table)",
                        "n^{m} prediction", "count/pred"});
  bool weighted_ok = true;
  const JoinQuery query2 = MakeTwoTableQuery(2, 2, 2);
  for (int64_t n : {8, 32, 128}) {
    Instance instance = Instance::Make(query2);
    DPJOIN_CHECK(instance.AddTuple(0, {0, 0}, n).ok());
    DPJOIN_CHECK(instance.AddTuple(1, {0, 0}, n).ok());
    const double count = JoinCount(instance);
    const double pred = static_cast<double>(n) * static_cast<double>(n);
    weighted_ok &= std::abs(count - pred) < 1e-9;
    table_w.AddRow({std::to_string(n), TablePrinter::Num(count),
                    TablePrinter::Num(pred),
                    TablePrinter::Num(count / pred)});
  }
  bench::Emit(table_w, "worstcase");
  bench::Verdict(weighted_ok,
                 "annotated (Z>=0) relations realize count = n^m, beating "
                 "the AGM bound of the 0/1 case (Appendix B.3 case 2)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
