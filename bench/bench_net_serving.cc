// Experiment NET — TCP serving front-end with cross-client micro-batching.
//
// One release is minted up front, then a NetServer fronts the engine on a
// loopback TCP port. We sweep the concurrent-client count, each client
// pipelining `all: true` query requests, and record end-to-end queries/sec.
// Because the batcher coalesces same-release requests that arrive within
// the window into a single AnswerAll (and serializes the shared response
// once), multi-client throughput must clearly beat the degenerate
// one-request-per-batch configuration (batch_max=1) on the identical load.
// Every response is byte-compared against the inline ReleaseServer path:
// batching must never change a single byte.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/net_server.h"
#include "engine/server.h"
#include "net/line_channel.h"

namespace dpjoin {
namespace {

struct SessionResult {
  double qps = 0.0;
  int64_t answer_all_calls = 0;
  bool bytes_ok = false;
};

// Runs one serving session: a NetServer over `server`, `clients` concurrent
// connections each pipelining `requests` copies of its line (client k uses
// lines[k % lines.size()], so several releases can be queried at once),
// every response byte-checked against the matching expected line.
SessionResult RunSession(ReleaseServer& server, NetServerOptions options,
                         int clients, int requests,
                         const std::vector<std::string>& lines,
                         const std::vector<std::string>& expected) {
  SessionResult result;
  NetServer net(server, options);
  const Status started = net.Start();
  DPJOIN_CHECK(started.ok(), started.ToString());
  std::thread loop([&net] { net.Run(); });

  std::vector<int> bad(static_cast<size_t>(clients), 1);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int k = 0; k < clients; ++k) {
    workers.emplace_back([&, k] {
      const std::string& line = lines[static_cast<size_t>(k) % lines.size()];
      const std::string& want =
          expected[static_cast<size_t>(k) % expected.size()];
      auto client = LineClient::Connect("127.0.0.1", net.port());
      if (!client.ok()) return;
      for (int i = 0; i < requests; ++i) {
        if (!client->SendLine(line).ok()) return;
      }
      int mismatches = 0;
      for (int i = 0; i < requests; ++i) {
        auto response = client->ReadLine();
        if (!response.ok() || *response != want) ++mismatches;
      }
      bad[static_cast<size_t>(k)] = mismatches;
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  net.RequestShutdown();
  loop.join();

  result.qps = static_cast<double>(clients) *
               static_cast<double>(requests) / elapsed.count();
  result.answer_all_calls = net.batcher().answer_all_calls();
  result.bytes_ok = true;
  for (int mismatches : bad) result.bytes_ok &= mismatches == 0;
  return result;
}

int Run() {
  bench::PrintHeader(
      "NET", "TCP serving front-end + cross-client micro-batching",
      "query requests from concurrent clients that land within one batch "
      "window share a single engine evaluation and one serialized response; "
      "multi-client throughput beats one-request-per-batch serving while "
      "answering byte-identically to the inline path");

  const int requests = bench::QuickMode() ? 8 : 16;
  const int per_table = bench::QuickMode() ? 60 : 150;
  const std::vector<int> client_counts =
      bench::QuickMode() ? std::vector<int>{1, 2, 4}
                         : std::vector<int>{1, 2, 4, 8};

  ReleaseEngine engine(PrivacyParams(4.0, 1e-3), /*cache_capacity=*/8);
  ReleaseServer server(engine);
  const std::string register_line =
      R"json({"cmd": "register", "name": "netbench", )json"
      R"json("source": "generated:zipf(tuples=4000,s=1.0,seed=7)", )json"
      R"json("attributes": ["A:32", "B:4", "C:32"], )json"
      R"json("relations": ["R1:A,B", "R2:B,C"]})json";
  const std::string release_line =
      R"json({"cmd": "release", "dataset": "netbench", "seed": 5, )json"
      R"json("spec": ")json"
      "# dpjoin-release-spec v1\\nname = netbench\\nattribute = A:32\\n"
      "attribute = B:4\\nattribute = C:32\\nrelation = R1:A,B\\n"
      "relation = R2:B,C\\nepsilon = 1.0\\ndelta = 1e-5\\n"
      "mechanism = auto\\nworkload = random_sign:" +
      std::to_string(per_table) + R"json("})json";
  auto registered = JsonValue::Parse(server.HandleLine(register_line));
  DPJOIN_CHECK(registered.ok() && registered->Find("ok")->AsBool(),
               "dataset registration failed");
  auto released = JsonValue::Parse(server.HandleLine(release_line));
  DPJOIN_CHECK(released.ok() && released->Find("ok")->AsBool(),
               "release failed");
  const std::string release_id = released->Find("release")->AsString();
  const std::string query_line =
      R"json({"cmd": "query", "release": ")json" + release_id +
      R"json(", "all": true})json";
  // The inline path defines the expected bytes for every TCP response.
  const std::string expected = server.HandleLine(query_line);

  NetServerOptions batched;
  batched.batch_window_us = 2000;
  NetServerOptions unbatched;
  unbatched.batch_window_us = 0;
  unbatched.batch_max = 1;

  TablePrinter table({"clients", "batched qps", "engine calls",
                      "unbatched qps", "speedup"});
  std::vector<double> batched_qps, unbatched_qps;
  bool bytes_ok = true;
  int64_t top_batched_calls = 0;
  const int total_requests = client_counts.back() * requests;
  for (int clients : client_counts) {
    const SessionResult with_batching = RunSession(
        server, batched, clients, requests, {query_line}, {expected});
    const SessionResult without_batching = RunSession(
        server, unbatched, clients, requests, {query_line}, {expected});
    bytes_ok &= with_batching.bytes_ok && without_batching.bytes_ok;
    batched_qps.push_back(with_batching.qps);
    unbatched_qps.push_back(without_batching.qps);
    if (clients == client_counts.back()) {
      top_batched_calls = with_batching.answer_all_calls;
    }
    table.AddRow({std::to_string(clients),
                  TablePrinter::Num(with_batching.qps),
                  std::to_string(with_batching.answer_all_calls),
                  TablePrinter::Num(without_batching.qps),
                  TablePrinter::Num(with_batching.qps /
                                    without_batching.qps)});
  }
  bench::Emit(table, "net");
  bench::RecordSeries("net.batched_qps", batched_qps);
  bench::RecordSeries("net.unbatched_qps", unbatched_qps);
  bench::RecordSeries(
      "net.top_speedup",
      {batched_qps.back() / unbatched_qps.back()});

  // --- concurrency: qps vs --workers at a fixed client count ------------
  // A second release gives each flush two independent release groups —
  // exactly the work --workers exists to overlap on the concurrent-region
  // pool. Clients alternate between the two releases.
  const std::string release2_line =
      R"json({"cmd": "release", "dataset": "netbench", "seed": 11, )json"
      R"json("spec": ")json"
      "# dpjoin-release-spec v1\\nname = netbench2\\nattribute = A:32\\n"
      "attribute = B:4\\nattribute = C:32\\nrelation = R1:A,B\\n"
      "relation = R2:B,C\\nepsilon = 1.0\\ndelta = 1e-5\\n"
      "mechanism = auto\\nworkload = random_sign:" +
      std::to_string(per_table) + R"json("})json";
  auto released2 = JsonValue::Parse(server.HandleLine(release2_line));
  DPJOIN_CHECK(released2.ok() && released2->Find("ok")->AsBool(),
               "second release failed");
  const std::string query2_line =
      R"json({"cmd": "query", "release": ")json" +
      released2->Find("release")->AsString() + R"json(", "all": true})json";
  const std::string expected2 = server.HandleLine(query2_line);

  TablePrinter concurrency_table({"workers", "qps"});
  std::vector<double> worker_counts, worker_qps;
  const int fixed_clients = client_counts.back();
  for (int workers : {0, 1, 2, 4}) {
    NetServerOptions options = batched;
    options.workers = workers;
    const SessionResult session =
        RunSession(server, options, fixed_clients, requests,
                   {query_line, query2_line}, {expected, expected2});
    bytes_ok &= session.bytes_ok;
    worker_counts.push_back(static_cast<double>(workers));
    worker_qps.push_back(session.qps);
    concurrency_table.AddRow(
        {std::to_string(workers), TablePrinter::Num(session.qps)});
  }
  bench::Emit(concurrency_table, "concurrency");
  bench::RecordSeries("concurrency.workers", worker_counts);
  bench::RecordSeries("concurrency.qps", worker_qps);

  // --- concurrency: raw region overlap on the thread pool ---------------
  // Two threads each run K ParallelSum regions at once, against 2K of the
  // same regions run back-to-back on one thread. On a multi-core box the
  // concurrent form must win (regions genuinely overlap); on one core it
  // must merely not collapse. Every region's sum is bit-compared to the
  // serial result — overlap may never touch the output.
  const int64_t overlap_n = bench::QuickMode() ? 200000 : 400000;
  const int overlap_reps = bench::QuickMode() ? 4 : 8;
  auto block_sum = [](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += 1.0 / static_cast<double>(i + 1);
    return s;
  };
  const double overlap_expected =
      ParallelSum(0, overlap_n, 4096, block_sum, 1);
  std::atomic<int> overlap_mismatches{0};
  auto region_work = [&](int reps) {
    for (int r = 0; r < reps; ++r) {
      const double sum = ParallelSum(0, overlap_n, 4096, block_sum, 2);
      if (sum != overlap_expected) overlap_mismatches.fetch_add(1);
    }
  };
  const auto serialized_start = std::chrono::steady_clock::now();
  region_work(2 * overlap_reps);
  const std::chrono::duration<double> serialized_elapsed =
      std::chrono::steady_clock::now() - serialized_start;
  const auto concurrent_start = std::chrono::steady_clock::now();
  std::thread other([&] { region_work(overlap_reps); });
  region_work(overlap_reps);
  other.join();
  const std::chrono::duration<double> concurrent_elapsed =
      std::chrono::steady_clock::now() - concurrent_start;
  const double overlap_speedup =
      serialized_elapsed.count() / concurrent_elapsed.count();
  bench::RecordSeries("concurrency.region_overlap_speedup",
                      {overlap_speedup});

  bench::Verdict(bytes_ok,
                 "every TCP response byte-identical to the inline path");
  bench::Verdict(overlap_mismatches.load() == 0,
                 "concurrent-region sums bit-identical to serial");
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 2) {
    bench::Verdict(
        overlap_speedup >= 1.15,
        "concurrent parallel regions beat serialized execution on " +
            std::to_string(cores) + " cores (speedup " +
            TablePrinter::Num(overlap_speedup) + "x)");
  } else {
    // One core cannot overlap compute; require only that concurrency does
    // not collapse throughput (generous bound absorbs scheduler noise).
    bench::Verdict(overlap_speedup >= 0.6,
                   "no concurrent-region regression on a 1-core runner "
                   "(ratio " +
                       TablePrinter::Num(overlap_speedup) + "x)");
  }
  bench::Verdict(
      top_batched_calls < total_requests,
      "coalescing observed: " + std::to_string(top_batched_calls) +
          " engine calls served " + std::to_string(total_requests) +
          " requests at " + std::to_string(client_counts.back()) +
          " clients");
  bench::Verdict(
      batched_qps.back() >= 2.0 * unbatched_qps.back(),
      "batched multi-client throughput >= 2x one-request-per-batch (" +
          TablePrinter::Num(batched_qps.back()) + " vs " +
          TablePrinter::Num(unbatched_qps.back()) + " qps)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
