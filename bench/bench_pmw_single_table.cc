// Experiment E9 — Theorem A.1 / Theorem 1.3: single-table PMW utility.
//
// On a single-relation query (the degenerate join), PMW must answer a
// random-sign workload within O(√n · f_upper). We sweep n and fit the
// scaling exponent; theory predicts 1/2 once n clears the additive
// Δ̃·√λ·f_upper noise floor.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/factored_tensor.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

// Serial-vs-parallel series over the PMW round loop (EvaluateAllOnTensor +
// MultiplicativeUpdate dominate) on a release domain large enough for the
// thread pool to matter. The outputs must be bit-identical for every thread
// count — determinism is the substrate's hard contract — and the recorded
// speedup series accumulates the perf trajectory in BENCH_E9.json.
void ThreadingSweep() {
  const int64_t side = bench::QuickMode() ? 128 : 512;
  const int64_t rounds = bench::QuickMode() ? 8 : 24;
  const JoinQuery query = MakeTwoTableQuery(side, 4, side);
  Rng data_rng(71);
  // Few tuples: the round-loop cost being measured (contraction + per-cell
  // update) scales with |D|, not with the instance, and the sparse
  // EvaluateAllOnInstance precompute must not dominate the timing.
  const Instance instance =
      MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng wl_rng(72);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 16, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 8.0;
  options.num_rounds = rounds;
  options.per_round_epsilon_override = 0.25;

  auto run_once = [&](int threads) {
    options.num_threads = threads;
    Rng rng(73);  // identical noise stream for every thread count
    auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
    DPJOIN_CHECK(result.ok(), result.status().ToString());
    return std::move(result).value();
  };

  TablePrinter table({"threads", "seconds", "speedup vs serial"});
  std::vector<double> speedup_series;
  std::vector<double> serial_values;
  bool bit_identical = true;
  double serial_seconds = 0.0;
  for (int threads : {1, 2, 8}) {
    // Best of 3: wall-clock medians are noisy at this scale.
    double best = 1e100;
    PmwResult result;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result = run_once(threads);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_values = result.synthetic.values();
    } else {
      const auto& values = result.synthetic.values();
      bit_identical &= values.size() == serial_values.size();
      for (size_t i = 0; bit_identical && i < values.size(); ++i) {
        bit_identical &= values[i] == serial_values[i];
      }
    }
    const double speedup = serial_seconds / best;
    table.AddRow({std::to_string(threads), TablePrinter::Num(best),
                  TablePrinter::Num(speedup)});
    speedup_series.push_back(speedup);
  }
  bench::Emit(table, "threading");  // records threading.{threads,seconds,...}

  bench::Verdict(bit_identical,
                 "PMW output bit-identical for threads in {1, 2, 8} "
                 "(determinism contract of the parallel substrate)");
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores >= 4) {
    bench::Verdict(speedup_series.back() >= 2.0,
                   "parallel PMW round loop >= 2x serial at 8 threads on " +
                       std::to_string(cores) + " available cores (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  } else {
    bench::Verdict(true,
                   "speedup not asserted: only " + std::to_string(cores) +
                       " core(s) available (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  }
}

// Median of a per-round timing vector (microseconds).
double MedianUs(std::vector<double> v) {
  SampleStats stats;
  for (double x : v) stats.Add(x);
  return stats.Median();
}

// Factored vs oracle round loop on an indicator (prefix/threshold) workload
// — the work-efficiency measurement behind this PR: the factored loop must
// be >= 3x faster per round, agree with the oracle within fp tolerance,
// and stay bit-identical across thread counts. Emits the per-round cost
// breakdown round.{eval_us,update_us,normalize_us} for both loops.
void FactoredSweep() {
  const int64_t side = bench::QuickMode() ? 128 : 384;
  const int64_t rounds = bench::QuickMode() ? 12 : 24;
  const JoinQuery query = MakeTwoTableQuery(side, 4, side);
  Rng data_rng(91);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  // Prefix indicators: the interval/threshold workloads whose product
  // structure the sparse update exploits (box = ×_i support_i).
  const QueryFamily family = MakeWorkload(query, WorkloadKind::kPrefix, 8,
                                          data_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 8.0;
  options.num_rounds = rounds;
  options.per_round_epsilon_override = 0.25;

  auto run_once = [&](bool factored, int threads) {
    options.use_factored_loop = factored;
    options.num_threads = threads;
    Rng rng(93);  // identical noise stream for every configuration
    auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
    DPJOIN_CHECK(result.ok(), result.status().ToString());
    return std::move(result).value();
  };

  // Best-of-3 per loop flavor; per-round medians from the recorded perf
  // breakdown of the best run.
  TablePrinter table({"loop", "round eval us", "round update us",
                      "round normalize us", "round total us"});
  double totals[2] = {0.0, 0.0};
  PmwResult results[2];
  for (int flavor = 0; flavor < 2; ++flavor) {
    const bool factored = flavor == 1;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      PmwResult result = run_once(factored, 0);
      const double total = MedianUs(result.perf.eval_us) +
                           MedianUs(result.perf.update_us) +
                           MedianUs(result.perf.normalize_us);
      if (total < best) {
        best = total;
        results[flavor] = std::move(result);
      }
    }
    totals[flavor] = best;
    const PmwResult& r = results[flavor];
    table.AddRow({factored ? "factored" : "oracle",
                  TablePrinter::Num(MedianUs(r.perf.eval_us)),
                  TablePrinter::Num(MedianUs(r.perf.update_us)),
                  TablePrinter::Num(MedianUs(r.perf.normalize_us)),
                  TablePrinter::Num(best)});
  }
  bench::Emit(table, "round");  // round.{...eval us,...} series
  const double speedup = totals[0] / totals[1];
  bench::RecordSeries("round.speedup", {speedup});

  // Equivalence within documented tolerance (fp associativity differs).
  const auto& oracle_vals = results[0].synthetic.values();
  const auto& factored_vals = results[1].synthetic.values();
  double max_rel = 0.0;
  const double scale =
      std::max(1.0, std::abs(results[0].noisy_total));
  for (size_t i = 0; i < oracle_vals.size(); ++i) {
    max_rel = std::max(
        max_rel, std::abs(oracle_vals[i] - factored_vals[i]) / scale);
  }
  bench::Verdict(results[0].rounds == results[1].rounds &&
                     results[0].perf.sparse_rounds == 0 &&
                     results[1].perf.sparse_rounds > 0,
                 "factored loop fired its sparse sub-box path (" +
                     std::to_string(results[1].perf.sparse_rounds) + "/" +
                     std::to_string(results[1].rounds) + " rounds sparse, " +
                     std::to_string(results[1].perf.scale_only_rounds) +
                     " O(1) scale-only)");
  bench::Verdict(max_rel <= 1e-9,
                 "factored release matches the oracle loop within 1e-9 "
                 "relative (measured " + TablePrinter::Num(max_rel) + ")");
  bench::Verdict(speedup >= 3.0,
                 "factored round loop >= 3x faster than the oracle loop on "
                 "the indicator workload (measured " +
                     TablePrinter::Num(speedup) + "x per-round median)");

  // Determinism across thread counts — the substrate's hard contract holds
  // for the sparse path too.
  const PmwResult serial = run_once(true, 1);
  bool bit_identical = true;
  for (int threads : {2, 8}) {
    const PmwResult result = run_once(true, threads);
    const auto& values = result.synthetic.values();
    const auto& expected = serial.synthetic.values();
    bit_identical &= values.size() == expected.size();
    for (size_t i = 0; bit_identical && i < values.size(); ++i) {
      bit_identical &= values[i] == expected[i];
    }
  }
  bench::Verdict(bit_identical,
                 "factored PMW bit-identical for threads in {1, 2, 8}");
}

// Product-form backing beyond the dense envelope: a 2^40-cell single-table
// domain (10 attributes of size 16) that the dense loop cannot even
// allocate, run end-to-end on the FactoredTensor backing. Emits the
// factored.{mem_bytes,round_us} series and asserts the release's memory
// stays under the dense-infeasibility bound (one 2^26-cell tensor).
void ProductBackingSweep() {
  const int64_t rounds = bench::QuickMode() ? 8 : 24;
  std::vector<AttributeSpec> attrs;
  std::vector<std::string> order;
  for (int d = 0; d < 10; ++d) {
    const std::string name(1, static_cast<char>('A' + d));
    attrs.push_back({name, 16});
    order.push_back(name);
  }
  auto query_or = JoinQuery::Create(attrs, {order});
  DPJOIN_CHECK(query_or.ok(), query_or.status().ToString());
  const JoinQuery query = *query_or;

  Rng data_rng(95);
  Instance instance = Instance::Make(query);
  for (int64_t t = 0; t < 2000; ++t) {
    instance.mutable_relation(0).AddFrequencyByCode(
        data_rng.UniformInt(0, (int64_t{1} << 36) - 1), 1);
  }
  // Marginals over every attribute: |Q| = 161, each query inside one
  // single-attribute factor.
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kMarginalAll, 0, data_rng);
  const WorkloadFactorization wf = ComputeWorkloadFactorization(query, family);
  DPJOIN_CHECK(wf.product_form, wf.reason);

  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 1.0;
  options.num_rounds = rounds;
  options.per_round_epsilon_override = 0.25;
  Rng rng(96);
  auto result_or = PrivateMultiplicativeWeightsFactored(instance, family,
                                                        wf.groups, options,
                                                        rng);
  DPJOIN_CHECK(result_or.ok(), result_or.status().ToString());
  const PmwResult result = std::move(result_or).value();
  DPJOIN_CHECK(result.factored_synthetic != nullptr,
               "factored run returned no release");

  const double mem_bytes =
      static_cast<double>(result.factored_synthetic->StorageCells()) *
      static_cast<double>(sizeof(double));
  const double round_us = MedianUs(result.perf.eval_us) +
                          MedianUs(result.perf.update_us) +
                          MedianUs(result.perf.normalize_us);
  TablePrinter table({"domain cells", "factor cells", "mem bytes",
                      "rounds", "round us (median)"});
  table.AddRow({TablePrinter::Num(result.factored_synthetic->DomainCells()),
                std::to_string(result.factored_synthetic->StorageCells()),
                TablePrinter::Num(mem_bytes), std::to_string(result.rounds),
                TablePrinter::Num(round_us)});
  bench::Emit(table, "factored");  // factored.{mem bytes,round us,...}
  bench::RecordSeries("factored.mem_bytes", {mem_bytes});
  bench::RecordSeries("factored.round_us", {round_us});

  // The dense backing would need 2^40 · 8 bytes; infeasibility bound: even
  // ONE dense-envelope tensor (2^26 cells · 8 B = 512 MiB) must exceed the
  // factored release by orders of magnitude.
  const double dense_infeasible_bytes =
      static_cast<double>(int64_t{1} << 26) * sizeof(double);
  bench::Verdict(mem_bytes < dense_infeasible_bytes,
                 "2^40-domain factored release fits in " +
                     TablePrinter::Num(mem_bytes) +
                     " bytes, under the dense-infeasible bound of " +
                     TablePrinter::Num(dense_infeasible_bytes) + " bytes");
  // Sanity: the released answers are finite and carry the noisy total.
  const std::vector<double> answers =
      result.evaluator->EvaluateAllFactored(*result.factored_synthetic);
  bool finite = !answers.empty();
  for (const double a : answers) finite &= std::isfinite(a);
  bench::Verdict(finite && std::abs(answers[0] - result.noisy_total) <=
                               1e-6 * std::max(1.0, result.noisy_total),
                 "factored release serves all " +
                     std::to_string(answers.size()) +
                     " marginal queries finitely; all-ones answer equals the "
                     "released mass");
}

int Run() {
  bench::PrintHeader(
      "E9", "Theorem A.1 / Theorem 1.3 (single-table PMW)",
      "alpha = O(sqrt(n)·f_upper) for a single table of n records");

  const PrivacyParams params(1.0, 1e-5);
  auto query_or = JoinQuery::Create({{"A", 1024}}, {{"A"}});
  DPJOIN_CHECK(query_or.ok(), query_or.status().ToString());
  const JoinQuery query = *query_or;
  const int seeds = bench::QuickMode() ? 2 : 4;

  // Concentrated instances (all mass on 8 of 1024 cells) are maximally hard
  // for the uniform prior: its error is Θ(n). PMW learns the concentration
  // and lands near the √n·f_upper envelope. ε′ is overridden so PMW's
  // learning dynamics (rather than the paper's 16√(k·ln 1/δ) constant) are
  // measured — the BOUND column still uses the paper's formula.
  TablePrinter table({"n", "median err (PMW)", "median err (uniform prior)",
                      "sqrt(n)*f_upper", "err/bound"});
  std::vector<double> ns, errs_by_n, uniform_by_n;
  bool within_bound = true;
  for (int64_t n : {256, 1024, 4096, 16384}) {
    SampleStats errs, uniform_errs;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(6000 + static_cast<uint64_t>(seed) * 3 +
              static_cast<uint64_t>(n));
      Instance instance = Instance::Make(query);
      for (int64_t t = 0; t < n; ++t) {
        instance.mutable_relation(0).AddFrequencyByCode(
            rng.UniformInt(0, 7), 1);
      }
      const QueryFamily family =
          MakeWorkload(query, WorkloadKind::kRandomSign, 63, rng);
      PmwOptions options;
      options.params = params;
      options.delta_tilde = 1.0;  // single-table sensitivity
      // Theory rounds k ∝ n̂ (Appendix A) — uncapped, so the MW convergence
      // error n̂·sqrt(log|D|/k) realizes its √n̂ envelope.
      options.max_rounds = 4096;
      options.per_round_epsilon_override = 0.25;
      auto result =
          PrivateMultiplicativeWeights(instance, family, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      errs.Add(WorkloadError(family, instance, result->synthetic));
      DenseTensor uniform(result->synthetic.shape());
      uniform.Fill(result->noisy_total /
                   static_cast<double>(uniform.size()));
      uniform_errs.Add(WorkloadError(family, instance, uniform));
    }
    const double bound = SingleTableUpperBound(
        static_cast<double>(n), 1024.0, 64.0, params);
    within_bound &= errs.Median() <= 3.0 * bound;
    table.AddRow({std::to_string(n), TablePrinter::Num(errs.Median()),
                  TablePrinter::Num(uniform_errs.Median()),
                  TablePrinter::Num(bound),
                  TablePrinter::Num(errs.Median() / bound)});
    ns.push_back(static_cast<double>(n));
    errs_by_n.push_back(errs.Median());
    uniform_by_n.push_back(uniform_errs.Median());
  }
  bench::Emit(table);

  bench::Verdict(within_bound,
                 "measured error <= 3x the Theorem 1.3 bound for every n");
  const double pmw_slope = bench::LogLogSlope(ns, errs_by_n);
  const double uniform_slope = bench::LogLogSlope(ns, uniform_by_n);
  bench::Verdict(
      pmw_slope < uniform_slope - 0.15 && pmw_slope < 0.95,
      "PMW error grows sublinearly (exponent " +
          TablePrinter::Num(pmw_slope) + ", theory 0.5) vs the uniform "
          "prior's ~linear growth (exponent " +
          TablePrinter::Num(uniform_slope) + ")");

  ThreadingSweep();
  FactoredSweep();
  ProductBackingSweep();
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
