// Experiment E9 — Theorem A.1 / Theorem 1.3: single-table PMW utility.
//
// On a single-relation query (the degenerate join), PMW must answer a
// random-sign workload within O(√n · f_upper). We sweep n and fit the
// scaling exponent; theory predicts 1/2 once n clears the additive
// Δ̃·√λ·f_upper noise floor.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "core/theory_bounds.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

// Serial-vs-parallel series over the PMW round loop (EvaluateAllOnTensor +
// MultiplicativeUpdate dominate) on a release domain large enough for the
// thread pool to matter. The outputs must be bit-identical for every thread
// count — determinism is the substrate's hard contract — and the recorded
// speedup series accumulates the perf trajectory in BENCH_E9.json.
void ThreadingSweep() {
  const int64_t side = bench::QuickMode() ? 128 : 512;
  const int64_t rounds = bench::QuickMode() ? 8 : 24;
  const JoinQuery query = MakeTwoTableQuery(side, 4, side);
  Rng data_rng(71);
  // Few tuples: the round-loop cost being measured (contraction + per-cell
  // update) scales with |D|, not with the instance, and the sparse
  // EvaluateAllOnInstance precompute must not dominate the timing.
  const Instance instance =
      MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng wl_rng(72);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 16, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 8.0;
  options.num_rounds = rounds;
  options.per_round_epsilon_override = 0.25;

  auto run_once = [&](int threads) {
    options.num_threads = threads;
    Rng rng(73);  // identical noise stream for every thread count
    auto result = PrivateMultiplicativeWeights(instance, family, options, rng);
    DPJOIN_CHECK(result.ok(), result.status().ToString());
    return std::move(result).value();
  };

  TablePrinter table({"threads", "seconds", "speedup vs serial"});
  std::vector<double> speedup_series;
  std::vector<double> serial_values;
  bool bit_identical = true;
  double serial_seconds = 0.0;
  for (int threads : {1, 2, 8}) {
    // Best of 3: wall-clock medians are noisy at this scale.
    double best = 1e100;
    PmwResult result;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result = run_once(threads);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::min(best, elapsed.count());
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_values = result.synthetic.values();
    } else {
      const auto& values = result.synthetic.values();
      bit_identical &= values.size() == serial_values.size();
      for (size_t i = 0; bit_identical && i < values.size(); ++i) {
        bit_identical &= values[i] == serial_values[i];
      }
    }
    const double speedup = serial_seconds / best;
    table.AddRow({std::to_string(threads), TablePrinter::Num(best),
                  TablePrinter::Num(speedup)});
    speedup_series.push_back(speedup);
  }
  bench::Emit(table, "threading");  // records threading.{threads,seconds,...}

  bench::Verdict(bit_identical,
                 "PMW output bit-identical for threads in {1, 2, 8} "
                 "(determinism contract of the parallel substrate)");
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores >= 4) {
    bench::Verdict(speedup_series.back() >= 2.0,
                   "parallel PMW round loop >= 2x serial at 8 threads on " +
                       std::to_string(cores) + " available cores (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  } else {
    bench::Verdict(true,
                   "speedup not asserted: only " + std::to_string(cores) +
                       " core(s) available (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  }
}

int Run() {
  bench::PrintHeader(
      "E9", "Theorem A.1 / Theorem 1.3 (single-table PMW)",
      "alpha = O(sqrt(n)·f_upper) for a single table of n records");

  const PrivacyParams params(1.0, 1e-5);
  auto query_or = JoinQuery::Create({{"A", 1024}}, {{"A"}});
  DPJOIN_CHECK(query_or.ok(), query_or.status().ToString());
  const JoinQuery query = *query_or;
  const int seeds = bench::QuickMode() ? 2 : 4;

  // Concentrated instances (all mass on 8 of 1024 cells) are maximally hard
  // for the uniform prior: its error is Θ(n). PMW learns the concentration
  // and lands near the √n·f_upper envelope. ε′ is overridden so PMW's
  // learning dynamics (rather than the paper's 16√(k·ln 1/δ) constant) are
  // measured — the BOUND column still uses the paper's formula.
  TablePrinter table({"n", "median err (PMW)", "median err (uniform prior)",
                      "sqrt(n)*f_upper", "err/bound"});
  std::vector<double> ns, errs_by_n, uniform_by_n;
  bool within_bound = true;
  for (int64_t n : {256, 1024, 4096, 16384}) {
    SampleStats errs, uniform_errs;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(6000 + static_cast<uint64_t>(seed) * 3 +
              static_cast<uint64_t>(n));
      Instance instance = Instance::Make(query);
      for (int64_t t = 0; t < n; ++t) {
        instance.mutable_relation(0).AddFrequencyByCode(
            rng.UniformInt(0, 7), 1);
      }
      const QueryFamily family =
          MakeWorkload(query, WorkloadKind::kRandomSign, 63, rng);
      PmwOptions options;
      options.params = params;
      options.delta_tilde = 1.0;  // single-table sensitivity
      // Theory rounds k ∝ n̂ (Appendix A) — uncapped, so the MW convergence
      // error n̂·sqrt(log|D|/k) realizes its √n̂ envelope.
      options.max_rounds = 4096;
      options.per_round_epsilon_override = 0.25;
      auto result =
          PrivateMultiplicativeWeights(instance, family, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      errs.Add(WorkloadError(family, instance, result->synthetic));
      DenseTensor uniform(result->synthetic.shape());
      uniform.Fill(result->noisy_total /
                   static_cast<double>(uniform.size()));
      uniform_errs.Add(WorkloadError(family, instance, uniform));
    }
    const double bound = SingleTableUpperBound(
        static_cast<double>(n), 1024.0, 64.0, params);
    within_bound &= errs.Median() <= 3.0 * bound;
    table.AddRow({std::to_string(n), TablePrinter::Num(errs.Median()),
                  TablePrinter::Num(uniform_errs.Median()),
                  TablePrinter::Num(bound),
                  TablePrinter::Num(errs.Median() / bound)});
    ns.push_back(static_cast<double>(n));
    errs_by_n.push_back(errs.Median());
    uniform_by_n.push_back(uniform_errs.Median());
  }
  bench::Emit(table);

  bench::Verdict(within_bound,
                 "measured error <= 3x the Theorem 1.3 bound for every n");
  const double pmw_slope = bench::LogLogSlope(ns, errs_by_n);
  const double uniform_slope = bench::LogLogSlope(ns, uniform_by_n);
  bench::Verdict(
      pmw_slope < uniform_slope - 0.15 && pmw_slope < 0.95,
      "PMW error grows sublinearly (exponent " +
          TablePrinter::Num(pmw_slope) + ", theory 0.5) vs the uniform "
          "prior's ~linear growth (exponent " +
          TablePrinter::Num(uniform_slope) + ")");

  ThreadingSweep();
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
