// Experiment E6 — Figure 3 + Example 4.2: the uniformization gap.
//
// Part A (semi-analytic, large k): build the Example 4.2 staircase instance,
// run the REAL noisy partition (Algorithm 5), and evaluate the paper's error
// expressions with the measured per-bucket join sizes:
//   plain  (Thm 3.3): sqrt(count·(Δ+λ)) + (Δ+λ)·sqrt(λ)
//   unif   (Eq. (2)): λ^{3/2}(Δ+λ) + sqrt(λ)·Σ_i sqrt(count_i·2^i)
// Example 4.2 predicts the ratio grows like k^{1/3}/polylog.
// (PMW cannot be materialized at these k — the expressions are exactly the
// quantities the paper's analysis assigns to each algorithm; DESIGN.md E6.)
//
// Part B (end-to-end, small k): measured PMW errors for Algorithm 1 vs
// Algorithm 4 on the same instance, showing both pipelines run.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/partition_two_table.h"
#include "core/theory_bounds.h"
#include "core/two_table.h"
#include "core/uniformize.h"
#include "lowerbound/hard_instances.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {
namespace {

int Run() {
  bench::PrintHeader(
      "E6", "Figure 3 / Example 4.2 (uniformized sensitivity)",
      "Algorithm 4 improves Algorithm 1 by ~k^{1/3} on the degree staircase "
      "(error k^{4/3} -> k·polylog)");

  const PrivacyParams params(1.0, 1e-4);
  const double lambda = params.Lambda();

  // ---- Part A: semi-analytic gap at large k -------------------------------
  std::cout << "Part A — paper error expressions on the REAL Algorithm-5 "
               "partition (noisy degrees):\n";
  TablePrinter table_a({"k", "n", "count", "Delta", "#buckets",
                        "alpha(Alg 1)", "alpha(Alg 4)", "gap ratio",
                        "k^(1/3)"});
  std::vector<double> ks, ratios;
  const std::vector<int64_t> k_values =
      bench::QuickMode() ? std::vector<int64_t>{64, 256}
                         : std::vector<int64_t>{64, 256, 1024, 4096};
  for (int64_t k : k_values) {
    const Example42Instance example = MakeExample42Instance(k);
    const Instance& instance = example.instance;
    const double count = JoinCount(instance);
    const double delta_ls = TwoTableDelta(instance);

    Rng rng(static_cast<uint64_t>(k) + 11);
    auto partition = PartitionTwoTable(instance, params.Half(), lambda, rng);
    DPJOIN_CHECK(partition.ok(), partition.status().ToString());

    // Plain: sqrt(count·(Δ+λ)) + (Δ+λ)√λ  (f_upper cancels in the ratio).
    const double alpha_plain =
        std::sqrt(count * (delta_ls + lambda)) +
        (delta_ls + lambda) * std::sqrt(lambda);
    // Uniformized, Eq. (2): λ^{3/2}(Δ+λ) + √λ·Σ_i sqrt(count_i·2^i·λ).
    double alpha_unif = std::pow(lambda, 1.5) * (delta_ls + lambda);
    for (const TwoTableBucket& bucket : partition->buckets) {
      const double bucket_count = JoinCount(bucket.sub_instance);
      const double gamma =
          lambda * std::pow(2.0, static_cast<double>(bucket.bucket_index));
      alpha_unif += std::sqrt(bucket_count * gamma);
    }
    const double ratio = alpha_plain / alpha_unif;
    table_a.AddRow(
        {std::to_string(k), TablePrinter::Num(instance.InputSize()),
         TablePrinter::Num(count), TablePrinter::Num(delta_ls),
         std::to_string(partition->buckets.size()),
         TablePrinter::Num(alpha_plain), TablePrinter::Num(alpha_unif),
         TablePrinter::Num(ratio),
         TablePrinter::Num(std::cbrt(static_cast<double>(k)))});
    ks.push_back(static_cast<double>(k));
    ratios.push_back(ratio);
  }
  bench::Emit(table_a);

  const double gap_slope = bench::LogLogSlope(ks, ratios);
  bench::Verdict(ratios.back() > ratios.front(),
                 "uniformization gap grows with k");
  bench::Verdict(gap_slope > 0.15 && gap_slope < 0.55,
                 "gap scales ~k^(1/3) (fitted exponent " +
                     TablePrinter::Num(gap_slope) + ", theory 1/3 - o(1))");

  // ---- Part B: end-to-end releases at small k -----------------------------
  std::cout << "\nPart B — end-to-end PMW releases at k = 16 (both "
               "pipelines; at this scale the per-bucket TLap masks dominate, "
               "see DESIGN.md):\n";
  const Example42Instance small = MakeExample42Instance(16);
  ReleaseOptions options;
  options.pmw_max_rounds = 12;
  const int seeds = bench::QuickMode() ? 2 : 3;
  SampleStats plain_errs, unif_errs;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng wl_rng(600 + static_cast<uint64_t>(seed));
    const QueryFamily family = MakeWorkload(
        small.instance.query(), WorkloadKind::kRandomSign, 2, wl_rng);
    Rng rng1(700 + static_cast<uint64_t>(seed));
    Rng rng2(800 + static_cast<uint64_t>(seed));
    auto plain = TwoTable(small.instance, family, params, options, rng1);
    auto unif =
        UniformizeTwoTable(small.instance, family, params, options, rng2);
    DPJOIN_CHECK(plain.ok(), plain.status().ToString());
    DPJOIN_CHECK(unif.ok(), unif.status().ToString());
    plain_errs.Add(WorkloadError(family, small.instance, plain->synthetic));
    unif_errs.Add(
        WorkloadError(family, small.instance, unif->release.synthetic));
  }
  TablePrinter table_b({"algorithm", "median err", "min", "max"});
  table_b.AddRow({"TwoTable (Alg 1)", TablePrinter::Num(plain_errs.Median()),
                  TablePrinter::Num(plain_errs.Min()),
                  TablePrinter::Num(plain_errs.Max())});
  table_b.AddRow({"Uniformize (Alg 4)", TablePrinter::Num(unif_errs.Median()),
                  TablePrinter::Num(unif_errs.Min()),
                  TablePrinter::Num(unif_errs.Max())});
  bench::Emit(table_b, "err");
  bench::Verdict(unif_errs.Median() < 10.0 * plain_errs.Median(),
                 "end-to-end uniformize overhead bounded at small scale "
                 "(asymptotic win shown in Part A)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
