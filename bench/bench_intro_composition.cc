// Experiment E14 — the paper's MOTIVATION (§1): answering each linear query
// independently wastes the privacy budget; one synthetic-data release
// answers the whole family.
//
// Independent Laplace answering pays error Θ(Δ̃·|Q|) (basic composition) or
// Θ(Δ̃·√|Q|) (advanced); the synthetic-data route (Algorithm 1) pays
// Õ(√(count·Δ̃)) — flat in |Q| up to polylog. We sweep |Q| and watch the
// crossover.

#include <iostream>

#include "bench_util.h"
#include "core/independent_laplace.h"
#include "core/two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/generators.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

int Run() {
  bench::PrintHeader(
      "E14", "§1 motivation: composition vs synthetic data",
      "independent per-query answering degrades polynomially in |Q|; a "
      "single synthetic dataset answers all queries with polylog(|Q|) loss");

  const PrivacyParams params(1.0, 1e-4);
  const int seeds = bench::QuickMode() ? 2 : 4;
  const JoinQuery query = MakeTwoTableQuery(6, 8, 6);
  Rng data_rng(11);
  const Instance instance = MakeZipfTwoTableInstance(query, 80, 1.0, data_rng);

  ReleaseOptions options;
  options.pmw_max_rounds = 24;

  TablePrinter table({"|Q|", "independent basic", "independent advanced",
                      "synthetic (Alg 1)", "basic/synthetic",
                      "advanced/synthetic"});
  std::vector<double> sizes, basic_errs, adv_errs, synth_errs;
  for (int64_t per_table : {1, 3, 7, 15}) {
    SampleStats basic, advanced, synthetic;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng wl_rng(100 + static_cast<uint64_t>(seed) * 17 +
                 static_cast<uint64_t>(per_table));
      const QueryFamily family =
          MakeWorkload(query, WorkloadKind::kRandomSign, per_table, wl_rng);
      const auto exact = EvaluateAllOnInstance(family, instance);

      Rng rng1(200 + static_cast<uint64_t>(seed));
      auto b = AnswerIndependently(instance, family, params,
                                   CompositionRule::kBasic, rng1);
      DPJOIN_CHECK(b.ok(), b.status().ToString());
      basic.Add(MaxAbsDifference(exact, b->answers));

      Rng rng2(300 + static_cast<uint64_t>(seed));
      auto a = AnswerIndependently(instance, family, params,
                                   CompositionRule::kAdvanced, rng2);
      DPJOIN_CHECK(a.ok(), a.status().ToString());
      advanced.Add(MaxAbsDifference(exact, a->answers));

      Rng rng3(400 + static_cast<uint64_t>(seed));
      auto s = TwoTable(instance, family, params, options, rng3);
      DPJOIN_CHECK(s.ok(), s.status().ToString());
      synthetic.Add(MaxAbsDifference(
          exact, EvaluateAllOnTensor(family, s->synthetic)));
    }
    const int64_t total = (per_table + 1) * (per_table + 1);
    table.AddRow({std::to_string(total), TablePrinter::Num(basic.Median()),
                  TablePrinter::Num(advanced.Median()),
                  TablePrinter::Num(synthetic.Median()),
                  TablePrinter::Num(basic.Median() / synthetic.Median()),
                  TablePrinter::Num(advanced.Median() / synthetic.Median())});
    sizes.push_back(static_cast<double>(total));
    basic_errs.push_back(basic.Median());
    adv_errs.push_back(advanced.Median());
    synth_errs.push_back(synthetic.Median());
  }
  bench::Emit(table);

  const double basic_slope = bench::LogLogSlope(sizes, basic_errs);
  const double adv_slope = bench::LogLogSlope(sizes, adv_errs);
  const double synth_slope = bench::LogLogSlope(sizes, synth_errs);
  bench::Verdict(basic_slope > 0.7,
                 "independent answering (basic composition) degrades ~|Q| "
                 "(fitted exponent " + TablePrinter::Num(basic_slope) + ")");
  bench::Verdict(adv_slope > 0.3 && adv_slope < basic_slope,
                 "advanced composition degrades ~sqrt(|Q|) (fitted exponent " +
                     TablePrinter::Num(adv_slope) + ")");
  bench::Verdict(synth_slope < 0.35,
                 "synthetic-data release is ~flat in |Q| (fitted exponent " +
                     TablePrinter::Num(synth_slope) + ", theory polylog)");
  bench::Verdict(basic_errs.back() > 2.0 * synth_errs.back(),
                 "at |Q| = 256 the synthetic dataset beats independent "
                 "answering (the paper's motivating claim)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
