// Experiment E2 — Example 3.1: pad-then-release is still not DP.
//
// The second flawed idea masks the TOTAL (padding with η ~ TLap dummy
// tuples) but releases J̃1 before padding, so the mass INSIDE the region
// D′ = (dom(A)×{b1}) × {(b1,c1)} still tracks count(I): ≈ n under I, ≈ 0
// under I′ (the padding rarely lands in the thin region when the domain is
// polynomially larger than n). Algorithm 1 fixes the order — pad first,
// then release — and the region statistic stops separating the pair.

#include <iostream>

#include "bench_util.h"
#include "core/flawed.h"
#include "core/two_table.h"
#include "lowerbound/distinguisher.h"
#include "lowerbound/hard_instances.h"
#include "query/workloads.h"

namespace dpjoin {
namespace {

QueryFamily RegionFamily(const JoinQuery& query, int64_t dom) {
  // Q1 = {ones, 1[B=b0]}, Q2 = {ones, 1[(b0,c0)]} — contains the D′
  // indicator so PMW actually models the region.
  std::vector<TableQuery> q1 = {MakeAllOnesQuery(query, 0)};
  TableQuery region1{"b0", std::vector<double>(
      static_cast<size_t>(query.relation_domain_size(0)), 0.0), {}};
  for (int64_t a = 0; a < dom; ++a) {
    region1.values[static_cast<size_t>(a * dom)] = 1.0;
  }
  q1.push_back(std::move(region1));
  std::vector<TableQuery> q2 = {MakeAllOnesQuery(query, 1)};
  TableQuery region2{"b0c0", std::vector<double>(
      static_cast<size_t>(query.relation_domain_size(1)), 0.0), {}};
  region2.values[0] = 1.0;
  q2.push_back(std::move(region2));
  auto family = QueryFamily::Create(query, {std::move(q1), std::move(q2)});
  DPJOIN_CHECK(family.ok(), family.status().ToString());
  return std::move(family).value();
}

int Run() {
  bench::PrintHeader(
      "E2", "Example 3.1 (flawed padding order)",
      "Pr[mass(D') small | I'] > 1/e while Pr[mass(D') small | I] ~ 0 — "
      "pad-then-release violates DP; Algorithm 1 (pad first) does not");

  const PrivacyParams params(1.0, 1e-5);
  const int64_t n = 8, dom = 16;
  const int64_t trials = bench::QuickMode() ? 20 : 60;
  const Figure1Pair pair = MakeFigure1Pair(n, dom);
  const QueryFamily family = RegionFamily(pair.instance.query(), dom);

  ReleaseOptions options;
  options.pmw_rounds = 64;
  options.pmw_max_rounds = 64;
  // The paper's ε′ constant swamps n = 8; the flawed algorithm is not DP at
  // any ε′, so the override only sharpens the demonstration (DESIGN.md).
  options.pmw_epsilon_prime_override = 0.5;

  const double threshold = 3.5;
  const MechanismStatistic flawed = [&](const Instance& instance, Rng& rng) {
    auto r = FlawedPadThenRelease(instance, family, params, options, rng);
    return r.ok() ? Figure1RegionMass(instance, r->synthetic) : 0.0;
  };
  const MechanismStatistic fixed = [&](const Instance& instance, Rng& rng) {
    auto r = TwoTable(instance, family, params, options, rng);
    return r.ok() ? Figure1RegionMass(instance, r->synthetic) : 0.0;
  };

  Rng rng1(71), rng2(72);
  const DistinguisherResult flawed_verdict = DistinguishByThreshold(
      flawed, pair.instance, pair.neighbor, threshold, trials, params.delta,
      rng1);
  const DistinguisherResult fixed_verdict = DistinguishByThreshold(
      fixed, pair.instance, pair.neighbor, threshold, trials, params.delta,
      rng2);

  TablePrinter table({"algorithm", "Pr[mass(D')>=3.5 | I]",
                      "Pr[mass(D')>=3.5 | I']", "empirical eps lower bound",
                      "claimed eps"});
  table.AddRow({"pad-then-release (flawed)",
                TablePrinter::Num(flawed_verdict.p_event),
                TablePrinter::Num(flawed_verdict.p_event_prime),
                TablePrinter::Num(flawed_verdict.empirical_epsilon),
                TablePrinter::Num(params.epsilon)});
  table.AddRow({"TwoTable (Alg 1, pad first)",
                TablePrinter::Num(fixed_verdict.p_event),
                TablePrinter::Num(fixed_verdict.p_event_prime),
                TablePrinter::Num(fixed_verdict.empirical_epsilon),
                TablePrinter::Num(params.epsilon)});
  bench::Emit(table);

  bench::Verdict(
      flawed_verdict.p_event > 0.8 && flawed_verdict.p_event_prime < 0.4,
      "flawed padding: region mass separates I from I' (Example 3.1)");
  bench::Verdict(
      flawed_verdict.empirical_epsilon > 2.0 * params.epsilon,
      "flawed padding exceeds its claimed privacy budget empirically");
  bench::Verdict(fixed_verdict.empirical_epsilon <= 2.0 * params.epsilon,
                 "Algorithm 1's region statistic stays within ~eps");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
