// Experiment E1 — Figure 1 + §3.1 "A Natural (but Flawed) Idea".
//
// The naive join-as-one algorithm releases a synthetic dataset whose total
// mass equals count(I) exactly. On the Figure 1 neighboring pair the join
// sizes are n and 0, so the total mass is a perfect distinguisher — the
// algorithm is not DP. Algorithm 1 (TwoTable) masks the total with
// TLap(Δ̃)-calibrated noise, and the same statistic no longer separates the
// pair.

#include <iostream>

#include "bench_util.h"
#include "core/flawed.h"
#include "core/two_table.h"
#include "lowerbound/distinguisher.h"
#include "lowerbound/hard_instances.h"
#include "query/workloads.h"

namespace dpjoin {
namespace {

int Run() {
  bench::PrintHeader(
      "E1", "Figure 1 / §3.1 flawed join-as-one",
      "released total mass = count(I) distinguishes neighbors with join "
      "sizes n vs 0; Algorithm 1's TLap mask does not");

  const PrivacyParams params(1.0, 1e-5);
  const int64_t trials = bench::QuickMode() ? 20 : 60;
  ReleaseOptions options;
  options.pmw_max_rounds = 4;

  TablePrinter table({"n", "algorithm", "Pr[mass>=n/2 | I]",
                      "Pr[mass>=n/2 | I']", "empirical eps lower bound",
                      "claimed eps"});

  bool naive_all_violate = true;
  bool fixed_all_private = true;
  // |D| = n^4 cells (dense PMW), so the sweep stops at n = 32.
  for (int64_t n : {8, 16, 32}) {
    const Figure1Pair pair = MakeFigure1Pair(n);
    const QueryFamily family = MakeCountingFamily(pair.instance.query());

    const MechanismStatistic naive = [&](const Instance& instance, Rng& rng) {
      auto r = FlawedNaiveJoinAsOne(instance, family, params, options, rng);
      return r.ok() ? r->synthetic.TotalMass() : 0.0;
    };
    const MechanismStatistic fixed = [&](const Instance& instance, Rng& rng) {
      auto r = TwoTable(instance, family, params, options, rng);
      return r.ok() ? r->synthetic.TotalMass() : 0.0;
    };

    Rng rng1(10 + static_cast<uint64_t>(n)), rng2(90 + static_cast<uint64_t>(n));
    const double threshold = static_cast<double>(n) / 2.0;
    const DistinguisherResult naive_verdict = DistinguishByThreshold(
        naive, pair.instance, pair.neighbor, threshold, trials, params.delta,
        rng1);
    const DistinguisherResult fixed_verdict = DistinguishByThreshold(
        fixed, pair.instance, pair.neighbor, threshold, trials, params.delta,
        rng2);

    table.AddRow({std::to_string(n), "naive (flawed)",
                  TablePrinter::Num(naive_verdict.p_event),
                  TablePrinter::Num(naive_verdict.p_event_prime),
                  TablePrinter::Num(naive_verdict.empirical_epsilon),
                  TablePrinter::Num(params.epsilon)});
    table.AddRow({std::to_string(n), "TwoTable (Alg 1)",
                  TablePrinter::Num(fixed_verdict.p_event),
                  TablePrinter::Num(fixed_verdict.p_event_prime),
                  TablePrinter::Num(fixed_verdict.empirical_epsilon),
                  TablePrinter::Num(params.epsilon)});

    naive_all_violate &=
        naive_verdict.empirical_epsilon > 3.0 * params.epsilon;
    fixed_all_private &=
        fixed_verdict.empirical_epsilon <= 2.0 * params.epsilon;
  }
  bench::Emit(table);

  bench::Verdict(naive_all_violate,
                 "naive join-as-one empirically violates its claimed eps by "
                 ">3x on every n (paper: not DP)");
  bench::Verdict(fixed_all_private,
                 "Algorithm 1's total-mass statistic stays within ~eps "
                 "(paper: Lemma 3.2)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
