// Experiment ENGINE — release-engine serving + submission throughput.
//
// One ReleaseSpec is released once through the engine (privacy paid up
// front), then the immutable ServingHandle answers large query batches as
// pure post-processing. We sweep the serving thread count and record
// queries/sec; the determinism contract requires the batch answers to be
// bit-identical at every thread count. Also smoke-checks the two serving
// guarantees the engine adds on top of the mechanisms: a repeated spec is a
// cache hit that spends no budget, and the ledger's committed total equals
// the mechanism accountant's total.
//
// The submission series measures the catalog redesign: the legacy
// Run(spec, instance) path re-fingerprints the instance (O(n log n)) on
// every call, while Submit over a registered dataset reuses the
// fingerprint computed at registration — per-submission latency drops to
// the spec-hash + cache-lookup cost, independent of data size, and the
// cache hit-rate column shows every repeat being served free.

#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "relational/generators.h"

namespace dpjoin {
namespace {

ReleaseSpec MakeServingSpec(int64_t side) {
  ReleaseSpec spec;
  spec.name = "serving_bench";
  spec.attributes = {{"A", side}, {"B", 4}, {"C", side}};
  spec.relation_names = {"R1", "R2"};
  spec.relation_attrs = {{"A", "B"}, {"B", "C"}};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = MechanismKind::kPmw;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 15;
  spec.workload_seed = 91;
  spec.pmw_rounds = 4;  // release cost is not what this bench measures
  spec.pmw_max_rounds = 4;
  spec.pmw_epsilon_prime = 0.25;
  return spec;
}

int Run() {
  bench::PrintHeader(
      "ENGINE", "Release engine + serving layer",
      "privacy is paid once at release; the serving handle then answers "
      "arbitrary query batches as post-processing, scaling with threads and "
      "bit-identical at every thread count");

  const int64_t side = bench::QuickMode() ? 48 : 128;
  const int64_t batch_size = bench::QuickMode() ? 512 : 4096;
  const ReleaseSpec spec = MakeServingSpec(side);

  ReleaseEngine engine(PrivacyParams(4.0, 1e-3));
  const JoinQuery query = *spec.BuildQuery();
  Rng data_rng(90);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng release_rng(92);
  auto released = engine.Run(spec, instance, release_rng);
  DPJOIN_CHECK(released.ok(), released.status().ToString());
  const ServingHandle& handle = *released->handle;
  std::cout << "released via " << MechanismName(released->plan.mechanism)
            << "; |Q| = " << handle.NumQueries() << ", release domain = "
            << handle.dataset()->tensor().size() << " cells\n";

  // Ledger truthfulness: committed total == the mechanism's own accounting.
  const PrivacyParams ledger_total = engine.ledger().Total();
  const PrivacyParams mech_total = released->accountant.Total();
  bench::Verdict(ledger_total.epsilon == mech_total.epsilon &&
                     ledger_total.delta == mech_total.delta,
                 "BudgetLedger total equals the mechanism accountant total");

  // Cache: the identical spec re-runs free.
  {
    Rng rerun_rng(93);
    auto again = engine.Run(spec, instance, rerun_rng);
    DPJOIN_CHECK(again.ok(), again.status().ToString());
    bench::Verdict(again->from_cache &&
                       engine.ledger().SpentEpsilon() == ledger_total.epsilon,
                   "repeated spec served from cache without re-spending "
                   "budget");
  }

  // Serving throughput sweep: the same batch at 1/2/4/8 threads.
  Rng batch_rng(94);
  std::vector<int64_t> batch(static_cast<size_t>(batch_size));
  for (int64_t& q : batch) {
    q = batch_rng.UniformInt(0, handle.NumQueries() - 1);
  }

  TablePrinter table({"threads", "seconds", "queries/sec", "speedup"});
  std::vector<double> qps_series, speedup_series;
  std::vector<double> serial_answers;
  bool bit_identical = true;
  double serial_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best = 1e100;
    std::vector<double> answers;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto result = handle.AnswerBatch(batch, threads);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      answers = std::move(result).value();
      best = std::min(best, elapsed.count());
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_answers = answers;
    } else {
      bit_identical &= answers.size() == serial_answers.size();
      for (size_t i = 0; bit_identical && i < answers.size(); ++i) {
        bit_identical &= answers[i] == serial_answers[i];
      }
    }
    const double qps = static_cast<double>(batch_size) / best;
    const double speedup = serial_seconds / best;
    table.AddRow({std::to_string(threads), TablePrinter::Num(best),
                  TablePrinter::Num(qps), TablePrinter::Num(speedup)});
    qps_series.push_back(qps);
    speedup_series.push_back(speedup);
  }
  bench::Emit(table, "serving");
  bench::RecordSeries("serving.batch_size",
                      {static_cast<double>(batch_size)});

  // Submission latency: legacy per-call fingerprinting vs catalog reuse.
  // Every submission after the first is a cache hit either way; the delta
  // is the O(n log n) fingerprint the legacy path pays per call.
  {
    const int64_t submissions = bench::QuickMode() ? 50 : 400;
    // Large domains → many distinct codes → an expensive per-call
    // fingerprint on the legacy path. Laplace never materializes the dense
    // release domain, so the one paid mechanism run stays cheap.
    ReleaseSpec sub_spec;
    sub_spec.name = "submission_bench";
    const int64_t wide = bench::QuickMode() ? 1024 : 4096;
    sub_spec.attributes = {{"A", wide}, {"B", 4}, {"C", wide}};
    sub_spec.relation_names = {"R1", "R2"};
    sub_spec.relation_attrs = {{"A", "B"}, {"B", "C"}};
    sub_spec.epsilon = 1.0;
    sub_spec.delta = 1e-5;
    sub_spec.mechanism = MechanismKind::kLaplace;
    sub_spec.workload = WorkloadFamilyKind::kRandomSign;
    sub_spec.workload_per_table = 10;
    sub_spec.workload_seed = 97;
    Rng sub_rng(95);
    const Instance sub_instance = MakeZipfInstance(
        *sub_spec.BuildQuery(), bench::QuickMode() ? 20000 : 100000, 1.0,
        sub_rng);

    ReleaseEngine legacy_engine(PrivacyParams(4.0, 1e-3));
    Rng run_rng(96);
    DPJOIN_CHECK(legacy_engine.Run(sub_spec, sub_instance, run_rng).ok());
    const auto legacy_start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < submissions; ++i) {
      DPJOIN_CHECK(legacy_engine.Run(sub_spec, sub_instance, run_rng).ok());
    }
    const std::chrono::duration<double> legacy_elapsed =
        std::chrono::steady_clock::now() - legacy_start;

    ReleaseEngine catalog_engine(PrivacyParams(4.0, 1e-3));
    DPJOIN_CHECK(
        catalog_engine.catalog().Register("bench_data", sub_instance).ok());
    ReleaseRequest request;
    request.spec = sub_spec;
    request.dataset = "bench_data";
    request.seed = 96;
    DPJOIN_CHECK(catalog_engine.Submit(request).ok());
    const int64_t fingerprints_before = InstanceFingerprintCount();
    const auto catalog_start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < submissions; ++i) {
      DPJOIN_CHECK(catalog_engine.Submit(request).ok());
    }
    const std::chrono::duration<double> catalog_elapsed =
        std::chrono::steady_clock::now() - catalog_start;
    const int64_t fingerprints_during =
        InstanceFingerprintCount() - fingerprints_before;

    const double legacy_us =
        legacy_elapsed.count() / static_cast<double>(submissions) * 1e6;
    const double catalog_us =
        catalog_elapsed.count() / static_cast<double>(submissions) * 1e6;
    const double hit_rate =
        static_cast<double>(catalog_engine.cache().hits()) /
        static_cast<double>(catalog_engine.cache().hits() +
                            catalog_engine.cache().misses());
    TablePrinter sub_table({"path", "per-submission us", "fingerprints/sub",
                            "cache hit rate"});
    sub_table.AddRow({"legacy Run (refingerprints)",
                      TablePrinter::Num(legacy_us), "1",
                      TablePrinter::Num(1.0)});
    sub_table.AddRow({"catalog Submit", TablePrinter::Num(catalog_us),
                      TablePrinter::Num(static_cast<double>(
                          fingerprints_during) /
                          static_cast<double>(submissions)),
                      TablePrinter::Num(hit_rate)});
    bench::Emit(sub_table, "submission");
    bench::RecordSeries("submission.legacy_us", {legacy_us});
    bench::RecordSeries("submission.catalog_us", {catalog_us});
    bench::RecordSeries("submission.speedup", {legacy_us / catalog_us});
    bench::RecordSeries("cache.hit_rate", {hit_rate});
    bench::Verdict(fingerprints_during == 0,
                   "catalog submissions never re-fingerprint (" +
                       std::to_string(fingerprints_during) + " in " +
                       std::to_string(submissions) + " submissions)");
    bench::Verdict(hit_rate > 0.9,
                   "repeated submissions are cache hits (hit rate " +
                       TablePrinter::Num(hit_rate) + ")");
    bench::Verdict(catalog_us < legacy_us,
                   "catalog submission beats legacy re-fingerprinting (" +
                       TablePrinter::Num(catalog_us) + " vs " +
                       TablePrinter::Num(legacy_us) + " us/submission)");
  }

  bench::Verdict(bit_identical,
                 "batch answers bit-identical for threads in {1, 2, 4, 8}");
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores >= 4) {
    bench::Verdict(speedup_series.back() >= 2.0,
                   "serving >= 2x serial at 8 threads on " +
                       std::to_string(cores) + " cores (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  } else {
    bench::Verdict(true, "speedup not asserted: only " +
                             std::to_string(cores) + " core(s) (measured " +
                             TablePrinter::Num(speedup_series.back()) + "x)");
  }
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
