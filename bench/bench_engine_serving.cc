// Experiment ENGINE — release-engine serving throughput.
//
// One ReleaseSpec is released once through the engine (privacy paid up
// front), then the immutable ServingHandle answers large query batches as
// pure post-processing. We sweep the serving thread count and record
// queries/sec; the determinism contract requires the batch answers to be
// bit-identical at every thread count. Also smoke-checks the two serving
// guarantees the engine adds on top of the mechanisms: a repeated spec is a
// cache hit that spends no budget, and the ledger's committed total equals
// the mechanism accountant's total.

#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "relational/generators.h"

namespace dpjoin {
namespace {

ReleaseSpec MakeServingSpec(int64_t side) {
  ReleaseSpec spec;
  spec.name = "serving_bench";
  spec.attributes = {{"A", side}, {"B", 4}, {"C", side}};
  spec.relation_names = {"R1", "R2"};
  spec.relation_attrs = {{"A", "B"}, {"B", "C"}};
  spec.epsilon = 1.0;
  spec.delta = 1e-5;
  spec.mechanism = MechanismKind::kPmw;
  spec.workload = WorkloadFamilyKind::kRandomSign;
  spec.workload_per_table = 15;
  spec.workload_seed = 91;
  spec.pmw_rounds = 4;  // release cost is not what this bench measures
  spec.pmw_max_rounds = 4;
  spec.pmw_epsilon_prime = 0.25;
  return spec;
}

int Run() {
  bench::PrintHeader(
      "ENGINE", "Release engine + serving layer",
      "privacy is paid once at release; the serving handle then answers "
      "arbitrary query batches as post-processing, scaling with threads and "
      "bit-identical at every thread count");

  const int64_t side = bench::QuickMode() ? 48 : 128;
  const int64_t batch_size = bench::QuickMode() ? 512 : 4096;
  const ReleaseSpec spec = MakeServingSpec(side);

  ReleaseEngine engine(PrivacyParams(4.0, 1e-3));
  const JoinQuery query = *spec.BuildQuery();
  Rng data_rng(90);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng release_rng(92);
  auto released = engine.Run(spec, instance, release_rng);
  DPJOIN_CHECK(released.ok(), released.status().ToString());
  const ServingHandle& handle = *released->handle;
  std::cout << "released via " << MechanismName(released->plan.mechanism)
            << "; |Q| = " << handle.NumQueries() << ", release domain = "
            << handle.dataset()->tensor().size() << " cells\n";

  // Ledger truthfulness: committed total == the mechanism's own accounting.
  const PrivacyParams ledger_total = engine.ledger().Total();
  const PrivacyParams mech_total = released->accountant.Total();
  bench::Verdict(ledger_total.epsilon == mech_total.epsilon &&
                     ledger_total.delta == mech_total.delta,
                 "BudgetLedger total equals the mechanism accountant total");

  // Cache: the identical spec re-runs free.
  {
    Rng rerun_rng(93);
    auto again = engine.Run(spec, instance, rerun_rng);
    DPJOIN_CHECK(again.ok(), again.status().ToString());
    bench::Verdict(again->from_cache &&
                       engine.ledger().SpentEpsilon() == ledger_total.epsilon,
                   "repeated spec served from cache without re-spending "
                   "budget");
  }

  // Serving throughput sweep: the same batch at 1/2/4/8 threads.
  Rng batch_rng(94);
  std::vector<int64_t> batch(static_cast<size_t>(batch_size));
  for (int64_t& q : batch) {
    q = batch_rng.UniformInt(0, handle.NumQueries() - 1);
  }

  TablePrinter table({"threads", "seconds", "queries/sec", "speedup"});
  std::vector<double> qps_series, speedup_series;
  std::vector<double> serial_answers;
  bool bit_identical = true;
  double serial_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best = 1e100;
    std::vector<double> answers;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto result = handle.AnswerBatch(batch, threads);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      answers = std::move(result).value();
      best = std::min(best, elapsed.count());
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_answers = answers;
    } else {
      bit_identical &= answers.size() == serial_answers.size();
      for (size_t i = 0; bit_identical && i < answers.size(); ++i) {
        bit_identical &= answers[i] == serial_answers[i];
      }
    }
    const double qps = static_cast<double>(batch_size) / best;
    const double speedup = serial_seconds / best;
    table.AddRow({std::to_string(threads), TablePrinter::Num(best),
                  TablePrinter::Num(qps), TablePrinter::Num(speedup)});
    qps_series.push_back(qps);
    speedup_series.push_back(speedup);
  }
  bench::Emit(table, "serving");
  bench::RecordSeries("serving.batch_size",
                      {static_cast<double>(batch_size)});

  bench::Verdict(bit_identical,
                 "batch answers bit-identical for threads in {1, 2, 4, 8}");
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores >= 4) {
    bench::Verdict(speedup_series.back() >= 2.0,
                   "serving >= 2x serial at 8 threads on " +
                       std::to_string(cores) + " cores (measured " +
                       TablePrinter::Num(speedup_series.back()) + "x)");
  } else {
    bench::Verdict(true, "speedup not asserted: only " +
                             std::to_string(cores) + " core(s) (measured " +
                             TablePrinter::Num(speedup_series.back()) + "x)");
  }
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
