// Experiment E11 — Theorem 3.4 / B.1: the Ω(Δ) error floor.
//
// Any (ε, δ)-DP algorithm answering the counting query on instances of
// local sensitivity Δ must err by Ω(Δ): the Figure 1 pair has
// |count(I) − count(I′)| = Δ with one tuple changed, so answering both
// within < Δ/2 would distinguish them. We measure Algorithm 1's count error
// across Δ and confirm it respects the floor (and that a hypothetical
// sub-floor mechanism empirically violates DP).

#include <iostream>

#include "bench_util.h"
#include "core/two_table.h"
#include "dp/laplace.h"
#include "lowerbound/distinguisher.h"
#include "lowerbound/hard_instances.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

int Run() {
  bench::PrintHeader(
      "E11", "Theorem 3.4 (Ω(Δ) floor for count)",
      "no (ε,δ)-DP algorithm answers count within < Δ/2 on the hard pair; "
      "Algorithm 1's count error scales (at least) linearly in Δ");

  // δ = 0.01: the additive TLap shift on Δ̃ is ~2τ(ε/2,δ/2,1) ≈ 19, so the
  // Δ sweep must clear it for the linear scaling to show.
  const PrivacyParams params(1.0, 1e-2);
  const int seeds = bench::QuickMode() ? 3 : 6;
  ReleaseOptions options;
  options.pmw_max_rounds = 8;

  TablePrinter table({"Delta", "median |count err| (Alg 1)", "Delta/2 floor",
                      "err/floor"});
  std::vector<double> deltas, errs;
  bool respects_floor = true;
  for (int64_t delta : {8, 16, 32}) {
    const Figure1Pair pair = MakeFigure1Pair(delta);
    const QueryFamily family = MakeCountingFamily(pair.instance.query());
    SampleStats count_errs;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(7000 + static_cast<uint64_t>(seed) * 11 +
              static_cast<uint64_t>(delta));
      auto result = TwoTable(pair.instance, family, params, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      const double answer =
          EvaluateAllOnTensor(family, result->synthetic)[0];
      count_errs.Add(std::abs(answer - JoinCount(pair.instance)));
    }
    const double floor = static_cast<double>(delta) / 2.0;
    respects_floor &= count_errs.Median() >= floor;
    table.AddRow({std::to_string(delta),
                  TablePrinter::Num(count_errs.Median()),
                  TablePrinter::Num(floor),
                  TablePrinter::Num(count_errs.Median() / floor)});
    deltas.push_back(static_cast<double>(delta));
    errs.push_back(count_errs.Median());
  }
  bench::Emit(table, "err");

  bench::Verdict(respects_floor,
                 "Algorithm 1's count error sits above the Δ/2 floor on "
                 "every Δ (a DP algorithm cannot do better — Theorem 3.4)");
  const double slope = bench::LogLogSlope(deltas, errs);
  bench::Verdict(slope > 0.4,
                 "count error grows ~linearly with Δ (fitted exponent " +
                     TablePrinter::Num(slope) + ", theory >= 1)");

  // Converse: a mechanism that DOES answer within < Δ/2 (count + tiny
  // Laplace noise, deliberately under-calibrated) is empirically non-DP.
  const int64_t delta = 32;  // reuse for the converse check
  const Figure1Pair pair = MakeFigure1Pair(delta);
  const MechanismStatistic cheat = [&](const Instance& instance, Rng& rng) {
    return AddLaplaceNoise(JoinCount(instance), /*sensitivity=*/1.0,
                           params.epsilon, rng);  // ignores Δ = 32!
  };
  Rng rng(8100);
  const DistinguisherResult verdict = DistinguishByThreshold(
      cheat, pair.instance, pair.neighbor,
      /*threshold=*/static_cast<double>(delta) / 2.0, /*trials=*/200,
      params.delta, rng);
  TablePrinter table2({"mechanism", "Pr[ans>=D/2 | I]", "Pr[ans>=D/2 | I']",
                       "empirical eps", "claimed eps"});
  table2.AddRow({"count + Lap(1/eps) (under-calibrated)",
                 TablePrinter::Num(verdict.p_event),
                 TablePrinter::Num(verdict.p_event_prime),
                 TablePrinter::Num(verdict.empirical_epsilon),
                 TablePrinter::Num(params.epsilon)});
  bench::Emit(table2, "dp");
  bench::Verdict(verdict.empirical_epsilon > 3.0 * params.epsilon,
                 "sub-floor accuracy forces a DP violation (B.1 argument)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
