// Experiment E3 — Theorem 3.3 (Algorithm 1 error) vs Theorem 3.5 (lower
// bound): measured two-table error across an (OUT, Δ) grid.
//
// Instances: nb join values of degree Δ on both sides ⇒ count = nb·Δ²,
// LS = Δ. The paper predicts α = Õ(√(OUT·(Δ+λ)) + (Δ+λ)√λ) (up to f_upper)
// and α = Ω̃(min{OUT, √(OUT·Δ)·f_lower}). We check: measured error within a
// constant multiple of the upper bound, above a fraction of the lower
// bound's shape, and monotone in both OUT and Δ.

#include <iostream>

#include "bench_util.h"
#include "core/theory_bounds.h"
#include "core/two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "relational/join.h"
#include "sensitivity/local_sensitivity.h"

namespace dpjoin {
namespace {

Instance MakeRegularInstance(int64_t num_join_values, int64_t degree) {
  const JoinQuery query =
      MakeTwoTableQuery(degree, num_join_values, degree);
  Instance instance = Instance::Make(query);
  for (int64_t b = 0; b < num_join_values; ++b) {
    for (int64_t j = 0; j < degree; ++j) {
      DPJOIN_CHECK(instance.AddTuple(0, {j, b}, 1).ok());
      DPJOIN_CHECK(instance.AddTuple(1, {b, j}, 1).ok());
    }
  }
  return instance;
}

int Run() {
  bench::PrintHeader(
      "E3", "Theorem 3.3 upper / Theorem 3.5 lower bound",
      "alpha = O~(sqrt(OUT*(Delta+lambda)))·f_upper, Omega~(min{OUT, "
      "sqrt(OUT*Delta)}·f_lower)");

  const PrivacyParams params(1.0, 1e-5);
  const int seeds = bench::QuickMode() ? 2 : 4;
  ReleaseOptions options;
  options.pmw_max_rounds = 24;

  struct GridPoint {
    int64_t degree;
    int64_t num_join_values;
  };
  const std::vector<GridPoint> grid = {
      {2, 64}, {2, 256}, {8, 16}, {8, 64}, {32, 4}, {32, 16},
  };

  TablePrinter table({"Delta", "OUT", "count(I)", "median err", "upper bound",
                      "err/upper", "lower bound", "err/lower"});
  bool within_upper = true;
  bool above_lower_shape = true;
  std::vector<double> outs, errors;
  for (const GridPoint& point : grid) {
    const Instance instance =
        MakeRegularInstance(point.num_join_values, point.degree);
    const double count = JoinCount(instance);
    const double delta_ls = TwoTableDelta(instance);

    SampleStats errs;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(1000 + static_cast<uint64_t>(seed) * 37 +
              static_cast<uint64_t>(point.degree));
      const QueryFamily family = MakeWorkload(
          instance.query(), WorkloadKind::kRandomSign, 4, rng);
      auto result = TwoTable(instance, family, params, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      errs.Add(WorkloadError(family, instance, result->synthetic));
    }
    const double upper = TwoTableUpperBound(
        count, delta_ls, instance.query().ReleaseDomainSize(), 25.0, params);
    const double lower = JoinLowerBound(
        count, delta_ls, instance.query().ReleaseDomainSize(), params);
    table.AddRow({TablePrinter::Num(delta_ls), TablePrinter::Num(count),
                  TablePrinter::Num(count), TablePrinter::Num(errs.Median()),
                  TablePrinter::Num(upper),
                  TablePrinter::Num(errs.Median() / upper),
                  TablePrinter::Num(lower),
                  TablePrinter::Num(errs.Median() / lower)});
    within_upper &= errs.Median() <= 3.0 * upper;
    // The lower bound is for worst-case query families; our random-sign
    // family needn't saturate it, but the measured error shouldn't sit
    // orders of magnitude below the count-mask floor either.
    above_lower_shape &= errs.Median() >= 0.01 * lower;
    outs.push_back(count);
    errors.push_back(errs.Median());
  }
  bench::Emit(table);

  bench::Verdict(within_upper,
                 "measured error <= 3x Theorem 3.3 bound at every grid point");
  bench::Verdict(above_lower_shape,
                 "measured error within the lower-bound shape band");
  // Scaling in OUT at fixed Δ = 8 (rows 3, 4 of the grid).
  const double slope =
      bench::LogLogSlope({outs[2], outs[3]}, {errors[2], errors[3]});
  bench::Verdict(slope > 0.0,
                 "error grows with OUT at fixed Delta (slope " +
                     TablePrinter::Num(slope) + ", theory 0.5)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
