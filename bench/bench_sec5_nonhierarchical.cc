// Experiment E13 — §5 "Non-Hierarchical Queries" (the paper's open problem).
//
// For the 3-path H = R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D), the residual-sensitivity
// terms factor as T_23 ≤ mdeg_2(B)·mdeg_3(C) etc.; mdeg_1(B) and mdeg_3(C)
// uniformize by partitioning R1/R3, but uniformizing mdeg_2(B) and
// mdeg_2(C) simultaneously is the obstruction. The paper's two observations,
// reproduced quantitatively:
//   (1) the trivial per-R2-tuple decomposition makes each R1/R3 tuple
//       participate in up to its R2-degree many sub-instances — privacy
//       consumption grows LINEARLY with the degree;
//   (2) independently bucketing dom(B) and dom(C) by their R2-degrees can
//       leave the RESTRICTED degrees inside one (B_i, C_j) sub-instance
//       fully non-uniform (spread Θ(k)), so the uniformization premise
//       fails — whereas Algorithm 5's two-table partition always achieves
//       spread ≤ 2 per bucket.

#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/partition_two_table.h"
#include "relational/join.h"
#include "relational/join_query.h"

namespace dpjoin {
namespace {

// The §5 stress instance on the middle relation: every b has R2-degree
// exactly k, but b_i routes i of its tuples to the heavy c value c_0 and
// the rest to private light c values — so deg_2,B is uniform globally while
// its restriction to the heavy-C sub-instance takes every value in [0, k].
Instance MakeSection5Instance(int64_t k) {
  // dom(C) = {c_0 (heavy)} ∪ k·k light values.
  const int64_t dom_b = k + 1;
  const int64_t dom_c = 1 + k * k;
  auto query_or = JoinQuery::Create({{"A", 2},
                                     {"B", dom_b},
                                     {"C", dom_c},
                                     {"D", 2}},
                                    {{"A", "B"}, {"B", "C"}, {"C", "D"}});
  DPJOIN_CHECK(query_or.ok(), query_or.status().ToString());
  Instance instance = Instance::Make(*query_or);
  int64_t next_light = 1;
  for (int64_t i = 0; i <= k; ++i) {
    // b_i: i tuples to c_0, k − i to fresh light values.
    for (int64_t j = 0; j < i; ++j) {
      DPJOIN_CHECK(instance.AddTuple(1, {i, 0}, 1).ok());
    }
    for (int64_t j = 0; j < k - i; ++j) {
      DPJOIN_CHECK(instance.AddTuple(1, {i, next_light++}, 1).ok());
    }
    // R1 partner so every b is realized on the A side.
    DPJOIN_CHECK(instance.AddTuple(0, {0, i}, 1).ok());
  }
  // R3 partners for the heavy c and a few light ones.
  DPJOIN_CHECK(instance.AddTuple(2, {0, 0}, 1).ok());
  for (int64_t c = 1; c < std::min<int64_t>(dom_c, 4); ++c) {
    DPJOIN_CHECK(instance.AddTuple(2, {c, 1}, 1).ok());
  }
  return instance;
}

int Run() {
  bench::PrintHeader(
      "E13", "§5 non-hierarchical uniformization (open problem)",
      "per-tuple decomposition costs Θ(mdeg) participation; independent "
      "B/C bucketing leaves restricted degrees non-uniform");

  TablePrinter table({"k", "mdeg_2(B)", "trivial participation (R3 @ c0)",
                      "restricted deg spread in heavy bucket",
                      "two-table partition spread (Alg 5, same data)"});
  std::vector<double> ks, participations, spreads;
  bool alg5_always_bounded = true;
  for (int64_t k : {4, 8, 16, 32}) {
    const Instance instance = MakeSection5Instance(k);
    const JoinQuery& query = instance.query();
    const int b_attr = query.AttributeIndex("B").value();
    const int c_attr = query.AttributeIndex("C").value();
    const Relation& r2 = instance.relation(1);

    // (1) Trivial strategy: each R2 tuple becomes a sub-instance joined with
    // its R1/R3 partners; an R3 tuple (c, d) participates once per R2 tuple
    // displaying c — i.e. deg_{2,C}(c) times. The heavy c_0 has degree
    // Σ_{i≤k} i = k(k+1)/2.
    const auto c_degrees = r2.DegreeMap(AttributeSet::Of(c_attr));
    const int64_t participation = c_degrees.at(0);

    // (2) Independent bucketing: all b's share one B-bucket (uniform global
    // degree k); the heavy-C bucket is {c_0}. Restricted to (B_1, {c_0}),
    // deg_2,B(b_i) = i — spread from ~1 to k among realized values.
    int64_t restricted_min = INT64_MAX, restricted_max = 0;
    for (const auto& [code, freq] : r2.entries()) {
      (void)freq;
      if (r2.ProjectCode(code, AttributeSet::Of(c_attr)) != 0) continue;
      const int64_t b = r2.ProjectCode(code, AttributeSet::Of(b_attr));
      const int64_t deg = [&] {
        int64_t total = 0;
        for (const auto& [code2, freq2] : r2.entries()) {
          if (r2.ProjectCode(code2, AttributeSet::Of(c_attr)) == 0 &&
              r2.ProjectCode(code2, AttributeSet::Of(b_attr)) == b) {
            total += freq2;
          }
        }
        return total;
      }();
      restricted_min = std::min(restricted_min, deg);
      restricted_max = std::max(restricted_max, deg);
    }
    const double spread =
        restricted_min == INT64_MAX
            ? 1.0
            : static_cast<double>(restricted_max) /
                  static_cast<double>(std::max<int64_t>(restricted_min, 1));

    // Contrast: Algorithm 5 on the two-table sub-query R1(A,B) ⋈ R2'(B,C*)
    // — bucketing by the SHARED attribute keeps per-bucket max/min degree
    // ratio ≤ 2 by construction (modulo the noise shift). We run the exact
    // (noiseless) uniform partition on the same R2 degrees.
    const JoinQuery two = MakeTwoTableQuery(2, k + 1, 2);
    Instance two_instance = Instance::Make(two);
    for (int64_t b = 0; b <= k; ++b) {
      DPJOIN_CHECK(two_instance.AddTuple(0, {0, b}, 1).ok());
      const auto it = r2.DegreeMap(AttributeSet::Of(b_attr)).find(b);
      const int64_t deg = it == r2.DegreeMap(AttributeSet::Of(b_attr)).end()
                              ? 0
                              : it->second;
      if (deg > 0) {
        DPJOIN_CHECK(two_instance.AddTuple(1, {b, 0}, deg).ok());
      }
    }
    auto alg5 = UniformPartitionTwoTable(two_instance, /*lambda=*/1.0);
    DPJOIN_CHECK(alg5.ok(), alg5.status().ToString());
    double alg5_spread = 1.0;
    for (const auto& bucket : alg5->buckets) {
      int64_t lo = INT64_MAX, hi = 0;
      for (const auto& [value, deg] :
           bucket.sub_instance.relation(1).DegreeMap(AttributeSet::Of(1))) {
        (void)value;
        lo = std::min(lo, deg);
        hi = std::max(hi, deg);
      }
      if (hi > 0) {
        alg5_spread = std::max(
            alg5_spread, static_cast<double>(hi) /
                             static_cast<double>(std::max<int64_t>(lo, 1)));
      }
    }
    alg5_always_bounded &= alg5_spread <= 2.0 + 1e-9;

    table.AddRow({std::to_string(k),
                  std::to_string(r2.MaxDegree(AttributeSet::Of(b_attr))),
                  std::to_string(participation), TablePrinter::Num(spread),
                  TablePrinter::Num(alg5_spread)});
    ks.push_back(static_cast<double>(k));
    participations.push_back(static_cast<double>(participation));
    spreads.push_back(spread);
  }
  bench::Emit(table);

  bench::Verdict(
      bench::LogLogSlope(ks, participations) > 1.5,
      "trivial per-tuple decomposition participation grows superlinearly "
      "in k (paper: privacy consumption increases linearly with mdeg)");
  bench::Verdict(
      bench::LogLogSlope(ks, spreads) > 0.7,
      "independent B/C bucketing leaves Θ(k) restricted-degree spread — "
      "uniformization premise fails (paper §5)");
  bench::Verdict(alg5_always_bounded,
                 "contrast: the shared-attribute partition (Alg 5) keeps "
                 "per-bucket degree spread <= 2");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
