// Experiment E4 — Figure 2 / Theorem 3.5: the single-table → two-table
// reduction.
//
// From a single table T we build the two-table instance whose join size and
// local sensitivity are amplified by Δ, release it with Algorithm 1, and
// recover single-table answers as q̃(T) = q̃′(I)/Δ. The reduction identity
// q′(I) = Δ·q(T) is verified exactly; the recovered error is α′/Δ, so the
// two-table error must scale (roughly) linearly with Δ.

#include <iostream>

#include "bench_util.h"
#include "core/theory_bounds.h"
#include "core/two_table.h"
#include "lowerbound/hard_instances.h"
#include "query/evaluation.h"
#include "relational/join.h"

namespace dpjoin {
namespace {

int Run() {
  bench::PrintHeader(
      "E4", "Figure 2 / Theorem 3.5 reduction",
      "q'(I) = Delta*q(T); any two-table release with error alpha' yields a "
      "single-table release with error alpha'/Delta — so alpha' = "
      "Omega~(sqrt(OUT*Delta))·f_lower");

  // δ = 0.01 keeps the TLap shift on Δ̃ (≈ 2τ(ε/2,δ/2,1)) small relative
  // to the Δ sweep, so the Δ-scaling isn't flattened by the additive shift.
  const PrivacyParams params(1.0, 1e-2);
  const int seeds = bench::QuickMode() ? 2 : 4;
  const int64_t d = 4, rows = 4;
  Rng table_rng(2024);
  std::vector<int64_t> single_table(static_cast<size_t>(d));
  for (auto& v : single_table) v = table_rng.UniformInt(0, rows - 1);

  // 16 random-sign single-table queries.
  std::vector<std::vector<double>> queries;
  for (int j = 0; j < 16; ++j) {
    std::vector<double> q(static_cast<size_t>(d));
    for (auto& v : q) v = table_rng.Bernoulli(0.5) ? 1.0 : -1.0;
    queries.push_back(std::move(q));
  }

  ReleaseOptions options;
  options.pmw_max_rounds = 24;

  TablePrinter table({"Delta", "OUT", "identity max gap", "median alpha'",
                      "alpha'/Delta (recovered)", "sqrt(OUT*Delta)*f_lower",
                      "alpha'/lower"});
  bool identity_exact = true;
  std::vector<double> deltas, alphas;
  for (int64_t delta : {4, 16, 64}) {
    auto built = MakeTheorem35Instance(single_table, rows, delta);
    DPJOIN_CHECK(built.ok(), built.status().ToString());
    auto family = LiftSingleTableQueries(*built, queries);
    DPJOIN_CHECK(family.ok(), family.status().ToString());
    const double out = JoinCount(built->instance);

    // Reduction identity: exact evaluation.
    double identity_gap = 0.0;
    for (size_t j = 0; j < queries.size(); ++j) {
      const double lifted = EvaluateOnInstance(
          *family, {static_cast<int64_t>(j), 0}, built->instance);
      const double direct = SingleTableAnswer(single_table, queries[j]);
      identity_gap = std::max(
          identity_gap, std::abs(lifted - static_cast<double>(delta) * direct));
    }
    identity_exact &= identity_gap < 1e-9;

    SampleStats alpha_prime;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(3000 + static_cast<uint64_t>(seed) * 13 +
              static_cast<uint64_t>(delta));
      auto result =
          TwoTable(built->instance, *family, params, options, rng);
      DPJOIN_CHECK(result.ok(), result.status().ToString());
      const auto answers = EvaluateAllOnTensor(*family, result->synthetic);
      double worst = 0.0;
      for (size_t j = 0; j < queries.size(); ++j) {
        const double truth =
            static_cast<double>(delta) *
            SingleTableAnswer(single_table, queries[j]);
        const double got =
            answers[family->index().Encode({static_cast<int64_t>(j), 0})];
        worst = std::max(worst, std::abs(got - truth));
      }
      alpha_prime.Add(worst);
    }
    const double lower = std::sqrt(out * static_cast<double>(delta)) *
                         FLower(built->instance.query().ReleaseDomainSize(),
                                params.epsilon);
    table.AddRow({std::to_string(delta), TablePrinter::Num(out),
                  TablePrinter::Num(0.0), TablePrinter::Num(alpha_prime.Median()),
                  TablePrinter::Num(alpha_prime.Median() /
                                    static_cast<double>(delta)),
                  TablePrinter::Num(lower),
                  TablePrinter::Num(alpha_prime.Median() / lower)});
    deltas.push_back(static_cast<double>(delta));
    alphas.push_back(alpha_prime.Median());
  }
  bench::Emit(table);

  bench::Verdict(identity_exact,
                 "reduction identity q'(I) = Delta*q(T) holds exactly");
  const double slope = bench::LogLogSlope(deltas, alphas);
  // Derived scalar no table column holds — record it directly.
  bench::RecordSeries("loglog slope alpha' vs Delta", {slope});
  bench::Verdict(slope > 0.35,
                 "two-table error grows with the amplification Delta (slope " +
                     TablePrinter::Num(slope) +
                     "; theory: ~1 from the Delta*alpha_single identity plus "
                     "sqrt from the OUT growth)");
  return bench::Finish();
}

}  // namespace
}  // namespace dpjoin

int main(int argc, char** argv) {
  dpjoin::bench::Init(argc, argv);
  return dpjoin::Run();
}
