#include "bench_report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stats.h"

namespace dpjoin {
namespace bench {
namespace {

/// Parses `cell` as a double iff the whole trimmed cell is one number.
bool ParseCell(const std::string& cell, double* out) {
  const char* begin = cell.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  *out = v;
  return true;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g may emit plain ("16"), decimal ("0.25"), or exponent ("1e+17")
  // forms — all are valid JSON numbers, so no fix-up is needed.
  return std::string(buf);
}

void BenchReport::SetExperiment(const std::string& id,
                                const std::string& artifact,
                                const std::string& claim) {
  experiment_id_ = id;
  artifact_ = artifact;
  claim_ = claim;
}

void BenchReport::AddSeries(const std::string& name,
                            std::vector<double> values) {
  series_.push_back(ReportSeries{name, std::move(values)});
}

void BenchReport::AddTable(const TablePrinter& table,
                           const std::string& label) {
  const auto& header = table.header();
  const auto& rows = table.rows();
  for (size_t c = 0; c < header.size(); ++c) {
    std::vector<double> values;
    values.reserve(rows.size());
    bool numeric = !rows.empty();
    for (const auto& row : rows) {
      double v = 0.0;
      if (c >= row.size() || !ParseCell(row[c], &v)) {
        numeric = false;
        break;
      }
      values.push_back(v);
    }
    if (!numeric) continue;
    const std::string name =
        label.empty() ? header[c] : label + "." + header[c];
    AddSeries(name, std::move(values));
  }
}

void BenchReport::AddVerdict(bool pass, const std::string& message) {
  verdicts_.push_back(ReportVerdict{pass, message});
  if (!pass) ++failures_;
}

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"experiment\": \"" << JsonEscape(experiment_id_) << "\",\n";
  os << "  \"artifact\": \"" << JsonEscape(artifact_) << "\",\n";
  os << "  \"claim\": \"" << JsonEscape(claim_) << "\",\n";
  os << "  \"quick_mode\": " << (quick_mode_ ? "true" : "false") << ",\n";
  os << "  \"series\": [";
  for (size_t i = 0; i < series_.size(); ++i) {
    const ReportSeries& s = series_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << JsonEscape(s.name) << "\", \"values\": [";
    SampleStats stats;
    for (size_t j = 0; j < s.values.size(); ++j) {
      if (j > 0) os << ", ";
      os << JsonNumber(s.values[j]);
      if (std::isfinite(s.values[j])) stats.Add(s.values[j]);
    }
    os << "], \"median\": "
       << (stats.empty() ? "null" : JsonNumber(stats.Median())) << "}";
  }
  os << (series_.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"verdicts\": [";
  for (size_t i = 0; i < verdicts_.size(); ++i) {
    const ReportVerdict& v = verdicts_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"pass\": " << (v.pass ? "true" : "false")
       << ", \"message\": \"" << JsonEscape(v.message) << "\"}";
  }
  os << (verdicts_.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"failures\": " << failures_ << ",\n";
  os << "  \"all_passed\": " << (failures_ == 0 ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

std::string BenchReport::FileName() const {
  std::string id = experiment_id_.empty() ? "unnamed" : experiment_id_;
  for (char& c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return "BENCH_" + id + ".json";
}

std::string BenchReport::WriteJsonFile(const std::string& dir) const {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/" + FileName();
  std::ofstream out(path);
  if (!out) return "";
  out << ToJson();
  out.flush();
  return out ? path : "";
}

BenchReport& GlobalReport() {
  static BenchReport* report = new BenchReport();
  return *report;
}

}  // namespace bench
}  // namespace dpjoin
