// Experiment E12 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the building blocks: join evaluation, boundary queries,
// residual sensitivity, join-tensor materialization, all-query contraction,
// one PMW round, and the two-table partition.

#include <benchmark/benchmark.h>

#include "core/partition_two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {
namespace {

Instance ZipfInstance(int64_t tuples) {
  const JoinQuery query = MakeTwoTableQuery(64, 512, 64);
  Rng rng(42);
  return MakeZipfTwoTableInstance(query, tuples, 1.1, rng);
}

void BM_JoinCount(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinCount(instance));
  }
  state.SetItemsProcessed(state.iterations() * instance.InputSize());
}
BENCHMARK(BM_JoinCount)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BoundaryQuery(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  const RelationSet e = RelationSet::Of(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundaryQuery(instance, e));
  }
}
BENCHMARK(BM_BoundaryQuery)->Arg(1000)->Arg(10000);

void BM_ResidualSensitivityTwoTable(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResidualSensitivityValue(instance, 0.1));
  }
}
BENCHMARK(BM_ResidualSensitivityTwoTable)->Arg(1000)->Arg(10000);

void BM_ResidualSensitivityPath3(benchmark::State& state) {
  const JoinQuery query = MakePathQuery(3, 32);
  Rng rng(7);
  const Instance instance =
      MakeZipfPathInstance(query, state.range(0), 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResidualSensitivityValue(instance, 0.1));
  }
}
BENCHMARK(BM_ResidualSensitivityPath3)->Arg(300)->Arg(3000);

void BM_JoinTensor(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng rng(9);
  const Instance instance =
      MakeZipfTwoTableInstance(query, state.range(0), 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinTensor(instance));
  }
}
BENCHMARK(BM_JoinTensor)->Arg(1000)->Arg(10000);

void BM_EvaluateAllOnTensor(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng rng(11);
  const Instance instance = MakeZipfTwoTableInstance(query, 2000, 1.0, rng);
  const QueryFamily family = MakeWorkload(
      query, WorkloadKind::kRandomSign, state.range(0), rng);
  const DenseTensor tensor = JoinTensor(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAllOnTensor(family, tensor));
  }
  state.SetItemsProcessed(state.iterations() * family.TotalCount());
}
BENCHMARK(BM_EvaluateAllOnTensor)->Arg(3)->Arg(7)->Arg(15);

void BM_PmwRelease(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng data_rng(13);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 2000, 1.0, data_rng);
  Rng wl_rng(14);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 4, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 64.0;
  options.num_rounds = state.range(0);
  for (auto _ : state) {
    Rng rng(15);
    benchmark::DoNotOptimize(
        PrivateMultiplicativeWeights(instance, family, options, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PmwRelease)->Arg(4)->Arg(16);

void BM_PartitionTwoTable(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  const PrivacyParams params(1.0, 1e-4);
  for (auto _ : state) {
    Rng rng(17);
    benchmark::DoNotOptimize(
        PartitionTwoTable(instance, params, 0.0, rng));
  }
}
BENCHMARK(BM_PartitionTwoTable)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace dpjoin

BENCHMARK_MAIN();
