// Experiment E12 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the building blocks: join evaluation, boundary queries,
// residual sensitivity, join-tensor materialization, all-query contraction,
// one PMW round, and the two-table partition.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/thread_pool.h"
#include "core/partition_two_table.h"
#include "query/evaluation.h"
#include "query/workloads.h"
#include "release/pmw.h"
#include "relational/generators.h"
#include "relational/join.h"
#include "sensitivity/residual_sensitivity.h"

namespace dpjoin {
namespace {

Instance ZipfInstance(int64_t tuples) {
  const JoinQuery query = MakeTwoTableQuery(64, 512, 64);
  Rng rng(42);
  return MakeZipfTwoTableInstance(query, tuples, 1.1, rng);
}

void BM_JoinCount(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinCount(instance));
  }
  state.SetItemsProcessed(state.iterations() * instance.InputSize());
}
BENCHMARK(BM_JoinCount)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BoundaryQuery(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  const RelationSet e = RelationSet::Of(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundaryQuery(instance, e));
  }
}
BENCHMARK(BM_BoundaryQuery)->Arg(1000)->Arg(10000);

void BM_ResidualSensitivityTwoTable(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResidualSensitivityValue(instance, 0.1));
  }
}
BENCHMARK(BM_ResidualSensitivityTwoTable)->Arg(1000)->Arg(10000);

void BM_ResidualSensitivityPath3(benchmark::State& state) {
  const JoinQuery query = MakePathQuery(3, 32);
  Rng rng(7);
  const Instance instance =
      MakeZipfPathInstance(query, state.range(0), 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResidualSensitivityValue(instance, 0.1));
  }
}
BENCHMARK(BM_ResidualSensitivityPath3)->Arg(300)->Arg(3000);

void BM_JoinTensor(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng rng(9);
  const Instance instance =
      MakeZipfTwoTableInstance(query, state.range(0), 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinTensor(instance));
  }
}
BENCHMARK(BM_JoinTensor)->Arg(1000)->Arg(10000);

void BM_EvaluateAllOnTensor(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng rng(11);
  const Instance instance = MakeZipfTwoTableInstance(query, 2000, 1.0, rng);
  const QueryFamily family = MakeWorkload(
      query, WorkloadKind::kRandomSign, state.range(0), rng);
  const DenseTensor tensor = JoinTensor(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAllOnTensor(family, tensor));
  }
  state.SetItemsProcessed(state.iterations() * family.TotalCount());
}
BENCHMARK(BM_EvaluateAllOnTensor)->Arg(3)->Arg(7)->Arg(15);

void BM_PmwRelease(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng data_rng(13);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 2000, 1.0, data_rng);
  Rng wl_rng(14);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 4, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 64.0;
  options.num_rounds = state.range(0);
  for (auto _ : state) {
    Rng rng(15);
    benchmark::DoNotOptimize(
        PrivateMultiplicativeWeights(instance, family, options, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PmwRelease)->Arg(4)->Arg(16);

// --- Serial-vs-parallel series over the substrate hot paths. The argument
// is the thread count; Arg(1) is the serial baseline. ---

void BM_EvaluateAllOnTensorThreads(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(128, 4, 128);
  Rng rng(21);
  const Instance instance = MakeZipfTwoTableInstance(query, 400, 1.0, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 15, rng);
  const DenseTensor tensor = JoinTensor(instance);
  const ScopedThreads scoped(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAllOnTensor(family, tensor));
  }
  state.SetItemsProcessed(state.iterations() * family.TotalCount());
}
BENCHMARK(BM_EvaluateAllOnTensorThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PmwReleaseThreads(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(64, 4, 64);
  Rng data_rng(23);
  const Instance instance = MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng wl_rng(24);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 8, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 8.0;
  options.num_rounds = 8;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(25);
    benchmark::DoNotOptimize(
        PrivateMultiplicativeWeights(instance, family, options, rng));
  }
  state.SetItemsProcessed(state.iterations() * options.num_rounds);
}
BENCHMARK(BM_PmwReleaseThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelJoinCountThreads(benchmark::State& state) {
  const Instance instance = ZipfInstance(50000);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelJoinCount(instance, threads));
  }
  state.SetItemsProcessed(state.iterations() * instance.InputSize());
}
BENCHMARK(BM_ParallelJoinCountThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Grain sweeps (ROADMAP NUMA/grain follow-up): the block sizes are
// runtime-tunable (ExecutionContext::SetTensorGrain / SetJoinRootGrain,
// DPJOIN_GRAIN_* env vars); these series measure their perf sensitivity.
// The argument is the grain; each benchmark restores the default after. ---

void BM_EvaluateAllOnTensorGrain(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(128, 4, 128);
  Rng rng(31);
  const Instance instance = MakeZipfTwoTableInstance(query, 400, 1.0, rng);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kRandomSign, 15, rng);
  const DenseTensor tensor = JoinTensor(instance);
  ExecutionContext::SetTensorGrain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAllOnTensor(family, tensor));
  }
  ExecutionContext::SetTensorGrain(0);
  state.SetItemsProcessed(state.iterations() * family.TotalCount());
}
BENCHMARK(BM_EvaluateAllOnTensorGrain)
    ->Arg(512)->Arg(4096)->Arg(32768)->Arg(262144);

void BM_PmwReleaseGrain(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(64, 4, 64);
  Rng data_rng(33);
  const Instance instance = MakeZipfTwoTableInstance(query, 400, 1.0, data_rng);
  Rng wl_rng(34);
  const QueryFamily family =
      MakeWorkload(query, WorkloadKind::kPrefix, 8, wl_rng);
  PmwOptions options;
  options.params = PrivacyParams(1.0, 1e-5);
  options.delta_tilde = 8.0;
  options.num_rounds = 8;
  ExecutionContext::SetTensorGrain(state.range(0));
  for (auto _ : state) {
    Rng rng(35);
    benchmark::DoNotOptimize(
        PrivateMultiplicativeWeights(instance, family, options, rng));
  }
  ExecutionContext::SetTensorGrain(0);
  state.SetItemsProcessed(state.iterations() * options.num_rounds);
}
BENCHMARK(BM_PmwReleaseGrain)->Arg(512)->Arg(4096)->Arg(32768);

void BM_ParallelJoinCountGrain(benchmark::State& state) {
  const Instance instance = ZipfInstance(50000);
  ExecutionContext::SetJoinRootGrain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelJoinCount(instance));
  }
  ExecutionContext::SetJoinRootGrain(0);
  state.SetItemsProcessed(state.iterations() * instance.InputSize());
}
BENCHMARK(BM_ParallelJoinCountGrain)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- Region overlap: two top-level ParallelSum regions issued at once vs
// the same two run back-to-back. With the concurrent-region pool the pair
// must overlap on a multi-core box; the serialized variant is the floor
// either way. (bench_net_serving runs the PASS/FAIL version of this; here
// the pair is exposed as a tunable google-benchmark series.) ---

double HarmonicBlockSum(int64_t lo, int64_t hi) {
  double s = 0.0;
  for (int64_t i = lo; i < hi; ++i) s += 1.0 / static_cast<double>(i + 1);
  return s;
}

void BM_SerializedParallelSumRegions(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelSum(0, n, 4096, HarmonicBlockSum, 2));
    benchmark::DoNotOptimize(ParallelSum(0, n, 4096, HarmonicBlockSum, 2));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SerializedParallelSumRegions)->Arg(100000)->Arg(400000);

void BM_ConcurrentParallelSumRegions(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    std::thread other([n] {
      benchmark::DoNotOptimize(ParallelSum(0, n, 4096, HarmonicBlockSum, 2));
    });
    benchmark::DoNotOptimize(ParallelSum(0, n, 4096, HarmonicBlockSum, 2));
    other.join();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ConcurrentParallelSumRegions)->Arg(100000)->Arg(400000);

void BM_JoinTensorThreads(benchmark::State& state) {
  const JoinQuery query = MakeTwoTableQuery(16, 64, 16);
  Rng rng(37);
  const Instance instance =
      MakeZipfTwoTableInstance(query, 10000, 1.0, rng);
  const ScopedThreads scoped(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinTensor(instance));
  }
  state.SetItemsProcessed(state.iterations() * instance.InputSize());
}
BENCHMARK(BM_JoinTensorThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ResidualSensitivityThreads(benchmark::State& state) {
  const JoinQuery query = MakePathQuery(3, 32);
  Rng rng(39);
  const Instance instance = MakeZipfPathInstance(query, 3000, 1.0, rng);
  const ScopedThreads scoped(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResidualSensitivityValue(instance, 0.02));
  }
}
BENCHMARK(BM_ResidualSensitivityThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PartitionTwoTable(benchmark::State& state) {
  const Instance instance = ZipfInstance(state.range(0));
  const PrivacyParams params(1.0, 1e-4);
  for (auto _ : state) {
    Rng rng(17);
    benchmark::DoNotOptimize(
        PartitionTwoTable(instance, params, 0.0, rng));
  }
}
BENCHMARK(BM_PartitionTwoTable)->Arg(10000)->Arg(50000);

}  // namespace

// --- grain.recommended: capture the BM_*Grain sweeps as they run and write
// each sweep's argmin into BENCH_E12.json (plus a copy-pasteable export
// line on stderr), so a box can bake its fastest DPJOIN_GRAIN_* values.
// README "Threading & performance" documents the workflow. ---

class GrainSweepReporter : public benchmark::ConsoleReporter {
 public:
  struct Point {
    int64_t grain = 0;
    double seconds_per_iter = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.error_occurred || run.iterations <= 0) continue;
      const std::string name = run.benchmark_name();
      const size_t slash = name.find('/');
      if (slash == std::string::npos) continue;
      const std::string family = name.substr(0, slash);
      if (family.find("Grain") == std::string::npos) continue;
      sweeps_[family].push_back(
          {std::atoll(name.c_str() + slash + 1),
           run.real_accumulated_time / static_cast<double>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, std::vector<Point>>& sweeps() const {
    return sweeps_;
  }

 private:
  std::map<std::string, std::vector<Point>> sweeps_;
};

namespace {

// Argmin grain of `family`'s sweep, or 0 when the sweep did not run (e.g.
// excluded with --benchmark_filter).
int64_t BestGrain(const std::map<std::string,
                                 std::vector<GrainSweepReporter::Point>>&
                      sweeps,
                  const std::string& family) {
  const auto it = sweeps.find(family);
  if (it == sweeps.end() || it->second.empty()) return 0;
  const GrainSweepReporter::Point* best = &it->second.front();
  for (const GrainSweepReporter::Point& p : it->second) {
    if (p.seconds_per_iter < best->seconds_per_iter) best = &p;
  }
  return best->grain;
}

}  // namespace

void EmitGrainReport(const GrainSweepReporter& reporter) {
  const int64_t tensor =
      BestGrain(reporter.sweeps(), "BM_EvaluateAllOnTensorGrain");
  const int64_t tensor_pmw = BestGrain(reporter.sweeps(), "BM_PmwReleaseGrain");
  const int64_t join_root =
      BestGrain(reporter.sweeps(), "BM_ParallelJoinCountGrain");
  if (tensor > 0 && join_root > 0) {
    std::fprintf(stderr,
                 "bench_micro_substrate: bake this box's block grains with\n"
                 "  export DPJOIN_GRAIN_TENSOR=%lld DPJOIN_GRAIN_JOIN_ROOT="
                 "%lld\n",
                 static_cast<long long>(tensor),
                 static_cast<long long>(join_root));
  }
  const char* dir = std::getenv("DPJOIN_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  bench::BenchReport report;
  report.SetExperiment(
      "E12", "substrate micro-benchmarks (google-benchmark)",
      "per-box argmin of the BM_*Grain sweeps; bake the result via the "
      "DPJOIN_GRAIN_TENSOR / DPJOIN_GRAIN_JOIN_ROOT env vars");
  report.AddSeries("grain.recommended",
                   {static_cast<double>(tensor),
                    static_cast<double>(join_root)});
  report.AddSeries("grain.recommended_tensor",
                   {static_cast<double>(tensor)});
  report.AddSeries("grain.recommended_tensor_pmw",
                   {static_cast<double>(tensor_pmw)});
  report.AddSeries("grain.recommended_join_root",
                   {static_cast<double>(join_root)});
  for (const auto& entry : reporter.sweeps()) {
    std::vector<double> grains, ns;
    for (const GrainSweepReporter::Point& p : entry.second) {
      grains.push_back(static_cast<double>(p.grain));
      ns.push_back(p.seconds_per_iter * 1e9);
    }
    report.AddSeries("grain." + entry.first + ".grain", grains);
    report.AddSeries("grain." + entry.first + ".ns_per_iter", ns);
  }
  report.AddVerdict(tensor > 0 && tensor_pmw > 0 && join_root > 0,
                    "all three BM_*Grain sweeps produced a recommendation");
  const std::string path = report.WriteJsonFile(dir);
  if (!path.empty()) {
    std::fprintf(stderr, "bench_micro_substrate: wrote %s\n", path.c_str());
  }
}

}  // namespace dpjoin

int main(int argc, char** argv) {
  // Accept the harness-wide --threads=N flag (sets the ExecutionContext
  // default used by the non-Arg-parameterized benchmarks) and hide it from
  // google-benchmark's strict flag parser, which rejects unknown flags.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      dpjoin::ExecutionContext::SetThreads(
          std::atoi(arg.c_str() + prefix.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The display reporter doubles as the BM_*Grain sweep collector; after the
  // run it turns each sweep's argmin into a grain.recommended series in
  // BENCH_E12.json (written when DPJOIN_BENCH_JSON_DIR is set).
  dpjoin::GrainSweepReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  dpjoin::EmitGrainReport(reporter);
  benchmark::Shutdown();
  return 0;
}
