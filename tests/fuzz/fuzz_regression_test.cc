// Replays the fuzz seed corpus and regression corpus through the fuzz
// target logic as ordinary assertions. Fuzz findings land in
// fuzz/regressions/<target>/ and from then on are tier-1 tests: a
// reintroduced parser bug aborts here (death by property violation),
// failing plain ctest with no fuzzer in the loop.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dpjoin_fuzz {
int FuzzJson(const uint8_t* data, size_t size);
int FuzzReleaseSpec(const uint8_t* data, size_t size);
int FuzzLineFramer(const uint8_t* data, size_t size);
}  // namespace dpjoin_fuzz

namespace {

using FuzzTarget = int (*)(const uint8_t*, size_t);

std::vector<std::filesystem::path> CorpusFiles(const std::string& target) {
  std::vector<std::filesystem::path> files;
  for (const char* kind : {"corpus", "regressions"}) {
    const std::filesystem::path dir =
        std::filesystem::path(DPJOIN_FUZZ_DIR) / kind / target;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file()) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void ReplayAll(const std::string& target, FuzzTarget fn) {
  const auto files = CorpusFiles(target);
  ASSERT_FALSE(files.empty())
      << "no corpus files for " << target << " under " << DPJOIN_FUZZ_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    // A property violation aborts the whole test binary — that IS the
    // failure signal, with the offending file named by the trace above.
    fn(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }
}

TEST(FuzzRegressionTest, JsonCorpusHoldsProperties) {
  ReplayAll("json", dpjoin_fuzz::FuzzJson);
}

TEST(FuzzRegressionTest, ReleaseSpecCorpusHoldsProperties) {
  ReplayAll("release_spec", dpjoin_fuzz::FuzzReleaseSpec);
}

TEST(FuzzRegressionTest, LineFramerCorpusHoldsProperties) {
  ReplayAll("line_framer", dpjoin_fuzz::FuzzLineFramer);
}

}  // namespace
