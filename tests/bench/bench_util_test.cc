// Round-trips a BenchReport through the JSON emitter: a minimal
// recursive-descent JSON parser validates well-formedness, then the tests
// assert the decoded structure (series lengths, medians, verdicts, quick
// flag) matches what was recorded.

#include "bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_report.h"
#include "common/table_printer.h"

namespace dpjoin {
namespace {

// --- Minimal strict JSON parser (objects, arrays, strings, numbers, bools,
// --- null). Throws std::runtime_error on malformed input.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue& At(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool Literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWs();
    JsonValue v;
    const char c = Peek();
    if (c == '{') {
      v.kind = JsonValue::kObject;
      Expect('{');
      SkipWs();
      if (Peek() == '}') {
        Expect('}');
        return v;
      }
      while (true) {
        SkipWs();
        const std::string key = ParseString();
        SkipWs();
        Expect(':');
        v.obj[key] = ParseValue();
        SkipWs();
        if (Peek() == ',') {
          Expect(',');
          continue;
        }
        Expect('}');
        break;
      }
    } else if (c == '[') {
      v.kind = JsonValue::kArray;
      Expect('[');
      SkipWs();
      if (Peek() == ']') {
        Expect(']');
        return v;
      }
      while (true) {
        v.arr.push_back(ParseValue());
        SkipWs();
        if (Peek() == ',') {
          Expect(',');
          continue;
        }
        Expect(']');
        break;
      }
    } else if (c == '"') {
      v.kind = JsonValue::kString;
      v.str = ParseString();
    } else if (Literal("true")) {
      v.kind = JsonValue::kBool;
      v.b = true;
    } else if (Literal("false")) {
      v.kind = JsonValue::kBool;
      v.b = false;
    } else if (Literal("null")) {
      v.kind = JsonValue::kNull;
    } else {
      v.kind = JsonValue::kNumber;
      v.num = ParseNumber();
    }
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error("raw control char in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const unsigned code =
                static_cast<unsigned>(std::strtoul(hex.c_str(), nullptr, 16));
            // Test inputs only use \u escapes for control chars (< 0x80).
            out += static_cast<char>(code);
            break;
          }
          default:
            throw std::runtime_error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) throw std::runtime_error("bad number");
    const std::string slice = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      throw std::runtime_error("malformed number: " + slice);
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

bench::BenchReport MakeSampleReport() {
  bench::BenchReport report;
  report.SetExperiment("E99", "sample artifact", "a \"quoted\"\nclaim");
  report.AddSeries("n", {8, 16, 32});
  report.AddSeries("err", {0.5, 0.25, 0.125});
  report.AddVerdict(true, "shape holds");
  report.AddVerdict(false, "shape broken");
  return report;
}

TEST(BenchReportTest, EmitsWellFormedJson) {
  const bench::BenchReport report = MakeSampleReport();
  const JsonValue root = ParseJson(report.ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.At("schema_version").num, 1.0);
  EXPECT_EQ(root.At("experiment").str, "E99");
  EXPECT_EQ(root.At("artifact").str, "sample artifact");
  EXPECT_EQ(root.At("claim").str, "a \"quoted\"\nclaim");
  EXPECT_EQ(root.At("quick_mode").b, false);
  EXPECT_EQ(root.At("failures").num, 1.0);
  EXPECT_EQ(root.At("all_passed").b, false);
}

TEST(BenchReportTest, SeriesRoundTripWithMedians) {
  const bench::BenchReport report = MakeSampleReport();
  const JsonValue root = ParseJson(report.ToJson());
  const JsonValue& series = root.At("series");
  ASSERT_EQ(series.kind, JsonValue::kArray);
  ASSERT_EQ(series.arr.size(), 2u);

  const JsonValue& n = series.arr[0];
  EXPECT_EQ(n.At("name").str, "n");
  ASSERT_EQ(n.At("values").arr.size(), 3u);
  EXPECT_EQ(n.At("values").arr[0].num, 8.0);
  EXPECT_EQ(n.At("values").arr[2].num, 32.0);
  EXPECT_EQ(n.At("median").num, 16.0);

  const JsonValue& err = series.arr[1];
  EXPECT_EQ(err.At("name").str, "err");
  ASSERT_EQ(err.At("values").arr.size(), 3u);
  EXPECT_EQ(err.At("median").num, 0.25);
}

TEST(BenchReportTest, VerdictsRoundTrip) {
  const bench::BenchReport report = MakeSampleReport();
  const JsonValue root = ParseJson(report.ToJson());
  const JsonValue& verdicts = root.At("verdicts");
  ASSERT_EQ(verdicts.arr.size(), 2u);
  EXPECT_TRUE(verdicts.arr[0].At("pass").b);
  EXPECT_EQ(verdicts.arr[0].At("message").str, "shape holds");
  EXPECT_FALSE(verdicts.arr[1].At("pass").b);
  EXPECT_EQ(verdicts.arr[1].At("message").str, "shape broken");
}

TEST(BenchReportTest, NonFiniteValuesSerializeAsNull) {
  bench::BenchReport report;
  report.SetExperiment("E1", "a", "c");
  report.AddSeries("mixed",
                   {1.0, std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::infinity(), 3.0});
  const JsonValue root = ParseJson(report.ToJson());
  const JsonValue& s = root.At("series").arr[0];
  ASSERT_EQ(s.At("values").arr.size(), 4u);
  EXPECT_EQ(s.At("values").arr[1].kind, JsonValue::kNull);
  EXPECT_EQ(s.At("values").arr[2].kind, JsonValue::kNull);
  // Median ignores the non-finite samples: median of {1, 3} = 1 (lower
  // nearest-rank).
  EXPECT_EQ(s.At("median").kind, JsonValue::kNumber);
}

TEST(BenchReportTest, EmptyReportIsStillValidJson) {
  bench::BenchReport report;
  const JsonValue root = ParseJson(report.ToJson());
  EXPECT_EQ(root.At("series").arr.size(), 0u);
  EXPECT_EQ(root.At("verdicts").arr.size(), 0u);
  EXPECT_TRUE(root.At("all_passed").b);
}

TEST(BenchReportTest, TableNumericColumnsBecomeSeries) {
  TablePrinter table({"n", "algorithm", "median err"});
  table.AddRow({"8", "naive", "0.5"});
  table.AddRow({"16", "naive", "0.25"});
  table.AddRow({"32", "naive", "0.125"});

  bench::BenchReport report;
  report.AddTable(table);
  ASSERT_EQ(report.series().size(), 2u);
  EXPECT_EQ(report.series()[0].name, "n");
  EXPECT_EQ(report.series()[0].values.size(), 3u);
  EXPECT_EQ(report.series()[1].name, "median err");
  EXPECT_EQ(report.series()[1].values[2], 0.125);

  bench::BenchReport labeled;
  labeled.AddTable(table, "sweep");
  ASSERT_EQ(labeled.series().size(), 2u);
  EXPECT_EQ(labeled.series()[0].name, "sweep.n");
}

TEST(BenchReportTest, EmptyTableProducesNoSeries) {
  TablePrinter table({"a", "b"});
  bench::BenchReport report;
  report.AddTable(table);
  EXPECT_TRUE(report.series().empty());
}

TEST(BenchReportTest, FileNameSanitizesExperimentId) {
  bench::BenchReport report;
  report.SetExperiment("E3 / fig.2", "a", "c");
  EXPECT_EQ(report.FileName(), "BENCH_E3___fig_2.json");
  bench::BenchReport unnamed;
  EXPECT_EQ(unnamed.FileName(), "BENCH_unnamed.json");
}

TEST(BenchReportTest, WriteJsonFileRoundTrips) {
  const bench::BenchReport report = MakeSampleReport();
  const char* tmpdir = std::getenv("TEST_TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : ::testing::TempDir();
  const std::string path = report.WriteJsonFile(dir);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, dir + "/BENCH_E99.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = ParseJson(buffer.str());
  EXPECT_EQ(root.At("experiment").str, "E99");
  std::remove(path.c_str());
}

TEST(BenchReportTest, QuickModeEnvIsRecorded) {
  ASSERT_EQ(setenv("DPJOIN_BENCH_QUICK", "1", /*overwrite=*/1), 0);
  EXPECT_TRUE(bench::QuickMode());

  bench::BenchReport report;
  report.SetQuickMode(bench::QuickMode());
  const JsonValue root = ParseJson(report.ToJson());
  EXPECT_TRUE(root.At("quick_mode").b);

  ASSERT_EQ(setenv("DPJOIN_BENCH_QUICK", "0", /*overwrite=*/1), 0);
  EXPECT_FALSE(bench::QuickMode());
  ASSERT_EQ(unsetenv("DPJOIN_BENCH_QUICK"), 0);
}

TEST(BenchUtilTest, LogLogSlopeRecoversExponent) {
  const std::vector<double> xs = {10, 100, 1000};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x * x);
  EXPECT_NEAR(bench::LogLogSlope(xs, ys), 2.0, 1e-9);
}

TEST(BenchUtilTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(bench::JsonEscape("plain"), "plain");
  EXPECT_EQ(bench::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(bench::JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(bench::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace dpjoin
