// Brute-force oracles for tests: exhaustive enumeration over the full
// product of relation domains. Exponential — use only on tiny instances.

#ifndef DPJOIN_TESTS_TESTING_BRUTE_FORCE_H_
#define DPJOIN_TESTS_TESTING_BRUTE_FORCE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "query/query_family.h"
#include "relational/instance.h"

namespace dpjoin {
namespace testing {

// Visits every combination (t_1, ..., t_k) of domain tuples of the relations
// in `rels` that satisfies ρ (all shared attributes agree), with
// weight Π R_i(t_i) (including weight-0 combos filtered out).
inline void BruteForceEnumerate(
    const Instance& instance, RelationSet rels,
    const std::function<void(const std::vector<int64_t>& codes,
                             const std::vector<int64_t>& assignment,
                             int64_t weight)>& visit) {
  const JoinQuery& query = instance.query();
  const std::vector<int> members = rels.Elements();
  std::vector<int64_t> codes(members.size(), 0);
  std::vector<int64_t> assignment(
      static_cast<size_t>(query.num_attributes()), -1);

  std::function<void(size_t, int64_t)> recurse = [&](size_t depth,
                                                     int64_t weight) {
    if (depth == members.size()) {
      visit(codes, assignment, weight);
      return;
    }
    const Relation& rel = instance.relation(members[depth]);
    for (int64_t code = 0; code < rel.tuple_space().size(); ++code) {
      const int64_t freq = rel.Frequency(code);
      if (freq == 0) continue;
      // Check consistency with the current assignment; collect new binds.
      bool consistent = true;
      std::vector<std::pair<int, int64_t>> binds;
      const auto& order = rel.attribute_order();
      for (size_t d = 0; d < order.size(); ++d) {
        const int64_t value = rel.tuple_space().Digit(code, d);
        if (assignment[order[d]] == -1) {
          binds.emplace_back(order[d], value);
        } else if (assignment[order[d]] != value) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      for (const auto& [attr, value] : binds) assignment[attr] = value;
      codes[depth] = code;
      recurse(depth + 1, weight * freq);
      for (const auto& [attr, value] : binds) {
        (void)value;
        assignment[attr] = -1;
      }
    }
  };
  recurse(0, 1);
}

inline double BruteForceJoinCount(const Instance& instance) {
  double total = 0.0;
  BruteForceEnumerate(instance, instance.query().all_relations(),
                      [&](const std::vector<int64_t>&,
                          const std::vector<int64_t>&, int64_t weight) {
                        total += static_cast<double>(weight);
                      });
  return total;
}

// T_{E,y} by brute force.
inline double BruteForceQAggregate(const Instance& instance, RelationSet rels,
                                   AttributeSet y) {
  if (rels.Empty()) return 1.0;
  const JoinQuery& query = instance.query();
  std::unordered_map<int64_t, double> groups;
  const std::vector<int> y_attrs = y.Elements();
  BruteForceEnumerate(
      instance, rels,
      [&](const std::vector<int64_t>&, const std::vector<int64_t>& assignment,
          int64_t weight) {
        int64_t key = 0;
        for (int attr : y_attrs) {
          key = key * query.domain_size(attr) + assignment[attr];
        }
        groups[key] += static_cast<double>(weight);
      });
  double best = 0.0;
  for (const auto& [key, value] : groups) {
    (void)key;
    best = std::max(best, value);
  }
  return best;
}

// q(I) for one product query by brute force.
inline double BruteForceQueryAnswer(const QueryFamily& family,
                                    const std::vector<int64_t>& parts,
                                    const Instance& instance) {
  double total = 0.0;
  BruteForceEnumerate(
      instance, instance.query().all_relations(),
      [&](const std::vector<int64_t>& codes, const std::vector<int64_t>&,
          int64_t weight) {
        double value = static_cast<double>(weight);
        for (size_t i = 0; i < codes.size(); ++i) {
          value *= family.table_queries(static_cast<int>(i))
                       [static_cast<size_t>(parts[i])]
                           .values[static_cast<size_t>(codes[i])];
        }
        total += value;
      });
  return total;
}

// LS_count by direct neighbor enumeration: the best insertion or deletion of
// one tuple anywhere.
inline double BruteForceLocalSensitivity(const Instance& instance) {
  const double base = BruteForceJoinCount(instance);
  double worst = 0.0;
  for (int r = 0; r < instance.num_relations(); ++r) {
    const int64_t dom = instance.relation(r).tuple_space().size();
    for (int64_t code = 0; code < dom; ++code) {
      Instance plus = instance;
      plus.mutable_relation(r).AddFrequencyByCode(code, +1);
      worst = std::max(worst, std::abs(BruteForceJoinCount(plus) - base));
      if (instance.relation(r).Frequency(code) > 0) {
        Instance minus = instance;
        minus.mutable_relation(r).AddFrequencyByCode(code, -1);
        worst = std::max(worst, std::abs(BruteForceJoinCount(minus) - base));
      }
    }
  }
  return worst;
}

// Random small instance over `query` with `tuples` frequency units placed
// uniformly (possibly stacking).
inline Instance RandomInstance(const JoinQuery& query, int64_t tuples,
                               Rng& rng) {
  Instance instance = Instance::Make(query);
  for (int r = 0; r < query.num_relations(); ++r) {
    Relation& rel = instance.mutable_relation(r);
    for (int64_t t = 0; t < tuples; ++t) {
      rel.AddFrequencyByCode(
          static_cast<int64_t>(
              rng.UniformIndex(static_cast<size_t>(rel.tuple_space().size()))),
          1);
    }
  }
  return instance;
}

}  // namespace testing
}  // namespace dpjoin

#endif  // DPJOIN_TESTS_TESTING_BRUTE_FORCE_H_
