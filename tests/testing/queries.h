// Shared query fixtures for tests.

#ifndef DPJOIN_TESTS_TESTING_QUERIES_H_
#define DPJOIN_TESTS_TESTING_QUERIES_H_

#include "relational/join_query.h"

namespace dpjoin {
namespace testing {

// The paper's Figure 4 hierarchical query: x = {A,B,C,D,F,G,K,L},
// x1 = {A,B,D}, x2 = {A,B,F}, x3 = {A,B,G,K}, x4 = {A,B,G,L}, x5 = {A,C}.
inline JoinQuery MakeFigure4Query(int64_t dom = 2) {
  auto q = JoinQuery::Create({{"A", dom},
                              {"B", dom},
                              {"C", dom},
                              {"D", dom},
                              {"F", dom},
                              {"G", dom},
                              {"K", dom},
                              {"L", dom}},
                             {{"A", "B", "D"},
                              {"A", "B", "F"},
                              {"A", "B", "G", "K"},
                              {"A", "B", "G", "L"},
                              {"A", "C"}});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

// A compact hierarchical query for release-level tests: R1(A,B), R2(A,C) —
// star with hub A (attribute tree: A → {B, C}).
inline JoinQuery MakeSmallStarQuery(int64_t dom_a, int64_t dom_b,
                                    int64_t dom_c) {
  auto q = JoinQuery::Create({{"A", dom_a}, {"B", dom_b}, {"C", dom_c}},
                             {{"A", "B"}, {"A", "C"}});
  DPJOIN_CHECK(q.ok(), q.status().ToString());
  return std::move(q).value();
}

}  // namespace testing
}  // namespace dpjoin

#endif  // DPJOIN_TESTS_TESTING_QUERIES_H_
