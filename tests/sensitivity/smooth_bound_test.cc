#include "sensitivity/smooth_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "relational/join_query.h"
#include "sensitivity/local_sensitivity.h"
#include "sensitivity/residual_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(SmoothBoundTest, AuditPassesForResidualSensitivity) {
  Rng rng(11);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance start = testing::RandomInstance(query, 8, rng);
  const double beta = 0.3;
  const SmoothnessAuditResult audit = AuditSmoothUpperBound(
      start,
      [&](const Instance& instance) {
        return ResidualSensitivityValue(instance, beta);
      },
      [](const Instance& instance) { return LocalSensitivity(instance); },
      beta, /*num_chains=*/4, /*chain_length=*/12, rng);
  EXPECT_TRUE(audit.upper_bound_held) << audit.failure;
  EXPECT_TRUE(audit.smoothness_held) << audit.failure;
  EXPECT_GT(audit.pairs_checked, 0);
  EXPECT_LE(audit.worst_ratio, std::exp(beta) * (1 + 1e-9));
}

TEST(SmoothBoundTest, AuditCatchesNonSmoothBound) {
  Rng rng(12);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance start = testing::RandomInstance(query, 8, rng);
  // LS itself is NOT β-smooth for small β on such chains — the audit should
  // flag it (LS can double via one tuple when degrees are small).
  const SmoothnessAuditResult audit = AuditSmoothUpperBound(
      start,
      [](const Instance& instance) {
        return std::max(LocalSensitivity(instance), 1e-9);
      },
      [](const Instance& instance) { return LocalSensitivity(instance); },
      /*beta=*/0.05, /*num_chains=*/6, /*chain_length=*/20, rng);
  EXPECT_FALSE(audit.smoothness_held);
  EXPECT_FALSE(audit.failure.empty());
}

TEST(SmoothBoundTest, AuditCatchesNonUpperBound) {
  Rng rng(13);
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  Instance start = Instance::Make(query);
  ASSERT_TRUE(start.AddTuple(0, {0, 0}, 3).ok());
  ASSERT_TRUE(start.AddTuple(1, {0, 0}, 1).ok());
  const SmoothnessAuditResult audit = AuditSmoothUpperBound(
      start, [](const Instance&) { return 0.5; },  // constant, below LS
      [](const Instance& instance) { return LocalSensitivity(instance); },
      0.3, 2, 5, rng);
  EXPECT_FALSE(audit.upper_bound_held);
}

TEST(SmoothBoundTest, BruteForceSmoothSensitivityDepthZeroIsLs) {
  Rng rng(14);
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  const Instance instance = testing::RandomInstance(query, 3, rng);
  EXPECT_DOUBLE_EQ(BruteForceSmoothSensitivity(instance, 0.5, 0),
                   LocalSensitivity(instance));
}

TEST(SmoothBoundTest, BruteForceSmoothSensitivityGrowsWithDepth) {
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  const Instance empty = Instance::Make(query);
  const double beta = 0.4;
  const double d0 = BruteForceSmoothSensitivity(empty, beta, 0);
  const double d2 = BruteForceSmoothSensitivity(empty, beta, 2);
  EXPECT_DOUBLE_EQ(d0, 0.0);  // empty instance: LS = 0
  // Two insertions can create LS 1 at distance 1 (e^{-β}·1) or 2 at distance
  // 2; either way positive.
  EXPECT_GT(d2, 0.0);
}

TEST(SmoothBoundTest, ResidualDominatesTruncatedSmoothSensitivity) {
  // RS ≥ SS ≥ SS_truncated — the sandwich the paper relies on (§3.3).
  Rng rng(15);
  const JoinQuery query = MakeTwoTableQuery(2, 2, 2);
  for (int rep = 0; rep < 4; ++rep) {
    const Instance instance = testing::RandomInstance(query, 2, rng);
    for (double beta : {0.3, 0.8}) {
      const double rs = ResidualSensitivityValue(instance, beta);
      const double ss_truncated =
          BruteForceSmoothSensitivity(instance, beta, 2);
      EXPECT_GE(rs, ss_truncated - 1e-9)
          << "rep=" << rep << " beta=" << beta;
    }
  }
}

}  // namespace
}  // namespace dpjoin
