#include "sensitivity/residual_sensitivity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "relational/generators.h"
#include "relational/join_query.h"
#include "sensitivity/local_sensitivity.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(ResidualSensitivityTest, BoundaryQueryTableHasAllSubsets) {
  Rng rng(1);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 6, rng);
  const auto boundary = AllBoundaryQueries(instance);
  EXPECT_EQ(boundary.size(), 8u);  // 2^3 subsets
  EXPECT_DOUBLE_EQ(boundary.at(0), 1.0);  // T_∅ = 1
}

TEST(ResidualSensitivityTest, LsHatZeroIsLocalSensitivity) {
  Rng rng(2);
  for (int rep = 0; rep < 3; ++rep) {
    const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
    const Instance instance = testing::RandomInstance(query, 12, rng);
    const auto boundary = AllBoundaryQueries(instance);
    EXPECT_DOUBLE_EQ(LsHatK(query, boundary, 0), LocalSensitivity(instance));
  }
}

TEST(ResidualSensitivityTest, LsHatMonotoneInK) {
  Rng rng(3);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  const auto boundary = AllBoundaryQueries(instance);
  double prev = LsHatK(query, boundary, 0);
  for (int64_t k = 1; k <= 10; ++k) {
    const double cur = LsHatK(query, boundary, k);
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
}

TEST(ResidualSensitivityTest, TwoTableMatchesClosedForm) {
  // For two-table joins LŜ^k = Δ + k, so RS^β = max_k e^{−βk}(Δ + k).
  Rng rng(4);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  for (double beta : {0.05, 0.2, 1.0}) {
    for (int rep = 0; rep < 3; ++rep) {
      const Instance instance = testing::RandomInstance(query, 15, rng);
      const double delta = LocalSensitivity(instance);
      const double expected =
          TwoTableResidualSensitivityClosedForm(delta, beta);
      EXPECT_NEAR(ResidualSensitivityValue(instance, beta), expected,
                  1e-9 * std::max(1.0, expected))
          << "beta=" << beta << " delta=" << delta;
    }
  }
}

TEST(ResidualSensitivityTest, ClosedFormKnownValues) {
  // β = 1, Δ = 5: k* = 1 − 5 < 0 ⇒ k = 0 ⇒ RS = 5.
  EXPECT_DOUBLE_EQ(TwoTableResidualSensitivityClosedForm(5.0, 1.0), 5.0);
  // β = 0.1, Δ = 0: k* = 10 ⇒ RS = e^{−1}·10.
  EXPECT_NEAR(TwoTableResidualSensitivityClosedForm(0.0, 0.1),
              std::exp(-1.0) * 10.0, 1e-12);
}

TEST(ResidualSensitivityTest, AlwaysUpperBoundsLocalSensitivity) {
  Rng rng(5);
  for (int kind = 0; kind < 2; ++kind) {
    const JoinQuery query =
        (kind == 0) ? MakePathQuery(3, 3) : MakeStarQuery(3, 3);
    for (double beta : {0.1, 0.5}) {
      const Instance instance = testing::RandomInstance(query, 8, rng);
      EXPECT_GE(ResidualSensitivityValue(instance, beta),
                LocalSensitivity(instance) - 1e-9);
    }
  }
}

TEST(ResidualSensitivityTest, DecreasingInBeta) {
  Rng rng(6);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  double prev = ResidualSensitivityValue(instance, 0.05);
  for (double beta : {0.1, 0.2, 0.5, 1.0}) {
    const double cur = ResidualSensitivityValue(instance, beta);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

// Smoothness is THE property RS exists for: RS(I′) ≤ e^β·RS(I) on neighbors.
struct SmoothParam {
  const char* name;
  int query_kind;  // 0 two-table, 1 path3, 2 star3
  double beta;
  uint64_t seed;
};

class ResidualSmoothnessTest : public ::testing::TestWithParam<SmoothParam> {};

TEST_P(ResidualSmoothnessTest, SmoothAcrossNeighborChains) {
  const SmoothParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = param.query_kind == 0   ? MakeTwoTableQuery(3, 3, 3)
                          : param.query_kind == 1 ? MakePathQuery(3, 3)
                                                  : MakeStarQuery(3, 3);
  Instance current = testing::RandomInstance(query, 8, rng);
  double rs = ResidualSensitivityValue(current, param.beta);
  for (int step = 0; step < 25; ++step) {
    Instance next = current.RandomNeighbor(rng);
    const double next_rs = ResidualSensitivityValue(next, param.beta);
    if (rs > 0.0 && next_rs > 0.0) {
      const double ratio = std::max(next_rs / rs, rs / next_rs);
      EXPECT_LE(ratio, std::exp(param.beta) * (1.0 + 1e-9))
          << "step " << step;
    }
    current = std::move(next);
    rs = next_rs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chains, ResidualSmoothnessTest,
    ::testing::Values(SmoothParam{"two_table_beta_small", 0, 0.1, 401},
                      SmoothParam{"two_table_beta_large", 0, 1.0, 402},
                      SmoothParam{"path3", 1, 0.25, 403},
                      SmoothParam{"star3", 2, 0.25, 404}),
    [](const ::testing::TestParamInfo<SmoothParam>& info) {
      return info.param.name;
    });

TEST(ResidualSensitivityTest, DiagnosticsAreConsistent) {
  Rng rng(7);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  const Instance instance = testing::RandomInstance(query, 10, rng);
  const ResidualSensitivityResult result =
      ResidualSensitivity(instance, 0.2);
  EXPECT_DOUBLE_EQ(result.ls_hat_0, LocalSensitivity(instance));
  EXPECT_GE(result.value, result.ls_hat_0 - 1e-9);
  EXPECT_GE(result.k_searched, result.argmax_k + 1);
  // The reported argmax must reproduce the value.
  const auto boundary = AllBoundaryQueries(instance);
  EXPECT_NEAR(result.value,
              std::exp(-0.2 * static_cast<double>(result.argmax_k)) *
                  LsHatK(query, boundary, result.argmax_k),
              1e-9);
}

TEST(ResidualSensitivityTest, EmptyMultiTableInstanceStillPositive) {
  // Even on an empty instance RS > 0 (future insertions create sensitivity;
  // the k ≥ 1 terms of LŜ are positive).
  const Instance instance = Instance::Make(MakePathQuery(3, 3));
  EXPECT_GT(ResidualSensitivityValue(instance, 0.2), 0.0);
}

TEST(ResidualSensitivityTest, FromBoundariesAllowsUpperBoundSubstitution) {
  Rng rng(8);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  auto boundary = AllBoundaryQueries(instance);
  const double exact =
      ResidualSensitivityFromBoundaries(query, boundary, 0.2).value;
  // Inflating boundary values can only increase the result.
  for (auto& [bits, value] : boundary) {
    if (bits != 0) value *= 2.0;
  }
  const double inflated =
      ResidualSensitivityFromBoundaries(query, boundary, 0.2).value;
  EXPECT_GE(inflated, exact - 1e-9);
}

}  // namespace
}  // namespace dpjoin
