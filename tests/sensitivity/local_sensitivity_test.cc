#include "sensitivity/local_sensitivity.h"

#include <gtest/gtest.h>

#include "lowerbound/hard_instances.h"
#include "relational/generators.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(LocalSensitivityTest, EmptyInstanceHasZeroLs) {
  const Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  EXPECT_DOUBLE_EQ(LocalSensitivity(instance), 0.0);
}

TEST(LocalSensitivityTest, TwoTableEqualsMaxDegree) {
  Instance instance = Instance::Make(MakeTwoTableQuery(4, 4, 4));
  ASSERT_TRUE(instance.AddTuple(0, {0, 1}, 3).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 1}, 2).ok());
  ASSERT_TRUE(instance.AddTuple(1, {2, 0}, 4).ok());
  // deg_1(B=1) = 5, deg_2(B=2) = 4 ⇒ Δ = 5.
  EXPECT_DOUBLE_EQ(TwoTableDelta(instance), 5.0);
  EXPECT_DOUBLE_EQ(LocalSensitivity(instance), 5.0);
}

TEST(LocalSensitivityTest, Figure1PairSensitivities) {
  const Figure1Pair pair = MakeFigure1Pair(8);
  // I: deg_1(b0) = 8 ⇒ Δ = 8; I′ loses the single R2 tuple but keeps R1,
  // so its Δ is still 8 (adding back (b0,c0) recreates 8 join rows).
  EXPECT_DOUBLE_EQ(LocalSensitivity(pair.instance), 8.0);
  EXPECT_DOUBLE_EQ(LocalSensitivity(pair.neighbor), 8.0);
}

struct LsParam {
  const char* name;
  int query_kind;  // 0 two-table, 1 path3, 2 star3
  int64_t tuples;
  uint64_t seed;
};

JoinQuery LsQuery(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(3, 3, 3);
    case 1:
      return MakePathQuery(3, 3);
    default:
      return MakeStarQuery(3, 3);
  }
}

class LocalSensitivityOracleTest : public ::testing::TestWithParam<LsParam> {};

TEST_P(LocalSensitivityOracleTest, MatchesNeighborEnumeration) {
  const LsParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = LsQuery(param.query_kind);
  for (int rep = 0; rep < 3; ++rep) {
    const Instance instance =
        testing::RandomInstance(query, param.tuples, rng);
    EXPECT_DOUBLE_EQ(LocalSensitivity(instance),
                     testing::BruteForceLocalSensitivity(instance));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LocalSensitivityOracleTest,
    ::testing::Values(LsParam{"two_table", 0, 8, 301},
                      LsParam{"two_table_dense", 0, 20, 302},
                      LsParam{"path3", 1, 6, 303},
                      LsParam{"star3", 2, 6, 304}),
    [](const ::testing::TestParamInfo<LsParam>& info) {
      return info.param.name;
    });

TEST(LocalSensitivityTest, PerRelationDecomposition) {
  Rng rng(77);
  const JoinQuery query = MakePathQuery(3, 3);
  const Instance instance = testing::RandomInstance(query, 8, rng);
  double max_per_rel = 0.0;
  for (int r = 0; r < 3; ++r) {
    max_per_rel = std::max(max_per_rel,
                           LocalSensitivityForRelation(instance, r));
  }
  EXPECT_DOUBLE_EQ(LocalSensitivity(instance), max_per_rel);
}

TEST(LocalSensitivityTest, SingleRelationQueryHasLsOne) {
  auto query = JoinQuery::Create({{"A", 4}}, {{"A"}});
  ASSERT_TRUE(query.ok());
  Instance instance = Instance::Make(*query);
  ASSERT_TRUE(instance.AddTuple(0, {1}, 7).ok());
  // For m = 1 the boundary query over the empty set is 1: adding/removing
  // one tuple changes count by exactly 1.
  EXPECT_DOUBLE_EQ(LocalSensitivity(instance), 1.0);
}

TEST(LocalSensitivityTest, GlobalSensitivityOfLsIsOneOnChains) {
  // For two-table joins, |LS(I) − LS(I′)| ≤ 1 on neighbors (basis of
  // Algorithm 1, Lemma 3.2).
  Rng rng(55);
  const JoinQuery query = MakeTwoTableQuery(3, 3, 3);
  Instance current = testing::RandomInstance(query, 10, rng);
  double ls = LocalSensitivity(current);
  for (int step = 0; step < 40; ++step) {
    Instance next = current.RandomNeighbor(rng);
    const double next_ls = LocalSensitivity(next);
    EXPECT_LE(std::abs(next_ls - ls), 1.0 + 1e-9);
    current = std::move(next);
    ls = next_ls;
  }
}

}  // namespace
}  // namespace dpjoin
