#include "relational/generators.h"

#include <gtest/gtest.h>

#include "relational/join.h"
#include "relational/join_query.h"

namespace dpjoin {
namespace {

TEST(GeneratorsTest, ZipfCountsSumAndMonotone) {
  const auto counts = ZipfCounts(10, 1000, 1.2);
  int64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i > 0) {
      EXPECT_LE(counts[i], counts[i - 1] + 1);  // ~monotone
    }
  }
  EXPECT_EQ(total, 1000);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(GeneratorsTest, ZipfZeroSkewNearUniform) {
  const auto counts = ZipfCounts(4, 400, 0.0);
  for (int64_t c : counts) EXPECT_EQ(c, 100);
}

TEST(GeneratorsTest, UniformInstanceHasRequestedSize) {
  Rng rng(3);
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  const Instance instance = MakeUniformInstance(query, 50, rng);
  EXPECT_EQ(instance.relation(0).TotalFrequency(), 50);
  EXPECT_EQ(instance.relation(1).TotalFrequency(), 50);
  EXPECT_EQ(instance.InputSize(), 100);
}

TEST(GeneratorsTest, ZipfTwoTableDegreesFollowCounts) {
  Rng rng(5);
  const JoinQuery query = MakeTwoTableQuery(8, 6, 8);
  const Instance instance = MakeZipfTwoTableInstance(query, 120, 1.0, rng);
  EXPECT_EQ(instance.InputSize(), 240);
  // Degrees over B must equal the Zipf counts in both relations.
  const auto expected = ZipfCounts(6, 120, 1.0);
  const int b = query.AttributeIndex("B").value();
  for (int side = 0; side < 2; ++side) {
    const auto degrees = instance.relation(side).DegreeMap(AttributeSet::Of(b));
    for (int64_t v = 0; v < 6; ++v) {
      const auto it = degrees.find(v);
      const int64_t got = it == degrees.end() ? 0 : it->second;
      EXPECT_EQ(got, expected[static_cast<size_t>(v)]) << "b=" << v;
    }
  }
}

TEST(GeneratorsTest, AllOnesInstanceJoinSizeIsProductFormula) {
  const JoinQuery query = MakeTwoTableQuery(3, 2, 4);
  const Instance instance = MakeAllOnesInstance(query);
  // Every (a,b) joins every (b,c): 3·2·4 = 24.
  EXPECT_DOUBLE_EQ(JoinCount(instance), 24.0);
  EXPECT_EQ(instance.InputSize(), 3 * 2 + 2 * 4);
}

TEST(GeneratorsTest, ZipfPathInstanceBuildsAllRelations) {
  Rng rng(7);
  const JoinQuery query = MakePathQuery(3, 5);
  const Instance instance = MakeZipfPathInstance(query, 40, 1.0, rng);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(instance.relation(r).TotalFrequency(), 40);
  }
}

TEST(GeneratorsTest, DeterministicUnderSeed) {
  const JoinQuery query = MakeTwoTableQuery(4, 4, 4);
  Rng rng1(11), rng2(11);
  const Instance a = MakeUniformInstance(query, 30, rng1);
  const Instance b = MakeUniformInstance(query, 30, rng2);
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(a.relation(r).entries().size(), b.relation(r).entries().size());
    for (const auto& [code, freq] : a.relation(r).entries()) {
      EXPECT_EQ(b.relation(r).Frequency(code), freq);
    }
  }
}

}  // namespace
}  // namespace dpjoin
