#include "relational/relation.h"

#include <gtest/gtest.h>

#include "relational/join_query.h"

namespace dpjoin {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  RelationTest() : query_(MakeTwoTableQuery(3, 4, 5)), rel_(query_, 0) {}
  JoinQuery query_;
  Relation rel_;  // R1(A, B): |D| = 12
};

TEST_F(RelationTest, StartsEmpty) {
  EXPECT_EQ(rel_.TotalFrequency(), 0);
  EXPECT_EQ(rel_.NumDistinctTuples(), 0u);
  EXPECT_EQ(rel_.Frequency(0), 0);
}

TEST_F(RelationTest, SetAndGetByTuple) {
  ASSERT_TRUE(rel_.SetFrequency({1, 2}, 5).ok());
  EXPECT_EQ(rel_.FrequencyOf({1, 2}), 5);
  EXPECT_EQ(rel_.TotalFrequency(), 5);
  ASSERT_TRUE(rel_.SetFrequency({1, 2}, 2).ok());
  EXPECT_EQ(rel_.TotalFrequency(), 2);
  ASSERT_TRUE(rel_.SetFrequency({1, 2}, 0).ok());
  EXPECT_EQ(rel_.NumDistinctTuples(), 0u);
}

TEST_F(RelationTest, AddFrequencyAccumulates) {
  ASSERT_TRUE(rel_.AddFrequency({0, 0}, 2).ok());
  ASSERT_TRUE(rel_.AddFrequency({0, 0}, 3).ok());
  EXPECT_EQ(rel_.FrequencyOf({0, 0}), 5);
  ASSERT_TRUE(rel_.AddFrequency({0, 0}, -5).ok());
  EXPECT_EQ(rel_.FrequencyOf({0, 0}), 0);
  EXPECT_EQ(rel_.NumDistinctTuples(), 0u);
}

TEST_F(RelationTest, ValidationErrors) {
  EXPECT_TRUE(rel_.SetFrequency({1, 2}, -1).IsInvalidArgument());
  EXPECT_TRUE(rel_.SetFrequency({1}, 1).IsInvalidArgument());
  EXPECT_TRUE(rel_.SetFrequency({3, 0}, 1).IsOutOfRange());  // A has dom 3
  EXPECT_TRUE(rel_.SetFrequency({0, 4}, 1).IsOutOfRange());  // B has dom 4
  EXPECT_TRUE(rel_.AddFrequency({0, 0}, -1).IsInvalidArgument());
}

TEST_F(RelationTest, AttributeOrderAscending) {
  // R1 has attributes {A=0, B=1} in ascending index order.
  EXPECT_EQ(rel_.attribute_order(), (std::vector<int>{0, 1}));
  EXPECT_EQ(rel_.DigitOf(0), 0);
  EXPECT_EQ(rel_.DigitOf(1), 1);
  EXPECT_EQ(rel_.DigitOf(2), -1);  // C not in R1
}

TEST_F(RelationTest, ProjectCodeOntoSubset) {
  const int64_t code = rel_.tuple_space().Encode({2, 3});
  EXPECT_EQ(rel_.ProjectCode(code, AttributeSet::Of(0)), 2);  // A value
  EXPECT_EQ(rel_.ProjectCode(code, AttributeSet::Of(1)), 3);  // B value
  EXPECT_EQ(rel_.ProjectCode(code, AttributeSet::FromElements({0, 1})), code);
  EXPECT_EQ(rel_.ProjectCode(code, AttributeSet()), 0);
}

TEST_F(RelationTest, SubsetCoderRadices) {
  const MixedRadix b_coder = rel_.SubsetCoder(AttributeSet::Of(1));
  EXPECT_EQ(b_coder.size(), 4);  // |dom(B)|
}

TEST_F(RelationTest, DegreeMapOverJoinAttribute) {
  // Two tuples with B=1, one with B=3, frequencies 2+1 and 4.
  ASSERT_TRUE(rel_.SetFrequency({0, 1}, 2).ok());
  ASSERT_TRUE(rel_.SetFrequency({2, 1}, 1).ok());
  ASSERT_TRUE(rel_.SetFrequency({1, 3}, 4).ok());
  const auto degrees = rel_.DegreeMap(AttributeSet::Of(1));
  EXPECT_EQ(degrees.at(1), 3);
  EXPECT_EQ(degrees.at(3), 4);
  EXPECT_EQ(degrees.size(), 2u);
  EXPECT_EQ(rel_.MaxDegree(AttributeSet::Of(1)), 4);
}

TEST_F(RelationTest, MaxDegreeOfEmptyRelationIsZero) {
  EXPECT_EQ(rel_.MaxDegree(AttributeSet::Of(1)), 0);
}

TEST_F(RelationTest, DegreeMapOverEmptySetIsTotal) {
  ASSERT_TRUE(rel_.SetFrequency({0, 1}, 2).ok());
  ASSERT_TRUE(rel_.SetFrequency({1, 1}, 3).ok());
  const auto degrees = rel_.DegreeMap(AttributeSet());
  ASSERT_EQ(degrees.size(), 1u);
  EXPECT_EQ(degrees.at(0), 5);
}

}  // namespace
}  // namespace dpjoin
