#include "relational/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(InstanceIoTest, RoundTripPreservesEveryTuple) {
  Rng rng(1);
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 6));
  const Instance original =
      testing::RandomInstance(*query, 25, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteInstanceCsv(original, buffer).ok());
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (int r = 0; r < original.num_relations(); ++r) {
    EXPECT_EQ(loaded->relation(r).TotalFrequency(),
              original.relation(r).TotalFrequency());
    for (const auto& [code, freq] : original.relation(r).entries()) {
      EXPECT_EQ(loaded->relation(r).Frequency(code), freq);
    }
  }
}

TEST(InstanceIoTest, EmptyInstanceRoundTrips) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer;
  ASSERT_TRUE(WriteInstanceCsv(Instance(query), buffer).ok());
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->InputSize(), 0);
}

TEST(InstanceIoTest, RejectsMissingHeader) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer("0,0,0,1\n");
  EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
}

TEST(InstanceIoTest, RejectsMalformedRows) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  const std::string header = "# dpjoin-instance v1\n";
  {
    std::stringstream buffer(header + "0,x,0,1\n");
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    std::stringstream buffer(header + "0,1\n");  // too few fields
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    std::stringstream buffer(header + "7,0,0,1\n");  // bad relation
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsOutOfRange());
  }
  {
    std::stringstream buffer(header + "0,5,0,1\n");  // value out of domain
    EXPECT_FALSE(ReadInstanceCsv(query, buffer).ok());
  }
  {
    std::stringstream buffer(header + "0,0,0,-2\n");  // negative frequency
    EXPECT_FALSE(ReadInstanceCsv(query, buffer).ok());
  }
}

// The release engine loads instances through this path, so every failure
// must surface as a clean Status naming the offending row — never a CHECK.
TEST(InstanceIoTest, ErrorsCarryCodeAndRowNumber) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  const std::string header = "# dpjoin-instance v1\n";
  {
    // Arity mismatch: too MANY values for a 2-attribute relation.
    std::stringstream buffer(header + "0,0,0,1,1\n");
    const Status status = ReadInstanceCsv(query, buffer).status();
    EXPECT_TRUE(status.IsInvalidArgument()) << status;
    EXPECT_NE(status.message().find("row 2"), std::string::npos) << status;
    EXPECT_NE(status.message().find("arity"), std::string::npos) << status;
  }
  {
    // Out-of-domain value reports OutOfRange, with the row prefix.
    std::stringstream buffer(header + "0,0,0,1\n1,0,9,1\n");
    const Status status = ReadInstanceCsv(query, buffer).status();
    EXPECT_TRUE(status.IsOutOfRange()) << status;
    EXPECT_NE(status.message().find("row 3"), std::string::npos) << status;
  }
  {
    // Negative domain value is out of range too.
    std::stringstream buffer(header + "0,-1,0,1\n");
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsOutOfRange());
  }
  {
    // Numeric field that overflows int64 is a bad number, not a crash.
    std::stringstream buffer(header + "0,0,0,99999999999999999999\n");
    const Status status = ReadInstanceCsv(query, buffer).status();
    EXPECT_TRUE(status.IsInvalidArgument()) << status;
    EXPECT_NE(status.message().find("bad number"), std::string::npos);
  }
  {
    // Empty cell within a row ("0,,0,1") is a bad number.
    std::stringstream buffer(header + "0,,0,1\n");
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    // Wrong magic VERSION is rejected, not silently accepted.
    std::stringstream buffer("# dpjoin-instance v2\n0,0,0,1\n");
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    // Null query is a clean error.
    std::stringstream buffer(header + "0,0,0,1\n");
    EXPECT_TRUE(
        ReadInstanceCsv(nullptr, buffer).status().IsInvalidArgument());
  }
}

TEST(InstanceIoTest, HeaderOnlyFileIsAnEmptyInstance) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer("# dpjoin-instance v1\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->InputSize(), 0);
  // A completely empty stream, however, has no header at all.
  std::stringstream empty("");
  EXPECT_TRUE(ReadInstanceCsv(query, empty).status().IsInvalidArgument());
}

TEST(InstanceIoTest, ToleratesCrlfLineEndings) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer(
      "# dpjoin-instance v1\r\n"
      "0,1,1,3\r\n"
      "1,0,1,2\r\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->relation(0).FrequencyOf({1, 1}), 3);
  EXPECT_EQ(loaded->relation(1).FrequencyOf({0, 1}), 2);
}

TEST(InstanceIoTest, DuplicateRowAccumulationMatchesSingleRow) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream split(
      "# dpjoin-instance v1\n0,0,0,2\n0,0,0,3\n1,1,0,1\n0,0,0,0\n");
  std::stringstream merged("# dpjoin-instance v1\n0,0,0,5\n1,1,0,1\n");
  auto a = ReadInstanceCsv(query, split);
  auto b = ReadInstanceCsv(query, merged);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->InputSize(), b->InputSize());
  for (int r = 0; r < a->num_relations(); ++r) {
    for (const auto& [code, freq] : b->relation(r).entries()) {
      EXPECT_EQ(a->relation(r).Frequency(code), freq);
    }
  }
  // ...but accumulation may never take a frequency below zero mid-file.
  std::stringstream negative(
      "# dpjoin-instance v1\n0,0,0,2\n0,0,0,-3\n");
  EXPECT_FALSE(ReadInstanceCsv(query, negative).ok());
}

TEST(InstanceIoTest, CommentsAndBlankLinesIgnored) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer(
      "# dpjoin-instance v1\n"
      "# a comment\n"
      "\n"
      "0,1,1,3\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relation(0).FrequencyOf({1, 1}), 3);
}

TEST(InstanceIoTest, DuplicateRowsAccumulate) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer(
      "# dpjoin-instance v1\n"
      "0,0,0,2\n"
      "0,0,0,3\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relation(0).FrequencyOf({0, 0}), 5);
}

}  // namespace
}  // namespace dpjoin
