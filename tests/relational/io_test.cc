#include "relational/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(InstanceIoTest, RoundTripPreservesEveryTuple) {
  Rng rng(1);
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(4, 5, 6));
  const Instance original =
      testing::RandomInstance(*query, 25, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteInstanceCsv(original, buffer).ok());
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (int r = 0; r < original.num_relations(); ++r) {
    EXPECT_EQ(loaded->relation(r).TotalFrequency(),
              original.relation(r).TotalFrequency());
    for (const auto& [code, freq] : original.relation(r).entries()) {
      EXPECT_EQ(loaded->relation(r).Frequency(code), freq);
    }
  }
}

TEST(InstanceIoTest, EmptyInstanceRoundTrips) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer;
  ASSERT_TRUE(WriteInstanceCsv(Instance(query), buffer).ok());
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->InputSize(), 0);
}

TEST(InstanceIoTest, RejectsMissingHeader) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer("0,0,0,1\n");
  EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
}

TEST(InstanceIoTest, RejectsMalformedRows) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  const std::string header = "# dpjoin-instance v1\n";
  {
    std::stringstream buffer(header + "0,x,0,1\n");
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    std::stringstream buffer(header + "0,1\n");  // too few fields
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsInvalidArgument());
  }
  {
    std::stringstream buffer(header + "7,0,0,1\n");  // bad relation
    EXPECT_TRUE(ReadInstanceCsv(query, buffer).status().IsOutOfRange());
  }
  {
    std::stringstream buffer(header + "0,5,0,1\n");  // value out of domain
    EXPECT_FALSE(ReadInstanceCsv(query, buffer).ok());
  }
  {
    std::stringstream buffer(header + "0,0,0,-2\n");  // negative frequency
    EXPECT_FALSE(ReadInstanceCsv(query, buffer).ok());
  }
}

TEST(InstanceIoTest, CommentsAndBlankLinesIgnored) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer(
      "# dpjoin-instance v1\n"
      "# a comment\n"
      "\n"
      "0,1,1,3\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relation(0).FrequencyOf({1, 1}), 3);
}

TEST(InstanceIoTest, DuplicateRowsAccumulate) {
  const auto query = std::make_shared<JoinQuery>(MakeTwoTableQuery(2, 2, 2));
  std::stringstream buffer(
      "# dpjoin-instance v1\n"
      "0,0,0,2\n"
      "0,0,0,3\n");
  auto loaded = ReadInstanceCsv(query, buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relation(0).FrequencyOf({0, 0}), 5);
}

}  // namespace
}  // namespace dpjoin
