#include "relational/join_query.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

// The Figure 4 hierarchical query: x = {A,B,C,D,F,G,K,L},
// x1={A,B,D}, x2={A,B,F}, x3={A,B,G,K}, x4={A,B,G,L}, x5={A,C}.
JoinQuery MakeFigure4Query(int64_t dom = 2) {
  auto q = JoinQuery::Create({{"A", dom},
                              {"B", dom},
                              {"C", dom},
                              {"D", dom},
                              {"F", dom},
                              {"G", dom},
                              {"K", dom},
                              {"L", dom}},
                             {{"A", "B", "D"},
                              {"A", "B", "F"},
                              {"A", "B", "G", "K"},
                              {"A", "B", "G", "L"},
                              {"A", "C"}});
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

TEST(JoinQueryTest, CreateValidatesInputs) {
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}}, {{"A"}}).ok());
  // No attributes.
  EXPECT_TRUE(JoinQuery::Create({}, {{"A"}}).status().IsInvalidArgument());
  // No relations.
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}}, {}).status().IsInvalidArgument());
  // Unknown attribute in an edge.
  EXPECT_TRUE(
      JoinQuery::Create({{"A", 2}}, {{"B"}}).status().IsInvalidArgument());
  // Duplicate attribute names.
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}, {"A", 3}}, {{"A"}})
                  .status()
                  .IsInvalidArgument());
  // Non-positive domain.
  EXPECT_TRUE(
      JoinQuery::Create({{"A", 0}}, {{"A"}}).status().IsInvalidArgument());
  // Attribute listed twice in one edge.
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}}, {{"A", "A"}})
                  .status()
                  .IsInvalidArgument());
  // Unused attribute.
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}, {"B", 2}}, {{"A"}})
                  .status()
                  .IsInvalidArgument());
  // Duplicate hyperedge.
  EXPECT_TRUE(JoinQuery::Create({{"A", 2}, {"B", 2}}, {{"A", "B"}, {"B", "A"}})
                  .status()
                  .IsInvalidArgument());
}

TEST(JoinQueryTest, TwoTableShape) {
  const JoinQuery q = MakeTwoTableQuery(3, 4, 5);
  EXPECT_EQ(q.num_attributes(), 3);
  EXPECT_EQ(q.num_relations(), 2);
  EXPECT_EQ(q.relation_domain_size(0), 12);  // |A|·|B|
  EXPECT_EQ(q.relation_domain_size(1), 20);  // |B|·|C|
  EXPECT_DOUBLE_EQ(q.ReleaseDomainSize(), 240.0);
  EXPECT_EQ(q.AttributeIndex("B").value(), 1);
  EXPECT_TRUE(q.AttributeIndex("Z").status().IsNotFound());
}

TEST(JoinQueryTest, AtomsAndBoundaries) {
  const JoinQuery q = MakeTwoTableQuery(2, 2, 2);
  EXPECT_EQ(q.Atom(0), RelationSet::Of(0));                     // A
  EXPECT_EQ(q.Atom(1), RelationSet::FromElements({0, 1}));      // B
  EXPECT_EQ(q.Atom(2), RelationSet::Of(1));                     // C
  // ∂{R1} = {B}; ∂{R2} = {B}; ∂{R1,R2} = ∅.
  EXPECT_EQ(q.Boundary(RelationSet::Of(0)), AttributeSet::Of(1));
  EXPECT_EQ(q.Boundary(RelationSet::Of(1)), AttributeSet::Of(1));
  EXPECT_TRUE(q.Boundary(q.all_relations()).Empty());
}

TEST(JoinQueryTest, PathQueryBoundaries) {
  const JoinQuery q = MakePathQuery(3, 2);  // R1(X0,X1) R2(X1,X2) R3(X2,X3)
  // ∂{R2} = {X1, X2}.
  EXPECT_EQ(q.Boundary(RelationSet::Of(1)),
            AttributeSet::FromElements({1, 2}));
  // ∂{R1,R2} = {X2}.
  EXPECT_EQ(q.Boundary(RelationSet::FromElements({0, 1})),
            AttributeSet::Of(2));
}

TEST(JoinQueryTest, UnionAndIntersectAttributes) {
  const JoinQuery q = MakeFigure4Query();
  const int a = q.AttributeIndex("A").value();
  const int b = q.AttributeIndex("B").value();
  const int g = q.AttributeIndex("G").value();
  // ∧{x3,x4} = {A,B,G}; paper's Figure 4 example with E = {3,4,5} (0-based
  // {2,3,4}): ∧ = {A}, ∨ = {A,B,C,G,K,L}.
  EXPECT_EQ(q.IntersectAttributes(RelationSet::FromElements({2, 3})),
            AttributeSet::FromElements({a, b, g}));
  const RelationSet e345 = RelationSet::FromElements({2, 3, 4});
  EXPECT_EQ(q.IntersectAttributes(e345), AttributeSet::Of(a));
  AttributeSet expected_union;
  for (const char* name : {"A", "B", "C", "G", "K", "L"}) {
    expected_union.Insert(q.AttributeIndex(name).value());
  }
  EXPECT_EQ(q.UnionAttributes(e345), expected_union);
}

TEST(JoinQueryTest, ConnectivityOfResiduals) {
  const JoinQuery q = MakeFigure4Query();
  const int a = q.AttributeIndex("A").value();
  const int b = q.AttributeIndex("B").value();
  // Figure 4: H_{E,∂E} with E = {3,4,5} (0-based {2,3,4}) and ∂E = {A,B} is
  // disconnected with components {{3,4},{5}} (0-based {{2,3},{4}}).
  const RelationSet e345 = RelationSet::FromElements({2, 3, 4});
  const AttributeSet ab = AttributeSet::FromElements({a, b});
  EXPECT_EQ(q.Boundary(e345), ab);
  const auto components = q.ConnectedComponents(e345, ab);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_FALSE(q.IsConnected(e345, ab));
  // Without removal, the same set is connected.
  EXPECT_TRUE(q.IsConnected(e345, AttributeSet()));
}

TEST(JoinQueryTest, HierarchicalDetection) {
  EXPECT_TRUE(MakeFigure4Query().IsHierarchical());
  EXPECT_TRUE(MakeTwoTableQuery(2, 2, 2).IsHierarchical());
  EXPECT_TRUE(MakeStarQuery(3, 2).IsHierarchical());
  // A 3-path is NOT hierarchical: atom(X1) = {R1,R2} and atom(X2) = {R2,R3}
  // overlap without nesting.
  EXPECT_FALSE(MakePathQuery(3, 2).IsHierarchical());
}

TEST(JoinQueryTest, FractionalEdgeCoverNumbers) {
  // Two-table join: cover {A,B} and {B,C} needs both edges ⇒ ρ = 2.
  EXPECT_NEAR(MakeTwoTableQuery(2, 2, 2).FractionalEdgeCoverNumber(), 2.0,
              1e-6);
  // 3-path: edges {X0X1},{X1X2},{X2X3}; X0 and X3 force edges 1 and 3 ⇒ 2.
  EXPECT_NEAR(MakePathQuery(3, 2).FractionalEdgeCoverNumber(), 2.0, 1e-6);
  // Star with 3 rays: each leaf forces its edge ⇒ 3.
  EXPECT_NEAR(MakeStarQuery(3, 2).FractionalEdgeCoverNumber(), 3.0, 1e-6);
  // Triangle R(A,B), S(B,C), T(A,C): optimum is 3/2 (each edge 1/2).
  auto triangle = JoinQuery::Create(
      {{"A", 2}, {"B", 2}, {"C", 2}},
      {{"A", "B"}, {"B", "C"}, {"A", "C"}});
  ASSERT_TRUE(triangle.ok());
  EXPECT_NEAR(triangle->FractionalEdgeCoverNumber(), 1.5, 1e-6);
}

TEST(JoinQueryTest, ToStringMentionsRelations) {
  const std::string s = MakeTwoTableQuery(2, 2, 2).ToString();
  EXPECT_NE(s.find("R1"), std::string::npos);
  EXPECT_NE(s.find("R2"), std::string::npos);
}

}  // namespace
}  // namespace dpjoin
