#include "relational/instance.h"

#include <gtest/gtest.h>

#include "relational/join_query.h"

namespace dpjoin {
namespace {

TEST(InstanceTest, InputSizeSumsRelations) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 3).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 1}, 2).ok());
  EXPECT_EQ(instance.InputSize(), 5);
}

TEST(InstanceTest, AddTupleValidates) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  EXPECT_TRUE(instance.AddTuple(5, {0, 0}, 1).IsOutOfRange());
  EXPECT_TRUE(instance.AddTuple(0, {2, 0}, 1).IsOutOfRange());
  EXPECT_TRUE(instance.AddTuple(0, {0}, 1).IsInvalidArgument());
  EXPECT_TRUE(instance.AddTuple(0, {0, 0}, -1).IsInvalidArgument());
}

TEST(InstanceTest, NeighborDiffersByOneTuple) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  auto up = instance.Neighbor(0, {1, 1}, +1);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->InputSize(), 2);
  EXPECT_EQ(instance.InputSize(), 1);  // original untouched

  auto down = instance.Neighbor(0, {0, 0}, -1);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->InputSize(), 0);

  EXPECT_TRUE(instance.Neighbor(0, {0, 0}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(instance.Neighbor(0, {1, 1}, -1).status().IsInvalidArgument());
}

TEST(InstanceTest, RandomNeighborIsWithinDistanceOne) {
  Rng rng(17);
  Instance instance = Instance::Make(MakeTwoTableQuery(3, 3, 3));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 2).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 2}, 1).ok());
  for (int trial = 0; trial < 200; ++trial) {
    const Instance neighbor = instance.RandomNeighbor(rng);
    // Total L1 distance across relations must be exactly 1.
    int64_t distance = 0;
    for (int r = 0; r < instance.num_relations(); ++r) {
      const auto& a = instance.relation(r);
      const auto& b = neighbor.relation(r);
      for (int64_t code = 0; code < a.tuple_space().size(); ++code) {
        distance += std::abs(a.Frequency(code) - b.Frequency(code));
      }
    }
    EXPECT_EQ(distance, 1);
  }
}

TEST(InstanceTest, CopySharesQueryButNotData) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  Instance copy = instance;
  ASSERT_TRUE(copy.AddTuple(0, {0, 0}, 1).ok());
  EXPECT_EQ(instance.InputSize(), 0);
  EXPECT_EQ(copy.InputSize(), 1);
  EXPECT_EQ(instance.query_ptr().get(), copy.query_ptr().get());
}

}  // namespace
}  // namespace dpjoin
