#include "relational/join.h"

#include <gtest/gtest.h>

#include "relational/generators.h"
#include "relational/join_query.h"
#include "testing/brute_force.h"

namespace dpjoin {
namespace {

TEST(JoinTest, TwoTableCountSimple) {
  // R1 = {(a0,b0), (a1,b0)}, R2 = {(b0,c0)} ⇒ count = 2.
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {0, 0}, 1).ok());
  EXPECT_DOUBLE_EQ(JoinCount(instance), 2.0);
}

TEST(JoinTest, FrequenciesMultiply) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 3).ok());
  ASSERT_TRUE(instance.AddTuple(1, {0, 0}, 4).ok());
  EXPECT_DOUBLE_EQ(JoinCount(instance), 12.0);
}

TEST(JoinTest, DisjointJoinValuesGiveZero) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 0}, 1).ok());
  EXPECT_DOUBLE_EQ(JoinCount(instance), 0.0);
}

TEST(JoinTest, EmptySubJoinVisitsOnce) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  int visits = 0;
  EnumerateSubJoin(instance, RelationSet(),
                   [&](const std::vector<int64_t>& codes,
                       const std::vector<int64_t>&, int64_t weight) {
                     ++visits;
                     EXPECT_TRUE(codes.empty());
                     EXPECT_EQ(weight, 1);
                   });
  EXPECT_EQ(visits, 1);
  EXPECT_DOUBLE_EQ(SubJoinCount(instance, RelationSet()), 1.0);
}

TEST(JoinTest, EnumerationReportsAssignments) {
  Instance instance = Instance::Make(MakeTwoTableQuery(3, 3, 3));
  ASSERT_TRUE(instance.AddTuple(0, {2, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 2}, 5).ok());
  int visits = 0;
  EnumerateSubJoin(instance, instance.query().all_relations(),
                   [&](const std::vector<int64_t>& codes,
                       const std::vector<int64_t>& assignment, int64_t weight) {
                     ++visits;
                     EXPECT_EQ(weight, 5);
                     EXPECT_EQ(assignment[0], 2);  // A
                     EXPECT_EQ(assignment[1], 1);  // B
                     EXPECT_EQ(assignment[2], 2);  // C
                     ASSERT_EQ(codes.size(), 2u);
                     EXPECT_EQ(codes[0],
                               instance.relation(0).tuple_space().Encode({2, 1}));
                     EXPECT_EQ(codes[1],
                               instance.relation(1).tuple_space().Encode({1, 2}));
                   });
  EXPECT_EQ(visits, 1);
}

TEST(JoinTest, BoundaryQueryTwoTableIsMaxDegree) {
  Instance instance = Instance::Make(MakeTwoTableQuery(4, 4, 4));
  // deg_1(b=0) = 3, deg_1(b=1) = 1.
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 2).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {2, 1}, 1).ok());
  // T_{R1} = max over B of deg_1 (boundary of {R1} is {B}).
  EXPECT_DOUBLE_EQ(BoundaryQuery(instance, RelationSet::Of(0)), 3.0);
}

TEST(JoinTest, GroupedJoinSizesMatchPerGroupCounts) {
  Instance instance = Instance::Make(MakeTwoTableQuery(3, 3, 3));
  ASSERT_TRUE(instance.AddTuple(0, {0, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 0}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(0, {1, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {0, 2}, 2).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 1}, 1).ok());
  // Group full join by B: b=0 contributes 2·2=4, b=1 contributes 1·1=1.
  const auto groups = GroupedJoinSizes(
      instance, instance.query().all_relations(), AttributeSet::Of(1));
  EXPECT_DOUBLE_EQ(groups.at(0), 4.0);
  EXPECT_DOUBLE_EQ(groups.at(1), 1.0);
}

TEST(JoinTest, QAggregateEmptySetIsOne) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  EXPECT_DOUBLE_EQ(QAggregate(instance, RelationSet(), AttributeSet()), 1.0);
}

// ---------------------------------------------------------------------------
// Randomized oracle comparisons (property tests).

struct JoinOracleParam {
  const char* name;
  int query_kind;  // 0 = two-table, 1 = path3, 2 = star3, 3 = triangle
  int64_t tuples;
  uint64_t seed;
};

JoinQuery MakeQueryByKind(int kind) {
  switch (kind) {
    case 0:
      return MakeTwoTableQuery(3, 3, 3);
    case 1:
      return MakePathQuery(3, 3);
    case 2:
      return MakeStarQuery(3, 3);
    case 4:
      return MakePathQuery(4, 2);
    case 5: {
      // Mixed arity: R1(A,B,C) ⋈ R2(C,D).
      auto q = JoinQuery::Create(
          {{"A", 2}, {"B", 2}, {"C", 3}, {"D", 3}},
          {{"A", "B", "C"}, {"C", "D"}});
      return std::move(q).value();
    }
    default: {
      auto triangle = JoinQuery::Create(
          {{"A", 3}, {"B", 3}, {"C", 3}},
          {{"A", "B"}, {"B", "C"}, {"A", "C"}});
      return std::move(triangle).value();
    }
  }
}

class JoinOracleTest : public ::testing::TestWithParam<JoinOracleParam> {};

TEST_P(JoinOracleTest, ParallelCountMatchesSerial) {
  const JoinOracleParam& param = GetParam();
  Rng rng(param.seed + 2);
  const JoinQuery query = MakeQueryByKind(param.query_kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const double serial = JoinCount(instance);
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(ParallelJoinCount(instance, threads), serial)
        << "threads = " << threads;
  }
}

TEST_P(JoinOracleTest, ParallelGroupedJoinSizesMatchSerial) {
  const JoinOracleParam& param = GetParam();
  Rng rng(param.seed + 3);
  const JoinQuery query = MakeQueryByKind(param.query_kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const int m = query.num_relations();
  for (uint64_t bits = 1; bits < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    const AttributeSet group_by = query.Boundary(set);
    const auto serial = GroupedJoinSizes(instance, set, group_by);
    for (int threads : {1, 2, 8}) {
      const auto parallel =
          ParallelGroupedJoinSizes(instance, set, group_by, threads);
      ASSERT_EQ(parallel.size(), serial.size())
          << "E = " << set.ToString() << ", threads = " << threads;
      for (const auto& [key, mass] : serial) {
        const auto it = parallel.find(key);
        ASSERT_NE(it, parallel.end()) << "missing group " << key;
        EXPECT_EQ(it->second, mass)  // integer-valued: must be bit-identical
            << "E = " << set.ToString() << ", threads = " << threads;
      }
    }
  }
}

TEST(JoinTest, ParallelEmptyRelationSetMatchesSerial) {
  Instance instance = Instance::Make(MakeTwoTableQuery(2, 2, 2));
  EXPECT_DOUBLE_EQ(ParallelSubJoinCount(instance, RelationSet(), 4), 1.0);
  const auto groups =
      ParallelGroupedJoinSizes(instance, RelationSet(), AttributeSet(), 4);
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups.at(0), 1.0);
}

TEST(JoinTest, GroupedJoinSizesWideKeysBelowOverflowBoundary) {
  // 3 attributes of domain 2^16 → key space 2^48: wide but representable.
  auto q = JoinQuery::Create(
      {{"A", int64_t{1} << 16}, {"B", int64_t{1} << 16}, {"C", int64_t{1} << 16}},
      {{"A", "B"}, {"B", "C"}});
  ASSERT_TRUE(q.ok());
  Instance instance = Instance::Make(*q);
  const int64_t top = (int64_t{1} << 16) - 1;
  ASSERT_TRUE(instance.AddTuple(0, {top, top}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {top, top}, 1).ok());
  const auto groups =
      GroupedJoinSizes(instance, instance.query().all_relations(),
                       AttributeSet::Of(0).Union(AttributeSet::Of(1)).Union(
                           AttributeSet::Of(2)));
  ASSERT_EQ(groups.size(), 1u);
  // Key = ((top·2^16) + top)·2^16 + top = 2^48 − 1, the boundary value.
  EXPECT_DOUBLE_EQ(groups.at((int64_t{1} << 48) - 1), 1.0);
}

TEST(JoinDeathTest, GroupedJoinSizesChecksKeyOverflow) {
  // 5 attributes of domain 2^16 → key space 2^80: must CHECK, not wrap.
  auto q = JoinQuery::Create({{"A", int64_t{1} << 16},
                              {"B", int64_t{1} << 16},
                              {"C", int64_t{1} << 16},
                              {"D", int64_t{1} << 16},
                              {"E", int64_t{1} << 16}},
                             {{"A", "B", "C"}, {"C", "D", "E"}});
  ASSERT_TRUE(q.ok());
  Instance instance = Instance::Make(*q);
  ASSERT_TRUE(instance.AddTuple(0, {1, 1, 1}, 1).ok());
  ASSERT_TRUE(instance.AddTuple(1, {1, 1, 1}, 1).ok());
  AttributeSet all;
  for (int attr = 0; attr < 5; ++attr) all.Insert(attr);
  EXPECT_DEATH(
      GroupedJoinSizes(instance, instance.query().all_relations(), all),
      "overflows int64");
}

TEST_P(JoinOracleTest, CountMatchesBruteForce) {
  const JoinOracleParam& param = GetParam();
  Rng rng(param.seed);
  const JoinQuery query = MakeQueryByKind(param.query_kind);
  for (int rep = 0; rep < 5; ++rep) {
    const Instance instance =
        testing::RandomInstance(query, param.tuples, rng);
    EXPECT_DOUBLE_EQ(JoinCount(instance),
                     testing::BruteForceJoinCount(instance));
  }
}

TEST_P(JoinOracleTest, BoundaryQueriesMatchBruteForce) {
  const JoinOracleParam& param = GetParam();
  Rng rng(param.seed + 1);
  const JoinQuery query = MakeQueryByKind(param.query_kind);
  const Instance instance = testing::RandomInstance(query, param.tuples, rng);
  const int m = query.num_relations();
  for (uint64_t bits = 1; bits < (uint64_t{1} << m); ++bits) {
    RelationSet set;
    for (int r = 0; r < m; ++r) {
      if ((bits >> r) & 1) set.Insert(r);
    }
    EXPECT_DOUBLE_EQ(
        BoundaryQuery(instance, set),
        testing::BruteForceQAggregate(instance, set, query.Boundary(set)))
        << "E = " << set.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JoinOracleTest,
    ::testing::Values(JoinOracleParam{"two_table_sparse", 0, 4, 101},
                      JoinOracleParam{"two_table_dense", 0, 20, 102},
                      JoinOracleParam{"path3_sparse", 1, 4, 103},
                      JoinOracleParam{"path3_dense", 1, 15, 104},
                      JoinOracleParam{"star3", 2, 8, 105},
                      JoinOracleParam{"triangle", 3, 8, 106},
                      JoinOracleParam{"path4", 4, 5, 107},
                      JoinOracleParam{"mixed_arity", 5, 6, 108}),
    [](const ::testing::TestParamInfo<JoinOracleParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dpjoin
