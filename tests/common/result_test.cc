#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(7).ValueOr(-1), 7);
  EXPECT_EQ(ParsePositive(-7).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Doubled(int x) {
  DPJOIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> err = Doubled(-3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("broken");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

}  // namespace
}  // namespace dpjoin
