#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace dpjoin {
namespace {

TEST(NumBlocksTest, CoversRangeExactly) {
  EXPECT_EQ(NumBlocks(0, 0, 4), 0);
  EXPECT_EQ(NumBlocks(5, 3, 4), 0);
  EXPECT_EQ(NumBlocks(0, 1, 4), 1);
  EXPECT_EQ(NumBlocks(0, 4, 4), 1);
  EXPECT_EQ(NumBlocks(0, 5, 4), 2);
  EXPECT_EQ(NumBlocks(3, 11, 4), 2);
  EXPECT_EQ(NumBlocks(0, 10, 0), 10);  // grain clamps to 1
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(
        0, n, 7,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
        },
        threads);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForTest, BlockBoundariesIndependentOfThreadCount) {
  auto boundaries = [](int threads) {
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> blocks;
    ParallelFor(
        3, 100, 13,
        [&](int64_t lo, int64_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          blocks.insert({lo, hi});
        },
        threads);
    return blocks;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(8));
  // Blocks tile [3, 100) in grain-13 steps.
  EXPECT_EQ(serial.size(), 8u);
  EXPECT_EQ(serial.begin()->first, 3);
  EXPECT_EQ(serial.rbegin()->second, 100);
}

TEST(ParallelSumTest, MatchesSerialSumBitForBit) {
  const int64_t n = 100000;
  auto block_sum = [](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      s += 1.0 / static_cast<double>(i + 1);
    }
    return s;
  };
  const double serial = ParallelSum(0, n, 4096, block_sum, 1);
  for (int threads : {2, 3, 8}) {
    const double parallel = ParallelSum(0, n, 4096, block_sum, threads);
    EXPECT_EQ(serial, parallel) << "threads = " << threads;
  }
}

TEST(ParallelForTest, UsesMultipleThreadsWhenRequested) {
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int64_t> slow{0};
  ParallelFor(
      0, 64, 1,
      [&](int64_t, int64_t) {
        {
          std::lock_guard<std::mutex> lock(mu);
          seen.insert(std::this_thread::get_id());
        }
        // Busy-wait a little so workers have time to wake and claim blocks.
        for (int i = 0; i < 100000; ++i) slow.fetch_add(1);
      },
      4);
  // At least the calling thread ran; with workers available more ids appear.
  // (On a single-core machine the OS may still schedule everything on the
  // caller before workers wake, so only assert the lower bound.)
  EXPECT_GE(seen.size(), 1u);
}

TEST(ParallelForTest, NestedRegionsComplete) {
  // A region submitted from inside a worker's block goes to the shared pool
  // like any other; it must complete (the submitting thread drains its own
  // blocks, so progress never waits on a pool helper) and count every index.
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, 16, 1,
      [&](int64_t lo, int64_t hi) {
        ParallelFor(
            0, 8, 1,
            [&](int64_t nlo, int64_t nhi) { total.fetch_add(nhi - nlo); }, 4);
        total.fetch_add(hi - lo);
      },
      4);
  EXPECT_EQ(total.load(), 16 * 8 + 16);
}

TEST(ParallelForTest, EmptyRangeDoesNothing) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](int64_t, int64_t) { called = true; }, 8);
  ParallelFor(9, 2, 4, [&](int64_t, int64_t) { called = true; }, 8);
  EXPECT_FALSE(called);
  EXPECT_EQ(ParallelSum(5, 5, 4, [](int64_t, int64_t) { return 1.0; }, 8),
            0.0);
}

TEST(ExecutionContextTest, SetAndResetThreads) {
  const int base = ExecutionContext::threads();
  EXPECT_GE(base, 1);
  ExecutionContext::SetThreads(3);
  EXPECT_EQ(ExecutionContext::threads(), 3);
  ExecutionContext::SetThreads(0);  // reset to default
  EXPECT_EQ(ExecutionContext::threads(), ExecutionContext::DefaultThreads());
}

TEST(ExecutionContextTest, ScopedThreadsRestores) {
  ExecutionContext::SetThreads(2);
  {
    ScopedThreads scoped(5);
    EXPECT_EQ(ExecutionContext::threads(), 5);
    {
      ScopedThreads inner(0);  // 0 = leave untouched
      EXPECT_EQ(ExecutionContext::threads(), 5);
    }
    EXPECT_EQ(ExecutionContext::threads(), 5);
  }
  EXPECT_EQ(ExecutionContext::threads(), 2);
  ExecutionContext::SetThreads(0);
}

TEST(ExecutionContextTest, ClampsToMaxThreads) {
  ExecutionContext::SetThreads(100000);
  EXPECT_EQ(ExecutionContext::threads(), ThreadPool::kMaxThreads);
  ExecutionContext::SetThreads(0);
}

TEST(ExecutionContextTest, ScopedThreadsIsThreadLocal) {
  // Two user threads hold DIFFERENT ScopedThreads overrides concurrently;
  // each must observe its own count for the whole overlap, and neither may
  // disturb the process-wide setting.
  ExecutionContext::SetThreads(2);
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  std::atomic<bool> ok_a{true}, ok_b{true};
  auto runner = [&](int count, std::atomic<bool>* ok) {
    ScopedThreads scoped(count);
    ready.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    for (int i = 0; i < 1000; ++i) {
      if (ExecutionContext::threads() != count) {
        ok->store(false);
        break;
      }
    }
  };
  std::thread a(runner, 5, &ok_a);
  std::thread b(runner, 7, &ok_b);
  while (ready.load() != 2) std::this_thread::yield();
  // Both overrides are live right now; this thread holds none and must see
  // the process-wide setting.
  EXPECT_EQ(ExecutionContext::threads(), 2);
  release.store(true);
  a.join();
  b.join();
  EXPECT_TRUE(ok_a.load());
  EXPECT_TRUE(ok_b.load());
  EXPECT_EQ(ExecutionContext::threads(), 2);  // overrides died with threads
  ExecutionContext::SetThreads(0);
}

TEST(ExecutionContextTest, SetThreadsDoesNotOverrideScoped) {
  ScopedThreads scoped(5);
  ExecutionContext::SetThreads(3);  // process default changes underneath...
  EXPECT_EQ(ExecutionContext::threads(), 5);  // ...but the local wins
  ExecutionContext::SetThreads(0);
}

TEST(ExecutionContextTest, GrainsAreRuntimeTunable) {
  // Defaults (no env override in the test environment).
  EXPECT_EQ(ExecutionContext::TensorGrain(), kDefaultTensorGrain);
  EXPECT_EQ(ExecutionContext::JoinRootGrain(), kDefaultJoinRootGrain);
  ExecutionContext::SetTensorGrain(1024);
  ExecutionContext::SetJoinRootGrain(32);
  EXPECT_EQ(ExecutionContext::TensorGrain(), 1024);
  EXPECT_EQ(ExecutionContext::JoinRootGrain(), 32);
  ExecutionContext::SetTensorGrain(0);  // reset to default
  ExecutionContext::SetJoinRootGrain(-1);
  EXPECT_EQ(ExecutionContext::TensorGrain(), kDefaultTensorGrain);
  EXPECT_EQ(ExecutionContext::JoinRootGrain(), kDefaultJoinRootGrain);
}

TEST(ConcurrentRegionsTest, TwoTopLevelRegionsOverlap) {
  // Proves regions are NOT serialized, without timing: a block of region A
  // spins until region B — submitted from another thread while A is still
  // running — has completed. Under a pool that serializes top-level regions
  // B would queue behind A and this would never terminate; under the
  // concurrent-region pool B's caller drains B itself, so the flag flips.
  std::atomic<bool> a_entered{false};
  std::atomic<bool> b_done{false};
  std::atomic<bool> gave_up{false};
  std::thread other([&] {
    while (!a_entered.load()) std::this_thread::yield();
    const double sum = ParallelSum(
        0, 4, 1, [](int64_t lo, int64_t hi) { return double(hi - lo); }, 2);
    EXPECT_EQ(sum, 4.0);
    b_done.store(true);
  });
  ParallelFor(
      0, 2, 1,
      [&](int64_t lo, int64_t) {
        if (lo != 0) return;
        a_entered.store(true);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!b_done.load()) {
          if (std::chrono::steady_clock::now() > deadline) {
            gave_up.store(true);
            return;
          }
          std::this_thread::yield();
        }
      },
      2);
  other.join();
  EXPECT_FALSE(gave_up.load())
      << "region B never completed while region A was in flight";
  EXPECT_TRUE(b_done.load());
}

TEST(ConcurrentRegionsTest, SumsBitIdenticalAcrossConcurrentRegions) {
  // The block decomposition (and the block-order merge in ParallelSum)
  // depends only on (range, grain) — so N identical regions racing on the
  // pool must all reproduce the serial sum bit-for-bit.
  auto block_sum = [](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += 1.0 / static_cast<double>(i + 1);
    return s;
  };
  const double serial = ParallelSum(0, 50000, 512, block_sum, 1);
  for (int round = 0; round < 20; ++round) {
    constexpr int kCallers = 4;
    double results[kCallers] = {0.0};
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back(
          [&, t] { results[t] = ParallelSum(0, 50000, 512, block_sum, 2); });
    }
    for (auto& caller : callers) caller.join();
    for (int t = 0; t < kCallers; ++t) {
      ASSERT_EQ(serial, results[t]) << "round " << round << " caller " << t;
    }
  }
}

TEST(ConcurrentRegionsTest, MixedShapeRegionsStress) {
  // Differently-shaped regions (distinct ranges, grains, thread budgets)
  // churning concurrently: every region must still visit each of its own
  // indices exactly once, and nested submission from inside a region must
  // keep working while other top-level regions are in flight.
  std::atomic<bool> failed{false};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      const int64_t n = 64 + 97 * t;
      const int64_t grain = 3 + 2 * t;
      for (int round = 0; round < 50 && !failed.load(); ++round) {
        std::atomic<int64_t> count{0};
        ParallelFor(
            0, n, grain,
            [&](int64_t lo, int64_t hi) {
              if (t == 0) {
                // One caller nests a region per block.
                ParallelFor(
                    0, 4, 1,
                    [&](int64_t nlo, int64_t nhi) {
                      count.fetch_add(0 * (nhi - nlo));
                    },
                    2);
              }
              count.fetch_add(hi - lo);
            },
            2 + t % 3);
        if (count.load() != n) failed.store(true);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_FALSE(failed.load());
}

TEST(ParallelForTest, ManySmallRegionsStress) {
  // Exercises region turnover (job publication, completion wait, worker
  // re-parking) looking for lost-wakeup or stale-worker races.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> count{0};
    ParallelFor(
        0, 32, 1, [&](int64_t lo, int64_t hi) { count.fetch_add(hi - lo); },
        4);
    ASSERT_EQ(count.load(), 32) << "round " << round;
  }
}

}  // namespace
}  // namespace dpjoin
