#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(MathUtilTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1.0), 0);
  EXPECT_EQ(Log2Ceil(2.0), 1);
  EXPECT_EQ(Log2Ceil(3.0), 2);
  EXPECT_EQ(Log2Ceil(1024.0), 10);
  EXPECT_EQ(Log2Ceil(0.5), -1);
}

TEST(MathUtilTest, IPow) {
  EXPECT_EQ(IPow(2, 10), 1024);
  EXPECT_EQ(IPow(7, 0), 1);
  EXPECT_EQ(IPow(0, 5), 0);
  EXPECT_EQ(IPow(1, 62), 1);
}

TEST(MathUtilTest, LogSumExpMatchesDirectComputation) {
  const std::vector<double> xs = {0.1, -2.0, 3.5};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(MathUtilTest, LogSumExpStableForLargeInputs) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
  const std::vector<double> lows = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(lows), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, NearlyEqual) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(NearlyEqual(1.0, 1.001));
  EXPECT_TRUE(NearlyEqual(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_TRUE(NearlyEqual(0.0, 0.0));
}

TEST(MathUtilDeathTest, InvalidInputs) {
  EXPECT_DEATH((void)Log2Ceil(0.0), "");
  EXPECT_DEATH((void)IPow(-1, 2), "");
  EXPECT_DEATH((void)Clamp(0.0, 2.0, 1.0), "");
}

}  // namespace
}  // namespace dpjoin
