#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace dpjoin {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformDouble(), b.UniformDouble());
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int agreements = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++agreements;
  }
  EXPECT_LT(agreements, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.UniformDouble(-2.0, 5.0);
    EXPECT_GE(y, -2.0);
    EXPECT_LT(y, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);  // degenerate range
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.UniformIndex(4)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(8);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential());
  EXPECT_NEAR(stats.Mean(), 1.0, 0.03);
  EXPECT_GE(stats.Min(), 0.0);
}

TEST(RngTest, ForkedStreamsAreIndependentButReproducible) {
  Rng parent1(9), parent2(9);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Same parent seed → same child stream.
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.UniformDouble(), child2.UniformDouble());
  }
  // Child stream differs from the parent's continuation.
  Rng parent3(9);
  Rng child3 = parent3.Fork();
  int agreements = 0;
  for (int i = 0; i < 50; ++i) {
    if (child3.UniformInt(0, 1 << 30) == parent3.UniformInt(0, 1 << 30)) {
      ++agreements;
    }
  }
  EXPECT_LT(agreements, 2);
}

TEST(RngTest, ForkedStreamsUncorrelatedWithParent) {
  // Regression for the old Fork(), which seeded the child engine from a
  // single raw 64-bit draw: mt19937_64's seeding of the remaining state is
  // weakly mixed, giving measurable parent/child cross-correlation. With
  // the SplitMix64 + seed_seq expansion the Pearson correlation of the two
  // uniform streams must be statistically indistinguishable from zero.
  Rng parent(42);
  Rng child = parent.Fork();
  const int n = 20000;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double x = parent.UniformDouble();
    const double y = child.UniformDouble();
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double var_x = sxx / n - (sx / n) * (sx / n);
  const double var_y = syy / n - (sy / n) * (sy / n);
  const double r = cov / std::sqrt(var_x * var_y);
  // |r| for independent streams is ~N(0, 1/sqrt(n)); 0.05 ≈ 7 sigma.
  EXPECT_LT(std::abs(r), 0.05);
}

TEST(RngTest, SiblingForksDiverge) {
  // Consecutive forks from one parent must give unrelated streams even
  // though their seeds come from adjacent parent draws.
  Rng parent(7);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int agreements = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++agreements;
  }
  EXPECT_LT(agreements, 2);
}

TEST(RngTest, ForkGoldenStability) {
  // Forked streams are part of the reproducibility contract: the seed
  // expansion is fixed (SplitMix64 into std::seed_seq, both fully specified
  // by the standard), so the first draws of a fork of Rng(123) must never
  // change across platforms or refactors. Update these goldens ONLY when
  // knowingly breaking fork-stream compatibility.
  Rng parent(123);
  Rng child = parent.Fork();
  EXPECT_EQ(child.engine()(), 17939297068245872774ULL);
  EXPECT_EQ(child.engine()(), 17899898976348473389ULL);
}

TEST(RngDeathTest, RejectsEmptyRanges) {
  Rng rng(10);
  EXPECT_DEATH((void)rng.UniformInt(5, 4), "");
  EXPECT_DEATH((void)rng.UniformIndex(0), "");
  EXPECT_DEATH((void)rng.UniformDouble(1.0, 1.0), "");
}

}  // namespace
}  // namespace dpjoin
