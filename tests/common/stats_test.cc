#include "common/stats.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(SampleStatsTest, MeanAndExtremes) {
  SampleStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
}

TEST(SampleStatsTest, StdDevMatchesHandComputation) {
  SampleStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  // Known dataset: sample variance = 32/7.
  EXPECT_NEAR(stats.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(stats.StdError(), stats.StdDev() / std::sqrt(8.0), 1e-12);
}

TEST(SampleStatsTest, SingleSampleHasZeroSpread) {
  SampleStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.StdError(), 0.0);
}

TEST(SampleStatsTest, QuantilesNearestRank) {
  SampleStats stats;
  for (int i = 1; i <= 10; ++i) stats.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(stats.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.9), 9.0);
}

TEST(SampleStatsTest, QuantileAfterMoreSamplesRecomputes) {
  SampleStats stats;
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 1.0);
  stats.Add(100.0);
  stats.Add(50.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 50.0);
}

TEST(SampleStatsDeathTest, EmptyStatsAbort) {
  SampleStats stats;
  EXPECT_DEATH((void)stats.Mean(), "no samples");
  EXPECT_DEATH((void)stats.Quantile(0.5), "no samples");
}

}  // namespace
}  // namespace dpjoin
