#include "common/mixed_radix.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(MixedRadixTest, SizeIsProductOfRadices) {
  MixedRadix coder({3, 4, 5});
  EXPECT_EQ(coder.size(), 60);
  EXPECT_EQ(coder.num_digits(), 3u);
}

TEST(MixedRadixTest, EmptyShapeHasOneTuple) {
  MixedRadix coder{std::vector<int64_t>{}};
  EXPECT_EQ(coder.size(), 1);
  EXPECT_EQ(coder.Encode({}), 0);
  EXPECT_TRUE(coder.Decode(0).empty());
}

TEST(MixedRadixTest, RowMajorLayout) {
  MixedRadix coder({2, 3});
  // Last digit fastest: (0,0)=0, (0,1)=1, (0,2)=2, (1,0)=3 ...
  EXPECT_EQ(coder.Encode({0, 0}), 0);
  EXPECT_EQ(coder.Encode({0, 2}), 2);
  EXPECT_EQ(coder.Encode({1, 0}), 3);
  EXPECT_EQ(coder.Encode({1, 2}), 5);
}

TEST(MixedRadixTest, EncodeDecodeRoundTrip) {
  MixedRadix coder({4, 2, 7, 3});
  for (int64_t flat = 0; flat < coder.size(); ++flat) {
    EXPECT_EQ(coder.Encode(coder.Decode(flat)), flat);
  }
}

TEST(MixedRadixTest, DigitExtraction) {
  MixedRadix coder({4, 2, 7});
  const std::vector<int64_t> digits = {3, 1, 6};
  const int64_t flat = coder.Encode(digits);
  for (size_t i = 0; i < digits.size(); ++i) {
    EXPECT_EQ(coder.Digit(flat, i), digits[i]);
  }
}

TEST(MixedRadixTest, DecodeIntoReusesBuffer) {
  MixedRadix coder({5, 5});
  std::vector<int64_t> buffer(2);
  coder.DecodeInto(13, &buffer);
  EXPECT_EQ(buffer, (std::vector<int64_t>{2, 3}));
}

TEST(MixedRadixTest, StridesMatchLayout) {
  MixedRadix coder({3, 4, 5});
  EXPECT_EQ(coder.stride(2), 1);
  EXPECT_EQ(coder.stride(1), 5);
  EXPECT_EQ(coder.stride(0), 20);
}

TEST(OdometerTest, WalksLexicographically) {
  MixedRadix coder({2, 3});
  Odometer odo(coder);
  for (int64_t flat = 0; flat < coder.size(); ++flat) {
    EXPECT_EQ(odo.digits(), coder.Decode(flat)) << "flat = " << flat;
    odo.Advance();
  }
  // Wrapped back to all zeros.
  EXPECT_EQ(odo.digits(), (std::vector<int64_t>{0, 0}));
}

TEST(OdometerTest, SeekMatchesDecode) {
  MixedRadix coder({4, 2, 7, 3});
  Odometer odo(coder);
  for (int64_t flat : {0L, 1L, 41L, 83L, 167L}) {
    odo.SeekTo(flat);
    EXPECT_EQ(odo.digits(), coder.Decode(flat));
  }
  // Seek-then-advance agrees with a walk from the start.
  Odometer seeded(coder, 100);
  for (int64_t flat = 100; flat < coder.size(); ++flat) {
    EXPECT_EQ(seeded.digits(), coder.Decode(flat));
    seeded.Advance();
  }
}

TEST(OdometerTest, AdvanceReportsLowestChangedDigit) {
  MixedRadix coder({2, 2, 3});
  Odometer odo(coder);
  // (0,0,0)→(0,0,1): digit 2 changed. (0,0,2)→(0,1,0): digit 1.
  EXPECT_EQ(odo.Advance(), 2u);
  EXPECT_EQ(odo.Advance(), 2u);
  EXPECT_EQ(odo.Advance(), 1u);
  // (0,1,0)→(0,1,1)→(0,1,2)→(1,0,0): digit 0.
  odo.Advance();
  odo.Advance();
  EXPECT_EQ(odo.Advance(), 0u);
  EXPECT_EQ(odo.digits(), (std::vector<int64_t>{1, 0, 0}));
}

TEST(OdometerTest, EmptyShape) {
  MixedRadix coder{std::vector<int64_t>{}};
  Odometer odo(coder, 0);
  EXPECT_TRUE(odo.digits().empty());
  EXPECT_EQ(odo.Advance(), 0u);  // no digits to advance
}

TEST(MixedRadixDeathTest, RejectsBadInput) {
  MixedRadix coder({3, 4});
  EXPECT_DEATH(coder.Encode({3, 0}), "digit out of range");
  EXPECT_DEATH(coder.Encode({0}), "");
  EXPECT_DEATH(coder.Decode(12), "index out of range");
  EXPECT_DEATH(MixedRadix({0}), "");
}

}  // namespace
}  // namespace dpjoin
