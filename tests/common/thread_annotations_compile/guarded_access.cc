// Positive control for thread_annotations_compile_test: the same shape as
// unguarded_access.cc but correctly locked, so it MUST compile cleanly
// under -Werror=thread-safety-analysis. If this fails, the failure of the
// negative test would prove nothing (the flags would reject everything).

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    dpjoin::MutexLock lock(mu_);
    ++count_;
  }

 private:
  dpjoin::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
