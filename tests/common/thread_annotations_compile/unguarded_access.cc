// MUST NOT COMPILE under -Werror=thread-safety-analysis.
//
// This file is the negative half of thread_annotations_compile_test: it
// writes a GUARDED_BY field without holding the mutex. If this compiles,
// the thread-safety analysis is dead (wrong flags, broken macros) and the
// test fails — see check.cmake.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++count_;  // BUG (deliberate): mu_ is not held.
  }

 private:
  dpjoin::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
