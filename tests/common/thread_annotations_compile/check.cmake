# thread_annotations_compile_test driver (ctest runs this via cmake -P).
#
# Asserts that Clang's -Wthread-safety analysis is LIVE:
#   1. guarded_access.cc   (correct locking)  -> must compile
#   2. unguarded_access.cc (missing the lock) -> must FAIL to compile
#      under -Werror=thread-safety-analysis
#
# Expected variables: CXX (compiler), SRC_DIR (repo src/ for the
# common/mutex.h include), TEST_DIR (this directory).

set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety
    -Werror=thread-safety-analysis "-I${SRC_DIR}")

execute_process(
  COMMAND "${CXX}" ${FLAGS} "${TEST_DIR}/guarded_access.cc"
  RESULT_VARIABLE good_result
  ERROR_VARIABLE good_stderr)
if(NOT good_result EQUAL 0)
  message(FATAL_ERROR
    "positive control failed: guarded_access.cc (correct locking) did not "
    "compile under -Wthread-safety — the analysis would reject everything.\n"
    "${good_stderr}")
endif()

execute_process(
  COMMAND "${CXX}" ${FLAGS} "${TEST_DIR}/unguarded_access.cc"
  RESULT_VARIABLE bad_result
  ERROR_VARIABLE bad_stderr)
if(bad_result EQUAL 0)
  message(FATAL_ERROR
    "negative test failed: unguarded_access.cc writes a GUARDED_BY field "
    "without the lock, yet compiled cleanly — -Wthread-safety is NOT live "
    "(check the flags and the macros in src/common/thread_annotations.h).")
endif()
if(NOT bad_stderr MATCHES "thread-safety|guarded_by|requires holding")
  message(FATAL_ERROR
    "unguarded_access.cc failed to compile, but not with a thread-safety "
    "diagnostic — something else is broken:\n${bad_stderr}")
endif()

message(STATUS
  "thread-safety analysis is live: unguarded access rejected, guarded "
  "access accepted")
