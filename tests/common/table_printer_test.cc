#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "23"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string expected =
      "| name   | value |\n"
      "|--------|-------|\n"
      "| x      | 1     |\n"
      "| longer | 23    |\n";
  EXPECT_EQ(oss.str(), expected);
}

TEST(TablePrinterTest, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.14");
  EXPECT_EQ(TablePrinter::Num(12345678.0, 3), "1.23e+07");
  EXPECT_EQ(TablePrinter::Num(2.0), "2");
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter table({"a"});
  std::ostringstream oss;
  table.Print(oss);
  EXPECT_EQ(oss.str(), "| a |\n|---|\n");
}

TEST(TablePrinterDeathTest, RowArityMustMatch) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

}  // namespace
}  // namespace dpjoin
