#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace dpjoin {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42")->AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1.5e3")->AsDouble(), -1500.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
  EXPECT_EQ(JsonValue::Parse("  \"pad\"  ")->AsString(), "pad");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = JsonValue::Parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].AsDouble(), 2.0);
  EXPECT_TRUE(a->items()[2].Find("b")->AsBool());
  EXPECT_TRUE(v->Find("c")->Find("d")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string raw = "line1\nline2\t\"quoted\"\\slash\x01";
  JsonValue v = JsonValue::String(raw);
  auto back = JsonValue::Parse(v.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->AsString(), raw);

  // \u escapes, including a surrogate pair (U+1F600).
  auto unicode = JsonValue::Parse(R"("caf\u00e9 \ud83d\ude00")");
  ASSERT_TRUE(unicode.ok()) << unicode.status();
  EXPECT_EQ(unicode->AsString(), "caf\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonTest, NumbersRoundTripValueExact) {
  for (const double d : {0.0, 1.0, -2.5, 1e-5, 0.1, 1.0 / 3.0, 1e300}) {
    const std::string text = JsonValue::Number(d).Serialize();
    EXPECT_EQ(JsonValue::Parse(text)->AsDouble(), d) << text;
  }
  // Non-finite serializes as null (JSON has no literal for it).
  EXPECT_EQ(JsonValue::Number(std::nan("")).Serialize(), "null");
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndSetReplaces) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Number(1));
  obj.Set("a", JsonValue::Number(2));
  obj.Set("z", JsonValue::Number(3));  // replace in place, order kept
  EXPECT_EQ(obj.Serialize(), "{\"z\": 3, \"a\": 2}");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* cases[] = {
      "",
      "{",
      "[1, 2",
      "{\"a\": }",
      "{\"a\": 1,}x",
      "\"unterminated",
      "{\"a\": 1} trailing",
      "{'single': 1}",
      "{\"dup\": 1, \"dup\": 2}",
      "nulll",
      "+1",
      "0x10",
      "\"bad \\q escape\"",
      "\"\\ud800 lonely high\"",
      "[1, , 2]",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
  // Depth bomb: 100 nested arrays exceed the 64-level cap.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, HexIdsRoundTripFullRange) {
  for (const uint64_t id :
       {uint64_t{0}, uint64_t{1}, uint64_t{0xdeadbeef},
        uint64_t{0xffffffffffffffff}, uint64_t{1} << 53}) {
    const std::string text = JsonHexId(id);
    auto back = ParseJsonHexId(text);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(ParseJsonHexId("123").ok());
  EXPECT_FALSE(ParseJsonHexId("0x").ok());
  EXPECT_FALSE(ParseJsonHexId("0xg").ok());
  EXPECT_FALSE(ParseJsonHexId("0x11112222333344445").ok());  // 17 digits
}

}  // namespace
}  // namespace dpjoin
