#include "common/bitset.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(SmallBitsetTest, EmptyByDefault) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_TRUE(s.Elements().empty());
}

TEST(SmallBitsetTest, InsertEraseContains) {
  AttributeSet s;
  s.Insert(3);
  s.Insert(7);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(s.Count(), 2);
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(SmallBitsetTest, FirstN) {
  AttributeSet s = AttributeSet::FirstN(4);
  EXPECT_EQ(s.Count(), 4);
  EXPECT_EQ(s.Elements(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(AttributeSet::FirstN(0).Empty());
  EXPECT_EQ(AttributeSet::FirstN(64).Count(), 64);
}

TEST(SmallBitsetTest, SetAlgebra) {
  const AttributeSet a = AttributeSet::FromElements({0, 1, 2});
  const AttributeSet b = AttributeSet::FromElements({2, 3});
  EXPECT_EQ(a.Union(b).Elements(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b).Elements(), (std::vector<int>{2}));
  EXPECT_EQ(a.Minus(b).Elements(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Minus(b).Intersects(b));
}

TEST(SmallBitsetTest, SubsetRelations) {
  const AttributeSet a = AttributeSet::FromElements({1, 2});
  const AttributeSet b = AttributeSet::FromElements({0, 1, 2});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(a));
}

TEST(SmallBitsetTest, FirstAndOrdering) {
  const AttributeSet s = AttributeSet::FromElements({5, 9, 2});
  EXPECT_EQ(s.First(), 2);
  EXPECT_EQ(s.Elements(), (std::vector<int>{2, 5, 9}));
}

TEST(SmallBitsetTest, EqualityAndToString) {
  const AttributeSet a = AttributeSet::FromElements({1, 3});
  AttributeSet b;
  b.Insert(3);
  b.Insert(1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, AttributeSet::Of(1));
  EXPECT_EQ(a.ToString(), "{1,3}");
}

TEST(SmallBitsetTest, PhantomTagsKeepTypesDistinct) {
  // AttributeSet and RelationSet with identical bits are different types;
  // this is a compile-time property — just exercise both.
  const AttributeSet a = AttributeSet::Of(1);
  const RelationSet r = RelationSet::Of(1);
  EXPECT_EQ(a.bits(), r.bits());
}

TEST(SmallBitsetDeathTest, OutOfRangeInsert) {
  AttributeSet s;
  EXPECT_DEATH(s.Insert(64), "out of range");
  EXPECT_DEATH(s.Insert(-1), "out of range");
}

}  // namespace
}  // namespace dpjoin
