#include "common/status.h"

#include <gtest/gtest.h>

namespace dpjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "missing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    DPJOIN_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper_ok = [&]() -> Status {
    DPJOIN_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper_ok().code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream oss;
  oss << Status::OutOfRange("idx");
  EXPECT_EQ(oss.str(), "OutOfRange: idx");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace dpjoin
